//! Cross-crate integration: workloads → memory controller → defenses →
//! DRAM fault oracle, exercised end to end.

use graphene_repro::memctrl::{McBuilder, McConfig};
use graphene_repro::rh_sim::{run_pair, DefenseSpec, SimConfig, WorkloadSpec};

const T_RH: u64 = 4_000;
const ACTS: u64 = 120_000;

fn counter_based(t_rh: u64) -> Vec<DefenseSpec> {
    vec![
        DefenseSpec::Graphene { t_rh, k: 2 },
        DefenseSpec::Twice { t_rh },
        DefenseSpec::Cbt { t_rh },
        DefenseSpec::Cra { t_rh },
        DefenseSpec::Ideal { t_rh },
    ]
}

#[test]
fn cra_is_sound_but_pays_for_low_locality() {
    // The paper's §II-C critique of CRA, end to end: on the random-heavy S4
    // pattern its counter cache thrashes, charging real bank time — while
    // Graphene's on-chip table costs nothing. Both stay flip-free.
    let cfg = SimConfig::attack_bank(T_RH, ACTS);
    let cra = run_pair(&cfg, &DefenseSpec::Cra { t_rh: T_RH }, &WorkloadSpec::S4);
    let graphene = run_pair(&cfg, &DefenseSpec::Graphene { t_rh: T_RH, k: 2 }, &WorkloadSpec::S4);
    assert_eq!(cra.stats.bit_flips, 0);
    assert_eq!(graphene.stats.bit_flips, 0);
    assert!(
        cra.slowdown > graphene.slowdown + 0.01,
        "CRA's counter traffic must cost real time (CRA {} vs Graphene {})",
        cra.slowdown,
        graphene.slowdown
    );
}

#[test]
fn every_counter_scheme_stops_every_adversarial_pattern() {
    let cfg = SimConfig::attack_bank(T_RH, ACTS);
    for defense in counter_based(T_RH) {
        for attack in WorkloadSpec::adversarial_set() {
            let r = run_pair(&cfg, &defense, &attack);
            assert_eq!(r.stats.bit_flips, 0, "{} flipped under {}", r.defense, r.workload);
        }
    }
}

#[test]
fn no_defense_fails_on_hammering_patterns() {
    let cfg = SimConfig::attack_bank(T_RH, ACTS);
    // S1-10/S3/S4 concentrate enough ACTs to flip at T_RH = 4,000.
    for attack in [WorkloadSpec::S1 { n: 10 }, WorkloadSpec::S3, WorkloadSpec::S4] {
        let r = run_pair(&cfg, &DefenseSpec::None, &attack);
        assert!(r.stats.bit_flips > 0, "expected flips under {}", r.workload);
    }
}

#[test]
fn graphene_is_refresh_free_on_normal_mix() {
    let cfg = SimConfig { accesses: 150_000, ..SimConfig::with_threshold(50_000, 150_000) };
    let r = run_pair(&cfg, &DefenseSpec::Graphene { t_rh: 50_000, k: 2 }, &WorkloadSpec::MixHigh);
    assert_eq!(r.stats.defense_refresh_commands, 0, "false positives on normal traffic");
    assert_eq!(r.stats.bit_flips, 0);
    assert!(r.slowdown.abs() < 1e-9, "slowdown {}", r.slowdown);
}

#[test]
fn twice_is_refresh_free_on_normal_mix() {
    let cfg = SimConfig { accesses: 150_000, ..SimConfig::with_threshold(50_000, 150_000) };
    let r = run_pair(&cfg, &DefenseSpec::Twice { t_rh: 50_000 }, &WorkloadSpec::MixHigh);
    assert_eq!(r.stats.defense_refresh_commands, 0);
}

#[test]
fn para_pays_constant_tax_on_normal_mix() {
    let cfg = SimConfig { accesses: 150_000, ..SimConfig::with_threshold(50_000, 150_000) };
    let r = run_pair(&cfg, &DefenseSpec::Para { p: 0.00145 }, &WorkloadSpec::MixHigh);
    assert!(r.stats.defense_refresh_commands > 0, "PARA must refresh probabilistically");
    let rate = r.stats.defense_refresh_commands as f64 / r.stats.activations as f64;
    assert!((rate - 0.00145).abs() < 0.0008, "rate {rate}");
}

#[test]
fn cbt_refreshes_in_bursts_graphene_in_pairs() {
    let cfg = SimConfig::attack_bank(T_RH, ACTS);
    let g = run_pair(&cfg, &DefenseSpec::Graphene { t_rh: T_RH, k: 2 }, &WorkloadSpec::S3);
    let c = run_pair(&cfg, &DefenseSpec::Cbt { t_rh: T_RH }, &WorkloadSpec::S3);
    let g_rows_per_cmd =
        g.stats.victim_rows_refreshed as f64 / g.stats.defense_refresh_commands.max(1) as f64;
    let c_rows_per_cmd =
        c.stats.victim_rows_refreshed as f64 / c.stats.defense_refresh_commands.max(1) as f64;
    assert!(g_rows_per_cmd <= 2.0, "Graphene refreshes ±1 per NRR");
    assert!(c_rows_per_cmd > 10.0, "CBT bursts whole subtrees, got {c_rows_per_cmd}");
    assert!(c.slowdown >= g.slowdown, "CBT's bursts must cost at least as much");
}

#[test]
fn full_system_runs_all_defenses_together() {
    // 64-bank system, one defense kind per run, verifying the controller's
    // bookkeeping stays coherent across banks.
    for defense in counter_based(50_000) {
        let mut mc = McBuilder::new(McConfig::micro2020()).defenses(&defense).build();
        let mut w = WorkloadSpec::MixBlend.build(64, 65_536, 9);
        let stats = mc.run(w.as_mut(), 60_000);
        assert_eq!(stats.accesses, 60_000);
        assert!(stats.activations > 0);
        assert!(mc.is_clean(), "{:?} flipped on benign traffic", defense.name());
    }
}

#[test]
fn fig7a_defeats_prohit_but_not_graphene() {
    // At T_RH = 1,000 the starved victims (x±5) accumulate their budget well
    // inside the attack, even though PRoHIT spends a refresh slot per tREFI.
    let cfg = SimConfig::attack_bank(1_000, 400_000);
    let prohit = run_pair(&cfg, &DefenseSpec::Prohit, &WorkloadSpec::Fig7a);
    let graphene =
        run_pair(&cfg, &DefenseSpec::Graphene { t_rh: 1_000, k: 2 }, &WorkloadSpec::Fig7a);
    assert!(prohit.stats.bit_flips > 0, "the Figure 7(a) pattern must defeat PRoHIT");
    assert!(prohit.stats.defense_refresh_commands > 0, "PRoHIT was actively refreshing");
    assert_eq!(graphene.stats.bit_flips, 0);
}

#[test]
fn fig7b_reduces_mrloc_to_para_level() {
    // With 16 distinct victims the 15-entry queue thrashes; at a weak base
    // probability MRLoc flips just like PARA would, while Graphene holds.
    let cfg = SimConfig::attack_bank(2_000, 200_000);
    let mrloc = run_pair(&cfg, &DefenseSpec::Mrloc { p: 0.0002 }, &WorkloadSpec::Fig7b);
    let graphene =
        run_pair(&cfg, &DefenseSpec::Graphene { t_rh: 2_000, k: 2 }, &WorkloadSpec::Fig7b);
    assert!(mrloc.stats.bit_flips > 0, "overflowed MRLoc at tiny p must flip");
    assert_eq!(graphene.stats.bit_flips, 0);
}
