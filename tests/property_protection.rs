//! Property-based integration tests: randomized adversaries against the
//! whole stack (controller + Graphene + fault oracle).

use graphene_repro::dram_model::fault::{DisturbanceModel, MuModel};
use graphene_repro::graphene_core::GrapheneConfig;
use graphene_repro::memctrl::{McBuilder, McConfig};
use graphene_repro::mitigations::GrapheneDefense;
use graphene_repro::workloads::{Access, Workload};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A randomized adversary: phases of flooding, concentrated double-sided
/// hammering, and row sweeps, with attacker-chosen phase lengths.
struct RandomAdversary {
    rng: StdRng,
    rows: u32,
    phase: u8,
    remaining: u32,
    targets: Vec<u32>,
    cursor: u64,
}

impl RandomAdversary {
    fn new(seed: u64, rows: u32) -> Self {
        RandomAdversary {
            rng: StdRng::seed_from_u64(seed),
            rows,
            phase: 0,
            remaining: 0,
            targets: vec![0],
            cursor: 0,
        }
    }
}

impl Workload for RandomAdversary {
    fn name(&self) -> String {
        "random-adversary".into()
    }

    fn next_access(&mut self) -> Access {
        if self.remaining == 0 {
            self.phase = self.rng.gen_range(0..3);
            self.remaining = self.rng.gen_range(100..5_000);
            let base = self.rng.gen_range(2..self.rows - 2);
            self.targets = match self.phase {
                0 => vec![base],                                           // single-sided
                1 => vec![base, base + 2],                                 // double-sided
                _ => (0..8).map(|i| (base + i * 7) % self.rows).collect(), // rotation
            };
        }
        self.remaining -= 1;
        self.cursor += 1;
        let row = if self.rng.gen_bool(0.15) {
            self.rng.gen_range(0..self.rows) // background noise
        } else {
            self.targets[(self.cursor % self.targets.len() as u64) as usize]
        };
        Access { bank: 0, row: graphene_repro::dram_model::RowId(row), gap: 0, stream: 0 }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever phase mix the adversary picks, Graphene + the controller
    /// never let a bit flip.
    #[test]
    fn graphene_protects_against_random_adversaries(seed in any::<u64>()) {
        let t_rh = 3_000u64;
        let model = DisturbanceModel { t_rh, mu: MuModel::Adjacent };
        let mut mc = McBuilder::new(McConfig::single_bank(8_192, Some(model)))
            .defenses_with(|_| {
                let cfg = GrapheneConfig::builder()
                    .row_hammer_threshold(t_rh)
                    .rows_per_bank(8_192)
                    .build()
                    .unwrap();
                Box::new(GrapheneDefense::from_config(&cfg).unwrap()) as _
            })
            .build();
        let mut adversary = RandomAdversary::new(seed, 8_192);
        let stats = mc.run(&mut adversary, 80_000);
        prop_assert_eq!(stats.bit_flips, 0);
    }

    /// The same adversaries flip bits when the bank is unprotected — i.e.
    /// the test above is not vacuous.
    #[test]
    fn adversaries_are_dangerous_without_protection(seed in 0u64..32) {
        let t_rh = 3_000u64;
        let model = DisturbanceModel { t_rh, mu: MuModel::Adjacent };
        let mut mc = McBuilder::new(McConfig::single_bank(8_192, Some(model))).build();
        let mut adversary = RandomAdversary::new(seed, 8_192);
        let stats = mc.run(&mut adversary, 80_000);
        // Not every random phase mix reaches T_RH on one row, but most do;
        // require success for a clear majority by checking this seed range
        // collectively is meaningful — assert at least the hammer phases
        // accumulated activations.
        prop_assert!(stats.activations > 10_000);
    }
}

#[test]
fn unprotected_baseline_flips_for_most_seeds() {
    let t_rh = 3_000u64;
    let mut flipped = 0;
    for seed in 0..8u64 {
        let model = DisturbanceModel { t_rh, mu: MuModel::Adjacent };
        let mut mc = McBuilder::new(McConfig::single_bank(8_192, Some(model))).build();
        let mut adversary = RandomAdversary::new(seed, 8_192);
        if mc.run(&mut adversary, 80_000).bit_flips > 0 {
            flipped += 1;
        }
    }
    assert!(flipped >= 4, "only {flipped}/8 adversaries flipped an unprotected bank");
}
