//! The TRRespass storyline (Frigo et al., S&P 2020 — the paper's
//! reference [16] and core motivation): in-DRAM TRR samplers stop the
//! classic single-/double-sided hammer but fall to many-sided patterns
//! that exceed their sampler capacity. Graphene, whose table is provisioned
//! from the worst-case ACT budget rather than a fixed sampler size, survives
//! every width.

use graphene_repro::dram_model::fault::{DisturbanceModel, FaultOracle, MuModel};
use graphene_repro::dram_model::{DramTiming, RefreshEngine};
use graphene_repro::graphene_core::GrapheneConfig;
use graphene_repro::mitigations::{GrapheneDefense, RowHammerDefense, TrrConfig, TrrSampler};
use graphene_repro::workloads::{NSidedAttack, Workload};

const T_RH: u64 = 2_000;
const ROWS: u32 = 65_536;

/// Drives `sides`-sided hammering around row 1000 through a defense with
/// auto-refresh and per-tREFI defense ticks; returns ground-truth flips.
fn hammer(defense: &mut dyn RowHammerDefense, sides: u32, acts: u64) -> u64 {
    let timing = DramTiming::ddr4_2400();
    let acts_per_tick = (timing.t_refi - timing.t_rfc) / timing.t_rc;
    let mut attack = NSidedAttack::new(1_000, sides, ROWS);
    let mut oracle = FaultOracle::new(DisturbanceModel { t_rh: T_RH, mu: MuModel::Adjacent }, ROWS);
    let mut auto = RefreshEngine::new(&timing, ROWS);
    for i in 0..acts {
        let now = i * timing.t_rc;
        oracle.refresh_rows(auto.catch_up(now));
        let a = attack.next_access();
        oracle.activate(a.row, now);
        let mut actions = defense.on_activation(a.row, now);
        if i % acts_per_tick == acts_per_tick - 1 {
            actions.extend(defense.on_refresh_tick(now));
        }
        for action in actions {
            oracle.refresh_rows(action.rows(ROWS));
        }
    }
    oracle.flips().len() as u64
}

#[test]
fn trr_stops_narrow_attacks() {
    // 1- and 2-sided: the sampler reliably sees the aggressors and its
    // per-tick refresh keeps the victims alive.
    for sides in [1u32, 2] {
        let mut trr = TrrSampler::new(TrrConfig::ddr4_typical(), 9);
        let flips = hammer(&mut trr, sides, 300_000);
        assert_eq!(flips, 0, "TRR must survive the {sides}-sided hammer");
    }
}

#[test]
fn many_sided_attack_defeats_trr() {
    // Beyond the sampler's capacity the rotation dilutes every slot and the
    // one-refresh-per-tick budget cannot cover all victims: TRRespass.
    let mut trr = TrrSampler::new(TrrConfig::ddr4_typical(), 9);
    let flips = hammer(&mut trr, 12, 300_000);
    assert!(flips > 0, "12-sided rotation must defeat the 4-slot sampler");
}

#[test]
fn graphene_survives_every_width() {
    for sides in [1u32, 2, 4, 8, 12, 16] {
        let cfg = GrapheneConfig::builder()
            .row_hammer_threshold(T_RH)
            .rows_per_bank(ROWS)
            .build()
            .unwrap();
        let mut graphene = GrapheneDefense::from_config(&cfg).unwrap();
        let flips = hammer(&mut graphene, sides, 300_000);
        assert_eq!(flips, 0, "Graphene must survive the {sides}-sided hammer");
    }
}

#[test]
fn trr_area_is_small_but_protection_is_not_the_point() {
    // TRR's appeal is its near-zero cost; the tests above show why cost was
    // never the issue. Sanity-check the area relation all the same.
    let trr = TrrSampler::new(TrrConfig::ddr4_typical(), 1);
    let cfg = GrapheneConfig::micro2020();
    let graphene = GrapheneDefense::from_config(&cfg).unwrap();
    assert!(trr.table_bits().total() < graphene.table_bits().total());
}
