//! Regression tests pinning the headline numbers of the paper to this
//! reproduction — if any of these breaks, the repo no longer reproduces
//! Graphene (MICRO 2020).

use graphene_repro::dram_model::fault::MuModel;
use graphene_repro::dram_model::DramTiming;
use graphene_repro::graphene_core::GrapheneConfig;
use graphene_repro::rh_analysis::security::{
    minimal_para_probability, para_window_failure, yearly_failure,
};
use graphene_repro::rh_analysis::worstcase::figure6_sweep;
use graphene_repro::rh_analysis::{AreaComparison, EnergyModel};

#[test]
fn table_i_w_is_1360k() {
    assert_eq!(DramTiming::ddr4_2400().max_acts_per_refresh_window(), 1_358_404);
}

#[test]
fn table_ii_k1_parameters() {
    let p = GrapheneConfig::builder().reset_window_divisor(1).build().unwrap().derive().unwrap();
    assert_eq!(p.tracking_threshold, 12_500);
    assert_eq!(p.n_entry, 108);
}

#[test]
fn section_iv_k2_table_is_2511_bits() {
    let p = GrapheneConfig::micro2020().derive().unwrap();
    assert_eq!(p.tracking_threshold, 8_333);
    assert_eq!(p.n_entry, 81);
    assert_eq!(p.entry_bits(), 31);
    assert_eq!(p.table_bits_per_bank(), 2_511);
}

#[test]
fn table_iv_ordering_and_magnitudes() {
    let c = AreaComparison::at_threshold(50_000);
    assert_eq!(c.graphene.total(), 2_511);
    assert!((c.cbt.total() as i64 - 3_824).unsigned_abs() < 50);
    assert!(c.twice_over_graphene() > 8.0);
}

#[test]
fn table_v_energy_fractions() {
    let m = EnergyModel::micro2020();
    assert!((m.graphene_dynamic_fraction() - 0.00032).abs() < 2e-5);
    assert!((m.graphene_static_fraction() - 0.00373).abs() < 2e-4);
}

#[test]
fn abstract_claim_worst_case_0_34_percent() {
    // "Even for the most adversarial memory access patterns, Graphene
    // increases refresh energy only by 0.34%."
    let k2 = &figure6_sweep(50_000, 2, 65_536)[1];
    assert!((k2.energy_overhead - 0.0034).abs() < 2e-4, "{}", k2.energy_overhead);
}

#[test]
fn section_v_a_para_p() {
    let w = DramTiming::ddr4_2400().max_acts_per_refresh_window();
    let p = minimal_para_probability(50_000, w, 64, 0.01);
    assert!((p - 0.00145).abs() < 1e-4, "computed p = {p}");
    let yearly = yearly_failure(para_window_failure(0.00145, 50_000, w), 64);
    assert!(yearly < 0.02);
}

#[test]
fn section_iii_d_pi_squared_over_6_bound() {
    let factor = MuModel::InverseSquare { radius: 1_000 }.factor();
    assert!(factor < std::f64::consts::PI.powi(2) / 6.0);
    assert!(factor > 1.64);
    // Table growth bounded by 1.64x.
    let base = GrapheneConfig::micro2020().derive().unwrap();
    let non_adj = GrapheneConfig::builder()
        .mu(MuModel::InverseSquare { radius: 1_000 })
        .build()
        .unwrap()
        .derive()
        .unwrap();
    let growth = non_adj.n_entry as f64 / base.n_entry as f64;
    assert!(growth <= 1.70, "growth {growth}");
}

#[test]
fn figure6_worst_case_bound_is_tight() {
    // The Figure 6 bound (k·⌊W/T⌋ NRRs per tREFW) is not loose: an attacker
    // rotating exactly ⌊W/T⌋ rows at full rate achieves ≥ 90 % of it.
    use graphene_repro::dram_model::RowId;
    use graphene_repro::graphene_core::Graphene;
    use graphene_repro::workloads::{Synthetic, Workload};

    let params = GrapheneConfig::micro2020().derive().unwrap();
    let n_rows = (params.acts_per_window / params.tracking_threshold) as u32;
    let mut graphene = Graphene::new(params);
    let mut attack = Synthetic::s1(n_rows, 65_536, 5);
    let t_rc = DramTiming::ddr4_2400().t_rc;

    let mut nrrs = 0u64;
    for i in 0..params.acts_per_window {
        let a = attack.next_access();
        if graphene.on_activation(RowId(a.row.0), i * t_rc).is_some() {
            nrrs += 1;
        }
    }
    let bound = params.acts_per_window / params.tracking_threshold;
    assert!(nrrs <= bound, "bound violated: {nrrs} > {bound}");
    assert!(nrrs as f64 >= 0.9 * bound as f64, "bound loose: achieved {nrrs} of {bound}");
}

#[test]
fn abstract_claim_15x_fewer_table_bits_than_twice() {
    // "about 15× fewer table bits than a state-of-the-art counter-based
    // scheme" — paper ratio 36,416 / 2,511 = 14.5. Our TWiCe provisioning
    // differs slightly; assert the order of magnitude band.
    let c = AreaComparison::at_threshold(50_000);
    let ratio = c.twice_over_graphene();
    assert!((8.0..30.0).contains(&ratio), "ratio {ratio}");
}
