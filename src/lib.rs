//! # graphene-repro
//!
//! Umbrella crate for the reproduction of *Graphene: Strong yet Lightweight
//! Row Hammer Protection* (MICRO 2020). It re-exports the workspace crates so
//! examples and integration tests can use a single dependency:
//!
//! * [`graphene_core`] — the Graphene mechanism itself.
//! * [`freq_elems`] — generic frequent-elements algorithms.
//! * [`dram_model`] — multi-generation DRAM timing/geometry (DDR4, DDR5,
//!   LPDDR4X, LPDDR5) and the Row Hammer fault oracle.
//! * [`memctrl`] — the memory-controller timing simulator.
//! * [`mitigations`] — PARA, PRoHIT, MRLoc, CBT, TWiCe and the defense trait.
//! * [`workloads`] — adversarial and SPEC-like workload generators.
//! * [`rh_analysis`] — area/energy/security analysis models.
//! * [`rh_sim`] — the end-to-end simulator used by the experiment harness.
//!
//! The most commonly composed entry points are re-exported at the top level:
//! the builder-based controller construction path ([`McBuilder`],
//! [`McConfig`], [`DefenseFactory`]), the generation API ([`Generation`],
//! [`RfmSpec`]), and the spec notation of the experiment harness
//! ([`DefenseSpec`], [`GenSpec`]).
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use dram_model;
pub use freq_elems;
pub use graphene_core;
pub use memctrl;
pub use mitigations;
pub use rh_analysis;
pub use rh_sim;
pub use workloads;

pub use dram_model::{DramTiming, Generation, RfmSpec};
pub use memctrl::{DefenseFactory, McBuilder, McConfig, MemoryController, RunStats};
pub use rh_sim::{DefenseSpec, GenSpec, SpecParseError, WorkloadSpec};
