//! The algorithmic substrate on its own: frequent-elements tracking.
//!
//! ```sh
//! cargo run --release --example stream_analytics
//! ```
//!
//! Graphene is "just" the Misra-Gries spillover summary pointed at a DRAM
//! command bus. This example uses the same `freq-elems` crate on a synthetic
//! Zipf-skewed event stream — the kind of heavy-hitter question (top talkers,
//! hot keys, popular pages) the algorithm family was designed for — and
//! verifies the guarantees the Row Hammer proof rests on.

use graphene_repro::freq_elems::{FrequencyEstimator, MisraGries, SpaceSaving, SpilloverSummary};
use graphene_repro::rh_analysis::TablePrinter;
use graphene_repro::workloads::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn main() {
    // A million events over 100K distinct keys, Zipf(1.05)-distributed.
    let n_events = 1_000_000u64;
    let zipf = Zipf::new(100_000, 1.05);
    let mut rng = StdRng::seed_from_u64(2026);

    let capacity = 16;
    let mut spillover = SpilloverSummary::new(capacity);
    let mut misra_gries = MisraGries::new(capacity);
    let mut space_saving = SpaceSaving::new(capacity);
    let mut actual: HashMap<usize, u64> = HashMap::new();

    for _ in 0..n_events {
        let key = zipf.sample(&mut rng);
        spillover.observe(key);
        misra_gries.observe(key);
        space_saving.observe(key);
        *actual.entry(key).or_insert(0) += 1;
    }

    let mut truth: Vec<(usize, u64)> = actual.iter().map(|(&k, &v)| (k, v)).collect();
    truth.sort_by_key(|e| std::cmp::Reverse(e.1));

    println!("Top-8 keys of a Zipf(1.05) stream, tracked with {capacity} counters:");
    println!();
    let mut table = TablePrinter::new(vec![
        "rank",
        "key",
        "actual",
        "spillover est",
        "misra-gries est",
        "space-saving est",
    ]);
    for (rank, &(key, count)) in truth.iter().take(8).enumerate() {
        table.row(vec![
            (rank + 1).to_string(),
            key.to_string(),
            count.to_string(),
            spillover.estimate(&key).to_string(),
            misra_gries.estimate(&key).to_string(),
            space_saving.estimate(&key).to_string(),
        ]);
    }
    table.print();

    // The guarantees in action.
    let bound = n_events / (capacity as u64 + 1);
    println!();
    println!("Guarantees (stream of {n_events}, {capacity} counters):");
    println!("  * spillover count = {} <= W/(m+1) = {bound}", spillover.spillover());
    for &(key, count) in truth.iter().take(8) {
        if count > bound {
            assert!(spillover.estimate(&key) >= count, "Lemma 1 violated");
            assert!(misra_gries.estimate(&key) > 0, "heavy key evicted");
        }
    }
    println!("  * every key above the bound is tracked, and the spillover summary");
    println!("    never under-estimates it (Lemmas 1 & 2 of the Graphene paper).");
}
