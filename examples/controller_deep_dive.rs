//! Controller deep dive: address mapping, request scheduling, trace replay.
//!
//! ```sh
//! cargo run --release --example controller_deep_dive
//! ```
//!
//! The parts of the memory-controller substrate the other examples use
//! implicitly, exercised head-on:
//!
//! 1. decode a flat physical address stream with the two mapping schemes
//!    and watch bank-conflict behaviour diverge;
//! 2. run the same trace under FCFS and the PAR-BS-like batched scheduler
//!    and compare row-hit rates and completion time;
//! 3. record a workload to a binary trace, replay it, and confirm the
//!    defense outcome is bit-for-bit identical.

use graphene_repro::dram_model::DramGeometry;
use graphene_repro::memctrl::{AddressMapper, MappingScheme, McBuilder, McConfig, SchedulerConfig};
use graphene_repro::rh_analysis::TablePrinter;
use graphene_repro::rh_sim::{run_pair, DefenseSpec, SimConfig, WorkloadSpec};
use graphene_repro::workloads::{Trace, Workload};

fn main() {
    // 1. Address mapping.
    println!("1. Address mapping: row-stride accesses under the two schemes");
    let mut table = TablePrinter::new(vec!["scheme", "distinct banks over 16 row-stride steps"]);
    for scheme in [MappingScheme::ChannelInterleaved, MappingScheme::BankXor] {
        let m = AddressMapper::new(DramGeometry::micro2020(), 1024, scheme);
        let row_stride = m.capacity() / 65_536; // one full row per step
        let banks: std::collections::HashSet<_> =
            (0..16u64).map(|i| m.decode(i * row_stride).coord).collect();
        table.row(vec![format!("{scheme:?}"), banks.len().to_string()]);
    }
    table.print();
    println!("Bank-XOR spreads row-strided streams that would otherwise camp on one bank.\n");

    // 2. Scheduling.
    println!("2. Scheduling: two interleaved row streams on one bank");
    let make_trace = || {
        struct PingPong(u64);
        impl Workload for PingPong {
            fn name(&self) -> String {
                "pingpong".into()
            }
            fn next_access(&mut self) -> graphene_repro::workloads::Access {
                self.0 += 1;
                graphene_repro::workloads::Access {
                    bank: 0,
                    row: graphene_repro::dram_model::RowId((self.0 % 2 * 512) as u32),
                    gap: 0,
                    stream: 0,
                }
            }
        }
        PingPong(0)
    };
    let mut table =
        TablePrinter::new(vec!["scheduler", "row-hit rate", "completion (us)", "reorders allowed"]);
    for (name, cfg) in
        [("FCFS", SchedulerConfig::fcfs()), ("PAR-BS-like", SchedulerConfig::par_bs_like())]
    {
        let mut mc = McBuilder::new(McConfig::single_bank(65_536, None)).build();
        let stats = mc.run_queued(&mut make_trace(), 50_000, cfg);
        table.row(vec![
            name.into(),
            format!("{:.1}%", stats.row_hit_rate() * 100.0),
            format!("{:.0}", stats.completion as f64 / 1e6),
            cfg.batch_size.to_string(),
        ]);
    }
    table.print();
    println!("Batching serves row hits together: more hits, earlier completion.\n");

    // 3. Trace record/replay.
    println!("3. Trace record/replay determinism");
    let cfg = SimConfig::attack_bank(5_000, 100_000);
    let live = run_pair(&cfg, &DefenseSpec::Graphene { t_rh: 5_000, k: 2 }, &WorkloadSpec::S4);
    let mut source = WorkloadSpec::S4.build(1, 65_536, cfg.seed);
    let trace = Trace::record(source.as_mut(), 100_000);
    let bytes = trace.to_bytes();
    let decoded = Trace::from_bytes(bytes.clone()).expect("roundtrip");
    println!("  recorded 100K accesses -> {} bytes on the wire", bytes.len());
    let graphene = DefenseSpec::Graphene { t_rh: 5_000, k: 2 };
    let mut mc = McBuilder::new(cfg.attack.clone()).defenses(&graphene).build();
    let mut replay = decoded.replay();
    let replayed = mc.run(&mut replay, 100_000);
    println!(
        "  live run:   {} victim refreshes, {} flips",
        live.stats.victim_rows_refreshed, live.stats.bit_flips
    );
    println!(
        "  replay run: {} victim refreshes, {} flips",
        replayed.victim_rows_refreshed, replayed.bit_flips
    );
    assert_eq!(replayed.victim_rows_refreshed, live.stats.victim_rows_refreshed);
    assert_eq!(replayed.activations, live.stats.activations);
    println!("  identical — traces make every experiment exactly reproducible.");
}
