//! Quickstart: protect one DRAM bank with Graphene.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds Graphene for a DDR4 bank at the TRRespass-reported Row Hammer
//! threshold (50K), derives the paper's parameters, hammers one row at full
//! speed, and shows that (1) the ground-truth fault oracle sees no bit flip
//! and (2) the victim refreshes that made that true.

use graphene_repro::dram_model::fault::DisturbanceModel;
use graphene_repro::dram_model::{DramTiming, FaultOracle, RefreshEngine, RowId};
use graphene_repro::graphene_core::{Graphene, GrapheneConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Configure: the paper's deployment point (DDR4-2400, T_RH = 50K,
    //    reset window tREFW/2).
    let config = GrapheneConfig::builder()
        .row_hammer_threshold(50_000)
        .timing(DramTiming::ddr4_2400())
        .reset_window_divisor(2)
        .build()?;
    let params = config.derive()?;
    println!("Derived Graphene parameters (paper Table II / Section IV):");
    println!("  tracking threshold T  = {}", params.tracking_threshold);
    println!("  table entries N_entry = {}", params.n_entry);
    println!("  table bits per bank   = {}", params.table_bits_per_bank());
    println!("  reset window          = {} ms", params.reset_window / 1_000_000_000);

    // 2. Attach Graphene to a bank and hammer one row as fast as DDR4 allows.
    let mut graphene = Graphene::from_config(&config)?;
    let timing = DramTiming::ddr4_2400();
    let mut oracle = FaultOracle::new(DisturbanceModel::ddr4_50k(), 65_536);
    let mut auto_refresh = RefreshEngine::new(&timing, 65_536);

    let aggressor = RowId(0x1010);
    let acts = 2_000_000u64; // ≈ 1.5 refresh windows of continuous hammering
    for i in 0..acts {
        let now = i * timing.t_rc;
        oracle.refresh_rows(auto_refresh.catch_up(now));
        let flips = oracle.activate(aggressor, now);
        assert!(flips.is_empty(), "Graphene failed: bit flip at ACT {i}");
        if let Some(nrr) = graphene.on_activation(aggressor, now) {
            oracle.refresh_rows(nrr.aggressor.victims(nrr.radius, 65_536));
        }
    }

    // 3. Report.
    let stats = graphene.stats();
    println!();
    println!("Hammered {} with {acts} ACTs:", aggressor);
    println!("  NRR commands issued    = {}", stats.nrrs_issued);
    println!("  victim rows refreshed  = {}", stats.victim_rows_requested);
    println!("  table resets (windows) = {}", stats.table_resets);
    println!("  ground-truth bit flips = {}", oracle.flips().len());
    assert!(oracle.is_clean());
    println!();
    println!("No bit flips: every victim was refreshed before T_RH accumulated.");
    Ok(())
}
