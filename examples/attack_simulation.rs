//! Attack simulation: every defense versus every adversarial pattern.
//!
//! ```sh
//! cargo run --release --example attack_simulation
//! ```
//!
//! Runs the paper's adversarial patterns (S1/S2/S3/S4 and the Figure 7
//! PRoHIT/MRLoc killers) against the full defense lineup on a single
//! saturated bank with the ground-truth fault oracle armed at a reduced
//! threshold (so attacks complete quickly), and prints who flipped bits,
//! who refreshed how much, and what it cost.

use graphene_repro::rh_analysis::report::pct;
use graphene_repro::rh_analysis::TablePrinter;
use graphene_repro::rh_sim::{run_pair, DefenseSpec, SimConfig, WorkloadSpec};

fn main() {
    let t_rh = 5_000; // reduced threshold: attacks land within ~1 s of sim
    let cfg = SimConfig::attack_bank(t_rh, 400_000);

    let defenses = [
        DefenseSpec::None,
        DefenseSpec::Para { p: 0.0145 }, // scaled for the reduced threshold
        DefenseSpec::Prohit,
        DefenseSpec::Mrloc { p: 0.0145 },
        DefenseSpec::Cbt { t_rh },
        DefenseSpec::Twice { t_rh },
        DefenseSpec::Graphene { t_rh, k: 2 },
    ];
    let attacks = [
        WorkloadSpec::S1 { n: 10 },
        WorkloadSpec::S1 { n: 20 },
        WorkloadSpec::S2 { n: 10 },
        WorkloadSpec::S3,
        WorkloadSpec::S4,
        WorkloadSpec::Fig7a,
        WorkloadSpec::Fig7b,
    ];

    println!("Adversarial patterns vs defenses (T_RH reduced to {t_rh}, 400K ACTs):");
    println!();
    let mut table = TablePrinter::new(vec![
        "pattern",
        "defense",
        "bit flips",
        "victim rows",
        "energy overhead",
        "slowdown",
    ]);
    for attack in &attacks {
        for defense in &defenses {
            let r = run_pair(&cfg, defense, attack);
            table.row(vec![
                r.workload.clone(),
                r.defense.clone(),
                r.stats.bit_flips.to_string(),
                r.stats.victim_rows_refreshed.to_string(),
                pct(r.energy_overhead),
                pct(r.slowdown.max(0.0)),
            ]);
        }
    }
    table.print();
    println!();
    println!(
        "Expected shape: 'None' flips on every pattern; the counter-based schemes \
         (CBT, TWiCe, Graphene) never flip; CBT pays with refresh bursts; \
         Graphene's overhead stays near zero."
    );
}
