//! Defense comparison on realistic (non-attack) traffic.
//!
//! ```sh
//! cargo run --release --example defense_comparison
//! ```
//!
//! Runs a 16-core SPEC-like mix over the 64-bank system with each defense
//! attached and prints the cost of protection when nobody is attacking —
//! the regime that dominates a deployment's lifetime. Counter-based schemes
//! should be literally free here (zero victim refreshes); probabilistic ones
//! pay their constant tax.

use graphene_repro::rh_analysis::report::pct;
use graphene_repro::rh_analysis::TablePrinter;
use graphene_repro::rh_sim::{run_pair, DefenseSpec, SimConfig, WorkloadSpec};

fn main() {
    let t_rh = 50_000;
    let cfg = SimConfig::micro2020(500_000);
    let defenses = [
        DefenseSpec::Para { p: 0.00145 },
        DefenseSpec::Cbt { t_rh },
        DefenseSpec::Twice { t_rh },
        DefenseSpec::Graphene { t_rh, k: 2 },
        DefenseSpec::Ideal { t_rh },
    ];

    println!("16-core SPEC-like mix (mix-high) on 4 channels x 16 banks, 500K accesses:");
    println!();
    let mut table = TablePrinter::new(vec![
        "defense",
        "victim refreshes",
        "refreshes / Macts",
        "energy overhead",
        "slowdown",
        "table bits/bank",
    ]);
    for defense in &defenses {
        let r = run_pair(&cfg, defense, &WorkloadSpec::MixHigh);
        let bits = defense.build(0, 65_536).table_bits().total();
        table.row(vec![
            r.defense.clone(),
            r.stats.defense_refresh_commands.to_string(),
            format!("{:.1}", r.refreshes_per_macts()),
            pct(r.energy_overhead),
            pct(r.slowdown.max(0.0)),
            bits.to_string(),
        ]);
    }
    table.print();
    println!();
    println!(
        "Expected shape (paper Figure 8a/c): Graphene, TWiCe and Ideal issue zero \
         victim refreshes — protection is free until someone actually attacks — \
         while PARA pays its probability on every ACT and CBT pays for tree resets."
    );
}
