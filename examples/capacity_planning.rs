//! Capacity planning: size Graphene for your DRAM generation.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```
//!
//! A deployment-facing tour of the sizing formulas: sweep the Row Hammer
//! threshold (technology scaling), the reset-window divisor `k` (area vs
//! worst-case refreshes), and the non-adjacent blast radius, printing the
//! table budget per bank/rank/system for each point.

use graphene_repro::dram_model::fault::MuModel;
use graphene_repro::graphene_core::GrapheneConfig;
use graphene_repro::rh_analysis::report::thousands;
use graphene_repro::rh_analysis::TablePrinter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("1. Technology scaling: table budget vs Row Hammer threshold (k = 2, ±1)");
    let mut table = TablePrinter::new(vec![
        "T_RH",
        "T",
        "N_entry",
        "bits/bank",
        "bits/rank (16)",
        "KB per 4-channel system",
    ]);
    for t_rh in [100_000u64, 50_000, 25_000, 12_500, 6_250, 3_125, 1_560] {
        let p = GrapheneConfig::builder().row_hammer_threshold(t_rh).build()?.derive()?;
        let system_kb = p.table_bits_per_rank(16) as f64 * 4.0 / 8.0 / 1024.0;
        table.row(vec![
            thousands(t_rh),
            thousands(p.tracking_threshold),
            p.n_entry.to_string(),
            thousands(p.table_bits_per_bank()),
            thousands(p.table_bits_per_rank(16)),
            format!("{system_kb:.1}"),
        ]);
    }
    table.print();

    println!();
    println!("2. Reset-window trade-off at T_RH = 50K: smaller tables vs more worst-case NRRs");
    let mut table = TablePrinter::new(vec!["k", "N_entry", "bits/bank", "worst NRR rows/tREFW"]);
    for k in 1..=8u32 {
        let p = GrapheneConfig::builder().reset_window_divisor(k).build()?.derive()?;
        table.row(vec![
            k.to_string(),
            p.n_entry.to_string(),
            thousands(p.table_bits_per_bank()),
            p.worst_case_victim_rows_per_refw().to_string(),
        ]);
    }
    table.print();

    println!();
    println!("3. Non-adjacent coverage at T_RH = 50K, k = 2");
    let mut table = TablePrinter::new(vec!["mu model", "radius", "factor", "N_entry", "bits/bank"]);
    for mu in [
        MuModel::Adjacent,
        MuModel::InverseSquare { radius: 2 },
        MuModel::InverseSquare { radius: 4 },
        MuModel::InverseSquare { radius: 8 },
        MuModel::Uniform { radius: 2 },
    ] {
        let p = GrapheneConfig::builder().mu(mu.clone()).build()?.derive()?;
        table.row(vec![
            format!("{mu:?}"),
            mu.radius().to_string(),
            format!("{:.3}", mu.factor()),
            p.n_entry.to_string(),
            thousands(p.table_bits_per_bank()),
        ]);
    }
    table.print();
    println!();
    println!(
        "Even the ±8 inverse-square model costs only ~1.6x the ±1 table \
         (the paper's π²/6 bound)."
    );
    Ok(())
}
