//! Offline stand-in for `serde`.
//!
//! This container has no network access and no crates-io cache, so the
//! workspace vendors minimal API-compatible stubs for its external
//! dependencies (see `vendor/README.md`). The repo uses serde only as
//! `#[derive(Serialize, Deserialize)]` markers — nothing constructs a
//! `Serializer`/`Deserializer` — so the traits are inert and the derives
//! (from the sibling `serde_derive` stub) expand to nothing.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

// Re-export the derive macros under the trait names, as the real crate does
// with its `derive` feature.
pub use serde_derive::{Deserialize, Serialize};
