//! Offline stand-in for `bytes` 1.x.
//!
//! Backs [`Bytes`]/[`BytesMut`] with a plain `Vec<u8>` (no refcounted
//! zero-copy slicing — nothing in this workspace needs it) and provides the
//! little-endian [`Buf`]/[`BufMut`] accessors the trace codec uses.

/// Read-side cursor operations, mirroring `bytes::Buf`.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes `dst.len()` bytes into `dst`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Consumes 2 bytes as a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Consumes 4 bytes as a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Consumes 8 bytes as a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

/// Write-side append operations, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a `u16` little-endian.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Immutable byte buffer with a consuming read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: bytes.to_vec(), pos: 0 }
    }

    /// Length of the unconsumed portion.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True if fully consumed (or empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the unconsumed portion into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// Growable byte buffer, frozen into [`Bytes`] when done.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with `capacity` reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_fields() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 14);
        assert_eq!(b.get_u16_le(), 0xBEEF);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from_static(b"ab");
        b.get_u32_le();
    }
}
