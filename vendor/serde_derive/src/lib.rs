//! Offline stand-in for `serde_derive`.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` — nothing
//! actually serializes (there is no `serde_json` and no hand-written
//! `Serializer`). The real derive would generate visitor boilerplate; here
//! the traits are inert markers (see the `serde` stub crate), so the derive
//! can expand to nothing at all. `attributes(serde)` is still declared so
//! any future `#[serde(...)]` field attribute parses.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
