//! Offline stand-in for `proptest` 1.x.
//!
//! Provides the subset this workspace's property tests use: the `proptest!`
//! macro over `arg in strategy` bindings, `prop_assert!`/`prop_assert_eq!`,
//! `ProptestConfig::with_cases`, integer/float range strategies, tuples,
//! `prop::collection::vec`, `prop::bool::ANY`, and `any::<T>()`.
//!
//! Unlike the real crate there is **no shrinking** and no persisted failure
//! corpus: each test runs `cases` deterministic pseudo-random samples
//! (seeded per case index, so failures reproduce across runs and machines).

use std::ops::Range;

pub use config::ProptestConfig;

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Why one generated case failed, mirroring
    /// `proptest::test_runner::TestCaseError`. `prop_assert!` returns the
    /// `Fail` variant; case bodies are `Result<(), TestCaseError>` so `?`
    /// works inside them.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The property does not hold for this input.
        Fail(String),
        /// The input should be discarded, not counted as a failure.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given explanation.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection (input filtered out) with the given explanation.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            }
        }
    }

    /// Per-case deterministic source of randomness.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Builds the generator for the `case`-th sample of a test.
        pub fn for_case(case: u64) -> Self {
            // Distinct, fixed seed per case: reproducible without storage.
            TestRng(StdRng::seed_from_u64(
                0xA076_1D64_78BD_642F ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ))
        }

        /// Raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            rand::Rng::next_u64(&mut self.0)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            rand::Rng::gen::<f64>(&mut self.0)
        }
    }
}

pub mod config {
    /// Run configuration: only the case count is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random samples to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` samples.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default (256) is overkill without shrinking; 64 keeps
            // debug-mode suites fast while still exercising variety.
            ProptestConfig { cases: 64 }
        }
    }
}

/// A generator of test inputs, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut test_runner::TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Strategy for any value of a `Arbitrary`-like type (`any::<T>()`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Mirrors `proptest::arbitrary::any`.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut test_runner::TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut test_runner::TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

/// Strategy modules re-exported as `prop::…` (the prelude's naming).
pub mod prop {
    pub mod collection {
        use super::super::{test_runner::TestRng, Strategy};
        use std::ops::Range;

        /// Strategy producing `Vec`s with lengths drawn from `len`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Mirrors `prop::collection::vec(element, size_range)`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.len.end - self.len.start).max(1) as u64;
                let n = self.len.start + (rng.next_u64() % span) as usize;
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    pub mod bool {
        use super::super::{test_runner::TestRng, Strategy};

        /// Strategy for a uniformly random `bool`.
        #[derive(Debug, Clone, Copy)]
        pub struct BoolAny;

        /// Mirrors `prop::bool::ANY`.
        pub const ANY: BoolAny = BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() >> 63 == 1
            }
        }
    }
}

pub mod prelude {
    pub use crate::config::ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, prop, prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Mirrors `prop_assert!`: fails the current case by returning
/// `Err(TestCaseError)` (the case body is a `Result`-returning closure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Mirrors `prop_assert_eq!`: fails the current case on inequality.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, "{:?} != {:?}", __l, __r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, "{:?} != {:?}: {}", __l, __r, format!($($fmt)*));
    }};
}

/// Mirrors `proptest! { … }`: expands each `fn name(arg in strategy, …)`
/// item into a `#[test]` running `cases` deterministic samples. Each case
/// body runs inside a `Result<(), TestCaseError>` closure, so `?` and
/// `prop_assert!` short-circuit the case like the real crate.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr)) => {};
    (@with ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..u64::from(__config.cases) {
                let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match __outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err(__e) => {
                        panic!("case {} of {}: {}", __case, stringify!($name), __e)
                    }
                }
            }
        }
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, f in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u16..48, 1..300)) {
            prop_assert!(!v.is_empty() && v.len() < 300);
            prop_assert!(v.iter().all(|&x| x < 48));
        }

        #[test]
        fn tuples_and_bools(pair in (0u32..9, prop::bool::ANY), s in any::<u64>()) {
            prop_assert!(pair.0 < 9);
            let _: bool = pair.1;
            let _ = s;
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> =
            (0..5).map(|c| crate::test_runner::TestRng::for_case(c).next_u64()).collect();
        let b: Vec<u64> =
            (0..5).map(|c| crate::test_runner::TestRng::for_case(c).next_u64()).collect();
        assert_eq!(a, b);
    }
}
