//! Offline stand-in for `rand` 0.8.
//!
//! Implements exactly the API surface this workspace uses — `Rng::gen_range`
//! over half-open/inclusive integer and `f64` ranges, `gen_bool`, `gen`,
//! `SeedableRng::seed_from_u64`, and `rngs::StdRng` — on top of a SplitMix64
//! generator. SplitMix64 passes BigCrush-level statistical tests for the
//! sample sizes used here; it is *not* the real `StdRng` (ChaCha12), so
//! absolute sequences differ from upstream, but all in-repo determinism
//! (same seed → same stream) and distribution properties hold.

use std::ops::{Range, RangeInclusive};

/// Types producible uniformly from one 64-bit draw (`Rng::gen`).
pub trait Standard: Sized {
    fn from_u64(bits: u64) -> Self;
}

impl Standard for u64 {
    fn from_u64(bits: u64) -> Self {
        bits
    }
}

impl Standard for u32 {
    fn from_u64(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl Standard for bool {
    fn from_u64(bits: u64) -> Self {
        bits >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_u64(bits: u64) -> Self {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types uniformly samplable from a range (`rand::distributions::uniform`).
///
/// The blanket [`SampleRange`] impls below hang off this trait, exactly like
/// the real crate's — that structure matters: it lets integer-literal ranges
/// (`0..3`) unify with the target type demanded by surrounding arithmetic
/// instead of falling back to `i32`.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    fn sample_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as i128 - low as i128) as u128;
                (low as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as i128 - low as i128) as u128 + 1;
                (low as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        low + f64::from_u64(rng.next_u64()) * (high - low)
    }
    fn sample_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        Self::sample_half_open(low, high, rng)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_inclusive(start, end, rng)
    }
}

/// The subset of `rand::Rng` this workspace uses.
pub trait Rng {
    /// Next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// True with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::from_u64(self.next_u64()) < p
    }

    /// Uniform sample of the full domain of `T` (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bits = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bits[..chunk.len()]);
        }
    }
}

/// The subset of `rand::SeedableRng` this workspace uses.
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// SplitMix64-backed replacement for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood — OOPSLA 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0usize..=3);
            assert!(y <= 3);
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
