//! Offline stand-in for `criterion` 0.5.
//!
//! Implements the group/`bench_function` subset used by this workspace's
//! benches. Measurement is a simple calibrated wall-clock loop (no outlier
//! rejection, no HTML reports); results print as `ns/iter` plus derived
//! element throughput when configured. Good enough to compare orders of
//! magnitude; the `perf_snapshot` bin is the canonical perf artifact.

use std::time::Instant;

pub use std::hint::black_box;

/// How [`Bencher::iter_batched`] sizes its setup batches (ignored here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Mirrors `BenchmarkId::from_parameter`.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }

    /// Mirrors `BenchmarkId::new`.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Measures one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, auto-scaling the iteration count to ~0.2 s.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until it takes at least ~20 ms.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed.as_millis() >= 20 || n >= 1 << 30 {
                // One measured pass at 10× the calibration batch (capped).
                let runs = (n * 10).min(1 << 32);
                let start = Instant::now();
                for _ in 0..runs {
                    black_box(routine());
                }
                self.ns_per_iter = start.elapsed().as_nanos() as f64 / runs as f64;
                return;
            }
            n = n.saturating_mul(u64::from(elapsed.as_millis() < 2) * 9 + 2);
        }
    }

    /// Times `routine` over inputs produced by `setup` (setup excluded from
    /// the measurement only at batch granularity, like the real crate's
    /// `PerIteration` mode approximation).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total_ns = 0u128;
        let mut runs = 0u64;
        while total_ns < 200_000_000 && runs < 1_000_000 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total_ns += start.elapsed().as_nanos();
            runs += 1;
        }
        self.ns_per_iter = total_ns as f64 / runs.max(1) as f64;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Sets the sample count (accepted for API compatibility; unused).
    pub fn sample_size(&mut self, _n: usize) {}

    /// Runs one benchmark and prints its timing.
    pub fn bench_function<Id: std::fmt::Display, F>(&mut self, id: Id, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        let ns = bencher.ns_per_iter;
        match self.throughput {
            Some(Throughput::Elements(n)) if ns > 0.0 => {
                let rate = n as f64 * 1e9 / ns;
                println!("{}/{:<24} {:>12.1} ns/iter {:>14.0} elem/s", self.name, id, ns, rate);
            }
            Some(Throughput::Bytes(n)) if ns > 0.0 => {
                let rate = n as f64 * 1e9 / ns;
                println!("{}/{:<24} {:>12.1} ns/iter {:>14.0} B/s", self.name, id, ns, rate);
            }
            _ => println!("{}/{:<24} {:>12.1} ns/iter", self.name, id, ns),
        }
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts CLI arguments for compatibility (all ignored).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }
}

/// Mirrors `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirrors `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(1));
        g.sample_size(10);
        g.bench_function(BenchmarkId::from_parameter("noop"), |b| b.iter(|| black_box(1u64 + 1)));
        g.finish();
    }
}
