//! Row-buffer page policies.

use serde::{Deserialize, Serialize};

/// When the controller closes (precharges) an open row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PagePolicy {
    /// Keep the row open until a conflicting access arrives.
    Open,
    /// Precharge immediately after every access.
    Closed,
    /// The paper's policy (Kaseridis et al., MICRO 2011): keep the row open
    /// for a small number of row hits, then auto-precharge — capturing
    /// short-term spatial locality without open-page conflict penalties.
    MinimalistOpen {
        /// Row hits allowed before the auto-precharge (4 in the original).
        max_hits: u32,
    },
}

impl PagePolicy {
    /// The paper's configuration.
    pub fn minimalist_open() -> Self {
        PagePolicy::MinimalistOpen { max_hits: 4 }
    }

    /// True if a row that has served `hits` accesses should be auto-closed.
    pub fn should_close(&self, hits: u32) -> bool {
        match *self {
            PagePolicy::Open => false,
            PagePolicy::Closed => true,
            PagePolicy::MinimalistOpen { max_hits } => hits >= max_hits,
        }
    }
}

impl Default for PagePolicy {
    fn default() -> Self {
        Self::minimalist_open()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_never_closes() {
        assert!(!PagePolicy::Open.should_close(1_000_000));
    }

    #[test]
    fn closed_always_closes() {
        assert!(PagePolicy::Closed.should_close(1));
    }

    #[test]
    fn minimalist_closes_after_max_hits() {
        let p = PagePolicy::minimalist_open();
        assert!(!p.should_close(3));
        assert!(p.should_close(4));
    }
}
