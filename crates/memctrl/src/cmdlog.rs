//! Command logging and protocol checking.
//!
//! The bank FSM *should* never violate its own constraints — but a timing
//! simulator that silently breaks them produces beautiful wrong numbers.
//! [`CommandLog`] records every ACT/REF/victim-refresh the controller issues
//! (with the exact command slot, not the request time), and
//! [`ProtocolChecker`] replays the log against the JEDEC rules the model
//! claims to enforce:
//!
//! * consecutive ACTs to the same bank are at least `tRC` apart;
//! * no command overlaps a refresh blackout (`tRFC` after a REF starts);
//! * periodic REFs keep up with `tREFI` on average (no starvation).
//!
//! The integration tests run randomized workloads with the log attached and
//! assert zero violations — a regression net under every timing change.

use dram_model::timing::{DramTiming, Picoseconds};
use serde::{Deserialize, Serialize};
use telemetry::json::JsonValue;

/// One logged controller command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum LoggedCommand {
    /// Row activation (the ACT slot time).
    Activate {
        /// Activated row.
        row: u32,
    },
    /// Periodic refresh (start of the tRFC blackout).
    Refresh,
    /// Defense-requested victim refresh burst.
    VictimRefresh {
        /// Rows refreshed by the burst.
        rows: u64,
    },
}

/// A command with its bank and issue time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommandRecord {
    /// Flattened bank index.
    pub bank: u16,
    /// Issue time of the command slot (ps).
    pub at: Picoseconds,
    /// The command.
    pub cmd: LoggedCommand,
}

/// An append-only command log (optionally bounded to the most recent N).
#[derive(Debug, Clone, Default)]
pub struct CommandLog {
    records: Vec<CommandRecord>,
    capacity: Option<usize>,
    dropped: u64,
}

impl CommandLog {
    /// An unbounded log (tests, short runs).
    pub fn unbounded() -> Self {
        CommandLog::default()
    }

    /// A log keeping only the most recent `capacity` records.
    pub fn bounded(capacity: usize) -> Self {
        CommandLog { records: Vec::with_capacity(capacity), capacity: Some(capacity), dropped: 0 }
    }

    /// Appends a record.
    pub fn push(&mut self, record: CommandRecord) {
        if let Some(cap) = self.capacity {
            if self.records.len() == cap {
                self.records.remove(0);
                self.dropped += 1;
            }
        }
        self.records.push(record);
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> &[CommandRecord] {
        &self.records
    }

    /// Records discarded by the bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Renders the log as JSONL: a header line
    /// `{"schema":"rh-cmdlog","version":1,"dropped":N}` followed by one
    /// record per line, e.g. `{"bank":0,"at":45000,"cmd":"ACT","row":7}`.
    /// Same hand-rolled JSON dialect as the telemetry snapshots, so the two
    /// streams share downstream tooling.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let header = JsonValue::Obj(vec![
            ("schema".into(), JsonValue::Str("rh-cmdlog".into())),
            ("version".into(), JsonValue::U64(1)),
            ("dropped".into(), JsonValue::U64(self.dropped)),
        ]);
        out.push_str(&header.to_string());
        out.push('\n');
        for r in &self.records {
            let mut fields = vec![
                ("bank".into(), JsonValue::U64(u64::from(r.bank))),
                ("at".into(), JsonValue::U64(r.at)),
            ];
            match r.cmd {
                LoggedCommand::Activate { row } => {
                    fields.push(("cmd".into(), JsonValue::Str("ACT".into())));
                    fields.push(("row".into(), JsonValue::U64(u64::from(row))));
                }
                LoggedCommand::Refresh => {
                    fields.push(("cmd".into(), JsonValue::Str("REF".into())));
                }
                LoggedCommand::VictimRefresh { rows } => {
                    fields.push(("cmd".into(), JsonValue::Str("VREF".into())));
                    fields.push(("rows".into(), JsonValue::U64(rows)));
                }
            }
            out.push_str(&JsonValue::Obj(fields).to_string());
            out.push('\n');
        }
        out
    }

    /// Writes [`to_jsonl`](Self::to_jsonl) to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn export_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }
}

/// A protocol violation found by the checker.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolViolation {
    /// Two ACTs to one bank closer than `tRC`.
    ActSpacing {
        /// The bank.
        bank: u16,
        /// Earlier ACT time.
        first: Picoseconds,
        /// Later ACT time.
        second: Picoseconds,
    },
    /// A command issued inside a refresh blackout.
    CommandDuringRefresh {
        /// The bank.
        bank: u16,
        /// REF start.
        ref_at: Picoseconds,
        /// Offending command time.
        cmd_at: Picoseconds,
    },
}

impl std::fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolViolation::ActSpacing { bank, first, second } => {
                write!(f, "bank {bank}: ACTs at {first} and {second} ps violate tRC")
            }
            ProtocolViolation::CommandDuringRefresh { bank, ref_at, cmd_at } => write!(
                f,
                "bank {bank}: command at {cmd_at} ps inside refresh blackout starting {ref_at}"
            ),
        }
    }
}

/// Replays a [`CommandLog`] against the timing rules.
#[derive(Debug, Clone, Copy)]
pub struct ProtocolChecker {
    timing: DramTiming,
}

impl ProtocolChecker {
    /// A checker for the given timing set.
    pub fn new(timing: DramTiming) -> Self {
        ProtocolChecker { timing }
    }

    /// Checks the log, returning every violation found (empty = clean).
    ///
    /// Records may interleave across banks but must be time-ordered per
    /// bank (which the controller guarantees).
    pub fn check(&self, log: &CommandLog) -> Vec<ProtocolViolation> {
        let mut violations = Vec::new();
        let banks = log.records().iter().map(|r| r.bank).max().map(|b| b as usize + 1).unwrap_or(0);
        let mut last_act: Vec<Option<Picoseconds>> = vec![None; banks];
        let mut ref_until: Vec<Picoseconds> = vec![0; banks];

        for r in log.records() {
            let b = r.bank as usize;
            match r.cmd {
                LoggedCommand::Activate { .. } => {
                    if let Some(last) = last_act[b] {
                        if r.at < last + self.timing.t_rc {
                            violations.push(ProtocolViolation::ActSpacing {
                                bank: r.bank,
                                first: last,
                                second: r.at,
                            });
                        }
                    }
                    if r.at < ref_until[b] {
                        violations.push(ProtocolViolation::CommandDuringRefresh {
                            bank: r.bank,
                            ref_at: ref_until[b] - self.timing.t_rfc,
                            cmd_at: r.at,
                        });
                    }
                    last_act[b] = Some(r.at);
                }
                LoggedCommand::Refresh => {
                    ref_until[b] = r.at + self.timing.t_rfc;
                }
                LoggedCommand::VictimRefresh { .. } => {
                    if r.at < ref_until[b] {
                        violations.push(ProtocolViolation::CommandDuringRefresh {
                            bank: r.bank,
                            ref_at: ref_until[b] - self.timing.t_rfc,
                            cmd_at: r.at,
                        });
                    }
                }
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn act(bank: u16, at: u64) -> CommandRecord {
        CommandRecord { bank, at, cmd: LoggedCommand::Activate { row: 1 } }
    }

    #[test]
    fn clean_log_passes() {
        let mut log = CommandLog::unbounded();
        log.push(act(0, 0));
        log.push(act(0, 45_000));
        log.push(act(1, 1_000)); // other bank: independent
        let v = ProtocolChecker::new(DramTiming::ddr4_2400()).check(&log);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn act_spacing_violation_detected() {
        let mut log = CommandLog::unbounded();
        log.push(act(0, 0));
        log.push(act(0, 44_999));
        let v = ProtocolChecker::new(DramTiming::ddr4_2400()).check(&log);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], ProtocolViolation::ActSpacing { bank: 0, .. }));
    }

    #[test]
    fn command_during_refresh_detected() {
        let mut log = CommandLog::unbounded();
        log.push(CommandRecord { bank: 0, at: 0, cmd: LoggedCommand::Refresh });
        log.push(act(0, 100_000)); // inside the 350 ns blackout
        let v = ProtocolChecker::new(DramTiming::ddr4_2400()).check(&log);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], ProtocolViolation::CommandDuringRefresh { .. }));
    }

    #[test]
    fn bounded_log_drops_oldest() {
        let mut log = CommandLog::bounded(2);
        log.push(act(0, 0));
        log.push(act(0, 1));
        log.push(act(0, 2));
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 1);
        assert_eq!(log.records()[0].at, 1);
    }

    #[test]
    fn jsonl_export_round_trips_through_parser() {
        let mut log = CommandLog::bounded(2);
        log.push(act(0, 0));
        log.push(CommandRecord { bank: 1, at: 50, cmd: LoggedCommand::Refresh });
        log.push(CommandRecord { bank: 2, at: 99, cmd: LoggedCommand::VictimRefresh { rows: 4 } });
        let text = log.to_jsonl();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 retained records");
        let header = telemetry::json::parse(lines[0]).unwrap();
        assert_eq!(header.get("schema").and_then(JsonValue::as_str), Some("rh-cmdlog"));
        assert_eq!(header.get("dropped").and_then(JsonValue::as_u64), Some(1));
        let vref = telemetry::json::parse(lines[2]).unwrap();
        assert_eq!(vref.get("cmd").and_then(JsonValue::as_str), Some("VREF"));
        assert_eq!(vref.get("rows").and_then(JsonValue::as_u64), Some(4));
        assert_eq!(vref.get("at").and_then(JsonValue::as_u64), Some(99));
    }

    #[test]
    fn violation_display_is_informative() {
        let v = ProtocolViolation::ActSpacing { bank: 3, first: 10, second: 20 };
        assert!(v.to_string().contains("bank 3"));
    }
}
