//! Request scheduling: FR-FCFS with PAR-BS-style batching.
//!
//! The paper's simulated controller uses PAR-BS scheduling (Table III). The
//! essential behaviours it contributes to this evaluation are (1) row-hit
//! reordering, which sets the baseline row-buffer locality the page policy
//! sees, and (2) batch-bounded fairness, which prevents one stream's row
//! hits from starving another indefinitely. This module implements both at
//! the bank level:
//!
//! * requests enter a per-bank queue stamped with their arrival time;
//! * the scheduler forms a *batch* of the `batch_size` oldest requests;
//! * within the batch, requests hitting the currently open row are served
//!   first (FR); ties and non-hits go in arrival order (FCFS);
//! * a new batch forms only when the current batch drains — the marking
//!   mechanism of PAR-BS collapsed to a single bank.

use std::collections::VecDeque;

use dram_model::geometry::RowId;
use dram_model::timing::Picoseconds;
use serde::{Deserialize, Serialize};

/// Scheduler policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Maximum requests per batch (PAR-BS "marking cap"). 1 = plain FCFS.
    pub batch_size: usize,
    /// Queue capacity per bank; arrivals beyond it apply back-pressure in
    /// the driving loop.
    pub queue_depth: usize,
}

impl SchedulerConfig {
    /// The paper-like default: batches of 8, 32-deep queues.
    pub fn par_bs_like() -> Self {
        SchedulerConfig { batch_size: 8, queue_depth: 32 }
    }

    /// Degenerates to first-come-first-served.
    pub fn fcfs() -> Self {
        SchedulerConfig { batch_size: 1, queue_depth: 32 }
    }
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self::par_bs_like()
    }
}

/// One queued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueuedRequest {
    /// Target row.
    pub row: RowId,
    /// Arrival time at the controller (ps).
    pub arrival: Picoseconds,
    /// Originating stream (core) id.
    pub stream: u16,
}

/// Per-bank request queue with batched FR-FCFS selection.
///
/// # Example
///
/// ```
/// use dram_model::RowId;
/// use memctrl::scheduler::{BankQueue, SchedulerConfig};
///
/// let mut q = BankQueue::new(SchedulerConfig::par_bs_like());
/// q.push(RowId(1), 0, 0).unwrap();
/// q.push(RowId(2), 10, 0).unwrap();
/// q.push(RowId(1), 20, 0).unwrap();
/// // With row 1 open, the second row-1 request is served before row 2.
/// assert_eq!(q.pop_next(Some(RowId(1))).unwrap().row, RowId(1));
/// assert_eq!(q.pop_next(Some(RowId(1))).unwrap().row, RowId(1));
/// assert_eq!(q.pop_next(Some(RowId(1))).unwrap().row, RowId(2));
/// ```
#[derive(Debug, Clone)]
pub struct BankQueue {
    config: SchedulerConfig,
    queue: VecDeque<QueuedRequest>,
    /// Requests remaining in the current batch (indices are logical: the
    /// batch is always the first `batch_left` queue slots' *original* set,
    /// tracked by count since served requests are removed).
    batch_left: usize,
    /// Scheduling decisions that reordered past an older request.
    reorders: u64,
}

impl BankQueue {
    /// An empty queue.
    ///
    /// # Panics
    ///
    /// Panics on a config that cannot form batches. Runs driven through
    /// [`MemoryController::try_run_queued`](crate::MemoryController::try_run_queued)
    /// surface this as [`McError::InvalidScheduler`](crate::McError) instead
    /// — these asserts only fire on direct construction.
    pub fn new(config: SchedulerConfig) -> Self {
        assert!(config.batch_size >= 1, "batch size must be at least 1");
        assert!(config.queue_depth >= config.batch_size, "queue must hold a batch");
        BankQueue { config, queue: VecDeque::new(), batch_left: 0, reorders: 0 }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no request is waiting.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// True when another arrival would exceed the configured depth.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.config.queue_depth
    }

    /// Times the scheduler served a younger row-hit over an older request.
    pub fn reorders(&self) -> u64 {
        self.reorders
    }

    /// Enqueues a request.
    ///
    /// # Errors
    ///
    /// Returns the request back if the queue is full (caller applies
    /// back-pressure).
    pub fn push(
        &mut self,
        row: RowId,
        arrival: Picoseconds,
        stream: u16,
    ) -> Result<(), QueuedRequest> {
        let req = QueuedRequest { row, arrival, stream };
        if self.is_full() {
            return Err(req);
        }
        self.queue.push_back(req);
        Ok(())
    }

    /// Picks and removes the next request to serve given the bank's open
    /// row, or `None` if the queue is empty.
    pub fn pop_next(&mut self, open_row: Option<RowId>) -> Option<QueuedRequest> {
        if self.queue.is_empty() {
            return None;
        }
        if self.batch_left == 0 {
            self.batch_left = self.queue.len().min(self.config.batch_size);
        }
        let window = self.batch_left.min(self.queue.len());
        // First-ready: oldest row-hit within the batch window.
        let pick =
            open_row.and_then(|open| (0..window).find(|&i| self.queue[i].row == open)).unwrap_or(0);
        if pick > 0 {
            self.reorders += 1;
        }
        self.batch_left -= 1;
        self.queue.remove(pick)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req_rows(q: &mut BankQueue, open: Option<RowId>) -> Vec<u32> {
        let mut out = Vec::new();
        while let Some(r) = q.pop_next(open) {
            out.push(r.row.0);
        }
        out
    }

    #[test]
    fn fcfs_config_preserves_arrival_order() {
        let mut q = BankQueue::new(SchedulerConfig::fcfs());
        for (i, row) in [5u32, 1, 5, 2].iter().enumerate() {
            q.push(RowId(*row), i as u64, 0).unwrap();
        }
        assert_eq!(req_rows(&mut q, Some(RowId(5))), vec![5, 1, 5, 2]);
        assert_eq!(q.reorders(), 0);
    }

    #[test]
    fn row_hits_jump_ahead_within_batch() {
        let mut q = BankQueue::new(SchedulerConfig { batch_size: 4, queue_depth: 8 });
        for (i, row) in [1u32, 2, 3, 2].iter().enumerate() {
            q.push(RowId(*row), i as u64, 0).unwrap();
        }
        // Open row 2: both row-2 requests served before rows 1 and 3.
        assert_eq!(req_rows(&mut q, Some(RowId(2))), vec![2, 2, 1, 3]);
    }

    #[test]
    fn batch_boundary_limits_starvation() {
        // batch_size 2: a stream of row-9 hits cannot starve the old row-1
        // request beyond its batch.
        let mut q = BankQueue::new(SchedulerConfig { batch_size: 2, queue_depth: 16 });
        q.push(RowId(1), 0, 0).unwrap();
        for i in 1..6u64 {
            q.push(RowId(9), i, 0).unwrap();
        }
        let first_batch =
            [q.pop_next(Some(RowId(9))).unwrap(), q.pop_next(Some(RowId(9))).unwrap()];
        // Batch = {row1, row9}: the hit goes first, but row 1 drains before
        // any request of the next batch.
        assert_eq!(first_batch[0].row, RowId(9));
        assert_eq!(first_batch[1].row, RowId(1));
    }

    #[test]
    fn backpressure_when_full() {
        let mut q = BankQueue::new(SchedulerConfig { batch_size: 1, queue_depth: 2 });
        q.push(RowId(1), 0, 0).unwrap();
        q.push(RowId(2), 1, 0).unwrap();
        let rejected = q.push(RowId(3), 2, 0).unwrap_err();
        assert_eq!(rejected.row, RowId(3));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn empty_queue_pops_none() {
        let mut q = BankQueue::new(SchedulerConfig::default());
        assert!(q.pop_next(None).is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn reorders_counted() {
        let mut q = BankQueue::new(SchedulerConfig { batch_size: 4, queue_depth: 8 });
        q.push(RowId(1), 0, 0).unwrap();
        q.push(RowId(7), 1, 0).unwrap();
        q.pop_next(Some(RowId(7))).unwrap();
        assert_eq!(q.reorders(), 1);
    }

    #[test]
    #[should_panic(expected = "batch size must be at least 1")]
    fn zero_batch_rejected() {
        let _ = BankQueue::new(SchedulerConfig { batch_size: 0, queue_depth: 4 });
    }
}
