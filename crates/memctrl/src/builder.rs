//! Typed construction for single-shard and system controllers.
//!
//! [`McBuilder`] replaces the old positional `MemoryController::new(...)`
//! constructor plus post-hoc `enable_command_log`/`attach_telemetry`
//! setters, which could not express the sharded configuration space
//! (mapping policy, per-shard telemetry, audit wrapping, reorder depth).
//! One builder serves both targets:
//!
//! * [`McBuilder::build`] — a single [`MemoryController`] owning the whole
//!   geometry, the legacy semantics;
//! * [`McBuilder::build_system`] — a [`SystemController`] with one shard
//!   per channel, each owning its ranks' banks, defenses, refresh engines,
//!   and oracle state.
//!
//! Defense construction funnels through [`DefenseFactory`], so simulation
//! drivers, benchmarks, and audited runs all build defenses from one spec
//! instead of re-plumbing per-bank seeds at every call site. Shard
//! defenses are built with the **global** flat bank index
//! (`channel × banks_per_channel + local`), so a sharded system seeds
//! bit-identically to a whole-system controller over the same banks.

use faultsim::FaultPlan;
use mitigations::{NoDefense, RowHammerDefense};

use crate::cmdlog::CommandLog;
use crate::config::McConfig;
use crate::controller::{McBuildError, MemoryController};
use crate::mapping::MappingPolicy;
use crate::system::SystemController;
use crate::tap::TelemetryTap;

/// Builds one per-bank defense instance.
///
/// The single construction interface shared by the simulator, benchmarks,
/// and the sharded path. `bank` is the global flat bank index (use it to
/// seed RNG-based defenses distinctly); `audited` asks the factory to wrap
/// the defense in its ground-truth audit shell, whatever that means for the
/// implementing spec.
///
/// Any `Fn(usize) -> Box<dyn RowHammerDefense + Send>` closure is a
/// `DefenseFactory` that ignores `rows_per_bank` and `audited`.
pub trait DefenseFactory {
    /// Builds the defense for global bank index `bank`.
    fn build_defense(
        &self,
        bank: usize,
        rows_per_bank: u32,
        audited: bool,
    ) -> Box<dyn RowHammerDefense + Send>;

    /// Builds one defense *per bank* for a contiguous span of `banks` banks
    /// starting at global index `first_bank`, when the spec's tracker shares
    /// state across banks (ABACuS's single all-bank counter table). Return
    /// `None` — the default — to keep the strictly per-bank
    /// [`build_defense`](Self::build_defense) path.
    ///
    /// The span is one controller's worth of banks: the whole geometry for
    /// [`McBuilder::build`], one channel for
    /// [`McBuilder::build_system`]. Sharing therefore never crosses a shard
    /// boundary, which keeps sharded execution deterministic (each shard
    /// serializes its own activations) and lets shards checkpoint
    /// independently. A `Some` return must hold exactly `banks` boxes, in
    /// bank order.
    fn build_all_bank(
        &self,
        first_bank: usize,
        banks: u32,
        rows_per_bank: u32,
        audited: bool,
    ) -> Option<Vec<Box<dyn RowHammerDefense + Send>>> {
        let _ = (first_bank, banks, rows_per_bank, audited);
        None
    }
}

impl<F> DefenseFactory for F
where
    F: Fn(usize) -> Box<dyn RowHammerDefense + Send>,
{
    fn build_defense(
        &self,
        bank: usize,
        _rows_per_bank: u32,
        _audited: bool,
    ) -> Box<dyn RowHammerDefense + Send> {
        self(bank)
    }
}

/// Per-shard telemetry factory: called with `(channel, global bank offset)`
/// for each shard of a system build.
type ShardTapFactory<'a> = Box<dyn FnMut(u8, u16) -> Option<TelemetryTap> + 'a>;

/// Where the builder gets its per-bank defenses from.
enum DefenseSource<'a> {
    /// No defense configured: every bank gets [`NoDefense`].
    None,
    /// A shared spec-style factory (borrowed, so one spec can build many
    /// controllers in a sweep).
    Factory(&'a dyn DefenseFactory),
    /// A stateful closure, for call sites that capture mutable state.
    Closure(Box<dyn FnMut(usize) -> Box<dyn RowHammerDefense + Send> + 'a>),
}

/// Typed builder for [`MemoryController`] and [`SystemController`].
///
/// # Example
///
/// ```
/// use memctrl::{mapping::MappingPolicy, McBuilder, McConfig};
/// use mitigations::Para;
///
/// let mut system = McBuilder::new(McConfig::micro2020_no_oracle())
///     .mapping(MappingPolicy::BankInterleaved)
///     .defenses_with(|bank| Box::new(Para::new(0.001, bank as u64)))
///     .build_system();
/// assert_eq!(system.shards().len(), 4);
/// ```
pub struct McBuilder<'a> {
    config: McConfig,
    policy: MappingPolicy,
    source: DefenseSource<'a>,
    audit: bool,
    command_log: Option<CommandLog>,
    telemetry: Option<TelemetryTap>,
    per_shard_telemetry: Option<ShardTapFactory<'a>>,
    reorder_depth: usize,
    faults: Option<FaultPlan>,
}

impl std::fmt::Debug for McBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("McBuilder")
            .field("geometry", &self.config.geometry)
            .field("policy", &self.policy)
            .field("audit", &self.audit)
            .field("reorder_depth", &self.reorder_depth)
            .finish()
    }
}

impl<'a> McBuilder<'a> {
    /// Default bound on each channel's reorder buffer in the batched path.
    pub const DEFAULT_REORDER_DEPTH: usize = 64;

    /// Starts a builder over `config`'s geometry and timing.
    pub fn new(config: McConfig) -> Self {
        McBuilder {
            config,
            policy: MappingPolicy::default(),
            source: DefenseSource::None,
            audit: false,
            command_log: None,
            telemetry: None,
            per_shard_telemetry: None,
            reorder_depth: Self::DEFAULT_REORDER_DEPTH,
            faults: None,
        }
    }

    /// Selects the address-mapping policy of the system front end
    /// (ignored by [`build`](Self::build), which never routes).
    pub fn mapping(mut self, policy: MappingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Uses `factory` for every bank's defense. The factory is borrowed so
    /// one spec can build a whole sweep's controllers.
    pub fn defenses(mut self, factory: &'a dyn DefenseFactory) -> Self {
        self.source = DefenseSource::Factory(factory);
        self
    }

    /// Uses a closure for every bank's defense (called with the global flat
    /// bank index). Unlike [`defenses`](Self::defenses), the closure may be
    /// stateful; it never sees the audit flag.
    pub fn defenses_with<F>(mut self, factory: F) -> Self
    where
        F: FnMut(usize) -> Box<dyn RowHammerDefense + Send> + 'a,
    {
        self.source = DefenseSource::Closure(Box::new(factory));
        self
    }

    /// Asks the [`DefenseFactory`] for audit-wrapped defenses (ignored for
    /// [`defenses_with`](Self::defenses_with) closures, which predate the
    /// flag).
    pub fn audit(mut self, on: bool) -> Self {
        self.audit = on;
        self
    }

    /// Attaches a command log. Under [`build_system`](Self::build_system)
    /// the log is a *prototype*: each shard records into its own clone, so
    /// pass it empty.
    pub fn command_log(mut self, log: CommandLog) -> Self {
        self.command_log = Some(log);
        self
    }

    /// Attaches a telemetry tap to the single controller
    /// [`build`](Self::build) produces. A tap is owned by exactly one
    /// controller, so [`build_system`](Self::build_system) rejects this —
    /// use [`telemetry_per_shard`](Self::telemetry_per_shard) there.
    pub fn telemetry(mut self, tap: TelemetryTap) -> Self {
        self.telemetry = Some(tap);
        self
    }

    /// Supplies each shard's telemetry tap. The closure is called once per
    /// channel with `(channel, bank_key_offset)`, where the offset is the
    /// channel's first global bank index — pass it to
    /// [`TelemetryTap::keyed`] so the shards' per-bank series land on
    /// disjoint keys of a shared sink. Return `None` to leave a shard
    /// untapped.
    pub fn telemetry_per_shard<F>(mut self, taps: F) -> Self
    where
        F: FnMut(u8, u16) -> Option<TelemetryTap> + 'a,
    {
        self.per_shard_telemetry = Some(Box::new(taps));
        self
    }

    /// Bounds each channel's reorder buffer in
    /// [`SystemController::try_run_batched`] (how many routed accesses a
    /// channel may hold before they are forced through its shard).
    ///
    /// # Panics
    ///
    /// Panics on a depth of zero — the buffer could never hold anything.
    pub fn reorder_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "reorder depth of 0");
        self.reorder_depth = depth;
        self
    }

    /// Arms a deterministic fault-injection plan: the controller replays it
    /// keyed by served-access index (see [`crate::faults`]). Only
    /// single-controller builds accept a plan — a plan's access clock is
    /// per-controller, so [`build_system`](Self::build_system) rejects it.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Builds a single controller owning the whole geometry — the legacy
    /// semantics every pre-sharding call site had.
    ///
    /// # Panics
    ///
    /// Panics if the configuration's geometry or timing fail validation;
    /// use [`try_build`](Self::try_build) to handle that as an error.
    pub fn build(self) -> MemoryController {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`build`](Self::build), but surfaces configuration problems as
    /// [`McBuildError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`McBuildError::InvalidConfig`] when the geometry or timing
    /// half of the [`McConfig`] fails validation.
    pub fn try_build(self) -> Result<MemoryController, McBuildError> {
        let McBuilder { config, mut source, audit, command_log, telemetry, faults, .. } = self;
        let rows = config.geometry.rows_per_bank;
        let banks = config.geometry.total_banks() as usize;
        let mut make = resolve_span(&mut source, 0, banks, rows, audit);
        let mut mc = MemoryController::try_from_parts(config, &mut make, 0, 0)?;
        if let Some(log) = command_log {
            mc.set_command_log(log);
        }
        if let Some(tap) = telemetry {
            mc.set_telemetry(tap);
        }
        if let Some(plan) = faults {
            mc.set_fault_plan(plan);
        }
        Ok(mc)
    }

    /// Builds a channel-sharded [`SystemController`]: one shard per
    /// channel, each owning its ranks' banks, defenses, refresh engines,
    /// and oracle state, fronted by the configured mapping policy.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation, if a single-owner
    /// [`telemetry`](Self::telemetry) tap was supplied (shards need
    /// [`telemetry_per_shard`](Self::telemetry_per_shard)), or if a
    /// [`faults`](Self::faults) plan was supplied (plans are
    /// per-controller).
    pub fn build_system(self) -> SystemController {
        self.try_build_system().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`build_system`](Self::build_system), but surfaces
    /// configuration problems as [`McBuildError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`McBuildError::InvalidConfig`] when the geometry or timing
    /// fails validation.
    ///
    /// # Panics
    ///
    /// Still panics on the API-misuse cases ([`telemetry`](Self::telemetry)
    /// or [`faults`](Self::faults) on a sharded build) — those are caller
    /// bugs, not data-dependent configuration problems.
    pub fn try_build_system(self) -> Result<SystemController, McBuildError> {
        let McBuilder {
            config,
            policy,
            source,
            audit,
            command_log,
            telemetry,
            mut per_shard_telemetry,
            reorder_depth,
            faults,
        } = self;
        assert!(
            telemetry.is_none(),
            "a single telemetry tap cannot span shards; use telemetry_per_shard"
        );
        assert!(
            faults.is_none(),
            "a fault plan's access clock is per-controller; attach it to a single build()"
        );
        // Validate the system-level config here: a zero-channel geometry
        // would otherwise skip the per-shard validation entirely (the shard
        // loop runs zero times) and yield a silently inert controller.
        config.geometry.validate().map_err(McBuildError::InvalidConfig)?;
        config.timing.validate().map_err(McBuildError::InvalidConfig)?;
        let geometry = config.geometry;
        let rows = geometry.rows_per_bank;
        let per_channel = geometry.banks_per_channel() as usize;
        let mut source = source;
        let mut shards = Vec::with_capacity(usize::from(geometry.channels));
        for c in 0..geometry.channels {
            let shard_config = McConfig { geometry: geometry.channel_geometry(), ..config.clone() };
            let offset = usize::from(c) * per_channel;
            // Resolve per shard so all-bank factories share within — never
            // across — a channel's banks.
            let mut make = resolve_span(&mut source, offset, per_channel, rows, audit);
            let mut shard = MemoryController::try_from_parts(shard_config, &mut make, c, offset)?;
            if let Some(log) = &command_log {
                shard.set_command_log(log.clone());
            }
            if let Some(taps) = per_shard_telemetry.as_mut() {
                if let Some(tap) = taps(c, offset as u16) {
                    shard.set_telemetry(tap);
                }
            }
            shards.push(shard);
        }
        Ok(SystemController::from_shards(geometry, policy, shards, reorder_depth))
    }
}

/// Collapses a defense source into the per-bank closure `try_from_parts` eats,
/// scoped to one controller's span of `banks` banks starting at
/// `first_bank`. Factory sources are offered the whole span via
/// [`DefenseFactory::build_all_bank`] first; a `Some` answer is drained
/// box-by-box (asserting bank order), `None` falls back to the per-bank
/// [`DefenseFactory::build_defense`] path.
fn resolve_span<'s, 'a: 's>(
    source: &'s mut DefenseSource<'a>,
    first_bank: usize,
    banks: usize,
    rows_per_bank: u32,
    audit: bool,
) -> Box<dyn FnMut(usize) -> Box<dyn RowHammerDefense + Send> + 's> {
    match source {
        DefenseSource::None => Box::new(|_| Box::new(NoDefense::new())),
        DefenseSource::Factory(f) => {
            let f: &'a dyn DefenseFactory = *f;
            match f.build_all_bank(first_bank, banks as u32, rows_per_bank, audit) {
                Some(pool) => {
                    assert_eq!(
                        pool.len(),
                        banks,
                        "build_all_bank returned {} defenses for a {banks}-bank span",
                        pool.len(),
                    );
                    let mut pool = pool.into_iter();
                    let mut next = first_bank;
                    Box::new(move |bank| {
                        assert_eq!(bank, next, "all-bank defenses drain in bank order");
                        next += 1;
                        pool.next().expect("all-bank defense pool exhausted")
                    })
                }
                None => Box::new(move |bank| f.build_defense(bank, rows_per_bank, audit)),
            }
        }
        DefenseSource::Closure(c) => Box::new(move |bank| c(bank)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use workloads::{Synthetic, Workload};

    #[test]
    fn default_build_uses_no_defense() {
        let mut mc = McBuilder::new(McConfig::single_bank(65_536, None)).build();
        let stats = mc.run(&mut Synthetic::s3(65_536, 1), 5_000);
        assert_eq!(stats.defense_refresh_commands, 0);
        assert_eq!(stats.accesses, 5_000);
    }

    #[test]
    fn factory_sees_global_bank_indices_and_audit_flag() {
        struct Spy {
            calls: AtomicUsize,
            audited: AtomicUsize,
        }
        impl DefenseFactory for Spy {
            fn build_defense(
                &self,
                bank: usize,
                rows_per_bank: u32,
                audited: bool,
            ) -> Box<dyn RowHammerDefense + Send> {
                assert_eq!(rows_per_bank, 65_536);
                assert_eq!(bank, self.calls.fetch_add(1, Ordering::Relaxed));
                if audited {
                    self.audited.fetch_add(1, Ordering::Relaxed);
                }
                Box::new(NoDefense::new())
            }
        }
        let spy = Spy { calls: AtomicUsize::new(0), audited: AtomicUsize::new(0) };
        let system = McBuilder::new(McConfig::micro2020_no_oracle())
            .defenses(&spy)
            .audit(true)
            .build_system();
        // 64 banks, numbered globally and in channel order across shards.
        assert_eq!(spy.calls.load(Ordering::Relaxed), 64);
        assert_eq!(spy.audited.load(Ordering::Relaxed), 64);
        assert_eq!(system.shards().len(), 4);
        assert_eq!(system.shards()[2].channel(), 2);
    }

    #[test]
    fn all_bank_factory_spans_each_shard_once() {
        // An all-bank factory is offered one contiguous span per controller:
        // the whole geometry for build(), one channel for build_system().
        struct SpanSpy {
            spans: std::sync::Mutex<Vec<(usize, u32)>>,
        }
        impl DefenseFactory for SpanSpy {
            fn build_defense(
                &self,
                _bank: usize,
                _rows_per_bank: u32,
                _audited: bool,
            ) -> Box<dyn RowHammerDefense + Send> {
                panic!("per-bank path must not run when build_all_bank answers");
            }
            fn build_all_bank(
                &self,
                first_bank: usize,
                banks: u32,
                rows_per_bank: u32,
                _audited: bool,
            ) -> Option<Vec<Box<dyn RowHammerDefense + Send>>> {
                assert_eq!(rows_per_bank, 65_536);
                self.spans.lock().unwrap().push((first_bank, banks));
                Some(
                    (0..banks)
                        .map(|_| Box::new(NoDefense::new()) as Box<dyn RowHammerDefense + Send>)
                        .collect(),
                )
            }
        }

        let spy = SpanSpy { spans: std::sync::Mutex::new(Vec::new()) };
        let system = McBuilder::new(McConfig::micro2020_no_oracle()).defenses(&spy).build_system();
        assert_eq!(system.shards().len(), 4);
        assert_eq!(*spy.spans.lock().unwrap(), vec![(0, 16), (16, 16), (32, 16), (48, 16)]);

        spy.spans.lock().unwrap().clear();
        let mc = McBuilder::new(McConfig::micro2020_no_oracle()).defenses(&spy).build();
        assert_eq!(mc.config().geometry.total_banks(), 64);
        assert_eq!(*spy.spans.lock().unwrap(), vec![(0, 64)]);
    }

    #[test]
    fn default_build_all_bank_keeps_per_bank_path() {
        struct PerBank(AtomicUsize);
        impl DefenseFactory for PerBank {
            fn build_defense(
                &self,
                _bank: usize,
                _rows_per_bank: u32,
                _audited: bool,
            ) -> Box<dyn RowHammerDefense + Send> {
                self.0.fetch_add(1, Ordering::Relaxed);
                Box::new(NoDefense::new())
            }
        }
        let f = PerBank(AtomicUsize::new(0));
        let _ = McBuilder::new(McConfig::micro2020_no_oracle()).defenses(&f).build_system();
        assert_eq!(f.0.load(Ordering::Relaxed), 64);
    }

    #[test]
    #[should_panic(expected = "2 defenses for a 64-bank span")]
    fn short_all_bank_pool_is_rejected() {
        struct Short;
        impl DefenseFactory for Short {
            fn build_defense(
                &self,
                _bank: usize,
                _rows_per_bank: u32,
                _audited: bool,
            ) -> Box<dyn RowHammerDefense + Send> {
                Box::new(NoDefense::new())
            }
            fn build_all_bank(
                &self,
                _first_bank: usize,
                _banks: u32,
                _rows_per_bank: u32,
                _audited: bool,
            ) -> Option<Vec<Box<dyn RowHammerDefense + Send>>> {
                Some(vec![Box::new(NoDefense::new()), Box::new(NoDefense::new())])
            }
        }
        let _ = McBuilder::new(McConfig::micro2020_no_oracle()).defenses(&Short).build();
    }

    #[test]
    fn closure_source_matches_legacy_seeding() {
        let mut seen = Vec::new();
        let mc = McBuilder::new(McConfig::micro2020_no_oracle())
            .defenses_with(|bank| {
                seen.push(bank);
                Box::new(NoDefense::new())
            })
            .build();
        assert_eq!(mc.config().geometry.total_banks(), 64);
        assert_eq!(seen, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn command_log_prototype_is_cloned_per_shard() {
        let mut system = McBuilder::new(McConfig::micro2020_no_oracle())
            .command_log(CommandLog::bounded(128))
            .build_system();
        system.run_batched(&Synthetic::s3(65_536, 1).take_accesses(100));
        let _ = system.finish();
        for shard in system.shards() {
            assert!(shard.command_log().is_some());
        }
        // Channel 0 owns all the single-bank attack's commands; others idle.
        assert!(!system.shards()[0].command_log().unwrap().records().is_empty());
    }

    #[test]
    #[should_panic(expected = "telemetry_per_shard")]
    fn single_tap_rejected_for_system_build() {
        use telemetry::{Cadence, NoopSink};
        let _ = McBuilder::new(McConfig::micro2020_no_oracle())
            .telemetry(TelemetryTap::new(Box::new(NoopSink), Cadence::EveryActs(1)))
            .build_system();
    }

    #[test]
    #[should_panic(expected = "reorder depth of 0")]
    fn zero_reorder_depth_rejected() {
        let _ = McBuilder::new(McConfig::micro2020_no_oracle()).reorder_depth(0);
    }

    #[test]
    fn try_build_reports_invalid_timing_and_geometry() {
        let mut bad_timing = McConfig::micro2020_no_oracle();
        bad_timing.timing.t_rc = 0;
        let err = McBuilder::new(bad_timing).try_build().unwrap_err();
        assert!(err.to_string().contains("t_rc"), "{err}");

        let mut bad_geometry = McConfig::micro2020_no_oracle();
        bad_geometry.geometry.channels = 0;
        let err = McBuilder::new(bad_geometry.clone()).try_build_system().unwrap_err();
        assert!(err.to_string().contains("geometry"), "{err}");
        assert_eq!(err.clone(), err, "build errors compare and clone");
    }

    #[test]
    #[should_panic(expected = "invalid controller config")]
    fn build_still_panics_on_invalid_config() {
        let mut bad = McConfig::micro2020_no_oracle();
        bad.timing.t_refi = 0;
        let _ = McBuilder::new(bad).build();
    }

    #[test]
    #[should_panic(expected = "per-controller")]
    fn fault_plan_rejected_for_system_build() {
        use faultsim::FaultSpec;
        let _ = McBuilder::new(McConfig::micro2020_no_oracle())
            .faults(FaultPlan::generate(&FaultSpec::new(1)))
            .build_system();
    }
}
