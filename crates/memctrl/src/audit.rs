//! Run-statistics audit: cross-counter invariants of [`RunStats`].
//!
//! Every figure the reproduction emits is derived from [`RunStats`]
//! counters. If the accounting is subtly wrong — an access counted twice, a
//! latency noted on the wrong stream, a victim refresh charged but never
//! executed — every downstream comparison inherits the error silently. The
//! audit makes the internal redundancy of the counters explicit and checks
//! it at run end:
//!
//! | Invariant | What it certifies |
//! |-----------|-------------------|
//! | `accesses == row_hits + activations` | every access is served exactly once, as a hit or an ACT |
//! | `accesses == Σ per_stream counts + strays` | per-stream attribution loses nothing (weighted-speedup input) |
//! | `total_latency == Σ per_stream latencies + strays` | latency attribution loses nothing |
//! | `victim_rows_refreshed ≥ defense_refresh_commands` | every charged defense command refreshed ≥ 1 real row |
//! | `completion ≥ last issue time` | the clock never runs backwards past served work |
//! | `stray_stream_accesses == 0` | the trace's stream ids matched the configured stream set |
//!
//! [`StatsAudit::check_cross`] additionally compares a run against its
//! baseline: a stream active in one but absent from the other would be
//! *silently skipped* by [`RunStats::weighted_speedup_loss_vs`], so a
//! mismatched stream set is surfaced as a finding instead.

use std::fmt;

use dram_model::timing::Picoseconds;

use crate::stats::RunStats;

/// One violated invariant, with the numbers that violated it.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StatsFinding {
    /// `accesses != row_hits + activations`.
    AccessSplit {
        /// Total accesses served.
        accesses: u64,
        /// Row-buffer hits.
        row_hits: u64,
        /// ACT commands issued.
        activations: u64,
    },
    /// Per-stream access counts do not sum to the access total.
    StreamCountMismatch {
        /// Total accesses served.
        accesses: u64,
        /// Σ per-stream access counts.
        stream_sum: u64,
        /// Stray (untracked-id) accesses.
        strays: u64,
    },
    /// Per-stream latencies do not sum to the latency total.
    StreamLatencyMismatch {
        /// Total latency (ps).
        total_latency: Picoseconds,
        /// Σ per-stream latencies (ps).
        stream_sum: Picoseconds,
        /// Latency of stray accesses (ps).
        stray_latency: Picoseconds,
    },
    /// Fewer victim rows refreshed than defense commands charged.
    VictimRowsBelowCommands {
        /// Individual victim rows refreshed.
        victim_rows_refreshed: u64,
        /// Defense refresh commands charged.
        defense_refresh_commands: u64,
    },
    /// Completion time earlier than the last issued access.
    CompletionBeforeLastIssue {
        /// Recorded completion time (ps).
        completion: Picoseconds,
        /// Arrival time of the last issued access (ps).
        last_issue: Picoseconds,
    },
    /// The trace carried stream ids outside the configured stream set.
    StrayStreams {
        /// Number of stray accesses.
        count: u64,
    },
    /// Run and baseline activated different stream sets, which
    /// [`RunStats::weighted_speedup_loss_vs`] would silently skip.
    MismatchedStreamSets {
        /// Streams active in the run but not the baseline.
        only_in_run: Vec<u16>,
        /// Streams active in the baseline but not the run.
        only_in_baseline: Vec<u16>,
    },
}

impl fmt::Display for StatsFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsFinding::AccessSplit { accesses, row_hits, activations } => write!(
                f,
                "accesses ({accesses}) != row_hits ({row_hits}) + activations ({activations})"
            ),
            StatsFinding::StreamCountMismatch { accesses, stream_sum, strays } => write!(
                f,
                "accesses ({accesses}) != per-stream sum ({stream_sum}) + strays ({strays})"
            ),
            StatsFinding::StreamLatencyMismatch { total_latency, stream_sum, stray_latency } => {
                write!(
                    f,
                    "total_latency ({total_latency}) != per-stream latency sum ({stream_sum}) \
                     + stray latency ({stray_latency})"
                )
            }
            StatsFinding::VictimRowsBelowCommands {
                victim_rows_refreshed,
                defense_refresh_commands,
            } => write!(
                f,
                "victim_rows_refreshed ({victim_rows_refreshed}) < defense_refresh_commands \
                 ({defense_refresh_commands}): a charged command refreshed no row"
            ),
            StatsFinding::CompletionBeforeLastIssue { completion, last_issue } => write!(
                f,
                "completion ({completion}) earlier than last issued access ({last_issue})"
            ),
            StatsFinding::StrayStreams { count } => {
                write!(f, "{count} access(es) carried stream ids outside the configured stream set")
            }
            StatsFinding::MismatchedStreamSets { only_in_run, only_in_baseline } => write!(
                f,
                "stream sets differ from baseline (only in run: {only_in_run:?}, only in \
                 baseline: {only_in_baseline:?}); weighted_speedup_loss_vs would skip them"
            ),
        }
    }
}

/// The run-statistics auditor. Stateless; all checks are pure functions of
/// the statistics they inspect.
#[derive(Debug, Clone, Copy, Default)]
pub struct StatsAudit;

impl StatsAudit {
    /// Checks the intra-run invariants of one finished run.
    ///
    /// # Errors
    ///
    /// Returns every violated invariant (never an empty vec).
    pub fn check(stats: &RunStats) -> Result<(), Vec<StatsFinding>> {
        let mut findings = Vec::new();
        if stats.accesses != stats.row_hits + stats.activations {
            findings.push(StatsFinding::AccessSplit {
                accesses: stats.accesses,
                row_hits: stats.row_hits,
                activations: stats.activations,
            });
        }
        let stream_sum: u64 = stats.per_stream.iter().map(|&(n, _)| n).sum();
        if stats.accesses != stream_sum + stats.stray_stream_accesses {
            findings.push(StatsFinding::StreamCountMismatch {
                accesses: stats.accesses,
                stream_sum,
                strays: stats.stray_stream_accesses,
            });
        }
        let latency_sum: u64 = stats.per_stream.iter().map(|&(_, l)| l).sum();
        if stats.total_latency != latency_sum + stats.stray_stream_latency {
            findings.push(StatsFinding::StreamLatencyMismatch {
                total_latency: stats.total_latency,
                stream_sum: latency_sum,
                stray_latency: stats.stray_stream_latency,
            });
        }
        if stats.victim_rows_refreshed < stats.defense_refresh_commands {
            findings.push(StatsFinding::VictimRowsBelowCommands {
                victim_rows_refreshed: stats.victim_rows_refreshed,
                defense_refresh_commands: stats.defense_refresh_commands,
            });
        }
        if stats.stray_stream_accesses > 0 {
            findings.push(StatsFinding::StrayStreams { count: stats.stray_stream_accesses });
        }
        if findings.is_empty() {
            Ok(())
        } else {
            Err(findings)
        }
    }

    /// Like [`StatsAudit::check`], additionally asserting the completion
    /// time is no earlier than the arrival of the last issued access.
    ///
    /// # Errors
    ///
    /// Returns every violated invariant.
    pub fn check_at(stats: &RunStats, last_issue: Picoseconds) -> Result<(), Vec<StatsFinding>> {
        let mut findings = match Self::check(stats) {
            Ok(()) => Vec::new(),
            Err(f) => f,
        };
        if stats.accesses > 0 && stats.completion < last_issue {
            findings.push(StatsFinding::CompletionBeforeLastIssue {
                completion: stats.completion,
                last_issue,
            });
        }
        if findings.is_empty() {
            Ok(())
        } else {
            Err(findings)
        }
    }

    /// Cross-checks a run against the baseline it will be compared to:
    /// both must have activated the same set of streams, otherwise
    /// [`RunStats::weighted_speedup_loss_vs`] silently drops the mismatched
    /// ones from the paper's metric.
    ///
    /// # Errors
    ///
    /// Returns a [`StatsFinding::MismatchedStreamSets`] naming the streams
    /// present in only one of the two runs.
    pub fn check_cross(run: &RunStats, baseline: &RunStats) -> Result<(), Vec<StatsFinding>> {
        let active = |s: &RunStats| -> Vec<u16> {
            s.per_stream
                .iter()
                .enumerate()
                .filter(|&(_, &(n, _))| n > 0)
                .map(|(i, _)| i as u16)
                .collect()
        };
        let run_set = active(run);
        let base_set = active(baseline);
        if run_set == base_set {
            return Ok(());
        }
        let only_in_run: Vec<u16> =
            run_set.iter().copied().filter(|s| !base_set.contains(s)).collect();
        let only_in_baseline: Vec<u16> =
            base_set.iter().copied().filter(|s| !run_set.contains(s)).collect();
        Err(vec![StatsFinding::MismatchedStreamSets { only_in_run, only_in_baseline }])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A consistent run: 3 accesses (2 hits + 1 ACT) over two streams.
    fn good_stats() -> RunStats {
        let mut s = RunStats {
            accesses: 3,
            activations: 1,
            row_hits: 2,
            defense_refresh_commands: 2,
            victim_rows_refreshed: 4,
            completion: 900,
            total_latency: 600,
            ..RunStats::default()
        };
        s.note_stream(0, 100);
        s.note_stream(1, 200);
        s.note_stream(0, 300);
        s
    }

    #[test]
    fn consistent_stats_pass() {
        StatsAudit::check(&good_stats()).unwrap();
        StatsAudit::check_at(&good_stats(), 850).unwrap();
        StatsAudit::check_cross(&good_stats(), &good_stats()).unwrap();
    }

    #[test]
    fn empty_run_passes() {
        StatsAudit::check(&RunStats::default()).unwrap();
        StatsAudit::check_at(&RunStats::default(), 0).unwrap();
    }

    #[test]
    fn access_split_violation_found() {
        let mut s = good_stats();
        s.row_hits += 1;
        let f = StatsAudit::check(&s).unwrap_err();
        assert!(matches!(f[0], StatsFinding::AccessSplit { .. }));
        assert!(f[0].to_string().contains("row_hits"));
    }

    #[test]
    fn stream_count_mismatch_found() {
        let mut s = good_stats();
        s.per_stream[1].0 += 1;
        let f = StatsAudit::check(&s).unwrap_err();
        assert!(f.iter().any(|x| matches!(x, StatsFinding::StreamCountMismatch { .. })));
    }

    #[test]
    fn stream_latency_mismatch_found() {
        let mut s = good_stats();
        s.total_latency += 1;
        let f = StatsAudit::check(&s).unwrap_err();
        assert!(f.iter().any(|x| matches!(x, StatsFinding::StreamLatencyMismatch { .. })));
    }

    #[test]
    fn overcounted_commands_found() {
        // A defense charging 5 commands for 4 refreshed rows over-counts.
        let mut s = good_stats();
        s.defense_refresh_commands = 5;
        let f = StatsAudit::check(&s).unwrap_err();
        assert!(f.iter().any(|x| matches!(x, StatsFinding::VictimRowsBelowCommands { .. })));
    }

    #[test]
    fn completion_before_last_issue_found() {
        let s = good_stats();
        StatsAudit::check_at(&s, 900).unwrap();
        let f = StatsAudit::check_at(&s, 901).unwrap_err();
        assert!(f.iter().any(|x| matches!(x, StatsFinding::CompletionBeforeLastIssue { .. })));
    }

    #[test]
    fn stray_streams_are_a_finding() {
        let mut s = good_stats();
        s.accesses += 1;
        s.row_hits += 1;
        s.total_latency += 40;
        s.note_stream(65_000, 40);
        let f = StatsAudit::check(&s).unwrap_err();
        assert_eq!(f, vec![StatsFinding::StrayStreams { count: 1 }]);
    }

    #[test]
    fn mismatched_stream_sets_are_a_finding() {
        let run = good_stats();
        let mut base = good_stats();
        base.note_stream(2, 50);
        let f = StatsAudit::check_cross(&run, &base).unwrap_err();
        match &f[0] {
            StatsFinding::MismatchedStreamSets { only_in_run, only_in_baseline } => {
                assert!(only_in_run.is_empty());
                assert_eq!(only_in_baseline, &vec![2]);
            }
            other => panic!("unexpected finding {other:?}"),
        }
        assert!(f[0].to_string().contains("baseline"));
    }

    #[test]
    fn multiple_findings_reported_together() {
        let mut s = good_stats();
        s.row_hits += 1;
        s.defense_refresh_commands = 9;
        let f = StatsAudit::check(&s).unwrap_err();
        assert!(f.len() >= 2, "expected both findings, got {f:?}");
    }
}
