//! Per-bank timing state machine.
//!
//! Tracks the open row, the earliest time the next command may start, and
//! the activate-to-activate (tRC) constraint. Service latencies follow the
//! standard DDR decomposition:
//!
//! * **row hit** — column access only: `tCL`;
//! * **row miss (bank has an open row)** — precharge + activate + column:
//!   `tRP + tRCD + tCL`;
//! * **row empty** — activate + column: `tRCD + tCL`;
//! * **refresh** — the bank is blocked for `tRFC`;
//! * **victim refresh (NRR)** — the bank is blocked for `tRC` per refreshed
//!   row plus one `tRP`, the accounting the paper uses in Section V-B.

use dram_model::geometry::RowId;
use dram_model::timing::{DramTiming, Picoseconds};
use serde::{Deserialize, Serialize};

use crate::pagepolicy::PagePolicy;

/// Outcome of serving one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceOutcome {
    /// When the access started service (≥ its arrival).
    pub start: Picoseconds,
    /// When its data was available.
    pub finish: Picoseconds,
    /// Whether an ACT command was issued (row miss or empty).
    pub activated: bool,
    /// Whether the access hit the open row.
    pub row_hit: bool,
    /// The exact ACT command slot, when one was issued (after any precharge).
    pub act_at: Option<Picoseconds>,
}

/// One bank's controller-side state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankState {
    timing: DramTiming,
    policy: PagePolicy,
    open_row: Option<RowId>,
    hits_on_open_row: u32,
    /// Earliest time the next command may start.
    ready_at: Picoseconds,
    /// Time the last ACT started (for the tRC constraint).
    last_act_at: Option<Picoseconds>,
}

impl BankState {
    /// A fresh, idle bank.
    pub fn new(timing: DramTiming, policy: PagePolicy) -> Self {
        BankState {
            timing,
            policy,
            open_row: None,
            hits_on_open_row: 0,
            ready_at: 0,
            last_act_at: None,
        }
    }

    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<RowId> {
        self.open_row
    }

    /// Earliest time the next command may start.
    pub fn ready_at(&self) -> Picoseconds {
        self.ready_at
    }

    /// Serves one access to `row` arriving at `arrival`; returns the timing
    /// outcome and updates bank state.
    pub fn serve(&mut self, row: RowId, arrival: Picoseconds) -> ServiceOutcome {
        let t = self.timing;
        let mut start = arrival.max(self.ready_at);

        let (latency, activated, row_hit) = match self.open_row {
            Some(open) if open == row => (t.t_cl, false, true),
            Some(_) => (t.t_rp + t.t_rcd + t.t_cl, true, false),
            None => (t.t_rcd + t.t_cl, true, false),
        };

        let mut act_slot = None;
        if activated {
            // Respect tRC from the previous ACT: the ACT itself happens after
            // the precharge (if any), so push the start so that the ACT slot
            // lands no earlier than last_act + tRC.
            if let Some(last) = self.last_act_at {
                let act_offset = if self.open_row.is_some() { t.t_rp } else { 0 };
                let earliest_start = (last + t.t_rc).saturating_sub(act_offset);
                start = start.max(earliest_start);
            }
            let act_at = start + if self.open_row.is_some() { t.t_rp } else { 0 };
            self.last_act_at = Some(act_at);
            act_slot = Some(act_at);
            self.open_row = Some(row);
            self.hits_on_open_row = 1;
        } else {
            self.hits_on_open_row += 1;
        }

        let finish = start + latency;
        self.ready_at = finish;

        if self.policy.should_close(self.hits_on_open_row) {
            // Auto-precharge: the row closes; the precharge overlaps the tail
            // of the access, so we only charge tRP to bank readiness.
            self.open_row = None;
            self.hits_on_open_row = 0;
            self.ready_at = finish + t.t_rp;
        }

        ServiceOutcome { start, finish, activated, row_hit, act_at: act_slot }
    }

    /// Blocks the bank for a periodic refresh starting no earlier than `at`.
    /// Returns the time the refresh completes.
    pub fn block_for_refresh(&mut self, at: Picoseconds) -> Picoseconds {
        let start = at.max(self.ready_at);
        let end = start + self.timing.t_rfc;
        self.open_row = None;
        self.hits_on_open_row = 0;
        self.ready_at = end;
        end
    }

    /// Extends the bank's busy period by `extra` picoseconds (defense
    /// bookkeeping traffic such as CRA's counter fetches).
    pub fn delay(&mut self, extra: Picoseconds) {
        self.ready_at += extra;
    }

    /// Forbids the bank from starting any access before `until` — the
    /// throttle primitive behind [`ThrottleDecision`]. Unlike
    /// [`delay`](Self::delay), this is a *deadline*, not an extension: it
    /// has effect even on an idle bank whose `ready_at` is in the past, and
    /// it never moves readiness backwards.
    ///
    /// [`ThrottleDecision`]: mitigations::ThrottleDecision
    pub fn hold_until(&mut self, until: Picoseconds) {
        self.ready_at = self.ready_at.max(until);
    }

    /// The bank's dynamic state `(open_row, hits_on_open_row, ready_at,
    /// last_act_at)` for a run checkpoint. Timing and page policy are
    /// configuration, rebuilt by the restoring controller.
    pub(crate) fn dynamic_state(&self) -> (Option<RowId>, u32, Picoseconds, Option<Picoseconds>) {
        (self.open_row, self.hits_on_open_row, self.ready_at, self.last_act_at)
    }

    /// Overwrites the dynamic state captured by
    /// [`dynamic_state`](Self::dynamic_state).
    pub(crate) fn restore_dynamic_state(
        &mut self,
        open_row: Option<RowId>,
        hits_on_open_row: u32,
        ready_at: Picoseconds,
        last_act_at: Option<Picoseconds>,
    ) {
        self.open_row = open_row;
        self.hits_on_open_row = hits_on_open_row;
        self.ready_at = ready_at;
        self.last_act_at = last_act_at;
    }

    /// Blocks the bank for a victim refresh of `rows` rows (`tRC` each plus
    /// one `tRP`), starting no earlier than `at`. Returns the completion time.
    pub fn block_for_victim_refresh(&mut self, rows: u64, at: Picoseconds) -> Picoseconds {
        let start = at.max(self.ready_at);
        let end = start + rows * self.timing.t_rc + self.timing.t_rp;
        self.open_row = None;
        self.hits_on_open_row = 0;
        self.ready_at = end;
        end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank(policy: PagePolicy) -> BankState {
        BankState::new(DramTiming::ddr4_2400(), policy)
    }

    #[test]
    fn empty_bank_pays_rcd_plus_cl() {
        let mut b = bank(PagePolicy::Open);
        let o = b.serve(RowId(5), 0);
        assert!(o.activated && !o.row_hit);
        assert_eq!(o.finish, 13_300 + 13_300);
    }

    #[test]
    fn row_hit_pays_cl_only() {
        let mut b = bank(PagePolicy::Open);
        let first = b.serve(RowId(5), 0);
        let o = b.serve(RowId(5), first.finish);
        assert!(o.row_hit && !o.activated);
        assert_eq!(o.finish - o.start, 13_300);
    }

    #[test]
    fn row_conflict_pays_full_penalty() {
        let mut b = bank(PagePolicy::Open);
        let first = b.serve(RowId(5), 0);
        let o = b.serve(RowId(9), first.finish);
        assert!(o.activated && !o.row_hit);
        assert_eq!(o.finish - o.start, 13_300 * 3);
    }

    #[test]
    fn trc_enforced_between_activates() {
        let mut b = bank(PagePolicy::Closed);
        let o1 = b.serve(RowId(1), 0);
        // Closed policy: row closed after each access. Immediately serving
        // another row must still respect tRC between the two ACTs.
        let o2 = b.serve(RowId(2), o1.finish);
        assert!(o2.activated);
        let act1 = 0;
        let act2 = o2.start;
        assert!(act2 - act1 >= 45_000, "ACT spacing {}", act2 - act1);
    }

    #[test]
    fn saturating_same_bank_throughput_is_trc_limited() {
        // Back-to-back conflicting accesses: steady-state one ACT per tRC.
        let mut b = bank(PagePolicy::Open);
        let mut finish = 0;
        let n = 100;
        for i in 0..n {
            let o = b.serve(RowId(i % 2), finish);
            finish = o.finish;
        }
        // Steady state is one ACT per tRC; the first ACT's missing
        // predecessor shaves a fraction off the average.
        let per_access = finish as f64 / n as f64;
        assert!((44_000.0..60_000.0).contains(&per_access), "per-access {per_access} ps");
    }

    #[test]
    fn minimalist_open_closes_after_four_hits() {
        let mut b = bank(PagePolicy::minimalist_open());
        let mut at = 0;
        // ACT + 3 hits = 4 accesses on the open row, then it auto-closes.
        for i in 0..4 {
            let o = b.serve(RowId(7), at);
            assert_eq!(o.row_hit, i > 0, "access {i}");
            at = o.finish;
        }
        assert_eq!(b.open_row(), None);
        // Fifth access re-activates even though it is the same row.
        let o = b.serve(RowId(7), at);
        assert!(o.activated);
    }

    #[test]
    fn refresh_blocks_for_trfc() {
        let mut b = bank(PagePolicy::Open);
        let end = b.block_for_refresh(1000);
        assert_eq!(end, 1000 + 350_000);
        assert_eq!(b.ready_at(), end);
        assert_eq!(b.open_row(), None);
    }

    #[test]
    fn victim_refresh_costs_trc_per_row_plus_trp() {
        let mut b = bank(PagePolicy::Open);
        let end = b.block_for_victim_refresh(2, 0);
        assert_eq!(end, 2 * 45_000 + 13_300);
    }

    #[test]
    fn waiting_for_busy_bank_delays_start() {
        let mut b = bank(PagePolicy::Open);
        b.block_for_refresh(0); // busy until 350 ns
        let o = b.serve(RowId(1), 100);
        assert_eq!(o.start, 350_000);
    }
}
