//! Memory-controller configuration (Table III of the paper).

use dram_model::fault::DisturbanceModel;
use dram_model::geometry::DramGeometry;
use dram_model::timing::DramTiming;
use serde::{Deserialize, Serialize};

use crate::pagepolicy::PagePolicy;

/// Full simulator configuration.
///
/// [`McConfig::micro2020`] reproduces Table III: DDR4-2400, 4 channels ×
/// 1 rank × 16 banks, minimalist-open paging, with the ground-truth fault
/// oracle armed at `T_RH = 50K`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McConfig {
    /// DRAM timing parameters.
    pub timing: DramTiming,
    /// System organization.
    pub geometry: DramGeometry,
    /// Page policy.
    pub page_policy: PagePolicy,
    /// Ground-truth disturbance model; `None` disables the fault oracle
    /// (faster, for pure performance runs).
    pub fault_model: Option<DisturbanceModel>,
    /// Number of workload streams the system is configured for. Accesses
    /// carrying a stream id at or beyond this are counted as strays in
    /// [`crate::RunStats`] (an audit finding) instead of being attributed
    /// to a phantom stream.
    pub max_streams: u16,
}

impl McConfig {
    /// The paper's Table III system with the fault oracle enabled.
    pub fn micro2020() -> Self {
        McConfig {
            timing: DramTiming::ddr4_2400(),
            geometry: DramGeometry::micro2020(),
            page_policy: PagePolicy::minimalist_open(),
            fault_model: Some(DisturbanceModel::ddr4_50k()),
            max_streams: 1024,
        }
    }

    /// Table III system without the fault oracle (performance-only runs).
    pub fn micro2020_no_oracle() -> Self {
        McConfig { fault_model: None, ..Self::micro2020() }
    }

    /// A single-bank system for focused experiments and tests.
    pub fn single_bank(rows: u32, fault_model: Option<DisturbanceModel>) -> Self {
        McConfig {
            timing: DramTiming::ddr4_2400(),
            geometry: DramGeometry::single_bank(rows),
            page_policy: PagePolicy::minimalist_open(),
            fault_model,
            max_streams: 1024,
        }
    }
}

impl Default for McConfig {
    fn default() -> Self {
        Self::micro2020()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro2020_matches_table_iii() {
        let c = McConfig::micro2020();
        assert_eq!(c.geometry.channels, 4);
        assert_eq!(c.geometry.banks_per_rank, 16);
        assert_eq!(c.timing.t_rc, 45_000);
        assert_eq!(c.page_policy, PagePolicy::MinimalistOpen { max_hits: 4 });
        assert!(c.fault_model.is_some());
    }

    #[test]
    fn no_oracle_variant_disables_fault_model() {
        assert!(McConfig::micro2020_no_oracle().fault_model.is_none());
    }
}
