//! Memory-controller configuration (Table III of the paper).

use dram_model::fault::DisturbanceModel;
use dram_model::geometry::DramGeometry;
use dram_model::timing::DramTiming;
use dram_model::{Generation, RfmSpec};
use serde::{Deserialize, Serialize};

use crate::pagepolicy::PagePolicy;

/// Full simulator configuration.
///
/// [`McConfig::micro2020`] reproduces Table III: DDR4-2400, 4 channels ×
/// 1 rank × 16 banks, minimalist-open paging, with the ground-truth fault
/// oracle armed at `T_RH = 50K`. [`McConfig::for_generation`] builds the
/// same system on another DRAM generation's timing — arming the RFM
/// (Refresh Management) accounting when the generation defines it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McConfig {
    /// DRAM timing parameters.
    pub timing: DramTiming,
    /// System organization.
    pub geometry: DramGeometry,
    /// Page policy.
    pub page_policy: PagePolicy,
    /// Ground-truth disturbance model; `None` disables the fault oracle
    /// (faster, for pure performance runs).
    pub fault_model: Option<DisturbanceModel>,
    /// Number of workload streams the system is configured for. Accesses
    /// carrying a stream id at or beyond this are counted as strays in
    /// [`crate::RunStats`] (an audit finding) instead of being attributed
    /// to a phantom stream.
    pub max_streams: u16,
    /// DDR5/LPDDR5 Refresh Management accounting. When set the controller
    /// keeps a Rolling Accumulated ACT (RAA) counter per bank, debits it
    /// by RAAIMT per executed [`mitigations::RefreshAction::Rfm`], and
    /// force-issues an RFM whenever a bank's RAA reaches RAAMMT. `None`
    /// (the DDR4/LPDDR4X default, and the value old serialized configs
    /// deserialize to) disables all RFM machinery.
    #[serde(default)]
    pub rfm: Option<RfmSpec>,
    /// The DRAM generation this configuration models. Drives the refresh
    /// postponement bound of the per-bank [`dram_model::RefreshEngine`]s;
    /// `timing` and `rfm` are kept denormalized so tests can override them
    /// independently. Defaults to DDR4-2400 (the legacy behavior, and what
    /// old serialized configs deserialize to).
    #[serde(default)]
    pub generation: Generation,
}

impl McConfig {
    /// The paper's Table III system with the fault oracle enabled.
    pub fn micro2020() -> Self {
        McConfig {
            timing: DramTiming::ddr4_2400(),
            geometry: DramGeometry::micro2020(),
            page_policy: PagePolicy::minimalist_open(),
            fault_model: Some(DisturbanceModel::ddr4_50k()),
            max_streams: 1024,
            rfm: None,
            generation: Generation::Ddr4_2400,
        }
    }

    /// Table III system without the fault oracle (performance-only runs).
    pub fn micro2020_no_oracle() -> Self {
        McConfig { fault_model: None, ..Self::micro2020() }
    }

    /// A single-bank system for focused experiments and tests.
    pub fn single_bank(rows: u32, fault_model: Option<DisturbanceModel>) -> Self {
        McConfig {
            timing: DramTiming::ddr4_2400(),
            geometry: DramGeometry::single_bank(rows),
            page_policy: PagePolicy::minimalist_open(),
            fault_model,
            max_streams: 1024,
            rfm: None,
            generation: Generation::Ddr4_2400,
        }
    }

    /// The Table III organization on `generation`'s timing, with RFM
    /// accounting armed when the generation defines it (DDR5, LPDDR5) and
    /// the fault oracle at the generation's default `T_RH` preset.
    ///
    /// `Generation::Ddr4_2400` reproduces [`McConfig::micro2020`] exactly
    /// apart from the oracle threshold, which here follows the preset.
    pub fn for_generation(generation: Generation) -> Self {
        McConfig {
            timing: generation.timing(),
            fault_model: Some(DisturbanceModel {
                t_rh: generation.default_t_rh(),
                ..DisturbanceModel::ddr4_50k()
            }),
            rfm: generation.rfm(),
            generation,
            ..Self::micro2020()
        }
    }

    /// A single-bank system on `generation`'s timing (focused experiments).
    pub fn single_bank_for_generation(
        generation: Generation,
        rows: u32,
        fault_model: Option<DisturbanceModel>,
    ) -> Self {
        McConfig {
            timing: generation.timing(),
            rfm: generation.rfm(),
            generation,
            ..Self::single_bank(rows, fault_model)
        }
    }
}

impl Default for McConfig {
    fn default() -> Self {
        Self::micro2020()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro2020_matches_table_iii() {
        let c = McConfig::micro2020();
        assert_eq!(c.geometry.channels, 4);
        assert_eq!(c.geometry.banks_per_rank, 16);
        assert_eq!(c.timing.t_rc, 45_000);
        assert_eq!(c.page_policy, PagePolicy::MinimalistOpen { max_hits: 4 });
        assert!(c.fault_model.is_some());
        assert!(c.rfm.is_none(), "DDR4 must not arm RFM accounting");
    }

    #[test]
    fn no_oracle_variant_disables_fault_model() {
        assert!(McConfig::micro2020_no_oracle().fault_model.is_none());
    }

    #[test]
    fn generation_configs_arm_rfm_only_where_defined() {
        let ddr4 = McConfig::for_generation(Generation::Ddr4_2400);
        assert_eq!(ddr4.timing, DramTiming::ddr4_2400());
        assert!(ddr4.rfm.is_none());

        let ddr5 = McConfig::for_generation(Generation::Ddr5_4800);
        assert_eq!(ddr5.timing, Generation::Ddr5_4800.timing());
        let rfm = ddr5.rfm.expect("DDR5 defines RFM");
        assert!(rfm.raaimt > 0 && rfm.raammt > rfm.raaimt);
        assert_eq!(ddr5.fault_model.unwrap().t_rh, Generation::Ddr5_4800.default_t_rh());

        assert!(McConfig::for_generation(Generation::Lpddr4x).rfm.is_none());
        assert!(McConfig::for_generation(Generation::Lpddr5).rfm.is_some());
    }
}
