//! The memory controller: dispatch, refresh machinery, defense hook.

use dram_model::error::DramError;
use dram_model::fault::FaultOracle;
use dram_model::geometry::{DramGeometry, RowId};
use dram_model::refresh::RefreshEngine;
use dram_model::timing::Picoseconds;
use faultsim::{ControllerFault, FaultKind, FaultPlan};
use mitigations::{RefreshAction, RowHammerDefense};
use workloads::Workload;

use telemetry::json::JsonValue;

use crate::bank::{BankState, ServiceOutcome};
use crate::ckpt::{
    field, obj, opt_u64, opt_u64_field, run_stats_from_json, run_stats_to_json, u64_field,
    CkptError,
};
use crate::cmdlog::{CommandLog, CommandRecord, LoggedCommand};
use crate::config::McConfig;
use crate::faults::{FaultInjector, FaultStats};
use crate::mapping::SystemAddress;
use crate::scheduler::{BankQueue, SchedulerConfig};
use crate::stats::RunStats;
use crate::tap::TelemetryTap;

/// A run aborted because an access could not be routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McError {
    /// A workload emitted a bank index outside the receiving controller's
    /// geometry — almost always a channel/rank/bank address-mapping mismatch
    /// between the trace generator and the controller configuration.
    BankOutOfRange {
        /// The offending bank index from the access, local to the rejecting
        /// controller.
        bank: u16,
        /// How many banks the rejecting controller actually has.
        banks: usize,
        /// Channel the rejecting controller serves (0 for a legacy
        /// whole-system controller).
        channel: u8,
        /// Best-effort rank decode of the offending index
        /// (`bank / banks_per_rank`, saturated), naming where the access
        /// *would* have landed had the channel owned enough ranks.
        rank: u8,
        /// Zero-based index of the access within the run's batch.
        access_index: u64,
    },
    /// The system front end could not route an access: its fully-decoded
    /// [`SystemAddress`] does not exist in the configured geometry.
    AddressOutOfRange {
        /// Best-effort dense decode of the coordinate the access asked for.
        addr: SystemAddress,
        /// The geometry that lacks it.
        geometry: DramGeometry,
        /// Zero-based index of the access within the run's batch.
        access_index: u64,
    },
    /// A user-supplied [`SchedulerConfig`] cannot form batches (zero batch
    /// size, or a queue too shallow to hold one batch).
    InvalidScheduler {
        /// The rejected batch size.
        batch_size: usize,
        /// The rejected queue depth.
        queue_depth: usize,
    },
}

impl std::fmt::Display for McError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            McError::BankOutOfRange { bank, banks, channel, rank, access_index } => write!(
                f,
                "access #{access_index} targets bank {bank} (≈ rk{rank}) on channel {channel}, \
                 which has {banks} bank(s); check the workload's bank count / address mapping"
            ),
            McError::AddressOutOfRange { addr, geometry, access_index } => write!(
                f,
                "access #{access_index} decodes to {addr}, outside the {}×{}×{} geometry with \
                 {} rows per bank; check the workload's bank count / address mapping",
                geometry.channels,
                geometry.ranks_per_channel,
                geometry.banks_per_rank,
                geometry.rows_per_bank
            ),
            McError::InvalidScheduler { batch_size, queue_depth } => write!(
                f,
                "scheduler config rejected: batch_size {batch_size} must be at least 1 and at \
                 most queue_depth {queue_depth}"
            ),
        }
    }
}

impl std::error::Error for McError {}

/// A controller could not be constructed because the configuration failed
/// validation — the fallible counterpart of the panics documented on
/// [`McBuilder::build`](crate::McBuilder::build).
///
/// Kept separate from [`McError`] (which is `Copy` and describes run-time
/// routing failures) so the underlying [`DramError`]'s full reason string
/// survives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum McBuildError {
    /// The geometry or timing half of the [`McConfig`] was rejected.
    InvalidConfig(DramError),
}

impl std::fmt::Display for McBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            McBuildError::InvalidConfig(e) => write!(f, "invalid controller config: {e}"),
        }
    }
}

impl std::error::Error for McBuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            McBuildError::InvalidConfig(e) => Some(e),
        }
    }
}

/// One access carrying an **absolute** arrival timestamp — the unit of
/// batched shard ingestion ([`MemoryController::try_run_batch`]).
///
/// The system front end assigns the timestamp while routing (summing the
/// workload's inter-arrival gaps), so a shard replaying a channel's stamped
/// sub-trace reconstructs exactly the arrival clock the legacy
/// gap-accumulating path would have computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StampedAccess {
    /// Bank index local to the receiving controller's geometry.
    pub bank: u16,
    /// Row within the bank.
    pub row: RowId,
    /// Absolute arrival time (ps).
    pub at: Picoseconds,
    /// Workload stream the access belongs to.
    pub stream: u16,
}

/// Bank-level memory-controller simulator with a per-bank Row Hammer
/// defense and (optionally) the ground-truth fault oracle.
///
/// # Example
///
/// ```
/// use memctrl::{McBuilder, McConfig};
/// use mitigations::Para;
/// use workloads::Synthetic;
///
/// let mut mc = McBuilder::new(McConfig::micro2020_no_oracle())
///     .defenses_with(|bank| Box::new(Para::new(0.001, bank as u64)))
///     .build();
/// let stats = mc.run(&mut Synthetic::s1(10, 65_536, 3), 50_000);
/// assert!(stats.defense_refresh_commands > 0);
/// ```
pub struct MemoryController {
    config: McConfig,
    /// Which channel this controller serves — 0 for a legacy whole-system
    /// controller, the shard's channel index under
    /// [`McBuilder::build_system`](crate::McBuilder::build_system).
    channel: u8,
    banks: Vec<BankState>,
    defenses: Vec<Box<dyn RowHammerDefense + Send>>,
    oracles: Option<Vec<FaultOracle>>,
    refresh_engines: Vec<RefreshEngine>,
    next_refresh_at: Picoseconds,
    clock: Picoseconds,
    /// Latest service completion seen: the wall-clock high-water mark.
    /// Saturating attacks advance this even when arrival gaps are zero, so
    /// periodic refresh keeps firing in the service-time domain.
    wall: Picoseconds,
    command_log: Option<CommandLog>,
    telemetry: Option<TelemetryTap>,
    /// Armed fault schedule, if the run is a fault-injection experiment.
    faults: Option<FaultInjector>,
    /// Auto-refresh is held while the wall clock is below this (set by
    /// [`ControllerFault::PostponeRefresh`]; backlog catches up after).
    refresh_hold_until: Picoseconds,
    /// Per-bank Rolling Accumulated ACT counters (JESD79-5 RFM). Empty
    /// unless [`McConfig::rfm`] is armed: each ACT increments its bank's
    /// counter, each executed RFM debits RAAIMT, each periodic REF debits
    /// RAAIMT, and reaching RAAMMT forces the controller to issue an RFM
    /// itself.
    raa: Vec<u64>,
    stats: RunStats,
}

impl std::fmt::Debug for MemoryController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryController")
            .field("banks", &self.banks.len())
            .field("clock", &self.clock)
            .field("stats", &self.stats)
            .finish()
    }
}

impl MemoryController {
    /// The real constructor, shared by [`McBuilder`](crate::McBuilder)'s
    /// single-shard and per-channel paths. `defense_factory` is called once
    /// per bank with `defense_index_offset + local_bank` — the **global**
    /// flat bank index — so a shard's defenses seed identically to the same
    /// banks in a whole-system controller. Surfaces configuration problems
    /// as [`McBuildError`] — the engine behind
    /// [`McBuilder::try_build`](crate::McBuilder::try_build).
    pub(crate) fn try_from_parts(
        config: McConfig,
        defense_factory: &mut dyn FnMut(usize) -> Box<dyn RowHammerDefense + Send>,
        channel: u8,
        defense_index_offset: usize,
    ) -> Result<Self, McBuildError> {
        config.geometry.validate().map_err(McBuildError::InvalidConfig)?;
        config.timing.validate().map_err(McBuildError::InvalidConfig)?;
        let n_banks = config.geometry.total_banks() as usize;
        let banks = vec![BankState::new(config.timing, config.page_policy); n_banks];
        let defenses: Vec<_> =
            (0..n_banks).map(|b| defense_factory(defense_index_offset + b)).collect();
        let oracles = config.fault_model.clone().map(|m| {
            (0..n_banks)
                .map(|_| FaultOracle::new(m.clone(), config.geometry.rows_per_bank))
                .collect()
        });
        // The engine rotates on the configured timing (which tests may
        // override independently of the generation) while the generation
        // sets the postponement bound — 8 on DDR4, 16 on the halved-tREFI
        // DDR5 generations.
        let refresh_engines = (0..n_banks)
            .map(|_| {
                RefreshEngine::new(&config.timing, config.geometry.rows_per_bank)
                    .with_max_postponed(config.generation.max_postponed_refs())
            })
            .collect();
        let next_refresh_at = config.timing.t_refi;
        let raa = if config.rfm.is_some() { vec![0u64; n_banks] } else { Vec::new() };
        Ok(MemoryController {
            config,
            channel,
            banks,
            defenses,
            oracles,
            refresh_engines,
            next_refresh_at,
            clock: 0,
            wall: 0,
            command_log: None,
            telemetry: None,
            faults: None,
            refresh_hold_until: 0,
            raa,
            stats: RunStats::default(),
        })
    }

    pub(crate) fn set_command_log(&mut self, log: CommandLog) {
        self.command_log = Some(log);
    }

    pub(crate) fn set_telemetry(&mut self, tap: TelemetryTap) {
        self.telemetry = Some(tap);
    }

    pub(crate) fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(FaultInjector::new(plan));
    }

    /// What the armed fault plan has done so far, if one was attached via
    /// [`McBuilder::faults`](crate::McBuilder::faults).
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.faults.as_ref().map(FaultInjector::stats)
    }

    /// The command log, if one was attached.
    pub fn command_log(&self) -> Option<&CommandLog> {
        self.command_log.as_ref()
    }

    /// The telemetry tap, if one was attached.
    pub fn telemetry(&self) -> Option<&TelemetryTap> {
        self.telemetry.as_ref()
    }

    fn log_command(&mut self, bank: usize, at: Picoseconds, cmd: LoggedCommand) {
        if let Some(log) = &mut self.command_log {
            log.push(CommandRecord { bank: bank as u16, at, cmd });
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &McConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// The defense attached to `bank`.
    pub fn defense(&self, bank: usize) -> &dyn RowHammerDefense {
        self.defenses[bank].as_ref()
    }

    /// Mutable access to the defense attached to `bank` (fault-injection
    /// and test support).
    pub fn defense_mut(&mut self, bank: usize) -> &mut dyn RowHammerDefense {
        self.defenses[bank].as_mut()
    }

    /// Current arrival clock (ps).
    pub fn clock(&self) -> Picoseconds {
        self.clock
    }

    /// The channel this controller serves (0 unless it is a shard of a
    /// [`SystemController`](crate::SystemController)).
    pub fn channel(&self) -> u8 {
        self.channel
    }

    /// The ground-truth fault oracle attached to `bank`, if the fault model
    /// is armed. Lets end-of-run audits cross-check the defense's verdict
    /// ("zero flips") against the oracle's actual disturbance margins.
    pub fn oracle(&self, bank: usize) -> Option<&FaultOracle> {
        self.oracles.as_ref().and_then(|o| o.get(bank))
    }

    /// Records one served access against its stream, diverting ids outside
    /// the configured stream set ([`McConfig::max_streams`]) to the stray
    /// counters so a corrupt trace shows up as an audit finding instead of
    /// a phantom stream.
    fn note_stream(&mut self, stream: u16, latency: Picoseconds) {
        if stream >= self.config.max_streams {
            self.stats.stray_stream_accesses += 1;
            self.stats.stray_stream_latency += latency;
        } else {
            self.stats.note_stream(stream, latency);
        }
    }

    /// Looks up the bank for an access, rejecting out-of-range indexes
    /// (historically these were silently wrapped with `%`, which masked
    /// address-mapping bugs as wrong-bank traffic).
    fn route(&self, bank: u16, access_index: u64) -> Result<usize, McError> {
        let bank_idx = usize::from(bank);
        if bank_idx < self.banks.len() {
            Ok(bank_idx)
        } else {
            let per_rank = u32::from(self.config.geometry.banks_per_rank);
            Err(McError::BankOutOfRange {
                bank,
                banks: self.banks.len(),
                channel: self.channel,
                rank: (u32::from(bank) / per_rank).min(u32::from(u8::MAX)) as u8,
                access_index,
            })
        }
    }

    /// Books one served access into the statistics, command log, telemetry,
    /// fault oracle, and defense hook — the common tail of every dispatch
    /// path (in-order, queued, and batched).
    fn apply_outcome(
        &mut self,
        bank_idx: usize,
        row: RowId,
        arrival: Picoseconds,
        stream: u16,
        outcome: ServiceOutcome,
    ) {
        // The fault plan's clock: 0-based index of this served access.
        let access_index = self.stats.accesses;
        self.stats.accesses += 1;
        self.stats.total_latency += outcome.finish - arrival;
        self.note_stream(stream, outcome.finish - arrival);
        self.stats.completion = self.stats.completion.max(outcome.finish);
        self.wall = self.wall.max(outcome.finish);
        if self.faults.is_some() {
            self.deliver_faults(access_index);
        }
        if outcome.row_hit {
            self.stats.row_hits += 1;
        }
        if outcome.activated {
            self.stats.activations += 1;
            if let Some(at) = outcome.act_at {
                self.log_command(bank_idx, at, LoggedCommand::Activate { row: row.0 });
            }
            if let Some(tap) = &mut self.telemetry {
                tap.on_act(bank_idx, outcome.start);
            }
            if let Some(oracles) = &mut self.oracles {
                let flips = oracles[bank_idx].activate(row, outcome.start);
                self.stats.bit_flips += flips.len() as u64;
            }
            if self.config.rfm.is_some() {
                self.raa[bank_idx] += 1;
            }
            let mut actions = self.defenses[bank_idx].on_activation(row, outcome.start);
            if let Some(inj) = &mut self.faults {
                actions = inj.filter_actions(bank_idx, access_index, actions);
            }
            for action in actions {
                self.apply_action(bank_idx, action);
            }
            self.charge_overhead(bank_idx);
            self.enforce_raa_maximum(bank_idx);
        }
        if self.faults.as_mut().is_some_and(FaultInjector::take_duplicate) {
            // Command duplication at the shard boundary: the same request is
            // served once more (a second ACT if the page policy closed the
            // row). The replay is a real access: it advances the clock, the
            // oracle, and the defense exactly like the original.
            self.consult_throttle(bank_idx, row, self.clock.max(arrival));
            let replay = self.banks[bank_idx].serve(row, self.clock.max(arrival));
            self.apply_outcome(bank_idx, row, arrival, stream, replay);
        }
    }

    /// Takes every fault event due at `access_index`, forwarding tracker
    /// faults to the target bank's defense, arming controller one-shots,
    /// and applying deferred NRRs whose release access has arrived.
    /// Harness-layer events are skipped (the sweep harness consumes them).
    fn deliver_faults(&mut self, access_index: u64) {
        // Temporarily take the injector so the loop can borrow defenses and
        // refresh state mutably; `apply_action` never touches `self.faults`.
        let Some(mut inj) = self.faults.take() else { return };
        let n_banks = self.banks.len();
        for event in inj.take_due(access_index) {
            match event.kind {
                FaultKind::Tracker(fault) => {
                    let bank = usize::from(event.bank) % n_banks;
                    let applied = self.defenses[bank].inject_fault(&fault);
                    inj.note_tracker(applied);
                }
                FaultKind::Controller(fault) => {
                    if let ControllerFault::PostponeRefresh { refis } = fault {
                        let hold =
                            self.next_refresh_at + u64::from(refis) * self.config.timing.t_refi;
                        self.refresh_hold_until = self.refresh_hold_until.max(hold);
                    }
                    inj.arm(fault);
                }
                FaultKind::Harness(_) => {}
            }
        }
        for (bank, action) in inj.release_due(access_index) {
            self.apply_action(bank, action);
        }
        self.faults = Some(inj);
    }

    /// Applies every still-deferred NRR at end of run: held actions execute
    /// late rather than silently disappearing.
    fn flush_deferred_faults(&mut self) {
        let Some(mut inj) = self.faults.take() else { return };
        for (bank, action) in inj.flush_deferred() {
            self.apply_action(bank, action);
        }
        self.faults = Some(inj);
    }

    /// Runs `n` accesses from `workload` and returns a snapshot of the
    /// statistics. Can be called repeatedly to extend the same run.
    ///
    /// # Panics
    ///
    /// Panics if the workload emits an out-of-range bank index; use
    /// [`try_run`](Self::try_run) to handle that as an error.
    pub fn run(&mut self, workload: &mut dyn Workload, n: u64) -> RunStats {
        self.try_run(workload, n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`run`](Self::run), but surfaces routing problems as [`McError`]
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`McError::BankOutOfRange`] on the first access whose bank
    /// index does not exist in the configured geometry. Accesses before the
    /// offending one remain applied to the statistics.
    pub fn try_run(&mut self, workload: &mut dyn Workload, n: u64) -> Result<RunStats, McError> {
        for i in 0..n {
            let access = workload.next_access();
            self.clock += access.gap;
            self.catch_up_refresh();

            let bank_idx = self.route(access.bank, i)?;
            self.consult_throttle(bank_idx, access.row, self.clock);
            let outcome = self.banks[bank_idx].serve(access.row, self.clock);
            self.apply_outcome(bank_idx, access.row, self.clock, access.stream, outcome);
        }
        self.flush_deferred_faults();
        self.finish_telemetry();
        Ok(self.stats.clone())
    }

    /// Ingests a batch of pre-routed, absolutely-timestamped accesses — the
    /// shard-side half of the system controller's batched dispatch.
    ///
    /// Per access the arrival clock advances to `max(clock, at)`, so a
    /// channel's sub-trace replayed through batches of any size produces
    /// statistics bit-identical to feeding the same accesses through
    /// [`try_run`](Self::try_run) with delta gaps (the equivalence the
    /// sharded-execution tests pin). Telemetry is **not** flushed per batch;
    /// call [`finish_run`](Self::finish_run) once after the final batch.
    ///
    /// # Errors
    ///
    /// Returns [`McError::BankOutOfRange`] on the first access whose bank
    /// index does not exist in this controller's geometry; `access_index`
    /// is the offset within `batch`. Accesses before the offending one
    /// remain applied.
    pub fn try_run_batch(&mut self, batch: &[StampedAccess]) -> Result<(), McError> {
        for (i, a) in batch.iter().enumerate() {
            self.clock = self.clock.max(a.at);
            self.catch_up_refresh();
            let bank_idx = self.route(a.bank, i as u64)?;
            self.consult_throttle(bank_idx, a.row, self.clock);
            let outcome = self.banks[bank_idx].serve(a.row, self.clock);
            self.apply_outcome(bank_idx, a.row, self.clock, a.stream, outcome);
        }
        Ok(())
    }

    /// Flushes telemetry and returns the statistics accumulated by the
    /// batched path — the counterpart of the snapshot
    /// [`try_run`](Self::try_run) returns per call.
    pub fn finish_run(&mut self) -> RunStats {
        self.flush_deferred_faults();
        self.finish_telemetry();
        self.stats.clone()
    }

    /// Runs `n` accesses through per-bank request queues with batched
    /// FR-FCFS scheduling (the PAR-BS-like policy of Table III), instead of
    /// [`run`](Self::run)'s in-order service. Row hits within a batch are
    /// served first, so streams with row-buffer locality complete faster;
    /// everything else (defense hook, refresh machinery, fault oracle,
    /// statistics) behaves identically.
    ///
    /// # Panics
    ///
    /// Panics if the workload emits an out-of-range bank index; use
    /// [`try_run_queued`](Self::try_run_queued) to handle that as an error.
    pub fn run_queued(
        &mut self,
        workload: &mut dyn Workload,
        n: u64,
        scheduler: SchedulerConfig,
    ) -> RunStats {
        self.try_run_queued(workload, n, scheduler).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`run_queued`](Self::run_queued), but surfaces routing problems
    /// as [`McError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`McError::InvalidScheduler`] if the scheduler configuration
    /// cannot form batches, and [`McError::BankOutOfRange`] on the first
    /// access whose bank index does not exist in the configured geometry.
    /// Work already queued is drained before returning the error, so the
    /// statistics stay consistent.
    pub fn try_run_queued(
        &mut self,
        workload: &mut dyn Workload,
        n: u64,
        scheduler: SchedulerConfig,
    ) -> Result<RunStats, McError> {
        if scheduler.batch_size < 1 || scheduler.queue_depth < scheduler.batch_size {
            return Err(McError::InvalidScheduler {
                batch_size: scheduler.batch_size,
                queue_depth: scheduler.queue_depth,
            });
        }
        let mut queues: Vec<BankQueue> =
            (0..self.banks.len()).map(|_| BankQueue::new(scheduler)).collect();

        let mut route_error = None;
        for i in 0..n {
            let access = workload.next_access();
            self.clock += access.gap;
            self.catch_up_refresh();
            let bank_idx = match self.route(access.bank, i) {
                Ok(idx) => idx,
                Err(e) => {
                    route_error = Some(e);
                    break;
                }
            };

            // Back-pressure: a full queue forces the oldest batch through.
            while queues[bank_idx].is_full() {
                self.serve_one_queued(&mut queues, bank_idx);
            }
            queues[bank_idx]
                .push(access.row, self.clock, access.stream)
                // invariant: the while-loop above drained until !is_full().
                .expect("queue has space after back-pressure drain");

            // Opportunistically serve any bank that is ready "now".
            for b in 0..queues.len() {
                while !queues[b].is_empty() && self.banks[b].ready_at() <= self.clock {
                    self.serve_one_queued(&mut queues, b);
                }
            }
        }
        // Drain everything still queued.
        for b in 0..queues.len() {
            while !queues[b].is_empty() {
                self.serve_one_queued(&mut queues, b);
            }
        }
        self.flush_deferred_faults();
        self.finish_telemetry();
        match route_error {
            Some(e) => Err(e),
            None => Ok(self.stats.clone()),
        }
    }

    /// Flushes the telemetry tap's tail and end-of-run gauges.
    fn finish_telemetry(&mut self) {
        if let Some(tap) = &mut self.telemetry {
            tap.finish(self.clock.max(self.wall), &self.stats);
        }
    }

    /// Serves the scheduler's pick for `bank_idx` (which must be non-empty).
    fn serve_one_queued(&mut self, queues: &mut [BankQueue], bank_idx: usize) {
        let open = self.banks[bank_idx].open_row();
        // invariant: every caller gates on !queues[bank_idx].is_empty().
        let req = queues[bank_idx].pop_next(open).expect("caller checked non-empty");
        self.consult_throttle(bank_idx, req.row, req.arrival);
        let outcome = self.banks[bank_idx].serve(req.row, req.arrival);
        self.apply_outcome(bank_idx, req.row, req.arrival, req.stream, outcome);
    }

    /// Consults the bank's defense immediately before serving an access —
    /// the [`ThrottleDecision`](mitigations::ThrottleDecision) feedback
    /// path. A throttling defense (BlockHammer) answers with a delay; the
    /// controller holds the bank so the access cannot start before
    /// `now + delay`, and accounts the decision in the run statistics.
    ///
    /// Every dispatch path (in-order, queued, batched, duplicate replay)
    /// consults with exactly the `(row, now)` pair its `serve` call uses,
    /// so a stateful throttle sees one identical decision stream regardless
    /// of batching — preserving the batched-dispatch bit-identity contract.
    fn consult_throttle(&mut self, bank_idx: usize, row: RowId, now: Picoseconds) {
        let decision = self.defenses[bank_idx].throttle_decision(row, now);
        if decision.is_throttled() {
            self.banks[bank_idx].hold_until(now + decision.delay);
            self.stats.throttled_acts += 1;
            self.stats.throttle_delay += decision.delay;
        }
    }

    /// Drains and charges the defense's bookkeeping traffic to its bank.
    fn charge_overhead(&mut self, bank_idx: usize) {
        let extra = self.defenses[bank_idx].drain_overhead_time();
        if extra > 0 {
            self.banks[bank_idx].delay(extra);
            self.stats.defense_busy += extra;
        }
    }

    /// Executes every periodic refresh tick due at or before the wall clock
    /// (the later of the arrival clock and the service high-water mark).
    ///
    /// While a [`ControllerFault::PostponeRefresh`] hold is in effect no
    /// tick executes; once the hold lapses the backlog runs back-to-back —
    /// DDR4's postpone-then-catch-up semantics (at most 8 tREFI, enforced
    /// at plan-generation time).
    fn catch_up_refresh(&mut self) {
        let now = self.clock.max(self.wall);
        if now < self.refresh_hold_until {
            return;
        }
        while self.next_refresh_at <= now {
            let at = self.next_refresh_at;
            for bank_idx in 0..self.banks.len() {
                let end = self.banks[bank_idx].block_for_refresh(at);
                self.log_command(bank_idx, end - self.config.timing.t_rfc, LoggedCommand::Refresh);
                if let Some(tap) = &mut self.telemetry {
                    tap.on_refresh(bank_idx, at);
                }
                self.stats.completion = self.stats.completion.max(end);
                self.stats.refreshes += 1;
                let burst = self.refresh_engines[bank_idx].next_burst();
                if let Some(oracles) = &mut self.oracles {
                    oracles[bank_idx].refresh_rows(burst);
                }
                let actions = self.defenses[bank_idx].on_refresh_tick(at);
                for action in actions {
                    self.apply_action(bank_idx, action);
                }
                // JESD79-5: each REF also retires one RAAIMT quantum of
                // accumulated ACTs, so benign traffic never drifts toward
                // the RAAMMT backstop.
                self.debit_raa(bank_idx);
            }
            self.next_refresh_at += self.config.timing.t_refi;
        }
    }

    /// Charges and executes one defense-requested refresh.
    fn apply_action(&mut self, bank_idx: usize, action: RefreshAction) {
        let rows_per_bank = self.config.geometry.rows_per_bank;
        let rows: Vec<RowId> = action.rows(rows_per_bank);
        if rows.is_empty() {
            return;
        }
        let before = self.banks[bank_idx].ready_at();
        let end = self.banks[bank_idx].block_for_victim_refresh(rows.len() as u64, before);
        self.log_command(
            bank_idx,
            before,
            LoggedCommand::VictimRefresh { rows: rows.len() as u64 },
        );
        if let Some(tap) = &mut self.telemetry {
            tap.on_victim_refresh(bank_idx, rows.len() as u64, before);
        }
        self.stats.defense_busy += end - before;
        self.stats.completion = self.stats.completion.max(end);
        self.wall = self.wall.max(end);
        self.stats.defense_refresh_commands += 1;
        self.stats.victim_rows_refreshed += rows.len() as u64;
        if matches!(action, RefreshAction::Rfm { .. }) {
            self.stats.rfm_commands += 1;
            self.debit_raa(bank_idx);
        }
        if let Some(oracles) = &mut self.oracles {
            oracles[bank_idx].refresh_rows(rows);
        }
    }

    /// Debits one RAAIMT quantum from a bank's Rolling Accumulated ACT
    /// counter — the JESD79-5 accounting for an executed RFM or REF.
    /// No-op when RFM accounting is disarmed.
    fn debit_raa(&mut self, bank_idx: usize) {
        if let Some(rfm) = self.config.rfm {
            if let Some(raa) = self.raa.get_mut(bank_idx) {
                *raa = raa.saturating_sub(u64::from(rfm.raaimt));
            }
        }
    }

    /// Forces an RFM if a bank's RAA counter has reached RAAMMT — the
    /// device-side backstop a JESD79-5 controller must honour regardless of
    /// what its Row Hammer defense decided. The forced RFM is untargeted
    /// (the device refreshes its own candidates), so it blocks the bank for
    /// tRFM and debits RAAIMT without naming victim rows.
    fn enforce_raa_maximum(&mut self, bank_idx: usize) {
        let Some(rfm) = self.config.rfm else { return };
        while self.raa.get(bank_idx).is_some_and(|&r| r >= u64::from(rfm.raammt)) {
            self.banks[bank_idx].delay(rfm.t_rfm);
            self.stats.defense_busy += rfm.t_rfm;
            self.stats.forced_rfms += 1;
            self.debit_raa(bank_idx);
        }
    }

    /// A bank's current Rolling Accumulated ACT count (0 when RFM
    /// accounting is disarmed) — exposed for RFM-mode audits and tests.
    pub fn raa_count(&self, bank_idx: usize) -> u64 {
        self.raa.get(bank_idx).copied().unwrap_or(0)
    }

    /// True if no ground-truth bit flip has occurred (always true when the
    /// oracle is disabled).
    pub fn is_clean(&self) -> bool {
        self.stats.bit_flips == 0
    }

    /// Serializes the controller's complete dynamic state — clocks, refresh
    /// position, statistics, per-bank timing state, and every bank's defense
    /// — as a JSON value, such that [`restore`](Self::restore) on a freshly
    /// built controller of the same configuration resumes bit-identically.
    ///
    /// # Errors
    ///
    /// Refuses when the run carries side-band machinery whose state is not
    /// checkpointable — a fault oracle, an armed fault plan, a command log,
    /// or a telemetry tap (resuming would silently replay their histories
    /// from empty) — or when a bank's defense does not support
    /// checkpointing.
    pub fn snapshot(&self) -> Result<JsonValue, CkptError> {
        if self.oracles.is_some() {
            return Err(CkptError::Unsupported { what: "a run with a ground-truth fault oracle" });
        }
        if self.faults.is_some() {
            return Err(CkptError::Unsupported { what: "a run with an armed fault plan" });
        }
        if self.command_log.is_some() {
            return Err(CkptError::Unsupported { what: "a run with a command log attached" });
        }
        if self.telemetry.is_some() {
            return Err(CkptError::Unsupported { what: "a run with a telemetry tap attached" });
        }
        let banks = (0..self.banks.len())
            .map(|b| {
                let (open_row, hits, ready_at, last_act_at) = self.banks[b].dynamic_state();
                let eng = &self.refresh_engines[b];
                Ok(obj(vec![
                    ("open_row", opt_u64(open_row.map(|r| u64::from(r.0)))),
                    ("hits_on_open_row", JsonValue::U64(u64::from(hits))),
                    ("ready_at", JsonValue::U64(ready_at)),
                    ("last_act_at", opt_u64(last_act_at)),
                    ("ref_burst_in_window", JsonValue::U64(eng.burst_in_window())),
                    ("ref_refs_issued", JsonValue::U64(eng.refs_issued())),
                    ("ref_next_at", JsonValue::U64(eng.next_ref_at())),
                    ("raa", JsonValue::U64(self.raa.get(b).copied().unwrap_or(0))),
                    (
                        "defense",
                        self.defenses[b]
                            .snapshot_state()
                            .map_err(|e| CkptError::Defense { bank: b, detail: e })?,
                    ),
                ]))
            })
            .collect::<Result<Vec<_>, CkptError>>()?;
        Ok(obj(vec![
            ("channel", JsonValue::U64(u64::from(self.channel))),
            ("clock", JsonValue::U64(self.clock)),
            ("wall", JsonValue::U64(self.wall)),
            ("next_refresh_at", JsonValue::U64(self.next_refresh_at)),
            ("refresh_hold_until", JsonValue::U64(self.refresh_hold_until)),
            ("stats", run_stats_to_json(&self.stats)),
            ("banks", JsonValue::Arr(banks)),
        ]))
    }

    /// Replays state captured by [`snapshot`](Self::snapshot) into this
    /// controller, which must have been built from the same configuration
    /// (same geometry, timing, page policy, and defense set — the snapshot
    /// stores none of these, so the builder pins them).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or mismatched field:
    /// wrong channel, wrong bank count, a refresh position outside the
    /// engine's window, or a defense that rejects its state.
    pub fn restore(&mut self, state: &JsonValue) -> Result<(), CkptError> {
        let channel = u64_field(state, "channel")?;
        if channel != u64::from(self.channel) {
            return Err(CkptError::WrongChannel { found: channel, restoring: self.channel });
        }
        let banks = field(state, "banks")?
            .as_arr()
            .ok_or_else(|| CkptError::NotArray { key: "banks".to_owned() })?;
        if banks.len() != self.banks.len() {
            return Err(CkptError::BankCount { found: banks.len(), have: self.banks.len() });
        }
        let stats = run_stats_from_json(field(state, "stats")?)?;
        let clock = u64_field(state, "clock")?;
        let wall = u64_field(state, "wall")?;
        let next_refresh_at = u64_field(state, "next_refresh_at")?;
        let refresh_hold_until = u64_field(state, "refresh_hold_until")?;
        // Parse everything fallible for every bank before mutating any
        // state, so a malformed checkpoint cannot leave the controller
        // half-restored.
        let mut parsed = Vec::with_capacity(banks.len());
        for (b, bank) in banks.iter().enumerate() {
            let ctx = |e: CkptError| CkptError::bank(b, e);
            let shape =
                |detail: &str| CkptError::bank(b, CkptError::Shape { detail: detail.to_owned() });
            let open_row = opt_u64_field(bank, "open_row").map_err(ctx)?;
            let open_row = open_row
                .map(|r| u32::try_from(r).map(RowId).map_err(|_| shape("open_row exceeds u32")))
                .transpose()?;
            let hits = u32::try_from(u64_field(bank, "hits_on_open_row").map_err(ctx)?)
                .map_err(|_| shape("hits_on_open_row exceeds u32"))?;
            let ready_at = u64_field(bank, "ready_at").map_err(ctx)?;
            let last_act_at = opt_u64_field(bank, "last_act_at").map_err(ctx)?;
            let burst = u64_field(bank, "ref_burst_in_window").map_err(ctx)?;
            if burst >= self.refresh_engines[b].cmds_per_window() {
                return Err(shape(&format!(
                    "refresh burst position {burst} outside the {}-command window",
                    self.refresh_engines[b].cmds_per_window()
                )));
            }
            let refs_issued = u64_field(bank, "ref_refs_issued").map_err(ctx)?;
            let ref_next_at = u64_field(bank, "ref_next_at").map_err(ctx)?;
            // Pre-RFM checkpoints lack the field; 0 is their only possible
            // RAA value.
            let raa = opt_u64_field(bank, "raa").map_err(ctx)?.unwrap_or(0);
            parsed.push((
                open_row,
                hits,
                ready_at,
                last_act_at,
                burst,
                refs_issued,
                ref_next_at,
                raa,
            ));
        }
        for (b, bank) in banks.iter().enumerate() {
            self.defenses[b]
                .restore_state(field(bank, "defense").map_err(|e| CkptError::bank(b, e))?)
                .map_err(|e| CkptError::Defense { bank: b, detail: e })?;
        }
        for (b, (open_row, hits, ready_at, last_act_at, burst, refs_issued, ref_next_at, raa)) in
            parsed.into_iter().enumerate()
        {
            self.banks[b].restore_dynamic_state(open_row, hits, ready_at, last_act_at);
            self.refresh_engines[b].restore_position(burst, refs_issued, ref_next_at);
            if let Some(slot) = self.raa.get_mut(b) {
                *slot = raa;
            }
        }
        self.clock = clock;
        self.wall = wall;
        self.next_refresh_at = next_refresh_at;
        self.refresh_hold_until = refresh_hold_until;
        self.stats = stats;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::McBuilder;
    use dram_model::fault::{DisturbanceModel, MuModel};
    use graphene_core::GrapheneConfig;
    use mitigations::{GrapheneDefense, NoDefense, Para};
    use workloads::Synthetic;

    fn no_defense_mc(config: McConfig) -> MemoryController {
        McBuilder::new(config).build()
    }

    #[test]
    fn unprotected_hammer_flips_bits() {
        let model = DisturbanceModel { t_rh: 5_000, mu: MuModel::Adjacent };
        let mut mc = no_defense_mc(McConfig::single_bank(65_536, Some(model)));
        let stats = mc.run(&mut Synthetic::s3(65_536, 1), 20_000);
        assert!(stats.bit_flips > 0, "hammering without defense must flip bits");
        assert!(!mc.is_clean());
    }

    fn graphene_mc(config: McConfig) -> MemoryController {
        McBuilder::new(config)
            .defenses_with(|_| {
                let cfg = GrapheneConfig::builder().row_hammer_threshold(5_000).build().unwrap();
                Box::new(GrapheneDefense::from_config(&cfg).unwrap())
            })
            .build()
    }

    #[test]
    fn graphene_prevents_flips_on_same_attack() {
        let model = DisturbanceModel { t_rh: 5_000, mu: MuModel::Adjacent };
        let mut mc = graphene_mc(McConfig::single_bank(65_536, Some(model)));
        let stats = mc.run(&mut Synthetic::s3(65_536, 1), 100_000);
        assert_eq!(stats.bit_flips, 0);
        assert!(stats.victim_rows_refreshed > 0, "NRRs must have fired");
    }

    #[test]
    fn periodic_refresh_fires_per_trefi() {
        let mut mc = no_defense_mc(McConfig::single_bank(65_536, None));
        // One access arriving after 10 tREFI of idleness.
        struct Idle;
        impl Workload for Idle {
            fn name(&self) -> String {
                "idle".into()
            }
            fn next_access(&mut self) -> workloads::Access {
                workloads::Access { bank: 0, row: RowId(1), gap: 78_000_000, stream: 0 }
            }
        }
        let stats = mc.run(&mut Idle, 1);
        assert_eq!(stats.refreshes, 10);
    }

    #[test]
    fn saturating_attack_throughput_is_trc_bound() {
        let mut mc = no_defense_mc(McConfig::single_bank(65_536, None));
        let stats = mc.run(&mut Synthetic::s3(65_536, 1), 50_000);
        let per_access = stats.completion as f64 / stats.accesses as f64;
        // Single-row hammering with minimalist-open: every 4th access
        // re-activates; mean cost sits between tCL and tRC.
        assert!(per_access < 45_000.0 * 1.3, "per access {per_access}");
        assert!(per_access > 13_000.0);
    }

    #[test]
    fn para_adds_measurable_busy_time() {
        let mut mc = McBuilder::new(McConfig::single_bank(65_536, None))
            .defenses_with(|b| Box::new(Para::new(0.01, b as u64)))
            .build();
        let stats = mc.run(&mut Synthetic::s1(10, 65_536, 1), 100_000);
        assert!(stats.defense_refresh_commands > 0);
        assert!(stats.defense_busy > 0);
        // Roughly p × activations refreshes.
        let rate = stats.defense_refresh_commands as f64 / stats.activations as f64;
        assert!((rate - 0.01).abs() < 0.005, "rate {rate}");
    }

    #[test]
    fn slowdown_of_defense_free_run_is_zero() {
        let run = |with_para: bool| {
            let mut mc = McBuilder::new(McConfig::single_bank(65_536, None))
                .defenses_with(|b| {
                    if with_para {
                        Box::new(Para::new(0.02, b as u64)) as Box<dyn RowHammerDefense + Send>
                    } else {
                        Box::new(NoDefense::new())
                    }
                })
                .build();
            mc.run(&mut Synthetic::s3(65_536, 9), 50_000)
        };
        let base = run(false);
        let para = run(true);
        assert!(para.slowdown_vs(&base) > 0.0, "PARA must slow a saturating attack");
        assert_eq!(base.slowdown_vs(&base), 0.0);
    }

    #[test]
    fn multi_bank_traffic_spreads() {
        let mut mc = no_defense_mc(McConfig::micro2020_no_oracle());
        let mut w =
            workloads::ProxyWorkload::from_preset(workloads::SpecPreset::Libquantum, 64, 65_536, 5);
        let stats = mc.run(&mut w, 20_000);
        assert_eq!(stats.accesses, 20_000);
        assert!(stats.row_hit_rate() < 1.0);
        assert!(mc.is_clean());
    }

    #[test]
    fn queued_mode_serves_everything() {
        let mut mc = no_defense_mc(McConfig::single_bank(65_536, None));
        let stats = mc.run_queued(
            &mut Synthetic::s1(10, 65_536, 1),
            20_000,
            crate::scheduler::SchedulerConfig::par_bs_like(),
        );
        assert_eq!(stats.accesses, 20_000);
        assert_eq!(stats.activations + stats.row_hits, 20_000);
    }

    #[test]
    fn batched_scheduling_beats_fcfs_on_interleaved_rows() {
        // Two interleaved row streams: FCFS ping-pongs between rows, the
        // batched scheduler groups row hits and finishes faster.
        struct PingPong(u64);
        impl Workload for PingPong {
            fn name(&self) -> String {
                "pingpong".into()
            }
            fn next_access(&mut self) -> workloads::Access {
                self.0 += 1;
                workloads::Access {
                    bank: 0,
                    row: RowId((self.0 % 2) as u32 * 64),
                    gap: 0,
                    stream: 0,
                }
            }
        }
        let run = |cfg: crate::scheduler::SchedulerConfig| {
            let mut mc = no_defense_mc(McConfig {
                page_policy: crate::PagePolicy::Open,
                ..McConfig::single_bank(65_536, None)
            });
            mc.run_queued(&mut PingPong(0), 20_000, cfg)
        };
        let fcfs = run(crate::scheduler::SchedulerConfig::fcfs());
        let batched = run(crate::scheduler::SchedulerConfig::par_bs_like());
        assert!(
            batched.row_hits > fcfs.row_hits,
            "batched {} hits vs fcfs {}",
            batched.row_hits,
            fcfs.row_hits
        );
        assert!(batched.completion < fcfs.completion);
    }

    #[test]
    fn queued_mode_graphene_still_protects() {
        let model = DisturbanceModel { t_rh: 5_000, mu: MuModel::Adjacent };
        let mut mc = graphene_mc(McConfig::single_bank(65_536, Some(model)));
        let stats = mc.run_queued(
            &mut Synthetic::s3(65_536, 1),
            80_000,
            crate::scheduler::SchedulerConfig::par_bs_like(),
        );
        assert_eq!(stats.bit_flips, 0);
        assert!(stats.victim_rows_refreshed > 0);
    }

    #[test]
    fn stats_snapshot_accumulates_across_runs() {
        let mut mc = no_defense_mc(McConfig::single_bank(65_536, None));
        mc.run(&mut Synthetic::s3(65_536, 1), 100);
        let s = mc.run(&mut Synthetic::s3(65_536, 1), 100);
        assert_eq!(s.accesses, 200);
    }

    /// A workload with a bank index beyond any sane geometry.
    struct WrongBank;
    impl Workload for WrongBank {
        fn name(&self) -> String {
            "wrong-bank".into()
        }
        fn next_access(&mut self) -> workloads::Access {
            workloads::Access { bank: 999, row: RowId(1), gap: 1_000, stream: 0 }
        }
    }

    #[test]
    fn try_run_reports_bad_bank_mapping() {
        let mut mc = no_defense_mc(McConfig::single_bank(65_536, None));
        let err = mc.try_run(&mut WrongBank, 5).unwrap_err();
        assert_eq!(
            err,
            McError::BankOutOfRange { bank: 999, banks: 1, channel: 0, rank: 255, access_index: 0 }
        );
        assert!(err.to_string().contains("bank 999"));
        assert!(err.to_string().contains("channel 0"));
        // Well-mapped traffic still succeeds afterwards.
        let stats = mc.try_run(&mut Synthetic::s3(65_536, 1), 10).unwrap();
        assert_eq!(stats.accesses, 10);
    }

    #[test]
    fn bank_error_carries_shard_channel_and_rank_decode() {
        // A 2-rank × 4-bank shard on channel 3: bank 6 would be rank 1, but
        // bank 9 exceeds the shard, decoding to the (absent) rank 2.
        let mut geo_cfg = McConfig::micro2020_no_oracle();
        geo_cfg.geometry.channels = 4;
        geo_cfg.geometry.ranks_per_channel = 2;
        geo_cfg.geometry.banks_per_rank = 4;
        let mut system = McBuilder::new(geo_cfg).build_system();
        let err = system.shards_mut()[3]
            .try_run_batch(&[StampedAccess { bank: 9, row: RowId(1), at: 0, stream: 0 }])
            .unwrap_err();
        assert_eq!(
            err,
            McError::BankOutOfRange { bank: 9, banks: 8, channel: 3, rank: 2, access_index: 0 }
        );
    }

    #[test]
    fn try_run_queued_reports_bad_bank_mapping() {
        let mut mc = no_defense_mc(McConfig::single_bank(65_536, None));
        let err = mc
            .try_run_queued(&mut WrongBank, 5, crate::scheduler::SchedulerConfig::par_bs_like())
            .unwrap_err();
        assert!(matches!(err, McError::BankOutOfRange { bank: 999, banks: 1, channel: 0, .. }));
    }

    #[test]
    fn batched_ingestion_matches_gap_driven_run_bit_identically() {
        // The shard-side equivalence: replaying a trace as absolutely
        // stamped batches must reproduce the legacy delta-gap path exactly,
        // including refresh catch-up and defense interference.
        let model = DisturbanceModel { t_rh: 5_000, mu: MuModel::Adjacent };
        let trace = Synthetic::s3(65_536, 1).take_accesses(30_000);

        let mut legacy = graphene_mc(McConfig::single_bank(65_536, Some(model.clone())));
        let mut replay = workloads::Trace::from_accesses("t", trace.clone()).replay();
        let legacy_stats = legacy.try_run(&mut replay, 30_000).unwrap();

        let mut batched = graphene_mc(McConfig::single_bank(65_536, Some(model)));
        let mut at = 0u64;
        let stamped: Vec<StampedAccess> = trace
            .iter()
            .map(|a| {
                at += a.gap;
                StampedAccess { bank: a.bank, row: a.row, at, stream: a.stream }
            })
            .collect();
        for chunk in stamped.chunks(977) {
            batched.try_run_batch(chunk).unwrap();
        }
        assert_eq!(batched.finish_run(), legacy_stats);
    }

    #[test]
    #[should_panic(expected = "targets bank 999")]
    fn run_panics_on_bad_bank_mapping() {
        let mut mc = no_defense_mc(McConfig::single_bank(65_536, None));
        let _ = mc.run(&mut WrongBank, 1);
    }

    /// A workload whose stream id lies outside the configured stream set.
    struct StrayStream;
    impl Workload for StrayStream {
        fn name(&self) -> String {
            "stray-stream".into()
        }
        fn next_access(&mut self) -> workloads::Access {
            workloads::Access { bank: 0, row: RowId(7), gap: 1_000, stream: 65_535 }
        }
    }

    #[test]
    fn stray_stream_ids_are_diverted_not_allocated() {
        // Regression: stream id 65535 used to grow per_stream to a
        // 64K-entry vec; now it lands in the stray counters, which the
        // audit flags while the exact latency invariant still holds.
        let mut mc = no_defense_mc(McConfig::single_bank(65_536, None));
        let stats = mc.run(&mut StrayStream, 10);
        assert!(stats.per_stream.is_empty());
        assert_eq!(stats.stray_stream_accesses, 10);
        assert_eq!(stats.stray_stream_latency, stats.total_latency);
        let findings = crate::StatsAudit::check(&stats).unwrap_err();
        assert!(findings.iter().any(|f| matches!(f, crate::StatsFinding::StrayStreams { .. })));
    }

    #[test]
    fn real_runs_satisfy_the_stats_audit() {
        let mut mc = no_defense_mc(McConfig::micro2020_no_oracle());
        let mut w =
            workloads::ProxyWorkload::from_preset(workloads::SpecPreset::Libquantum, 64, 65_536, 5);
        let stats = mc.run(&mut w, 20_000);
        crate::StatsAudit::check_at(&stats, mc.clock()).unwrap();
    }

    #[test]
    fn oracle_accessor_exposes_per_bank_state() {
        let model = DisturbanceModel { t_rh: 5_000, mu: MuModel::Adjacent };
        let mut mc = no_defense_mc(McConfig::single_bank(65_536, Some(model)));
        mc.run(&mut Synthetic::s3(65_536, 1), 1_000);
        let oracle = mc.oracle(0).expect("oracle armed");
        assert!(oracle.max_disturbance() > 0.0);
        assert!(mc.oracle(1).is_none());
        assert!(no_defense_mc(McConfig::single_bank(64, None)).oracle(0).is_none());
    }

    #[test]
    fn invalid_scheduler_config_is_an_error_not_a_panic() {
        let mut mc = no_defense_mc(McConfig::single_bank(65_536, None));
        let err = mc
            .try_run_queued(
                &mut Synthetic::s3(65_536, 1),
                10,
                SchedulerConfig { batch_size: 0, queue_depth: 4 },
            )
            .unwrap_err();
        assert_eq!(err, McError::InvalidScheduler { batch_size: 0, queue_depth: 4 });
        let err = mc
            .try_run_queued(
                &mut Synthetic::s3(65_536, 1),
                10,
                SchedulerConfig { batch_size: 8, queue_depth: 4 },
            )
            .unwrap_err();
        assert!(err.to_string().contains("batch_size 8"));
        assert_eq!(mc.stats().accesses, 0, "rejected runs must not serve anything");
    }

    use faultsim::FaultSpec;

    fn fault_plan(spec: FaultSpec) -> FaultPlan {
        FaultPlan::generate(&spec)
    }

    fn graphene_mc_with_faults(config: McConfig, plan: FaultPlan) -> MemoryController {
        McBuilder::new(config)
            .defenses_with(|_| {
                let cfg = GrapheneConfig::builder().row_hammer_threshold(5_000).build().unwrap();
                Box::new(GrapheneDefense::from_config(&cfg).unwrap())
            })
            .faults(plan)
            .build()
    }

    #[test]
    fn dropped_nrrs_turn_into_oracle_flips() {
        // Arm far more drop events than Graphene will emit NRRs: every
        // defense action is squeezed out, so the hammering that a clean run
        // survives (graphene_prevents_flips_on_same_attack) now flips bits.
        let model = DisturbanceModel { t_rh: 5_000, mu: MuModel::Adjacent };
        let spec = FaultSpec { nrr_drops: 400, accesses: 100_000, banks: 1, ..FaultSpec::new(42) };
        let mut mc =
            graphene_mc_with_faults(McConfig::single_bank(65_536, Some(model)), fault_plan(spec));
        let stats = mc.run(&mut Synthetic::s3(65_536, 1), 100_000);
        let fstats = mc.fault_stats().unwrap();
        assert!(fstats.nrrs_dropped > 0, "drops must have fired");
        assert!(stats.bit_flips > 0, "undefended victims must flip");
        assert!(!mc.is_clean());
    }

    #[test]
    fn tracker_faults_reach_the_defense() {
        let spec = FaultSpec { accesses: 20_000, banks: 1, ..FaultSpec::single_bit_flips(7, 16) };
        let mut mc = graphene_mc_with_faults(McConfig::single_bank(65_536, None), fault_plan(spec));
        mc.run(&mut Synthetic::s3(65_536, 1), 20_000);
        let fstats = mc.fault_stats().unwrap();
        assert_eq!(fstats.tracker_faults_applied + fstats.tracker_faults_vacuous, 16);
        assert!(fstats.tracker_faults_applied > 0, "Graphene's table must absorb some flips");
    }

    #[test]
    fn duplicated_commands_replay_accesses() {
        let spec = FaultSpec { duplicates: 3, accesses: 10_000, banks: 1, ..FaultSpec::new(5) };
        let mut mc = graphene_mc_with_faults(McConfig::single_bank(65_536, None), fault_plan(spec));
        let stats = mc.run(&mut Synthetic::s3(65_536, 1), 10_000);
        assert_eq!(mc.fault_stats().unwrap().commands_duplicated, 3);
        assert_eq!(stats.accesses, 10_003, "each duplication serves one extra access");
    }

    #[test]
    fn postponed_refresh_catches_up_within_the_ddr4_bound() {
        let run = |plan: Option<FaultPlan>| {
            let mut builder = McBuilder::new(McConfig::single_bank(65_536, None));
            if let Some(p) = plan {
                builder = builder.faults(p);
            }
            let mut mc = builder.build();
            // 40k accesses at 10 ns apart ≈ 51 tREFI of wall clock.
            let mut w = workloads::Trace::from_accesses(
                "steady",
                (0..40_000u64)
                    .map(|i| workloads::Access {
                        bank: 0,
                        row: RowId((i % 97) as u32),
                        gap: 10_000,
                        stream: 0,
                    })
                    .collect(),
            )
            .replay();
            (mc.run(&mut w, 40_000), mc.fault_stats().map(|f| f.refreshes_postponed))
        };
        let (nominal, _) = run(None);
        let spec =
            FaultSpec { refresh_postpones: 4, accesses: 40_000, banks: 1, ..FaultSpec::new(9) };
        let (faulted, postponed) = run(Some(fault_plan(spec)));
        assert!(postponed.unwrap() > 0);
        assert!(faulted.refreshes <= nominal.refreshes);
        assert!(
            nominal.refreshes - faulted.refreshes <= u64::from(faultsim::MAX_REFRESH_POSTPONE_REFI),
            "catch-up must leave at most the legal 8-tREFI deficit \
             (nominal {}, faulted {})",
            nominal.refreshes,
            faulted.refreshes
        );
    }

    #[test]
    fn deferred_nrrs_are_flushed_not_lost() {
        let spec = FaultSpec { nrr_defers: 6, accesses: 50_000, banks: 1, ..FaultSpec::new(13) };
        let mut mc = graphene_mc_with_faults(McConfig::single_bank(65_536, None), fault_plan(spec));
        mc.run(&mut Synthetic::s3(65_536, 1), 50_000);
        let fstats = mc.fault_stats().unwrap();
        assert!(fstats.nrrs_deferred > 0, "defers must have caught an NRR");
        assert_eq!(
            fstats.nrrs_released, fstats.nrrs_deferred,
            "every deferred action must eventually apply"
        );
    }

    #[test]
    fn checkpoint_resumes_bit_identically_through_json_text() {
        let accesses = Synthetic::s3(65_536, 1).take_accesses(60_000);
        let halves = |range: std::ops::Range<usize>| {
            workloads::Trace::from_accesses("half", accesses[range].to_vec()).replay()
        };
        // Uninterrupted reference run of the first half.
        let mut full = graphene_mc(McConfig::single_bank(65_536, None));
        full.run(&mut halves(0..30_000), 30_000);
        // Checkpoint it through rendered text and restore into a fresh
        // controller of the same configuration.
        let text = full.snapshot().unwrap().to_string();
        let mut resumed = graphene_mc(McConfig::single_bank(65_536, None));
        resumed.restore(&telemetry::json::parse(&text).unwrap()).unwrap();
        // The second half must play out identically on both.
        let a = full.run(&mut halves(30_000..60_000), 30_000);
        let b = resumed.run(&mut halves(30_000..60_000), 30_000);
        assert_eq!(a, b);
        assert_eq!(full.snapshot().unwrap().to_string(), resumed.snapshot().unwrap().to_string());
    }

    #[test]
    fn checkpoint_refuses_a_run_with_a_fault_oracle() {
        let model = DisturbanceModel { t_rh: 5_000, mu: MuModel::Adjacent };
        let mc = no_defense_mc(McConfig::single_bank(65_536, Some(model)));
        let err = mc.snapshot().err().expect("oracle runs must refuse checkpointing");
        assert!(matches!(err, crate::ckpt::CkptError::Unsupported { .. }), "{err:?}");
        assert!(err.to_string().contains("fault oracle"), "{err}");
    }

    #[test]
    fn restore_rejects_a_checkpoint_with_the_wrong_shape() {
        let mut mc = graphene_mc(McConfig::single_bank(65_536, None));
        mc.run(&mut Synthetic::s3(65_536, 1), 1_000);
        let snap = mc.snapshot().unwrap();
        // micro2020_no_oracle has 16 banks per channel shard; the snapshot
        // came from a single-bank controller.
        let mut other = McBuilder::new(McConfig::micro2020_no_oracle()).build();
        let err = other.restore(&snap).unwrap_err();
        assert!(err.to_string().contains("bank(s)"), "{err}");
    }

    #[test]
    fn rfm_issuer_graphene_protects_on_ddr5() {
        use dram_model::Generation;
        use mitigations::RfmIssuer;

        let model = DisturbanceModel { t_rh: 5_000, mu: MuModel::Adjacent };
        let mut mc = McBuilder::new(McConfig::single_bank_for_generation(
            Generation::Ddr5_4800,
            65_536,
            Some(model),
        ))
        .defenses_with(|_| {
            let cfg = GrapheneConfig::builder()
                .row_hammer_threshold(5_000)
                .timing(Generation::Ddr5_4800.timing())
                .build()
                .unwrap();
            Box::new(RfmIssuer::new(Box::new(GrapheneDefense::from_config(&cfg).unwrap())))
        })
        .build();
        let stats = mc.run(&mut Synthetic::s3(65_536, 1), 100_000);
        assert_eq!(stats.bit_flips, 0, "RFM-mode Graphene must still protect");
        assert!(stats.rfm_commands > 0, "DDR5 defense must issue RFMs, not NRRs");
        assert_eq!(
            stats.rfm_commands, stats.defense_refresh_commands,
            "every defense refresh on this path is an RFM"
        );
        assert!(stats.victim_rows_refreshed > 0);
    }

    #[test]
    fn raa_backstop_forces_rfms_when_the_defense_stays_silent() {
        use dram_model::Generation;

        // No defense: only the controller's RAAMMT backstop stands between
        // a saturating hammer and unbounded accumulated ACTs.
        let gen = Generation::Ddr5_4800;
        let mut mc =
            McBuilder::new(McConfig::single_bank_for_generation(gen, 65_536, None)).build();
        let stats = mc.run(&mut Synthetic::s3(65_536, 1), 50_000);
        let rfm = gen.rfm().unwrap();
        assert!(stats.forced_rfms > 0, "saturating ACTs must trip the RAAMMT backstop");
        assert!(
            mc.raa_count(0) < u64::from(rfm.raammt),
            "RAA {} must stay below RAAMMT {}",
            mc.raa_count(0),
            rfm.raammt
        );
    }

    #[test]
    fn ddr4_runs_never_touch_rfm_accounting() {
        let mut mc = graphene_mc(McConfig::single_bank(65_536, None));
        let stats = mc.run(&mut Synthetic::s3(65_536, 1), 50_000);
        assert_eq!(stats.rfm_commands, 0);
        assert_eq!(stats.forced_rfms, 0);
        assert_eq!(mc.raa_count(0), 0);
    }

    #[test]
    fn ddr5_checkpoint_round_trips_raa_state() {
        use dram_model::Generation;
        use mitigations::RfmIssuer;

        let build = || {
            McBuilder::new(McConfig::single_bank_for_generation(
                Generation::Ddr5_4800,
                65_536,
                None,
            ))
            .defenses_with(|_| {
                let cfg = GrapheneConfig::builder()
                    .row_hammer_threshold(5_000)
                    .timing(Generation::Ddr5_4800.timing())
                    .build()
                    .unwrap();
                Box::new(RfmIssuer::new(Box::new(GrapheneDefense::from_config(&cfg).unwrap())))
            })
            .build()
        };
        let accesses = Synthetic::s3(65_536, 1).take_accesses(60_000);
        let halves = |range: std::ops::Range<usize>| {
            workloads::Trace::from_accesses("half", accesses[range].to_vec()).replay()
        };
        let mut full = build();
        full.run(&mut halves(0..30_000), 30_000);
        assert!(full.raa_count(0) > 0 || full.stats().rfm_commands > 0);
        let text = full.snapshot().unwrap().to_string();
        let mut resumed = build();
        resumed.restore(&telemetry::json::parse(&text).unwrap()).unwrap();
        assert_eq!(full.raa_count(0), resumed.raa_count(0));
        let a = full.run(&mut halves(30_000..60_000), 30_000);
        let b = resumed.run(&mut halves(30_000..60_000), 30_000);
        assert_eq!(a, b);
    }

    #[test]
    fn fault_runs_are_bit_reproducible_from_the_seed() {
        let model = DisturbanceModel { t_rh: 5_000, mu: MuModel::Adjacent };
        let run = || {
            let spec = FaultSpec { accesses: 30_000, banks: 1, ..FaultSpec::chaos(77) };
            let mut mc = graphene_mc_with_faults(
                McConfig::single_bank(65_536, Some(model.clone())),
                fault_plan(spec),
            );
            let stats = mc.run(&mut Synthetic::s3(65_536, 1), 30_000);
            (stats, *mc.fault_stats().unwrap())
        };
        assert_eq!(run(), run());
    }
}
