//! Physical-address decoding.
//!
//! The controller crates elsewhere in this workspace operate on
//! already-decoded (bank, row) pairs; this module supplies the decode for
//! users who start from flat physical addresses, with the two classic
//! schemes:
//!
//! * [`MappingScheme::ChannelInterleaved`] — column bits lowest, then
//!   channel, bank, rank, row: consecutive cache lines stripe across
//!   channels and banks, the layout the paper's 4-channel system implies.
//! * [`MappingScheme::BankXor`] — same, but the bank index is XOR-folded
//!   with the low row bits (permutation-based interleaving), the standard
//!   trick to spread row-conflict strides across banks.
//!
//! Decoding is bit-exact and bijective over the configured capacity; both
//! properties are tested.
//!
//! For the channel-sharded system controller this module also supplies
//! [`SystemAddress`] (a fully-decoded bank coordinate plus row) and
//! [`MappingPolicy`] — the front-end routing function that scatters a
//! workload's flat `(bank, row)` accesses across channels.

use dram_model::geometry::{bits_for, BankCoord, DramGeometry, RowId};
use serde::{Deserialize, Serialize};

/// How physical-address bits map onto (channel, rank, bank, row, column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MappingScheme {
    /// `[row | rank | bank | channel | column]`, LSB on the right.
    ChannelInterleaved,
    /// Like [`MappingScheme::ChannelInterleaved`], with
    /// `bank ^= row & (banks − 1)`.
    BankXor,
}

/// A decoded physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DecodedAddress {
    /// Which bank the access targets.
    pub coord: BankCoord,
    /// Row within the bank.
    pub row: RowId,
    /// Column within the row.
    pub column: u32,
}

/// Bit-exact physical-address mapper.
///
/// # Example
///
/// ```
/// use dram_model::DramGeometry;
/// use memctrl::mapping::{AddressMapper, MappingScheme};
///
/// let m = AddressMapper::new(DramGeometry::micro2020(), 1024, MappingScheme::ChannelInterleaved);
/// let d = m.decode(0x1234_5678);
/// assert!(d.row.0 < 65_536);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMapper {
    geometry: DramGeometry,
    scheme: MappingScheme,
    column_bits: u32,
    channel_bits: u32,
    rank_bits: u32,
    bank_bits: u32,
    row_bits: u32,
}

impl AddressMapper {
    /// Creates a mapper for `geometry` with `columns` columns per row.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is not a power of two (bit-sliced mapping
    /// requires it) or zero.
    pub fn new(geometry: DramGeometry, columns: u32, scheme: MappingScheme) -> Self {
        let dims = [
            ("columns", columns),
            ("channels", u32::from(geometry.channels)),
            ("ranks", u32::from(geometry.ranks_per_channel)),
            ("banks", u32::from(geometry.banks_per_rank)),
            ("rows", geometry.rows_per_bank),
        ];
        for (name, v) in dims {
            assert!(v > 0 && v.is_power_of_two(), "{name} must be a non-zero power of two");
        }
        AddressMapper {
            geometry,
            scheme,
            column_bits: bits_for(u64::from(columns)),
            channel_bits: bits_for(u64::from(geometry.channels)),
            rank_bits: bits_for(u64::from(geometry.ranks_per_channel)),
            bank_bits: bits_for(u64::from(geometry.banks_per_rank)),
            row_bits: bits_for(u64::from(geometry.rows_per_bank)),
        }
    }

    /// Total addressable capacity in mapper units (one unit = one column).
    pub fn capacity(&self) -> u64 {
        1u64 << (self.column_bits
            + self.channel_bits
            + self.rank_bits
            + self.bank_bits
            + self.row_bits)
    }

    /// Decodes a flat physical address (in column-sized units, wrapped at
    /// capacity).
    pub fn decode(&self, addr: u64) -> DecodedAddress {
        let mut a = addr % self.capacity();
        let mut take = |bits: u32| -> u64 {
            let v = a & ((1u64 << bits) - 1);
            a >>= bits;
            v
        };
        let column = take(self.column_bits) as u32;
        let channel = take(self.channel_bits) as u8;
        let mut bank = take(self.bank_bits) as u8;
        let rank = take(self.rank_bits) as u8;
        let row = take(self.row_bits) as u32;
        if self.scheme == MappingScheme::BankXor {
            bank ^= (row as u8) & (self.geometry.banks_per_rank - 1);
        }
        DecodedAddress { coord: BankCoord { channel, rank, bank }, row: RowId(row), column }
    }

    /// Encodes a decoded address back to its flat form (inverse of
    /// [`decode`](Self::decode)).
    pub fn encode(&self, d: DecodedAddress) -> u64 {
        let bank = match self.scheme {
            MappingScheme::ChannelInterleaved => d.coord.bank,
            MappingScheme::BankXor => {
                d.coord.bank ^ ((d.row.0 as u8) & (self.geometry.banks_per_rank - 1))
            }
        };
        let mut a = 0u64;
        let mut put = |v: u64, bits: u32, at: &mut u32| {
            a |= v << *at;
            *at += bits;
        };
        let mut at = 0;
        put(u64::from(d.column), self.column_bits, &mut at);
        put(u64::from(d.coord.channel), self.channel_bits, &mut at);
        put(u64::from(bank), self.bank_bits, &mut at);
        put(u64::from(d.coord.rank), self.rank_bits, &mut at);
        put(u64::from(d.row.0), self.row_bits, &mut at);
        a
    }
}

/// A fully-decoded system address: which bank in the whole memory system,
/// and which row inside it.
///
/// This is the unit the sharded front end routes on, and what
/// [`McError::AddressOutOfRange`](crate::McError::AddressOutOfRange) carries
/// when an access does not exist in the configured geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SystemAddress {
    /// Coordinate of the target bank.
    pub coord: BankCoord,
    /// Row within the bank.
    pub row: RowId,
}

impl std::fmt::Display for SystemAddress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.coord, self.row)
    }
}

/// How the system front end scatters a workload's flat `(bank, row)` pairs
/// across channels.
///
/// Workload generators emit a flat bank index in `[0, total_banks)`; the
/// policy decides which *channel* serves the access and which bank within
/// that channel, the knob that determines how multi-bank attack traffic
/// concentrates or spreads:
///
/// * [`MappingPolicy::RowInterleaved`] — the channel comes from the low row
///   bits (`row mod channels`), the in-channel bank from
///   `bank mod banks_per_channel`. Row-striding traffic rotates channels
///   even when it stays on one nominal bank.
/// * [`MappingPolicy::BankInterleaved`] — consecutive flat bank indices
///   rotate channels (`bank mod channels`); the in-channel bank is
///   `bank / channels`. The classic layout for bank-parallel streams.
/// * [`MappingPolicy::ChannelXor`] — like bank-interleaved, but the channel
///   selector is XOR-folded with the low row bits
///   (`(bank ^ row) mod channels`), the permutation trick that breaks
///   adversarial strides resonating with the channel count.
///
/// Every policy is a deterministic function of `(bank, row)`, so a trace
/// routed twice lands identically — the property the sharded-equals-legacy
/// equivalence tests pin.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MappingPolicy {
    /// Channel from low row bits; bank id picks the bank within the channel.
    RowInterleaved,
    /// Consecutive bank ids rotate channels (the default).
    #[default]
    BankInterleaved,
    /// Bank-interleaved with the channel selector XOR-folded with row bits.
    ChannelXor,
}

impl MappingPolicy {
    /// Short name for reports and JSON blocks.
    pub fn name(&self) -> &'static str {
        match self {
            MappingPolicy::RowInterleaved => "row-interleaved",
            MappingPolicy::BankInterleaved => "bank-interleaved",
            MappingPolicy::ChannelXor => "channel-xor",
        }
    }

    /// Routes a flat `(bank, row)` access to its system address under this
    /// policy, or reports the out-of-range address if the access does not
    /// exist in `geometry`.
    ///
    /// # Errors
    ///
    /// Returns the offending [`SystemAddress`] (best-effort dense decode,
    /// saturated to the coordinate width) when `bank` is at or beyond
    /// `geometry.total_banks()` or `row` is at or beyond
    /// `geometry.rows_per_bank`.
    pub fn route(
        &self,
        geometry: &DramGeometry,
        bank: u16,
        row: RowId,
    ) -> Result<SystemAddress, SystemAddress> {
        let total = geometry.total_banks();
        let per_channel = geometry.banks_per_channel();
        if u32::from(bank) >= total || row.0 >= geometry.rows_per_bank {
            // Dense best-effort decode so the error names the coordinate the
            // access *asked* for, even though the geometry lacks it.
            let channel = (u32::from(bank) / per_channel).min(u32::from(u8::MAX)) as u8;
            let local = u32::from(bank) % per_channel;
            return Err(SystemAddress {
                coord: BankCoord {
                    channel,
                    rank: (local / u32::from(geometry.banks_per_rank)) as u8,
                    bank: (local % u32::from(geometry.banks_per_rank)) as u8,
                },
                row,
            });
        }
        let channels = u32::from(geometry.channels);
        let (channel, local) = match self {
            MappingPolicy::RowInterleaved => (row.0 % channels, u32::from(bank) % per_channel),
            MappingPolicy::BankInterleaved => {
                (u32::from(bank) % channels, u32::from(bank) / channels)
            }
            MappingPolicy::ChannelXor => {
                ((u32::from(bank) ^ row.0) % channels, u32::from(bank) / channels)
            }
        };
        Ok(SystemAddress {
            coord: BankCoord {
                channel: channel as u8,
                rank: (local / u32::from(geometry.banks_per_rank)) as u8,
                bank: (local % u32::from(geometry.banks_per_rank)) as u8,
            },
            row,
        })
    }

    /// The flat bank index *within its channel's shard* for a routed
    /// address (rank-major, as [`DramGeometry::bank_index`] orders a
    /// one-channel geometry).
    pub fn shard_bank_index(geometry: &DramGeometry, addr: SystemAddress) -> usize {
        usize::from(addr.coord.rank) * usize::from(geometry.banks_per_rank)
            + usize::from(addr.coord.bank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapper(scheme: MappingScheme) -> AddressMapper {
        AddressMapper::new(DramGeometry::micro2020(), 1024, scheme)
    }

    #[test]
    fn decode_encode_roundtrip() {
        for scheme in [MappingScheme::ChannelInterleaved, MappingScheme::BankXor] {
            let m = mapper(scheme);
            for addr in (0..m.capacity()).step_by(987_654_321).take(1000) {
                assert_eq!(m.encode(m.decode(addr)), addr, "{scheme:?} @ {addr:#x}");
            }
        }
    }

    #[test]
    fn sequential_addresses_stripe_across_channels() {
        let m = mapper(MappingScheme::ChannelInterleaved);
        let mut channels_seen = std::collections::HashSet::new();
        for i in 0..4u64 {
            channels_seen.insert(m.decode(1024 * i).coord.channel);
        }
        assert_eq!(channels_seen.len(), 4, "row-sized strides must rotate channels");
    }

    #[test]
    fn fields_stay_in_range() {
        let m = mapper(MappingScheme::BankXor);
        for addr in (0..m.capacity()).step_by(123_456_789).take(2000) {
            let d = m.decode(addr);
            assert!(d.coord.channel < 4);
            assert!(d.coord.rank < 1);
            assert!(d.coord.bank < 16);
            assert!(d.row.0 < 65_536);
            assert!(d.column < 1024);
        }
    }

    #[test]
    fn bank_xor_spreads_row_strides() {
        // A stride that keeps the plain bank bits constant while changing the
        // row: plain mapping hits one bank, XOR mapping spreads.
        let plain = mapper(MappingScheme::ChannelInterleaved);
        let xor = mapper(MappingScheme::BankXor);
        let row_stride = plain.capacity() / u64::from(plain.geometry.rows_per_bank);
        let banks = |m: &AddressMapper| {
            (0..16u64)
                .map(|i| m.decode(i * row_stride).coord.bank)
                .collect::<std::collections::HashSet<u8>>()
                .len()
        };
        assert_eq!(banks(&plain), 1);
        assert_eq!(banks(&xor), 16);
    }

    #[test]
    fn addresses_wrap_at_capacity() {
        let m = mapper(MappingScheme::ChannelInterleaved);
        assert_eq!(m.decode(0), m.decode(m.capacity()));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut g = DramGeometry::micro2020();
        g.rows_per_bank = 65_537;
        let _ = AddressMapper::new(g, 1024, MappingScheme::ChannelInterleaved);
    }

    const POLICIES: [MappingPolicy; 3] =
        [MappingPolicy::RowInterleaved, MappingPolicy::BankInterleaved, MappingPolicy::ChannelXor];

    #[test]
    fn route_stays_in_geometry() {
        let g = DramGeometry::micro2020();
        for policy in POLICIES {
            for bank in 0..g.total_banks() as u16 {
                for row in [0u32, 1, 7, 65_535] {
                    let a = policy.route(&g, bank, RowId(row)).unwrap();
                    assert!(a.coord.channel < g.channels, "{policy:?} bank {bank} row {row}");
                    assert!(a.coord.rank < g.ranks_per_channel);
                    assert!(a.coord.bank < g.banks_per_rank);
                    assert_eq!(a.row.0, row);
                    let local = MappingPolicy::shard_bank_index(&g, a);
                    assert!(local < g.banks_per_channel() as usize);
                }
            }
        }
    }

    #[test]
    fn bank_interleaved_rotates_channels_and_is_injective() {
        let g = DramGeometry::micro2020();
        let policy = MappingPolicy::BankInterleaved;
        // Fixed row: the 64 flat banks must land on 64 distinct
        // (channel, local bank) slots, rotating channels with the bank id.
        let mut seen = std::collections::HashSet::new();
        for bank in 0..g.total_banks() as u16 {
            let a = policy.route(&g, bank, RowId(42)).unwrap();
            assert_eq!(u32::from(a.coord.channel), u32::from(bank) % u32::from(g.channels));
            seen.insert((a.coord.channel, MappingPolicy::shard_bank_index(&g, a)));
        }
        assert_eq!(seen.len(), g.total_banks() as usize);
    }

    #[test]
    fn row_interleaved_rotates_channels_with_row() {
        let g = DramGeometry::micro2020();
        let policy = MappingPolicy::RowInterleaved;
        let channels: std::collections::HashSet<u8> =
            (0..8u32).map(|r| policy.route(&g, 3, RowId(r)).unwrap().coord.channel).collect();
        assert_eq!(channels.len(), usize::from(g.channels));
    }

    #[test]
    fn channel_xor_breaks_channel_resonant_strides() {
        let g = DramGeometry::micro2020();
        // Rotate banks in channel-sized strides while walking rows: plain
        // bank-interleaving pins every access to channel 0, the XOR fold
        // spreads them with the row's low bits.
        let hit = |policy: MappingPolicy| {
            (0..16u32)
                .map(|i| policy.route(&g, (i as u16 * 4) % 64, RowId(i)).unwrap().coord.channel)
                .collect::<std::collections::HashSet<u8>>()
                .len()
        };
        assert_eq!(hit(MappingPolicy::BankInterleaved), 1);
        assert!(hit(MappingPolicy::ChannelXor) > 1);
    }

    #[test]
    fn route_rejects_out_of_range_addresses() {
        let g = DramGeometry::micro2020();
        for policy in POLICIES {
            let bad_bank = policy.route(&g, 64, RowId(0)).unwrap_err();
            assert_eq!(bad_bank.coord.channel, 4, "dense decode of the 65th bank");
            let bad_row = policy.route(&g, 0, RowId(65_536)).unwrap_err();
            assert_eq!(bad_row.row, RowId(65_536));
        }
    }

    #[test]
    fn system_address_displays_full_coordinate() {
        let a = SystemAddress { coord: BankCoord { channel: 2, rank: 0, bank: 5 }, row: RowId(16) };
        assert_eq!(a.to_string(), "ch2/rk0/bk5/row 0x0010");
    }
}
