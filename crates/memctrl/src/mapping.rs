//! Physical-address decoding.
//!
//! The controller crates elsewhere in this workspace operate on
//! already-decoded (bank, row) pairs; this module supplies the decode for
//! users who start from flat physical addresses, with the two classic
//! schemes:
//!
//! * [`MappingScheme::ChannelInterleaved`] — column bits lowest, then
//!   channel, bank, rank, row: consecutive cache lines stripe across
//!   channels and banks, the layout the paper's 4-channel system implies.
//! * [`MappingScheme::BankXor`] — same, but the bank index is XOR-folded
//!   with the low row bits (permutation-based interleaving), the standard
//!   trick to spread row-conflict strides across banks.
//!
//! Decoding is bit-exact and bijective over the configured capacity; both
//! properties are tested.

use dram_model::geometry::{bits_for, BankCoord, DramGeometry, RowId};
use serde::{Deserialize, Serialize};

/// How physical-address bits map onto (channel, rank, bank, row, column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MappingScheme {
    /// `[row | rank | bank | channel | column]`, LSB on the right.
    ChannelInterleaved,
    /// Like [`MappingScheme::ChannelInterleaved`], with
    /// `bank ^= row & (banks − 1)`.
    BankXor,
}

/// A decoded physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DecodedAddress {
    /// Which bank the access targets.
    pub coord: BankCoord,
    /// Row within the bank.
    pub row: RowId,
    /// Column within the row.
    pub column: u32,
}

/// Bit-exact physical-address mapper.
///
/// # Example
///
/// ```
/// use dram_model::DramGeometry;
/// use memctrl::mapping::{AddressMapper, MappingScheme};
///
/// let m = AddressMapper::new(DramGeometry::micro2020(), 1024, MappingScheme::ChannelInterleaved);
/// let d = m.decode(0x1234_5678);
/// assert!(d.row.0 < 65_536);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMapper {
    geometry: DramGeometry,
    scheme: MappingScheme,
    column_bits: u32,
    channel_bits: u32,
    rank_bits: u32,
    bank_bits: u32,
    row_bits: u32,
}

impl AddressMapper {
    /// Creates a mapper for `geometry` with `columns` columns per row.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is not a power of two (bit-sliced mapping
    /// requires it) or zero.
    pub fn new(geometry: DramGeometry, columns: u32, scheme: MappingScheme) -> Self {
        let dims = [
            ("columns", columns),
            ("channels", u32::from(geometry.channels)),
            ("ranks", u32::from(geometry.ranks_per_channel)),
            ("banks", u32::from(geometry.banks_per_rank)),
            ("rows", geometry.rows_per_bank),
        ];
        for (name, v) in dims {
            assert!(v > 0 && v.is_power_of_two(), "{name} must be a non-zero power of two");
        }
        AddressMapper {
            geometry,
            scheme,
            column_bits: bits_for(u64::from(columns)),
            channel_bits: bits_for(u64::from(geometry.channels)),
            rank_bits: bits_for(u64::from(geometry.ranks_per_channel)),
            bank_bits: bits_for(u64::from(geometry.banks_per_rank)),
            row_bits: bits_for(u64::from(geometry.rows_per_bank)),
        }
    }

    /// Total addressable capacity in mapper units (one unit = one column).
    pub fn capacity(&self) -> u64 {
        1u64 << (self.column_bits
            + self.channel_bits
            + self.rank_bits
            + self.bank_bits
            + self.row_bits)
    }

    /// Decodes a flat physical address (in column-sized units, wrapped at
    /// capacity).
    pub fn decode(&self, addr: u64) -> DecodedAddress {
        let mut a = addr % self.capacity();
        let mut take = |bits: u32| -> u64 {
            let v = a & ((1u64 << bits) - 1);
            a >>= bits;
            v
        };
        let column = take(self.column_bits) as u32;
        let channel = take(self.channel_bits) as u8;
        let mut bank = take(self.bank_bits) as u8;
        let rank = take(self.rank_bits) as u8;
        let row = take(self.row_bits) as u32;
        if self.scheme == MappingScheme::BankXor {
            bank ^= (row as u8) & (self.geometry.banks_per_rank - 1);
        }
        DecodedAddress { coord: BankCoord { channel, rank, bank }, row: RowId(row), column }
    }

    /// Encodes a decoded address back to its flat form (inverse of
    /// [`decode`](Self::decode)).
    pub fn encode(&self, d: DecodedAddress) -> u64 {
        let bank = match self.scheme {
            MappingScheme::ChannelInterleaved => d.coord.bank,
            MappingScheme::BankXor => {
                d.coord.bank ^ ((d.row.0 as u8) & (self.geometry.banks_per_rank - 1))
            }
        };
        let mut a = 0u64;
        let mut put = |v: u64, bits: u32, at: &mut u32| {
            a |= v << *at;
            *at += bits;
        };
        let mut at = 0;
        put(u64::from(d.column), self.column_bits, &mut at);
        put(u64::from(d.coord.channel), self.channel_bits, &mut at);
        put(u64::from(bank), self.bank_bits, &mut at);
        put(u64::from(d.coord.rank), self.rank_bits, &mut at);
        put(u64::from(d.row.0), self.row_bits, &mut at);
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapper(scheme: MappingScheme) -> AddressMapper {
        AddressMapper::new(DramGeometry::micro2020(), 1024, scheme)
    }

    #[test]
    fn decode_encode_roundtrip() {
        for scheme in [MappingScheme::ChannelInterleaved, MappingScheme::BankXor] {
            let m = mapper(scheme);
            for addr in (0..m.capacity()).step_by(987_654_321).take(1000) {
                assert_eq!(m.encode(m.decode(addr)), addr, "{scheme:?} @ {addr:#x}");
            }
        }
    }

    #[test]
    fn sequential_addresses_stripe_across_channels() {
        let m = mapper(MappingScheme::ChannelInterleaved);
        let mut channels_seen = std::collections::HashSet::new();
        for i in 0..4u64 {
            channels_seen.insert(m.decode(1024 * i).coord.channel);
        }
        assert_eq!(channels_seen.len(), 4, "row-sized strides must rotate channels");
    }

    #[test]
    fn fields_stay_in_range() {
        let m = mapper(MappingScheme::BankXor);
        for addr in (0..m.capacity()).step_by(123_456_789).take(2000) {
            let d = m.decode(addr);
            assert!(d.coord.channel < 4);
            assert!(d.coord.rank < 1);
            assert!(d.coord.bank < 16);
            assert!(d.row.0 < 65_536);
            assert!(d.column < 1024);
        }
    }

    #[test]
    fn bank_xor_spreads_row_strides() {
        // A stride that keeps the plain bank bits constant while changing the
        // row: plain mapping hits one bank, XOR mapping spreads.
        let plain = mapper(MappingScheme::ChannelInterleaved);
        let xor = mapper(MappingScheme::BankXor);
        let row_stride = plain.capacity() / u64::from(plain.geometry.rows_per_bank);
        let banks = |m: &AddressMapper| {
            (0..16u64)
                .map(|i| m.decode(i * row_stride).coord.bank)
                .collect::<std::collections::HashSet<u8>>()
                .len()
        };
        assert_eq!(banks(&plain), 1);
        assert_eq!(banks(&xor), 16);
    }

    #[test]
    fn addresses_wrap_at_capacity() {
        let m = mapper(MappingScheme::ChannelInterleaved);
        assert_eq!(m.decode(0), m.decode(m.capacity()));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut g = DramGeometry::micro2020();
        g.rows_per_bank = 65_537;
        let _ = AddressMapper::new(g, 1024, MappingScheme::ChannelInterleaved);
    }
}
