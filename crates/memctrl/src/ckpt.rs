//! Shared JSON plumbing for controller checkpoint state.
//!
//! The workspace's `serde` is an inert offline stub, so checkpoint state is
//! rendered and parsed by hand on top of [`telemetry::json`] (the faultsim
//! JSONL idiom). The parser is integer-first, so every `u64` counter
//! round-trips exactly.

use telemetry::json::JsonValue;

use crate::stats::RunStats;

/// Builds an object from `(key, value)` pairs.
pub(crate) fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Required sub-value lookup.
pub(crate) fn field<'v>(v: &'v JsonValue, key: &str) -> Result<&'v JsonValue, String> {
    v.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

/// Required integer field.
pub(crate) fn u64_field(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing or non-integer field `{key}`"))
}

/// Optional integer field: `Null` (or absence) maps to `None`.
pub(crate) fn opt_u64_field(v: &JsonValue, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field `{key}` is neither null nor an integer")),
    }
}

/// Renders an `Option<u64>` as `U64` or `Null`.
pub(crate) fn opt_u64(v: Option<u64>) -> JsonValue {
    match v {
        Some(x) => JsonValue::U64(x),
        None => JsonValue::Null,
    }
}

/// Renders [`RunStats`] as a JSON object (`per_stream` as an array of
/// `[count, latency]` pairs).
pub(crate) fn run_stats_to_json(s: &RunStats) -> JsonValue {
    obj(vec![
        ("accesses", JsonValue::U64(s.accesses)),
        ("activations", JsonValue::U64(s.activations)),
        ("row_hits", JsonValue::U64(s.row_hits)),
        ("refreshes", JsonValue::U64(s.refreshes)),
        ("defense_refresh_commands", JsonValue::U64(s.defense_refresh_commands)),
        ("victim_rows_refreshed", JsonValue::U64(s.victim_rows_refreshed)),
        ("defense_busy", JsonValue::U64(s.defense_busy)),
        ("completion", JsonValue::U64(s.completion)),
        ("total_latency", JsonValue::U64(s.total_latency)),
        ("bit_flips", JsonValue::U64(s.bit_flips)),
        ("throttled_acts", JsonValue::U64(s.throttled_acts)),
        ("throttle_delay", JsonValue::U64(s.throttle_delay)),
        (
            "per_stream",
            JsonValue::Arr(
                s.per_stream
                    .iter()
                    .map(|&(n, lat)| JsonValue::Arr(vec![JsonValue::U64(n), JsonValue::U64(lat)]))
                    .collect(),
            ),
        ),
        ("stray_stream_accesses", JsonValue::U64(s.stray_stream_accesses)),
        ("stray_stream_latency", JsonValue::U64(s.stray_stream_latency)),
        ("rfm_commands", JsonValue::U64(s.rfm_commands)),
        ("forced_rfms", JsonValue::U64(s.forced_rfms)),
    ])
}

/// Parses what [`run_stats_to_json`] rendered.
pub(crate) fn run_stats_from_json(v: &JsonValue) -> Result<RunStats, String> {
    let per_stream = field(v, "per_stream")?
        .as_arr()
        .ok_or_else(|| "field `per_stream` is not an array".to_owned())?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| "per_stream element is not a [count, latency] pair".to_owned())?;
            match (pair[0].as_u64(), pair[1].as_u64()) {
                (Some(n), Some(lat)) => Ok((n, lat)),
                _ => Err("non-integer per_stream pair".to_owned()),
            }
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(RunStats {
        accesses: u64_field(v, "accesses")?,
        activations: u64_field(v, "activations")?,
        row_hits: u64_field(v, "row_hits")?,
        refreshes: u64_field(v, "refreshes")?,
        defense_refresh_commands: u64_field(v, "defense_refresh_commands")?,
        victim_rows_refreshed: u64_field(v, "victim_rows_refreshed")?,
        defense_busy: u64_field(v, "defense_busy")?,
        completion: u64_field(v, "completion")?,
        total_latency: u64_field(v, "total_latency")?,
        bit_flips: u64_field(v, "bit_flips")?,
        throttled_acts: u64_field(v, "throttled_acts")?,
        throttle_delay: u64_field(v, "throttle_delay")?,
        per_stream,
        stray_stream_accesses: u64_field(v, "stray_stream_accesses")?,
        stray_stream_latency: u64_field(v, "stray_stream_latency")?,
        // Absent in pre-RFM checkpoints: default 0 (a DDR4 run issued none).
        rfm_commands: opt_u64_field(v, "rfm_commands")?.unwrap_or(0),
        forced_rfms: opt_u64_field(v, "forced_rfms")?.unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_stats_round_trip_through_text() {
        let mut s = RunStats {
            accesses: u64::MAX,
            activations: 3,
            completion: 123_456_789_012_345,
            throttled_acts: 7,
            throttle_delay: 9_999,
            ..RunStats::default()
        };
        s.note_stream(0, 10);
        s.note_stream(5, 99);
        let text = run_stats_to_json(&s).to_string();
        let back = run_stats_from_json(&telemetry::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn missing_field_is_reported() {
        let err =
            run_stats_from_json(&telemetry::json::parse("{\"accesses\":1}").unwrap()).unwrap_err();
        assert!(err.contains("per_stream"), "{err}");
    }
}
