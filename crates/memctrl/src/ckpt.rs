//! Shared JSON plumbing and the typed error for controller checkpoint
//! state.
//!
//! The workspace's `serde` is an inert offline stub, so checkpoint state is
//! rendered and parsed by hand on top of [`telemetry::json`] (the faultsim
//! JSONL idiom). The parser is integer-first, so every `u64` counter
//! round-trips exactly.
//!
//! Every snapshot/restore failure is a [`CkptError`] — a machine-matchable
//! enum rather than a formatted string, so the fleet recovery supervisor
//! can distinguish "this checkpoint is malformed" from "this run cannot be
//! checkpointed at all" without parsing prose.

use std::fmt;

use telemetry::json::JsonValue;

use crate::stats::RunStats;

/// Why a controller snapshot or restore failed.
///
/// Variants preserve enough structure to act on: which field, which bank or
/// channel, and whether the problem is the checkpoint's content
/// (malformed/mismatched — retrying with a different checkpoint can
/// succeed) or the run's configuration ([`Unsupported`](Self::Unsupported)
/// — no checkpoint will ever work).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CkptError {
    /// A required field is absent.
    MissingField {
        /// The field's key.
        key: String,
    },
    /// A field is absent or not the integer the schema requires.
    NotInteger {
        /// The field's key.
        key: String,
    },
    /// An optional integer field holds something other than null/integer.
    BadOptional {
        /// The field's key.
        key: String,
    },
    /// A field that must be an array isn't.
    NotArray {
        /// The field's key.
        key: String,
    },
    /// Structurally wrong content not tied to a single named field.
    Shape {
        /// What is wrong.
        detail: String,
    },
    /// This run's configuration cannot be checkpointed at all (side-band
    /// machinery whose state would silently replay from empty).
    Unsupported {
        /// What the run carries, e.g. `"a run with a ground-truth fault
        /// oracle"`.
        what: &'static str,
    },
    /// The checkpoint's channel shard count differs from the system's.
    ShardCount {
        /// Shards in the checkpoint.
        found: usize,
        /// Shards in the system being restored.
        have: usize,
    },
    /// The checkpoint's bank count differs from the controller's.
    BankCount {
        /// Banks in the checkpoint.
        found: usize,
        /// Banks in the controller being restored.
        have: usize,
    },
    /// The checkpoint was taken on a different channel.
    WrongChannel {
        /// Channel recorded in the checkpoint.
        found: u64,
        /// Channel of the controller being restored.
        restoring: u8,
    },
    /// A defense implementation rejected its snapshot or restore (defense
    /// state errors originate in the `mitigations` trait, which reports
    /// strings).
    Defense {
        /// Bank index of the defense.
        bank: usize,
        /// The defense's own description.
        detail: String,
    },
    /// A per-bank failure, wrapping the underlying error.
    Bank {
        /// Bank index.
        bank: usize,
        /// What failed there.
        source: Box<CkptError>,
    },
    /// A per-channel-shard failure, wrapping the underlying error.
    Channel {
        /// Channel index.
        channel: usize,
        /// What failed there.
        source: Box<CkptError>,
    },
}

impl CkptError {
    /// Wraps `e` with the bank it struck.
    pub(crate) fn bank(bank: usize, e: CkptError) -> CkptError {
        CkptError::Bank { bank, source: Box::new(e) }
    }
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::MissingField { key } => write!(f, "missing field `{key}`"),
            CkptError::NotInteger { key } => {
                write!(f, "missing or non-integer field `{key}`")
            }
            CkptError::BadOptional { key } => {
                write!(f, "field `{key}` is neither null nor an integer")
            }
            CkptError::NotArray { key } => write!(f, "field `{key}` is not an array"),
            CkptError::Shape { detail } => f.write_str(detail),
            CkptError::Unsupported { what } => write!(f, "cannot checkpoint {what}"),
            CkptError::ShardCount { found, have } => {
                write!(f, "checkpoint has {found} channel shard(s), system has {have}")
            }
            CkptError::BankCount { found, have } => {
                write!(f, "checkpoint has {found} bank(s), controller has {have}")
            }
            CkptError::WrongChannel { found, restoring } => {
                write!(f, "checkpoint is for channel {found}, restoring channel {restoring}")
            }
            CkptError::Defense { bank, detail } => write!(f, "bank {bank}: {detail}"),
            CkptError::Bank { bank, source } => write!(f, "bank {bank}: {source}"),
            CkptError::Channel { channel, source } => write!(f, "channel {channel}: {source}"),
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Bank { source, .. } | CkptError::Channel { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Builds an object from `(key, value)` pairs.
pub(crate) fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Required sub-value lookup.
pub(crate) fn field<'v>(v: &'v JsonValue, key: &str) -> Result<&'v JsonValue, CkptError> {
    v.get(key).ok_or_else(|| CkptError::MissingField { key: key.to_owned() })
}

/// Required integer field.
pub(crate) fn u64_field(v: &JsonValue, key: &str) -> Result<u64, CkptError> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| CkptError::NotInteger { key: key.to_owned() })
}

/// Optional integer field: `Null` (or absence) maps to `None`.
pub(crate) fn opt_u64_field(v: &JsonValue, key: &str) -> Result<Option<u64>, CkptError> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(x) => {
            x.as_u64().map(Some).ok_or_else(|| CkptError::BadOptional { key: key.to_owned() })
        }
    }
}

/// Renders an `Option<u64>` as `U64` or `Null`.
pub(crate) fn opt_u64(v: Option<u64>) -> JsonValue {
    match v {
        Some(x) => JsonValue::U64(x),
        None => JsonValue::Null,
    }
}

/// Renders [`RunStats`] as a JSON object (`per_stream` as an array of
/// `[count, latency]` pairs).
pub(crate) fn run_stats_to_json(s: &RunStats) -> JsonValue {
    obj(vec![
        ("accesses", JsonValue::U64(s.accesses)),
        ("activations", JsonValue::U64(s.activations)),
        ("row_hits", JsonValue::U64(s.row_hits)),
        ("refreshes", JsonValue::U64(s.refreshes)),
        ("defense_refresh_commands", JsonValue::U64(s.defense_refresh_commands)),
        ("victim_rows_refreshed", JsonValue::U64(s.victim_rows_refreshed)),
        ("defense_busy", JsonValue::U64(s.defense_busy)),
        ("completion", JsonValue::U64(s.completion)),
        ("total_latency", JsonValue::U64(s.total_latency)),
        ("bit_flips", JsonValue::U64(s.bit_flips)),
        ("throttled_acts", JsonValue::U64(s.throttled_acts)),
        ("throttle_delay", JsonValue::U64(s.throttle_delay)),
        (
            "per_stream",
            JsonValue::Arr(
                s.per_stream
                    .iter()
                    .map(|&(n, lat)| JsonValue::Arr(vec![JsonValue::U64(n), JsonValue::U64(lat)]))
                    .collect(),
            ),
        ),
        ("stray_stream_accesses", JsonValue::U64(s.stray_stream_accesses)),
        ("stray_stream_latency", JsonValue::U64(s.stray_stream_latency)),
        ("rfm_commands", JsonValue::U64(s.rfm_commands)),
        ("forced_rfms", JsonValue::U64(s.forced_rfms)),
    ])
}

/// Parses what [`run_stats_to_json`] rendered.
pub(crate) fn run_stats_from_json(v: &JsonValue) -> Result<RunStats, CkptError> {
    let per_stream = field(v, "per_stream")?
        .as_arr()
        .ok_or_else(|| CkptError::NotArray { key: "per_stream".to_owned() })?
        .iter()
        .map(|pair| {
            let pair = pair.as_arr().filter(|p| p.len() == 2).ok_or_else(|| CkptError::Shape {
                detail: "per_stream element is not a [count, latency] pair".to_owned(),
            })?;
            match (pair[0].as_u64(), pair[1].as_u64()) {
                (Some(n), Some(lat)) => Ok((n, lat)),
                _ => Err(CkptError::Shape { detail: "non-integer per_stream pair".to_owned() }),
            }
        })
        .collect::<Result<Vec<_>, CkptError>>()?;
    Ok(RunStats {
        accesses: u64_field(v, "accesses")?,
        activations: u64_field(v, "activations")?,
        row_hits: u64_field(v, "row_hits")?,
        refreshes: u64_field(v, "refreshes")?,
        defense_refresh_commands: u64_field(v, "defense_refresh_commands")?,
        victim_rows_refreshed: u64_field(v, "victim_rows_refreshed")?,
        defense_busy: u64_field(v, "defense_busy")?,
        completion: u64_field(v, "completion")?,
        total_latency: u64_field(v, "total_latency")?,
        bit_flips: u64_field(v, "bit_flips")?,
        throttled_acts: u64_field(v, "throttled_acts")?,
        throttle_delay: u64_field(v, "throttle_delay")?,
        per_stream,
        stray_stream_accesses: u64_field(v, "stray_stream_accesses")?,
        stray_stream_latency: u64_field(v, "stray_stream_latency")?,
        // Absent in pre-RFM checkpoints: default 0 (a DDR4 run issued none).
        rfm_commands: opt_u64_field(v, "rfm_commands")?.unwrap_or(0),
        forced_rfms: opt_u64_field(v, "forced_rfms")?.unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_stats_round_trip_through_text() {
        let mut s = RunStats {
            accesses: u64::MAX,
            activations: 3,
            completion: 123_456_789_012_345,
            throttled_acts: 7,
            throttle_delay: 9_999,
            ..RunStats::default()
        };
        s.note_stream(0, 10);
        s.note_stream(5, 99);
        let text = run_stats_to_json(&s).to_string();
        let back = run_stats_from_json(&telemetry::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn missing_field_is_reported() {
        let err =
            run_stats_from_json(&telemetry::json::parse("{\"accesses\":1}").unwrap()).unwrap_err();
        assert_eq!(err, CkptError::MissingField { key: "per_stream".to_owned() });
        assert!(err.to_string().contains("per_stream"), "{err}");
    }

    #[test]
    fn error_display_and_source_chain() {
        let inner = CkptError::NotInteger { key: "clock".to_owned() };
        let wrapped =
            CkptError::Channel { channel: 3, source: Box::new(CkptError::bank(1, inner)) };
        assert_eq!(wrapped.to_string(), "channel 3: bank 1: missing or non-integer field `clock`");
        let source = std::error::Error::source(&wrapped).expect("channel wraps a source");
        assert!(source.to_string().starts_with("bank 1:"), "{source}");
    }
}
