//! The full-system controller: channel shards behind a mapping front end.
//!
//! [`SystemController`] models the whole DIMM of the paper's Table III
//! system instead of one flat bank array. Its front end decodes every
//! workload access into a [`SystemAddress`](crate::mapping::SystemAddress)
//! through the configured [`MappingPolicy`] and forwards it — stamped with its absolute arrival
//! time — to the owning channel's shard, a plain [`MemoryController`] over
//! that channel's geometry. Channels share no timing state in DDR4 (each
//! has its own command/data bus), so shards are independent by
//! construction: the batched path buffers routed accesses per channel and
//! flushes them in chunks, and callers that want parallelism can take the
//! per-channel batches from [`SystemController::route_batch`] and drive
//! [`MemoryController::try_run_batch`] on disjoint shards from worker
//! threads.
//!
//! Because shards replay **absolute** timestamps and all refresh/clock
//! state is per-channel, a sharded run is bit-identical to running each
//! channel's sub-trace through a legacy single-shard controller — the
//! invariant the equivalence tests pin.

use dram_model::geometry::DramGeometry;
use dram_model::timing::Picoseconds;
use telemetry::json::JsonValue;
use workloads::{Access, Workload};

use crate::ckpt::{field, obj, u64_field, CkptError};
use crate::controller::{McError, MemoryController, StampedAccess};
use crate::mapping::MappingPolicy;
use crate::stats::RunStats;

/// Per-channel and merged statistics of a sharded run.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemStats {
    /// One [`RunStats`] per channel, in channel order.
    pub per_channel: Vec<RunStats>,
    /// The full-system reduction: counters summed, completion maxed,
    /// streams merged element-wise (see [`RunStats::merge`]).
    pub merged: RunStats,
}

/// Shared routing logic of the sequential front end and the borrowed-out
/// [`SystemRouter`]: advances the global clock by the access's gap and
/// decodes it into `(channel, stamped access)`.
fn route_stamped(
    geometry: &DramGeometry,
    policy: MappingPolicy,
    clock: &mut Picoseconds,
    routed: &mut u64,
    access: &Access,
) -> Result<(usize, StampedAccess), McError> {
    *clock += access.gap;
    let index = *routed;
    *routed += 1;
    match policy.route(geometry, access.bank, access.row) {
        Ok(addr) => Ok((
            usize::from(addr.coord.channel),
            StampedAccess {
                bank: MappingPolicy::shard_bank_index(geometry, addr) as u16,
                row: addr.row,
                at: *clock,
                stream: access.stream,
            },
        )),
        Err(addr) => {
            Err(McError::AddressOutOfRange { addr, geometry: *geometry, access_index: index })
        }
    }
}

/// The routing front end of a [`SystemController`], borrowed out by
/// [`SystemController::split_streaming`] so routing and shard execution can
/// proceed on different threads at the same time.
#[derive(Debug)]
pub struct SystemRouter<'a> {
    geometry: &'a DramGeometry,
    policy: MappingPolicy,
    clock: &'a mut Picoseconds,
    routed: &'a mut u64,
}

impl SystemRouter<'_> {
    /// Routes one access exactly as the owning controller's sequential
    /// front end would: the global clock advances by the access's gap and
    /// the stamped result carries the absolute arrival time.
    ///
    /// # Errors
    ///
    /// Returns [`McError::AddressOutOfRange`] when the access does not
    /// decode into the geometry (the clock still advances, mirroring the
    /// sequential path).
    pub fn route_one(&mut self, access: &Access) -> Result<(usize, StampedAccess), McError> {
        route_stamped(self.geometry, self.policy, self.clock, self.routed, access)
    }

    /// The full-system geometry the router decodes into.
    pub fn geometry(&self) -> &DramGeometry {
        self.geometry
    }
}

/// Channel-sharded memory controller for full-system simulation.
///
/// Built by [`McBuilder::build_system`](crate::McBuilder::build_system).
///
/// # Example
///
/// ```
/// use memctrl::{McBuilder, McConfig};
/// use workloads::{ProxyWorkload, SpecPreset, Workload};
///
/// let mut system = McBuilder::new(McConfig::micro2020_no_oracle()).build_system();
/// let mut w = ProxyWorkload::from_preset(SpecPreset::Libquantum, 64, 65_536, 5);
/// system.run_batched(&w.take_accesses(10_000));
/// let stats = system.finish();
/// assert_eq!(stats.merged.accesses, 10_000);
/// ```
pub struct SystemController {
    geometry: DramGeometry,
    policy: MappingPolicy,
    shards: Vec<MemoryController>,
    /// Bounded per-channel reorder buffers of the batched path.
    buffers: Vec<Vec<StampedAccess>>,
    reorder_depth: usize,
    /// Global arrival clock, accumulated from workload gaps at routing time.
    clock: Picoseconds,
    /// Accesses routed so far; numbers the `access_index` of routing errors.
    routed: u64,
}

impl std::fmt::Debug for SystemController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemController")
            .field("geometry", &self.geometry)
            .field("policy", &self.policy)
            .field("shards", &self.shards.len())
            .field("routed", &self.routed)
            .finish()
    }
}

impl SystemController {
    pub(crate) fn from_shards(
        geometry: DramGeometry,
        policy: MappingPolicy,
        shards: Vec<MemoryController>,
        reorder_depth: usize,
    ) -> Self {
        let channels = shards.len();
        SystemController {
            geometry,
            policy,
            shards,
            buffers: (0..channels).map(|_| Vec::with_capacity(reorder_depth)).collect(),
            reorder_depth,
            clock: 0,
            routed: 0,
        }
    }

    /// The full-system geometry (each shard owns its
    /// [`channel_geometry`](DramGeometry::channel_geometry)).
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// The address-mapping policy of the front end.
    pub fn policy(&self) -> MappingPolicy {
        self.policy
    }

    /// Global arrival clock (ps) of the routing front end.
    pub fn clock(&self) -> Picoseconds {
        self.clock
    }

    /// The per-channel shards, in channel order.
    pub fn shards(&self) -> &[MemoryController] {
        &self.shards
    }

    /// Mutable shard access — this is how a parallel driver obtains
    /// disjoint `&mut` controllers (via `iter_mut`) to pair with the
    /// batches [`route_batch`](Self::route_batch) returns.
    pub fn shards_mut(&mut self) -> &mut [MemoryController] {
        &mut self.shards
    }

    /// Routes one access: advances the global clock by its gap and decodes
    /// it into `(channel, stamped access)`.
    fn route_one(&mut self, access: &Access) -> Result<(usize, StampedAccess), McError> {
        route_stamped(&self.geometry, self.policy, &mut self.clock, &mut self.routed, access)
    }

    /// Splits the controller into its routing front end and the shard
    /// array, so a driver thread can keep routing (and streaming batches
    /// out) while worker threads hold disjoint `&mut` shards — the borrow
    /// shape the parallel SPSC pipeline in `rh-sim` needs. The router
    /// mutates the same clock/rout-count state as [`try_run`](Self::try_run),
    /// so routing through it is bit-identical to the sequential front end.
    pub fn split_streaming(&mut self) -> (SystemRouter<'_>, &mut [MemoryController]) {
        (
            SystemRouter {
                geometry: &self.geometry,
                policy: self.policy,
                clock: &mut self.clock,
                routed: &mut self.routed,
            },
            &mut self.shards,
        )
    }

    /// Pushes everything buffered for channel `c` through its shard.
    fn flush_channel(&mut self, c: usize) {
        if self.buffers[c].is_empty() {
            return;
        }
        // invariant: route_one validated each access against the geometry
        // before buffering, so the shard cannot reject it.
        self.shards[c].try_run_batch(&self.buffers[c]).expect("routed accesses are in shard range");
        self.buffers[c].clear();
    }

    fn flush_all(&mut self) {
        for c in 0..self.buffers.len() {
            self.flush_channel(c);
        }
    }

    /// Runs `n` accesses from `workload` through the front end one at a
    /// time — the unbatched reference path.
    ///
    /// # Errors
    ///
    /// Returns [`McError::AddressOutOfRange`] on the first access that does
    /// not decode into the geometry; prior accesses remain applied.
    pub fn try_run(&mut self, workload: &mut dyn Workload, n: u64) -> Result<(), McError> {
        for _ in 0..n {
            let access = workload.next_access();
            let (c, stamped) = self.route_one(&access)?;
            self.shards[c]
                .try_run_batch(std::slice::from_ref(&stamped))
                // invariant: route_one already validated the decode.
                .expect("routed access is in shard range");
        }
        Ok(())
    }

    /// Ingests a chunk of accesses through bounded per-channel reorder
    /// buffers: each access is routed and stamped immediately (so arrival
    /// times are exact), buffered on its channel, and forced through the
    /// shard whenever the channel's buffer reaches the configured depth.
    /// All buffers are flushed before returning, so statistics are complete
    /// after every call.
    ///
    /// Within a channel the buffer is FIFO — execution preserves stamp
    /// order — so the batching changes *when* work is done, never the
    /// simulated outcome ([`SystemStats`] are bit-identical to
    /// [`try_run`](Self::try_run) on the same trace).
    ///
    /// # Errors
    ///
    /// Returns [`McError::AddressOutOfRange`] on the first access that does
    /// not decode into the geometry (`access_index` counts from the start
    /// of the run, not the chunk). Buffered work is flushed first, so prior
    /// accesses remain applied.
    pub fn try_run_batched(&mut self, accesses: &[Access]) -> Result<(), McError> {
        for access in accesses {
            let (c, stamped) = match self.route_one(access) {
                Ok(routed) => routed,
                Err(e) => {
                    self.flush_all();
                    return Err(e);
                }
            };
            self.buffers[c].push(stamped);
            if self.buffers[c].len() >= self.reorder_depth {
                self.flush_channel(c);
            }
        }
        self.flush_all();
        Ok(())
    }

    /// Like [`try_run_batched`](Self::try_run_batched), panicking on
    /// routing errors.
    ///
    /// # Panics
    ///
    /// Panics if an access does not decode into the geometry.
    pub fn run_batched(&mut self, accesses: &[Access]) {
        self.try_run_batched(accesses).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Routes a whole chunk without executing it, returning one stamped
    /// batch per channel — the scatter half of parallel sharded execution.
    /// Feed each batch to the matching shard's
    /// [`try_run_batch`](MemoryController::try_run_batch) (from worker
    /// threads if desired; shards are independent), then call
    /// [`finish`](Self::finish).
    ///
    /// # Errors
    ///
    /// Returns [`McError::AddressOutOfRange`] on the first access that does
    /// not decode into the geometry; in that case **none** of the chunk has
    /// been executed (routing is side-effect-free on the shards).
    pub fn route_batch(&mut self, accesses: &[Access]) -> Result<Vec<Vec<StampedAccess>>, McError> {
        let mut batches: Vec<Vec<StampedAccess>> = self
            .shards
            .iter()
            .map(|_| Vec::with_capacity(accesses.len() / self.shards.len().max(1) + 1))
            .collect();
        for access in accesses {
            let (c, stamped) = self.route_one(access)?;
            batches[c].push(stamped);
        }
        Ok(batches)
    }

    /// Flushes any buffered work and telemetry and returns per-channel plus
    /// merged statistics. Callable repeatedly; each call snapshots the
    /// totals so far.
    pub fn finish(&mut self) -> SystemStats {
        self.flush_all();
        let per_channel: Vec<RunStats> = self.shards.iter_mut().map(|s| s.finish_run()).collect();
        let mut merged = RunStats::default();
        for stats in &per_channel {
            merged.merge(stats);
        }
        SystemStats { per_channel, merged }
    }

    /// True if no shard's ground-truth oracle observed a bit flip.
    pub fn is_clean(&self) -> bool {
        self.shards.iter().all(MemoryController::is_clean)
    }

    /// Serializes the full system's dynamic state — the routing front end's
    /// clock and access count plus one
    /// [`MemoryController::snapshot`] per channel shard — such that
    /// [`restore`](Self::restore) on a freshly built system of the same
    /// configuration resumes bit-identically.
    ///
    /// # Errors
    ///
    /// Refuses while the batched path holds buffered work (checkpoint
    /// between [`try_run_batched`](Self::try_run_batched) calls, which
    /// always flush), and propagates any shard's refusal (oracle, fault
    /// plan, command log, telemetry tap, or an uncheckpointable defense).
    pub fn snapshot(&self) -> Result<JsonValue, CkptError> {
        if self.buffers.iter().any(|b| !b.is_empty()) {
            return Err(CkptError::Unsupported { what: "with buffered unexecuted accesses" });
        }
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(c, s)| {
                s.snapshot().map_err(|e| CkptError::Channel { channel: c, source: Box::new(e) })
            })
            .collect::<Result<Vec<_>, CkptError>>()?;
        Ok(obj(vec![
            ("clock", JsonValue::U64(self.clock)),
            ("routed", JsonValue::U64(self.routed)),
            ("shards", JsonValue::Arr(shards)),
        ]))
    }

    /// Replays state captured by [`snapshot`](Self::snapshot) into this
    /// system, which must have been built from the same configuration (the
    /// snapshot stores no geometry or policy; the builder pins them).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or mismatched field —
    /// wrong channel count, or any shard-level rejection. Shards restore in
    /// channel order; on error, earlier shards may already hold the
    /// checkpoint's state, so discard the system rather than resuming it.
    pub fn restore(&mut self, state: &JsonValue) -> Result<(), CkptError> {
        let clock = u64_field(state, "clock")?;
        let routed = u64_field(state, "routed")?;
        let shards = field(state, "shards")?
            .as_arr()
            .ok_or_else(|| CkptError::NotArray { key: "shards".to_owned() })?;
        if shards.len() != self.shards.len() {
            return Err(CkptError::ShardCount { found: shards.len(), have: self.shards.len() });
        }
        for (c, shard_state) in shards.iter().enumerate() {
            self.shards[c]
                .restore(shard_state)
                .map_err(|e| CkptError::Channel { channel: c, source: Box::new(e) })?;
        }
        self.clock = clock;
        self.routed = routed;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::McBuilder;
    use crate::config::McConfig;
    use dram_model::geometry::RowId;
    use workloads::{ProxyWorkload, SpecPreset};

    fn system(depth: usize) -> SystemController {
        McBuilder::new(McConfig::micro2020_no_oracle()).reorder_depth(depth).build_system()
    }

    fn trace(n: usize) -> Vec<Access> {
        ProxyWorkload::from_preset(SpecPreset::Libquantum, 64, 65_536, 5).take_accesses(n)
    }

    #[test]
    fn batched_run_serves_every_access() {
        let mut sys = system(64);
        sys.run_batched(&trace(20_000));
        let stats = sys.finish();
        assert_eq!(stats.merged.accesses, 20_000);
        assert_eq!(stats.per_channel.len(), 4);
        assert_eq!(stats.per_channel.iter().map(|s| s.accesses).sum::<u64>(), 20_000);
        // Bank-interleaved routing spreads this 64-bank trace over all four
        // channels.
        assert!(stats.per_channel.iter().all(|s| s.accesses > 0));
        assert!(sys.is_clean());
    }

    #[test]
    fn batched_and_unbatched_agree_bit_identically() {
        let accesses = trace(10_000);
        let mut batched = system(7); // awkward depth to exercise partial flushes
        batched.run_batched(&accesses);
        let mut unbatched = system(64);
        let mut replay = workloads::Trace::from_accesses("trace", accesses).replay();
        unbatched.try_run(&mut replay, 10_000).unwrap();
        assert_eq!(batched.finish(), unbatched.finish());
    }

    #[test]
    fn route_batch_plus_manual_shard_drive_matches_batched() {
        let accesses = trace(8_000);
        let mut manual = system(64);
        let batches = manual.route_batch(&accesses).unwrap();
        for (shard, batch) in manual.shards_mut().iter_mut().zip(&batches) {
            shard.try_run_batch(batch).unwrap();
        }
        let mut auto = system(64);
        auto.run_batched(&accesses);
        assert_eq!(manual.finish(), auto.finish());
    }

    #[test]
    fn routing_error_names_the_missing_address() {
        let mut sys = system(64);
        let bad = Access { bank: 64, row: RowId(1), gap: 1_000, stream: 0 };
        let good = trace(5);
        let err =
            sys.try_run_batched(&[good[0], good[1], bad]).expect_err("bank 64 of 64 must fail");
        match err {
            McError::AddressOutOfRange { addr, geometry, access_index } => {
                assert_eq!(addr.coord.channel, 4, "dense decode of the 65th bank");
                assert_eq!(geometry.channels, 4);
                assert_eq!(access_index, 2);
            }
            other => panic!("wrong error: {other:?}"),
        }
        // The two good accesses were flushed before the error surfaced.
        assert_eq!(sys.finish().merged.accesses, 2);
    }

    #[test]
    fn system_checkpoint_resumes_bit_identically_through_json_text() {
        let accesses = trace(40_000);
        let mut full = system(64);
        full.run_batched(&accesses[..20_000]);
        let text = full.snapshot().unwrap().to_string();
        let mut resumed = system(64);
        resumed.restore(&telemetry::json::parse(&text).unwrap()).unwrap();
        full.run_batched(&accesses[20_000..]);
        resumed.run_batched(&accesses[20_000..]);
        assert_eq!(full.clock(), resumed.clock());
        assert_eq!(full.finish(), resumed.finish());
        assert_eq!(full.snapshot().unwrap().to_string(), resumed.snapshot().unwrap().to_string());
    }

    #[test]
    fn system_restore_rejects_wrong_shard_count() {
        let mut sys = system(64);
        let state = telemetry::json::parse("{\"clock\":0,\"routed\":0,\"shards\":[]}").unwrap();
        let err = sys.restore(&state).unwrap_err();
        assert!(matches!(err, CkptError::ShardCount { found: 0, have: _ }), "{err:?}");
        assert!(err.to_string().contains("shard"), "{err}");
    }

    #[test]
    fn global_clock_accumulates_gaps() {
        let mut sys = system(64);
        sys.run_batched(&[
            Access { bank: 0, row: RowId(1), gap: 1_000, stream: 0 },
            Access { bank: 1, row: RowId(1), gap: 2_000, stream: 0 },
        ]);
        assert_eq!(sys.clock(), 3_000);
        // The two accesses land on different channels under bank
        // interleaving, each stamped with the *global* arrival time.
        let stats = sys.finish();
        assert_eq!(stats.per_channel[0].accesses, 1);
        assert_eq!(stats.per_channel[1].accesses, 1);
    }
}
