//! Controller-side fault injection: walking a [`FaultPlan`] during a run.
//!
//! The [`FaultInjector`] owns a [`faultsim::FaultPlan`] and is driven by the
//! controller once per served access (the access index is the plan's clock,
//! so the same plan replays bit-identically across the in-order, queued, and
//! batched dispatch paths). Tracker-layer events are forwarded to the target
//! bank's defense; controller-layer events arm one-shot behaviours that the
//! dispatch tail consumes:
//!
//! * [`ControllerFault::DropNrr`] — the next non-empty action list a defense
//!   emits is discarded (an NRR squeezed out by bandwidth pressure);
//! * [`ControllerFault::DeferNrr`] — the next non-empty action list is held
//!   for a number of accesses before being applied;
//! * [`ControllerFault::PostponeRefresh`] — auto-refresh is held for up to
//!   8 tREFI (the DDR4 bound) and then caught up back-to-back;
//! * [`ControllerFault::DuplicateCommand`] — the access is replayed once at
//!   the shard boundary (the row is served twice).
//!
//! Harness-layer events are not consumed here; the sweep harness reads them
//! from the plan directly (see [`FaultPlan::harness_events`]).
//!
//! Dropping or deferring an NRR does **not** touch the ground-truth fault
//! oracle: victims the defense believed it protected stay unrefreshed, so a
//! sufficiently unlucky plan turns into oracle bit flips — exactly the
//! false-negative signal the resilience matrix measures.

use faultsim::{ControllerFault, FaultEvent, FaultPlan};
use mitigations::RefreshAction;

/// Counters of what a [`FaultInjector`] actually did during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Tracker events whose target defense reported the fault as applied.
    pub tracker_faults_applied: u64,
    /// Tracker events the target defense could not express (e.g. a
    /// spillover flip against a defense with no spillover register).
    pub tracker_faults_vacuous: u64,
    /// Defense actions discarded by [`ControllerFault::DropNrr`].
    pub nrrs_dropped: u64,
    /// Defense actions held back by [`ControllerFault::DeferNrr`].
    pub nrrs_deferred: u64,
    /// Deferred actions eventually applied (including the end-of-run flush).
    pub nrrs_released: u64,
    /// Refresh-postponement events armed.
    pub refreshes_postponed: u64,
    /// Accesses replayed by [`ControllerFault::DuplicateCommand`].
    pub commands_duplicated: u64,
}

impl FaultStats {
    /// Total controller-layer interference events that actually fired.
    pub fn controller_events(&self) -> u64 {
        self.nrrs_dropped + self.nrrs_deferred + self.refreshes_postponed + self.commands_duplicated
    }
}

/// A deferred defense action waiting for its release access.
#[derive(Debug, Clone)]
struct DeferredAction {
    release_at: u64,
    bank: usize,
    action: RefreshAction,
}

/// Walks a [`FaultPlan`] as the controller serves accesses (see the module
/// docs for the event semantics).
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    next: usize,
    /// Armed [`ControllerFault::DropNrr`] events not yet spent on a
    /// non-empty action list.
    drop_pending: u32,
    /// Armed deferral (accesses to hold), if any; a later event overwrites
    /// an unspent one.
    defer_pending: Option<u64>,
    /// Armed [`ControllerFault::DuplicateCommand`] events.
    duplicate_pending: u32,
    deferred: Vec<DeferredAction>,
    stats: FaultStats,
}

impl FaultInjector {
    /// Wraps a plan for one controller run.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            next: 0,
            drop_pending: 0,
            defer_pending: None,
            duplicate_pending: 0,
            deferred: Vec::new(),
            stats: FaultStats::default(),
        }
    }

    /// The plan being replayed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// What the injector has done so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// All events due at or before `access_index` that have not been taken
    /// yet (skipped indices are delivered late, never lost).
    pub(crate) fn take_due(&mut self, access_index: u64) -> Vec<FaultEvent> {
        let start = self.next;
        let events = self.plan.events();
        while self.next < events.len() && events[self.next].at_access <= access_index {
            self.next += 1;
        }
        events[start..self.next].to_vec()
    }

    /// Records the outcome of forwarding a tracker fault to a defense.
    pub(crate) fn note_tracker(&mut self, applied: bool) {
        if applied {
            self.stats.tracker_faults_applied += 1;
        } else {
            self.stats.tracker_faults_vacuous += 1;
        }
    }

    /// Arms the one-shot behaviour of a controller-layer event (refresh
    /// postponement is timed by the controller itself and only counted
    /// here).
    pub(crate) fn arm(&mut self, fault: ControllerFault) {
        match fault {
            ControllerFault::DropNrr => self.drop_pending += 1,
            ControllerFault::DeferNrr { accesses } => self.defer_pending = Some(accesses),
            ControllerFault::PostponeRefresh { .. } => self.stats.refreshes_postponed += 1,
            ControllerFault::DuplicateCommand => self.duplicate_pending += 1,
        }
    }

    /// Applies any armed drop/defer behaviour to the actions a defense just
    /// emitted, returning the actions that should still execute now.
    pub(crate) fn filter_actions(
        &mut self,
        bank: usize,
        access_index: u64,
        actions: Vec<RefreshAction>,
    ) -> Vec<RefreshAction> {
        if actions.is_empty() {
            return actions;
        }
        if self.drop_pending > 0 {
            self.drop_pending -= 1;
            self.stats.nrrs_dropped += actions.len() as u64;
            return Vec::new();
        }
        if let Some(hold) = self.defer_pending.take() {
            self.stats.nrrs_deferred += actions.len() as u64;
            self.deferred.extend(actions.into_iter().map(|action| DeferredAction {
                release_at: access_index + hold,
                bank,
                action,
            }));
            return Vec::new();
        }
        actions
    }

    /// Deferred actions whose release access has arrived.
    pub(crate) fn release_due(&mut self, access_index: u64) -> Vec<(usize, RefreshAction)> {
        self.drain_deferred(|d| d.release_at <= access_index)
    }

    /// Flushes every still-deferred action (end of run: held NRRs execute
    /// late rather than disappearing).
    pub(crate) fn flush_deferred(&mut self) -> Vec<(usize, RefreshAction)> {
        self.drain_deferred(|_| true)
    }

    fn drain_deferred(
        &mut self,
        due: impl Fn(&DeferredAction) -> bool,
    ) -> Vec<(usize, RefreshAction)> {
        let mut released = Vec::new();
        let mut kept = Vec::with_capacity(self.deferred.len());
        for d in self.deferred.drain(..) {
            if due(&d) {
                released.push((d.bank, d.action));
            } else {
                kept.push(d);
            }
        }
        self.deferred = kept;
        self.stats.nrrs_released += released.len() as u64;
        released
    }

    /// Consumes one armed duplication, if any.
    pub(crate) fn take_duplicate(&mut self) -> bool {
        if self.duplicate_pending > 0 {
            self.duplicate_pending -= 1;
            self.stats.commands_duplicated += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_model::RowId;
    use faultsim::FaultSpec;

    fn nrr(row: u32) -> RefreshAction {
        RefreshAction::Neighbors { aggressor: RowId(row), radius: 1 }
    }

    #[test]
    fn drop_waits_for_a_nonempty_action_list() {
        let mut inj = FaultInjector::new(FaultPlan::generate(&FaultSpec::new(1)));
        inj.arm(ControllerFault::DropNrr);
        assert!(inj.filter_actions(0, 5, Vec::new()).is_empty());
        assert_eq!(inj.stats().nrrs_dropped, 0, "empty lists must not spend the drop");
        assert!(inj.filter_actions(0, 6, vec![nrr(1), nrr(2)]).is_empty());
        assert_eq!(inj.stats().nrrs_dropped, 2);
        // Spent: the next actions pass through untouched.
        assert_eq!(inj.filter_actions(0, 7, vec![nrr(3)]), vec![nrr(3)]);
    }

    #[test]
    fn defer_releases_at_the_right_access() {
        let mut inj = FaultInjector::new(FaultPlan::generate(&FaultSpec::new(2)));
        inj.arm(ControllerFault::DeferNrr { accesses: 4 });
        assert!(inj.filter_actions(3, 10, vec![nrr(9)]).is_empty());
        assert_eq!(inj.stats().nrrs_deferred, 1);
        assert!(inj.release_due(13).is_empty());
        let released = inj.release_due(14);
        assert_eq!(released, vec![(3, nrr(9))]);
        assert_eq!(inj.stats().nrrs_released, 1);
    }

    #[test]
    fn flush_applies_everything_still_held() {
        let mut inj = FaultInjector::new(FaultPlan::generate(&FaultSpec::new(3)));
        inj.arm(ControllerFault::DeferNrr { accesses: 1_000_000 });
        inj.filter_actions(1, 0, vec![nrr(4), nrr(5)]);
        assert_eq!(inj.flush_deferred().len(), 2);
        assert_eq!(inj.stats().nrrs_released, 2);
        assert!(inj.flush_deferred().is_empty());
    }

    #[test]
    fn duplicates_are_counted_one_shot() {
        let mut inj = FaultInjector::new(FaultPlan::generate(&FaultSpec::new(4)));
        assert!(!inj.take_duplicate());
        inj.arm(ControllerFault::DuplicateCommand);
        assert!(inj.take_duplicate());
        assert!(!inj.take_duplicate());
        assert_eq!(inj.stats().commands_duplicated, 1);
    }

    #[test]
    fn take_due_delivers_skipped_events_late() {
        let plan = FaultPlan::generate(&FaultSpec::chaos(9));
        let total = plan.len();
        let mut inj = FaultInjector::new(plan);
        let mut seen = 0;
        for access in (0..70_000u64).step_by(977) {
            seen += inj.take_due(access).len();
        }
        seen += inj.take_due(u64::MAX).len();
        assert_eq!(seen, total);
    }
}
