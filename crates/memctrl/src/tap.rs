//! Controller-side telemetry: command rates and service-quality gauges.
//!
//! [`TelemetryTap`] is attached to a [`MemoryController`](crate::MemoryController)
//! through [`McBuilder::telemetry`](crate::McBuilder::telemetry) (or per
//! shard with [`McBuilder::telemetry_per_shard`](crate::McBuilder::telemetry_per_shard)
//! and [`TelemetryTap::keyed`]) and counts every ACT, periodic REF, and
//! victim-refresh burst per bank. At the configured [`Cadence`] it flushes
//! cumulative per-bank series:
//!
//! * `mc.acts` — activations served;
//! * `mc.refreshes` — periodic REF blackouts;
//! * `mc.victim_rows` — rows refreshed on behalf of the defense;
//!
//! and at end of run ([`finish`](TelemetryTap::finish)) it publishes
//! scheduler/page-policy gauges from [`RunStats`]: `mc.row_hit_rate`,
//! `mc.mean_latency_ps`, `mc.defense_busy_frac`, `mc.acts_per_ref`. A
//! [`keyed`](TelemetryTap::keyed) shard tap instead offsets its series keys
//! to the shard's global bank range and publishes those four quantities as
//! per-channel samples on the `mc.ch.*` series, keyed by channel.
//!
//! Like the defense-side wrapper, the tap resolves `sink.enabled()` once at
//! construction; with a [`NoopSink`](telemetry::NoopSink) every hook is a
//! single predictable branch and the controller's behavior is bit-identical.

use dram_model::timing::Picoseconds;
use telemetry::{Cadence, CadenceClock, MetricsSink};

use crate::stats::RunStats;

/// Per-bank cumulative command counts.
#[derive(Debug, Clone, Copy, Default)]
struct BankCounts {
    acts: u64,
    refreshes: u64,
    victim_rows: u64,
}

/// Observes a memory controller's command stream into a [`MetricsSink`].
pub struct TelemetryTap {
    sink: Box<dyn MetricsSink + Send>,
    /// Resolved once from `sink.enabled()`.
    active: bool,
    clock: CadenceClock,
    banks: Vec<BankCounts>,
    /// Added to every per-bank series key, so shards of a sharded system
    /// recording into one shared sink land on disjoint global bank keys.
    bank_offset: u16,
    /// When set, end-of-run service gauges are emitted as per-channel
    /// samples keyed by this channel instead of controller-wide gauges
    /// (which would collide across shards).
    channel: Option<u8>,
    flushed_acts: u64,
    flushed_refreshes: u64,
    flushed_victim_rows: u64,
}

impl std::fmt::Debug for TelemetryTap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryTap")
            .field("active", &self.active)
            .field("banks", &self.banks.len())
            .finish()
    }
}

impl TelemetryTap {
    /// A tap flushing into `sink` at `cadence` (the ACT cadence counts
    /// controller-wide ACTs, not per-bank ones).
    pub fn new(sink: Box<dyn MetricsSink + Send>, cadence: Cadence) -> Self {
        Self::keyed(sink, cadence, 0, None)
    }

    /// A tap for one shard of a channel-sharded system: per-bank series
    /// keys are offset by `bank_offset` (the shard's first global bank
    /// index), and when `channel` is set the end-of-run service gauges are
    /// published as per-channel samples on the `mc.ch.*` series (keyed by
    /// channel) instead of controller-wide gauges, so shards sharing one
    /// sink never collide.
    pub fn keyed(
        sink: Box<dyn MetricsSink + Send>,
        cadence: Cadence,
        bank_offset: u16,
        channel: Option<u8>,
    ) -> Self {
        let active = sink.enabled();
        TelemetryTap {
            sink,
            active,
            clock: CadenceClock::new(cadence),
            banks: Vec::new(),
            bank_offset,
            channel,
            flushed_acts: 0,
            flushed_refreshes: 0,
            flushed_victim_rows: 0,
        }
    }

    /// True when the sink records (false for [`NoopSink`](telemetry::NoopSink)).
    pub fn is_active(&self) -> bool {
        self.active
    }

    fn bank_mut(&mut self, bank: usize) -> &mut BankCounts {
        if bank >= self.banks.len() {
            self.banks.resize(bank + 1, BankCounts::default());
        }
        &mut self.banks[bank]
    }

    /// Notes one served activation on `bank` at its ACT slot time.
    pub fn on_act(&mut self, bank: usize, now: Picoseconds) {
        if !self.active {
            return;
        }
        self.bank_mut(bank).acts += 1;
        if self.clock.tick(now) {
            self.flush(now);
        }
    }

    /// Notes one periodic REF blackout on `bank`.
    pub fn on_refresh(&mut self, bank: usize, _now: Picoseconds) {
        if !self.active {
            return;
        }
        self.bank_mut(bank).refreshes += 1;
    }

    /// Notes one victim-refresh burst of `rows` rows on `bank`.
    pub fn on_victim_refresh(&mut self, bank: usize, rows: u64, _now: Picoseconds) {
        if !self.active {
            return;
        }
        self.bank_mut(bank).victim_rows += rows;
    }

    /// Emits the cumulative per-bank series plus whole-controller counter
    /// deltas.
    fn flush(&mut self, now: Picoseconds) {
        let mut total = BankCounts::default();
        for (b, c) in self.banks.iter().enumerate() {
            let bank = self.bank_offset + b as u16;
            self.sink.sample("mc.acts", bank, now, c.acts as f64);
            self.sink.sample("mc.refreshes", bank, now, c.refreshes as f64);
            self.sink.sample("mc.victim_rows", bank, now, c.victim_rows as f64);
            total.acts += c.acts;
            total.refreshes += c.refreshes;
            total.victim_rows += c.victim_rows;
        }
        self.sink.counter("mc.acts", total.acts - self.flushed_acts);
        self.sink.counter("mc.refreshes", total.refreshes - self.flushed_refreshes);
        self.sink.counter("mc.victim_rows", total.victim_rows - self.flushed_victim_rows);
        self.flushed_acts = total.acts;
        self.flushed_refreshes = total.refreshes;
        self.flushed_victim_rows = total.victim_rows;
    }

    /// Flushes the tail and publishes end-of-run service-quality gauges
    /// derived from `stats` (row-buffer hit rate, mean access latency,
    /// fraction of bank-busy time spent on defense refreshes, ACT:REF
    /// ratio).
    pub fn finish(&mut self, now: Picoseconds, stats: &RunStats) {
        if !self.active {
            return;
        }
        self.flush(now);
        match self.channel {
            // Shard taps: per-channel samples keyed by channel, because a
            // last-write-wins gauge shared across shards would only keep
            // one channel's value.
            Some(ch) => {
                let key = u16::from(ch);
                self.sink.sample("mc.ch.row_hit_rate", key, now, stats.row_hit_rate());
                if stats.accesses > 0 {
                    self.sink.sample(
                        "mc.ch.mean_latency_ps",
                        key,
                        now,
                        stats.total_latency as f64 / stats.accesses as f64,
                    );
                }
                if stats.completion > 0 {
                    self.sink.sample(
                        "mc.ch.defense_busy_frac",
                        key,
                        now,
                        stats.defense_busy as f64 / stats.completion as f64,
                    );
                }
                if stats.refreshes > 0 {
                    self.sink.sample(
                        "mc.ch.acts_per_ref",
                        key,
                        now,
                        stats.activations as f64 / stats.refreshes as f64,
                    );
                }
            }
            None => {
                self.sink.gauge("mc.row_hit_rate", stats.row_hit_rate());
                if stats.accesses > 0 {
                    self.sink.gauge(
                        "mc.mean_latency_ps",
                        stats.total_latency as f64 / stats.accesses as f64,
                    );
                }
                if stats.completion > 0 {
                    self.sink.gauge(
                        "mc.defense_busy_frac",
                        stats.defense_busy as f64 / stats.completion as f64,
                    );
                }
                if stats.refreshes > 0 {
                    self.sink.gauge(
                        "mc.acts_per_ref",
                        stats.activations as f64 / stats.refreshes as f64,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::McBuilder;
    use crate::config::McConfig;
    use mitigations::Para;
    use telemetry::{NoopSink, SharedSink};
    use workloads::{Synthetic, Workload};

    #[test]
    fn tap_counts_acts_refs_and_victims() {
        let sink = SharedSink::new();
        let mut mc = McBuilder::new(McConfig::single_bank(65_536, None))
            .defenses_with(|b| Box::new(Para::new(0.01, b as u64)))
            .telemetry(TelemetryTap::new(Box::new(sink.clone()), Cadence::EveryActs(1_000)))
            .build();
        let stats = mc.run(&mut Synthetic::s3(65_536, 1), 30_000);
        let snap = sink.snapshot("tap-test");
        let acts = snap.series_for("mc.acts", 0).expect("acts series");
        assert_eq!(acts.samples.last().unwrap().value, stats.activations as f64);
        let victims = snap.series_for("mc.victim_rows", 0).expect("victim series");
        assert_eq!(victims.samples.last().unwrap().value, stats.victim_rows_refreshed as f64);
        let refs = snap.series_for("mc.refreshes", 0).expect("ref series");
        assert_eq!(refs.samples.last().unwrap().value, stats.refreshes as f64);
        // End-of-run gauges.
        assert!(snap.gauges.iter().any(|(n, _)| n == "mc.row_hit_rate"));
        assert!(snap.gauges.iter().any(|(n, v)| n == "mc.mean_latency_ps" && *v > 0.0));
    }

    #[test]
    fn counter_totals_match_series_tails() {
        let sink = SharedSink::new();
        let mut mc = McBuilder::new(McConfig::micro2020_no_oracle())
            .telemetry(TelemetryTap::new(Box::new(sink.clone()), Cadence::EveryActs(500)))
            .build();
        let stats = mc.run(
            &mut workloads::ProxyWorkload::from_preset(
                workloads::SpecPreset::Libquantum,
                64,
                65_536,
                5,
            ),
            20_000,
        );
        let snap = sink.snapshot("tap-test");
        let counted = snap.counters.iter().find(|(n, _)| n == "mc.acts").unwrap().1;
        assert_eq!(counted, stats.activations);
        // Per-bank tails sum to the controller-wide total.
        let sum: f64 = snap
            .series
            .iter()
            .filter(|s| s.metric == "mc.acts")
            .map(|s| s.samples.last().unwrap().value)
            .sum();
        assert_eq!(sum, stats.activations as f64);
    }

    #[test]
    fn noop_tap_is_inert() {
        let mut mc = McBuilder::new(McConfig::single_bank(65_536, None))
            .telemetry(TelemetryTap::new(Box::new(NoopSink), Cadence::EveryActs(1)))
            .build();
        mc.run(&mut Synthetic::s3(65_536, 1), 5_000);
        let tap = mc.telemetry().expect("tap attached");
        assert!(!tap.is_active());
        assert!(tap.banks.is_empty(), "inactive tap must not even allocate");
    }

    #[test]
    fn keyed_shard_taps_share_one_sink_without_colliding() {
        let sink = SharedSink::new();
        let mut system = McBuilder::new(McConfig::micro2020_no_oracle())
            .telemetry_per_shard(|channel, bank_offset| {
                Some(TelemetryTap::keyed(
                    Box::new(sink.clone()),
                    Cadence::EveryActs(500),
                    bank_offset,
                    Some(channel),
                ))
            })
            .build_system();
        let mut w =
            workloads::ProxyWorkload::from_preset(workloads::SpecPreset::Libquantum, 64, 65_536, 5);
        system.run_batched(&w.take_accesses(20_000));
        let stats = system.finish();
        let snap = sink.snapshot("keyed-tap-test");

        // Per-bank ACT series from all shards land on disjoint global keys
        // and their tails still sum to the system-wide total.
        let sum: f64 = snap
            .series
            .iter()
            .filter(|s| s.metric == "mc.acts")
            .map(|s| s.samples.last().unwrap().value)
            .sum();
        assert_eq!(sum, stats.merged.activations as f64);
        let keys: std::collections::HashSet<u16> =
            snap.series.iter().filter(|s| s.metric == "mc.acts").map(|s| s.bank).collect();
        assert!(keys.iter().any(|&k| k >= 16), "shard keys must be offset past channel 0");

        // Each channel publishes its own service numbers on mc.ch.*.
        for (ch, per) in stats.per_channel.iter().enumerate() {
            let series =
                snap.series_for("mc.ch.row_hit_rate", ch as u16).expect("per-channel hit rate");
            assert_eq!(series.samples.last().unwrap().value, per.row_hit_rate());
        }
        // No colliding controller-wide gauges were written.
        assert!(snap.gauges.iter().all(|(n, _)| !n.starts_with("mc.")));

        // Shared-sink counters accumulate across shards.
        let counted = snap.counters.iter().find(|(n, _)| n == "mc.acts").unwrap().1;
        assert_eq!(counted, stats.merged.activations);
    }
}
