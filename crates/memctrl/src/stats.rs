//! Run statistics.

use dram_model::timing::Picoseconds;
use serde::{Deserialize, Serialize};

/// Aggregate counters of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Accesses served.
    pub accesses: u64,
    /// ACT commands issued (row misses + empties).
    pub activations: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Periodic REF commands issued across all banks.
    pub refreshes: u64,
    /// Defense-requested refresh commands (NRR or row refreshes).
    pub defense_refresh_commands: u64,
    /// Individual victim rows refreshed on behalf of the defense.
    pub victim_rows_refreshed: u64,
    /// Total bank-busy time consumed by defense refreshes (ps).
    pub defense_busy: Picoseconds,
    /// Completion time of the last access (ps).
    pub completion: Picoseconds,
    /// Sum of per-access service latencies (ps).
    pub total_latency: Picoseconds,
    /// Ground-truth bit flips observed (0 unless the defense failed).
    pub bit_flips: u64,
    /// Activations delayed by a throttling defense (BlockHammer's
    /// `ThrottleDecision` feedback path).
    pub throttled_acts: u64,
    /// Total activation delay imposed by throttling (ps).
    pub throttle_delay: Picoseconds,
    /// Per-stream (access count, total latency in ps), indexed by the
    /// stream id carried on each access — the raw material for the paper's
    /// weighted-speedup metric.
    pub per_stream: Vec<(u64, u64)>,
    /// Accesses whose stream id exceeded the tracked range (corrupt or
    /// misconfigured traces). Non-zero is an audit finding
    /// ([`crate::StatsAudit`]): stray ids used to silently allocate
    /// `per_stream` out to the id (65535 → a 64K-entry vec) and distort
    /// stream matching in [`RunStats::weighted_speedup_loss_vs`].
    pub stray_stream_accesses: u64,
    /// Total latency (ps) of the stray accesses, kept so
    /// `total_latency == Σ per_stream latencies + stray_stream_latency`
    /// remains an exact invariant.
    pub stray_stream_latency: Picoseconds,
    /// Defense-requested RFM commands executed (DDR5/LPDDR5 Refresh
    /// Management; a subset of `defense_refresh_commands`). Always 0 when
    /// [`crate::McConfig::rfm`] is unset.
    #[serde(default)]
    pub rfm_commands: u64,
    /// RFMs the *controller* was forced to issue because a bank's Rolling
    /// Accumulated ACT counter reached RAAMMT before the defense acted.
    #[serde(default)]
    pub forced_rfms: u64,
}

impl RunStats {
    /// Hard upper bound on distinct stream ids tracked per run. The paper's
    /// systems have 16 cores; anything near this bound is a corrupt trace,
    /// which [`RunStats::note_stream`] diverts to the stray counters instead
    /// of allocating for.
    pub const MAX_TRACKED_STREAMS: usize = 4096;

    /// Records one served access of `stream` with the given latency.
    ///
    /// Stream ids at or beyond [`RunStats::MAX_TRACKED_STREAMS`] are counted
    /// in [`RunStats::stray_stream_accesses`] rather than grown into
    /// `per_stream`; the [`crate::StatsAudit`] flags them at run end.
    pub fn note_stream(&mut self, stream: u16, latency: Picoseconds) {
        let i = usize::from(stream);
        if i >= Self::MAX_TRACKED_STREAMS {
            self.stray_stream_accesses += 1;
            self.stray_stream_latency += latency;
            return;
        }
        if self.per_stream.len() <= i {
            self.per_stream.resize(i + 1, (0, 0));
        }
        self.per_stream[i].0 += 1;
        self.per_stream[i].1 += latency;
    }

    /// Folds another run's counters into this one — the reduction a
    /// channel-sharded system uses to build full-system statistics from its
    /// per-channel shards.
    ///
    /// Counters and latencies add; `completion` takes the max (channels
    /// serve concurrently in wall-clock terms, so the system finishes when
    /// its slowest channel does); per-stream entries merge element-wise.
    pub fn merge(&mut self, other: &RunStats) {
        self.accesses += other.accesses;
        self.activations += other.activations;
        self.row_hits += other.row_hits;
        self.refreshes += other.refreshes;
        self.defense_refresh_commands += other.defense_refresh_commands;
        self.victim_rows_refreshed += other.victim_rows_refreshed;
        self.defense_busy += other.defense_busy;
        self.completion = self.completion.max(other.completion);
        self.total_latency += other.total_latency;
        self.bit_flips += other.bit_flips;
        self.throttled_acts += other.throttled_acts;
        self.throttle_delay += other.throttle_delay;
        if self.per_stream.len() < other.per_stream.len() {
            self.per_stream.resize(other.per_stream.len(), (0, 0));
        }
        for (mine, theirs) in self.per_stream.iter_mut().zip(&other.per_stream) {
            mine.0 += theirs.0;
            mine.1 += theirs.1;
        }
        self.stray_stream_accesses += other.stray_stream_accesses;
        self.stray_stream_latency += other.stray_stream_latency;
        self.rfm_commands += other.rfm_commands;
        self.forced_rfms += other.forced_rfms;
    }

    /// Mean latency of one stream (ps), or `None` if it served no accesses.
    pub fn stream_mean_latency(&self, stream: u16) -> Option<f64> {
        self.per_stream
            .get(usize::from(stream))
            .filter(|&&(n, _)| n > 0)
            .map(|&(n, total)| total as f64 / n as f64)
    }

    /// The paper's performance metric, adapted to latency: weighted speedup
    /// = mean over streams of (baseline mean latency / this run's mean
    /// latency); the returned value is the *loss*, `1 − WS` (0 = no
    /// degradation). Streams absent from either run are skipped.
    pub fn weighted_speedup_loss_vs(&self, baseline: &RunStats) -> f64 {
        let streams = self.per_stream.len().min(baseline.per_stream.len());
        let mut sum = 0.0;
        let mut n = 0u32;
        for s in 0..streams {
            if let (Some(mine), Some(base)) =
                (self.stream_mean_latency(s as u16), baseline.stream_mean_latency(s as u16))
            {
                if mine > 0.0 {
                    sum += base / mine;
                    n += 1;
                }
            }
        }
        if n == 0 {
            0.0
        } else {
            1.0 - sum / f64::from(n)
        }
    }

    /// Mean access latency (ps).
    pub fn mean_latency(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.accesses as f64
        }
    }

    /// Row-buffer hit rate.
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses as f64
        }
    }

    /// Relative slowdown of this run versus a baseline run of the same
    /// trace: `completion / baseline.completion − 1`.
    pub fn slowdown_vs(&self, baseline: &RunStats) -> f64 {
        if baseline.completion == 0 {
            0.0
        } else {
            self.completion as f64 / baseline.completion as f64 - 1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_latency_and_hit_rate() {
        let s = RunStats { accesses: 4, row_hits: 3, total_latency: 400, ..RunStats::default() };
        assert_eq!(s.mean_latency(), 100.0);
        assert_eq!(s.row_hit_rate(), 0.75);
    }

    #[test]
    fn zero_access_run_is_safe() {
        let s = RunStats::default();
        assert_eq!(s.mean_latency(), 0.0);
        assert_eq!(s.row_hit_rate(), 0.0);
        assert_eq!(s.slowdown_vs(&RunStats::default()), 0.0);
    }

    #[test]
    fn per_stream_accounting() {
        let mut s = RunStats::default();
        s.note_stream(0, 100);
        s.note_stream(2, 300);
        s.note_stream(0, 200);
        assert_eq!(s.stream_mean_latency(0), Some(150.0));
        assert_eq!(s.stream_mean_latency(1), None);
        assert_eq!(s.stream_mean_latency(2), Some(300.0));
    }

    #[test]
    fn stray_stream_id_does_not_allocate() {
        // Regression: note_stream(65535) used to resize per_stream to 64K
        // entries, distorting stream matching and memory use.
        let mut s = RunStats::default();
        s.note_stream(65_535, 100);
        s.note_stream(u16::MAX - 1, 50);
        s.note_stream(3, 10);
        assert_eq!(s.per_stream.len(), 4);
        assert_eq!(s.stray_stream_accesses, 2);
        assert_eq!(s.stray_stream_latency, 150);
        assert_eq!(s.stream_mean_latency(3), Some(10.0));
    }

    #[test]
    fn weighted_speedup_loss() {
        let mut base = RunStats::default();
        base.note_stream(0, 100);
        base.note_stream(1, 100);
        let mut run = RunStats::default();
        run.note_stream(0, 125); // 0.8 speedup
        run.note_stream(1, 100); // 1.0 speedup
        let loss = run.weighted_speedup_loss_vs(&base);
        assert!((loss - 0.1).abs() < 1e-12, "loss {loss}");
        assert_eq!(base.weighted_speedup_loss_vs(&base), 0.0);
    }

    #[test]
    fn merge_sums_counters_and_maxes_completion() {
        let mut a = RunStats {
            accesses: 10,
            activations: 4,
            row_hits: 6,
            refreshes: 2,
            defense_refresh_commands: 1,
            victim_rows_refreshed: 2,
            defense_busy: 100,
            completion: 5_000,
            total_latency: 900,
            bit_flips: 1,
            throttled_acts: 2,
            throttle_delay: 400,
            stray_stream_accesses: 1,
            stray_stream_latency: 30,
            rfm_commands: 4,
            forced_rfms: 1,
            ..RunStats::default()
        };
        a.note_stream(0, 100);
        let mut b = RunStats {
            accesses: 5,
            completion: 7_000,
            throttled_acts: 3,
            throttle_delay: 600,
            rfm_commands: 6,
            forced_rfms: 2,
            ..RunStats::default()
        };
        b.note_stream(0, 50);
        b.note_stream(2, 70);
        a.merge(&b);
        assert_eq!(a.accesses, 15);
        assert_eq!(a.throttled_acts, 5);
        assert_eq!(a.throttle_delay, 1_000);
        assert_eq!(a.completion, 7_000, "channels overlap in wall-clock time");
        assert_eq!(a.bit_flips, 1);
        assert_eq!(a.per_stream.len(), 3);
        assert_eq!(a.per_stream[0], (2, 150));
        assert_eq!(a.per_stream[2], (1, 70));
        assert_eq!(a.stray_stream_accesses, 1);
        assert_eq!(a.rfm_commands, 10);
        assert_eq!(a.forced_rfms, 3);
    }

    #[test]
    fn merge_with_default_is_identity() {
        let mut s = RunStats { accesses: 3, completion: 10, ..RunStats::default() };
        let snapshot = s.clone();
        s.merge(&RunStats::default());
        assert_eq!(s, snapshot);
    }

    #[test]
    fn slowdown_relative_to_baseline() {
        let base = RunStats { completion: 1000, ..RunStats::default() };
        let run = RunStats { completion: 1050, ..RunStats::default() };
        assert!((run.slowdown_vs(&base) - 0.05).abs() < 1e-12);
    }
}
