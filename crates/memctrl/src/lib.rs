//! # memctrl
//!
//! A bank-level DDR4 memory-controller timing simulator — the substrate on
//! which the Graphene paper's performance and energy evaluation runs.
//!
//! The simulator models what the paper's defenses actually perturb:
//!
//! * per-bank state machines with DDR4 service timing (tRCD/tRP/tCL, the
//!   tRC activate-to-activate constraint, tRFC refresh blackout every
//!   tREFI) — see [`bank`];
//! * a page policy deciding when rows close ([`pagepolicy`], including the
//!   paper's minimalist-open);
//! * the periodic refresh machinery and the paper's **NRR** (Nearby Row
//!   Refresh) protocol extension: a victim-row refresh occupies the bank
//!   for `tRC × rows + tRP`, exactly the accounting of Section V-B;
//! * the defense hook: every ACT is reported to the bank's
//!   [`RowHammerDefense`](mitigations::RowHammerDefense), and every action
//!   it returns is executed, charged for time, and applied to the
//!   ground-truth fault oracle.
//!
//! Performance methodology (see DESIGN.md §4): the CPU side is abstracted
//! into per-access arrival gaps carried by the workload; slowdown is the
//! relative increase in trace completion time versus a defense-free run of
//! the same trace — isolating precisely the victim-refresh interference the
//! paper measures with McSimA+.
//!
//! Controllers are constructed through the typed [`McBuilder`]:
//! [`McBuilder::build`] yields a single [`MemoryController`] over the whole
//! geometry (the legacy semantics), while [`McBuilder::build_system`]
//! yields a channel-sharded [`SystemController`] whose front end routes
//! every access through a [`mapping::MappingPolicy`] into per-channel
//! shards with batched dispatch — see [`builder`] and [`system`].
//!
//! # Example
//!
//! ```
//! use memctrl::{McBuilder, McConfig};
//! use workloads::Synthetic;
//!
//! let mut mc = McBuilder::new(McConfig::micro2020_no_oracle()).build();
//! let stats = mc.run(&mut Synthetic::s3(65_536, 1), 10_000);
//! assert_eq!(stats.accesses, 10_000);
//! ```

pub mod audit;
pub mod bank;
pub mod builder;
pub mod ckpt;
pub mod cmdlog;
pub mod config;
pub mod controller;
pub mod faults;
pub mod mapping;
pub mod pagepolicy;
pub mod scheduler;
pub mod stats;
pub mod system;
pub mod tap;

pub use audit::{StatsAudit, StatsFinding};
pub use bank::BankState;
pub use builder::{DefenseFactory, McBuilder};
pub use ckpt::CkptError;
pub use cmdlog::{CommandLog, CommandRecord, LoggedCommand, ProtocolChecker, ProtocolViolation};
pub use config::McConfig;
pub use controller::{McBuildError, McError, MemoryController, StampedAccess};
pub use faults::{FaultInjector, FaultStats};
pub use mapping::{AddressMapper, DecodedAddress, MappingPolicy, MappingScheme, SystemAddress};
pub use pagepolicy::PagePolicy;
pub use scheduler::{BankQueue, SchedulerConfig};
pub use stats::RunStats;
pub use system::{SystemController, SystemRouter, SystemStats};
pub use tap::TelemetryTap;
