//! Property-based tests of the bank timing model and controller accounting.

use dram_model::timing::DramTiming;
use dram_model::RowId;
use memctrl::{BankState, McBuilder, McConfig, PagePolicy};
use proptest::prelude::*;
use workloads::{Access, Workload};

/// Replays a recorded access list.
struct Replay {
    accesses: Vec<Access>,
    i: usize,
}

impl Workload for Replay {
    fn name(&self) -> String {
        "replay".into()
    }
    fn next_access(&mut self) -> Access {
        let a = self.accesses[self.i % self.accesses.len()];
        self.i += 1;
        a
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Service never starts before arrival or bank readiness, finish is
    /// after start, and consecutive ACTs respect tRC — for every policy.
    #[test]
    fn bank_timing_invariants(
        rows in prop::collection::vec(0u32..64, 1..300),
        gaps in prop::collection::vec(0u64..200_000, 1..300),
        policy_idx in 0usize..3,
    ) {
        let policy = [PagePolicy::Open, PagePolicy::Closed, PagePolicy::minimalist_open()][policy_idx];
        let timing = DramTiming::ddr4_2400();
        let mut bank = BankState::new(timing, policy);
        let mut arrival = 0u64;
        let mut last_act_start: Option<u64> = None;
        for (r, g) in rows.iter().zip(gaps.iter()) {
            arrival += g;
            let before_ready = bank.ready_at();
            let o = bank.serve(RowId(*r), arrival);
            prop_assert!(o.start >= arrival);
            prop_assert!(o.start >= before_ready);
            prop_assert!(o.finish > o.start);
            if o.activated {
                // The ACT slot is start (+tRP if a row was open); we can
                // conservatively check start-to-start spacing of activating
                // accesses is at least tRC − tRP.
                if let Some(last) = last_act_start {
                    prop_assert!(
                        o.start + timing.t_rp >= last + timing.t_rc,
                        "ACT spacing violated: {last} -> {}",
                        o.start
                    );
                }
                last_act_start = Some(o.start);
            }
        }
    }

    /// A row hit is never slower than a conflict at the same arrival time.
    #[test]
    fn hits_never_slower_than_conflicts(row in 0u32..64) {
        let timing = DramTiming::ddr4_2400();
        let mut hit_bank = BankState::new(timing, PagePolicy::Open);
        let mut conflict_bank = BankState::new(timing, PagePolicy::Open);
        hit_bank.serve(RowId(row), 0);
        conflict_bank.serve(RowId(row), 0);
        let t = 1_000_000;
        let hit = hit_bank.serve(RowId(row), t);
        let conflict = conflict_bank.serve(RowId(row ^ 1), t);
        prop_assert!(hit.finish <= conflict.finish);
    }

    /// Controller accounting: activations + row hits == accesses, and the
    /// completion time is at least the sum implied by the ACT count and tRC
    /// divided across banks.
    #[test]
    fn controller_accounting(seed in any::<u64>(), n in 1_000u64..5_000) {
        let mut mc = McBuilder::new(McConfig::single_bank(4_096, None)).build();
        let mut rng_rows: Vec<Access> = Vec::new();
        let mut x = seed;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            rng_rows.push(Access {
                bank: 0,
                row: RowId((x >> 33) as u32 % 4_096),
                gap: (x >> 20) % 100_000,
                stream: (x % 4) as u16,
            });
        }
        let stats = mc.run(&mut Replay { accesses: rng_rows, i: 0 }, n);
        prop_assert_eq!(stats.accesses, n);
        prop_assert_eq!(stats.activations + stats.row_hits, n);
        prop_assert!(stats.completion > 0);
        prop_assert!(stats.total_latency >= n * 13_300);
    }
}

#[test]
fn command_log_is_protocol_clean_under_random_traffic() {
    // Self-audit: run mixed traffic with every command logged, then replay
    // the log through the protocol checker — zero violations allowed.
    use memctrl::{CommandLog, ProtocolChecker};
    let timing = DramTiming::ddr4_2400();
    let mut mc = McBuilder::new(McConfig::single_bank(65_536, None))
        .defenses_with(|b| Box::new(mitigations::Para::new(0.02, b as u64)) as _)
        .command_log(CommandLog::unbounded())
        .build();
    let mut w = workloads::Synthetic::s2(10, 65_536, 5);
    mc.run(&mut w, 30_000);
    let log = mc.command_log().expect("log attached");
    assert!(log.len() > 5_000, "log too small: {}", log.len());
    let violations = ProtocolChecker::new(timing).check(log);
    assert!(violations.is_empty(), "protocol violations: {violations:?}");
}

#[test]
fn queued_mode_is_protocol_clean_too() {
    use memctrl::{CommandLog, ProtocolChecker, SchedulerConfig};
    let timing = DramTiming::ddr4_2400();
    let mut mc = McBuilder::new(McConfig::single_bank(65_536, None))
        .command_log(CommandLog::unbounded())
        .build();
    let mut w = workloads::Synthetic::s1(10, 65_536, 9);
    mc.run_queued(&mut w, 30_000, SchedulerConfig::par_bs_like());
    let violations = ProtocolChecker::new(timing).check(mc.command_log().unwrap());
    assert!(violations.is_empty(), "protocol violations: {violations:?}");
}

#[test]
fn refresh_blackout_delays_service() {
    let timing = DramTiming::ddr4_2400();
    let mut bank = BankState::new(timing, PagePolicy::Open);
    let end = bank.block_for_refresh(0);
    let o = bank.serve(RowId(3), end - 100);
    assert_eq!(o.start, end);
}

#[test]
fn defense_busy_time_matches_victim_rows() {
    // Charge accounting: defense_busy == Σ (rows × tRC + tRP) per command.
    use mitigations::Para;
    use workloads::Synthetic;
    let timing = DramTiming::ddr4_2400();
    let mut mc = McBuilder::new(McConfig::single_bank(65_536, None))
        .defenses_with(|b| Box::new(Para::new(0.05, b as u64)) as _)
        .build();
    let stats = mc.run(&mut Synthetic::s1(10, 65_536, 3), 20_000);
    let expected =
        stats.victim_rows_refreshed * timing.t_rc + stats.defense_refresh_commands * timing.t_rp;
    assert_eq!(stats.defense_busy, expected);
}
