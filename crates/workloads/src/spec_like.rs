//! SPEC-like proxy workload generators.
//!
//! The paper drives its performance/energy evaluation with SPEC CPU2006,
//! PARSEC, SPLASH-2, GAP and MICA traces. Shipping those traces is not
//! possible, and for the quantities measured here only the *row-activation
//! frequency profile* matters: normal workloads never activate any single
//! row anywhere near Graphene's tracking threshold `T` within a reset
//! window — which is exactly why Graphene and TWiCe report zero victim
//! refreshes on them (Figure 8a/c).
//!
//! Each proxy emits the post-cache DRAM activation stream of one core,
//! parameterized by:
//!
//! * `footprint_pages` — distinct DRAM pages (rows) touched;
//! * `zipf_alpha` — popularity skew of the *activation* stream. Note this is
//!   the skew after the cache hierarchy has absorbed the hottest lines, so
//!   it is far milder than the application's logical skew;
//! * `stream_fraction` — probability of continuing a sequential walk
//!   (bank-interleaved streaming) instead of sampling the Zipf;
//! * `mean_gap` — mean inter-activation gap of this core (memory intensity).
//!
//! The presets in [`SpecPreset`] mirror the qualitative behaviour of the
//! paper's benchmark list (§V-B): streaming codes like libquantum/lbm have
//! high `stream_fraction`, pointer chasers like mcf/omnetpp have large
//! footprints and low locality, and the multithreaded MICA/PageRank proxies
//! have large, mildly skewed footprints.

use dram_model::geometry::RowId;
use dram_model::timing::Picoseconds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::stream::{Access, Workload};
use crate::zipf::Zipf;

/// Parameters of one proxy stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProxyParams {
    /// Report name (e.g. `"mcf-like"`).
    pub name: String,
    /// Distinct DRAM pages (rows) the stream touches.
    pub footprint_pages: u32,
    /// Zipf skew of the activation stream.
    pub zipf_alpha: f64,
    /// Fraction of accesses continuing a sequential walk.
    pub stream_fraction: f64,
    /// Mean inter-activation gap (ps).
    pub mean_gap: Picoseconds,
}

/// Named presets mirroring the paper's workload list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SpecPreset {
    /// SPEC mcf: pointer-chasing, huge footprint, low locality.
    Mcf,
    /// SPEC milc: lattice QCD, streaming with moderate reuse.
    Milc,
    /// SPEC leslie3d: stencil streaming.
    Leslie3d,
    /// SPEC soplex: sparse LP, irregular with some hot structures.
    Soplex,
    /// SPEC GemsFDTD: large streaming.
    GemsFdtd,
    /// SPEC libquantum: highly sequential streaming.
    Libquantum,
    /// SPEC lbm: lattice-Boltzmann streaming.
    Lbm,
    /// SPEC sphinx3: moderate footprint, mild skew.
    Sphinx3,
    /// SPEC omnetpp: discrete-event simulation, pointer-heavy.
    Omnetpp,
    /// MICA in-memory key-value store (multithreaded).
    Mica,
    /// GAP PageRank (multithreaded).
    PageRank,
    /// SPLASH-2 RADIX sort (multithreaded).
    Radix,
    /// SPLASH-2 FFT (multithreaded).
    Fft,
    /// PARSEC canneal (multithreaded).
    Canneal,
}

impl SpecPreset {
    /// The nine memory-intensive SPEC applications of "SPEC-high" (§V-B).
    pub fn spec_high() -> [SpecPreset; 9] {
        use SpecPreset::*;
        [Mcf, Milc, Leslie3d, Soplex, GemsFdtd, Libquantum, Lbm, Sphinx3, Omnetpp]
    }

    /// The five multithreaded benchmarks (§V-B).
    pub fn multithreaded() -> [SpecPreset; 5] {
        use SpecPreset::*;
        [Mica, PageRank, Radix, Fft, Canneal]
    }

    /// Every preset.
    pub fn all() -> Vec<SpecPreset> {
        let mut v = Self::spec_high().to_vec();
        v.extend(Self::multithreaded());
        v
    }

    /// The proxy parameters of this preset.
    pub fn params(self) -> ProxyParams {
        use SpecPreset::*;
        let (name, footprint, alpha, stream, gap_ns) = match self {
            Mcf => ("mcf-like", 45_000, 0.55, 0.05, 60),
            Milc => ("milc-like", 30_000, 0.35, 0.55, 70),
            Leslie3d => ("leslie3d-like", 24_000, 0.40, 0.70, 80),
            Soplex => ("soplex-like", 28_000, 0.60, 0.20, 75),
            GemsFdtd => ("GemsFDTD-like", 32_000, 0.40, 0.65, 70),
            Libquantum => ("libquantum-like", 16_000, 0.15, 0.90, 55),
            Lbm => ("lbm-like", 26_000, 0.25, 0.80, 55),
            Sphinx3 => ("sphinx3-like", 18_000, 0.60, 0.30, 90),
            Omnetpp => ("omnetpp-like", 36_000, 0.55, 0.10, 85),
            Mica => ("MICA-like", 52_000, 0.60, 0.05, 60),
            PageRank => ("PageRank-like", 44_000, 0.65, 0.20, 65),
            Radix => ("RADIX-like", 20_000, 0.20, 0.85, 60),
            Fft => ("FFT-like", 18_000, 0.30, 0.70, 70),
            Canneal => ("canneal-like", 38_000, 0.45, 0.10, 80),
        };
        ProxyParams {
            name: name.to_owned(),
            footprint_pages: footprint,
            zipf_alpha: alpha,
            stream_fraction: stream,
            mean_gap: gap_ns * 1000,
        }
    }
}

/// A single core's proxy activation stream over a multi-bank system.
///
/// Pages are placed round-robin across `banks` banks starting from a
/// seed-dependent base row, so sequential walks interleave across banks the
/// way an open-page controller sees real streaming.
#[derive(Debug, Clone)]
pub struct ProxyWorkload {
    params: ProxyParams,
    zipf: Zipf,
    banks: u16,
    rows_per_bank: u32,
    base_row: u32,
    /// Multiplicative stride decorrelating Zipf rank from row adjacency.
    shuffle: u32,
    cursor: u32,
    rng: StdRng,
}

impl ProxyWorkload {
    /// Creates the stream.
    ///
    /// # Panics
    ///
    /// Panics if `banks == 0`, `rows_per_bank == 0`, or the footprint does
    /// not fit in the system (`footprint_pages > banks · rows_per_bank`).
    pub fn new(params: ProxyParams, banks: u16, rows_per_bank: u32, seed: u64) -> Self {
        assert!(banks > 0 && rows_per_bank > 0, "system must be non-empty");
        assert!(
            u64::from(params.footprint_pages) <= u64::from(banks) * u64::from(rows_per_bank),
            "footprint exceeds system capacity"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let zipf = Zipf::new(params.footprint_pages as usize, params.zipf_alpha);
        let base_row = rng.gen_range(0..rows_per_bank);
        ProxyWorkload {
            zipf,
            banks,
            rows_per_bank,
            base_row,
            shuffle: 2_654_435_761, // Knuth's multiplicative constant (odd)
            cursor: 0,
            rng,
            params,
        }
    }

    /// Builds the stream from a preset.
    pub fn from_preset(preset: SpecPreset, banks: u16, rows_per_bank: u32, seed: u64) -> Self {
        Self::new(preset.params(), banks, rows_per_bank, seed)
    }

    /// The parameters in use.
    pub fn params(&self) -> &ProxyParams {
        &self.params
    }

    /// Maps a logical page to its (bank, row) placement.
    fn place(&self, page: u32) -> (u16, RowId) {
        let bank = (page % u32::from(self.banks)) as u16;
        let row = (self.base_row + page / u32::from(self.banks)) % self.rows_per_bank;
        (bank, RowId(row))
    }

    /// Decorrelates Zipf rank from page adjacency so hot pages are scattered.
    fn shuffle_rank(&self, rank: u32) -> u32 {
        (rank.wrapping_mul(self.shuffle)) % self.params.footprint_pages
    }

    fn exponential_gap(&mut self) -> Picoseconds {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        (-(u.ln()) * self.params.mean_gap as f64) as Picoseconds
    }
}

impl Workload for ProxyWorkload {
    fn name(&self) -> String {
        self.params.name.clone()
    }

    fn next_access(&mut self) -> Access {
        let page = if self.rng.gen_bool(self.params.stream_fraction) {
            self.cursor = (self.cursor + 1) % self.params.footprint_pages;
            self.cursor
        } else {
            // The sampler draws from `0..footprint_pages` and the footprint
            // is a u32, so the rank always fits; a checked conversion turns
            // any future violation of that invariant into a loud panic
            // instead of a silently aliased page (the old `as u32` wrapped).
            let rank = u32::try_from(self.zipf.sample(&mut self.rng))
                .expect("zipf rank bounded by the u32 footprint");
            let page = self.shuffle_rank(rank);
            self.cursor = page;
            page
        };
        let (bank, row) = self.place(page);
        Access { bank, row, gap: self.exponential_gap(), stream: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn mk(preset: SpecPreset) -> ProxyWorkload {
        ProxyWorkload::from_preset(preset, 16, 65_536, 77)
    }

    #[test]
    fn accesses_stay_in_system() {
        let mut w = mk(SpecPreset::Mcf);
        for _ in 0..10_000 {
            let a = w.next_access();
            assert!(a.bank < 16);
            assert!(a.row.0 < 65_536);
        }
    }

    #[test]
    fn mean_gap_close_to_parameter() {
        let mut w = mk(SpecPreset::Libquantum);
        let n = 50_000;
        let total: u64 = (0..n).map(|_| w.next_access().gap).sum();
        let mean = total as f64 / n as f64;
        let target = w.params().mean_gap as f64;
        assert!((mean / target - 1.0).abs() < 0.05, "mean {mean} target {target}");
    }

    #[test]
    fn streaming_preset_walks_sequentially() {
        // libquantum-like: ≥ 85 % of accesses advance the cursor by one page,
        // which in bank-interleaved placement means the next bank.
        let mut w = mk(SpecPreset::Libquantum);
        let mut sequential = 0;
        let mut last_bank = w.next_access().bank;
        let n = 10_000;
        for _ in 0..n {
            let a = w.next_access();
            if a.bank == (last_bank + 1) % 16 {
                sequential += 1;
            }
            last_bank = a.bank;
        }
        assert!(sequential as f64 / n as f64 > 0.75, "sequential {sequential}/{n}");
    }

    #[test]
    fn no_single_row_approaches_tracking_threshold() {
        // The property that makes Graphene/TWiCe refresh-free on normal
        // workloads: the hottest (bank, row) stays far below T = 8,333 per
        // reset window. One window at mean_gap ≥ 55 ns admits ≲ 580K accesses
        // per core; we sample 200K and scale.
        for preset in SpecPreset::all() {
            let mut w = ProxyWorkload::from_preset(preset, 16, 65_536, 42);
            let mut counts: HashMap<(u16, u32), u64> = HashMap::new();
            let sample = 200_000u64;
            let mut span: u64 = 0;
            for _ in 0..sample {
                let a = w.next_access();
                span += a.gap;
                *counts.entry((a.bank, a.row.0)).or_insert(0) += 1;
            }
            let hottest = counts.values().copied().max().unwrap();
            // Scale the hottest count to a full 32 ms reset window.
            let window = 32_000_000_000u64;
            let scaled = hottest as f64 * window as f64 / span as f64;
            assert!(
                scaled < 8_333.0 / 2.0,
                "{}: hottest row would see ~{scaled:.0} ACTs per window",
                w.name()
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = mk(SpecPreset::Soplex).take_accesses(100);
        let b = mk(SpecPreset::Soplex).take_accesses(100);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_seeds_differ() {
        let a = ProxyWorkload::from_preset(SpecPreset::Soplex, 16, 65_536, 1).take_accesses(100);
        let b = ProxyWorkload::from_preset(SpecPreset::Soplex, 16, 65_536, 2).take_accesses(100);
        assert_ne!(a, b);
    }

    #[test]
    fn preset_lists() {
        assert_eq!(SpecPreset::spec_high().len(), 9);
        assert_eq!(SpecPreset::multithreaded().len(), 5);
        assert_eq!(SpecPreset::all().len(), 14);
    }

    #[test]
    #[should_panic(expected = "footprint exceeds system capacity")]
    fn oversized_footprint_panics() {
        let params = ProxyParams {
            name: "huge".to_owned(),
            footprint_pages: 1000,
            zipf_alpha: 0.5,
            stream_fraction: 0.5,
            mean_gap: 1000,
        };
        let _ = ProxyWorkload::new(params, 1, 100, 0);
    }
}
