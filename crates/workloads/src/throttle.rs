//! Rate-limiting adapter: turn a saturating stream into a paced one.
//!
//! Row Hammer is a *rate* phenomenon: an attacker must land `T_RH`
//! activations between two refreshes of the victim. [`RateLimited`] injects
//! a fixed arrival gap into any workload, which lets experiments ask the
//! threshold question directly — below what hammering rate does plain
//! auto-refresh already win? One activation of a victim's neighbourhood per
//! `tREFW / T_RH` is the break-even rate (≈ 1.28 µs/ACT at `T_RH` = 50K),
//! and the crate's tests pin that boundary against the fault oracle.

use dram_model::timing::Picoseconds;

use crate::stream::{Access, Workload};

/// Wraps a workload, forcing every access to arrive `gap` after the last.
///
/// # Example
///
/// ```
/// use workloads::{throttle::RateLimited, Synthetic, Workload};
///
/// let mut slow = RateLimited::new(Synthetic::s3(4096, 1), 1_000_000);
/// assert_eq!(slow.next_access().gap, 1_000_000);
/// ```
#[derive(Debug, Clone)]
pub struct RateLimited<W> {
    inner: W,
    gap: Picoseconds,
}

impl<W: Workload> RateLimited<W> {
    /// Paces `inner` to one access per `gap` picoseconds.
    pub fn new(inner: W, gap: Picoseconds) -> Self {
        RateLimited { inner, gap }
    }

    /// The enforced inter-arrival gap.
    pub fn gap(&self) -> Picoseconds {
        self.gap
    }

    /// Consumes the adapter, returning the inner workload.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Workload> Workload for RateLimited<W> {
    fn name(&self) -> String {
        format!("{}@{}ns", self.inner.name(), self.gap / 1_000)
    }

    fn next_access(&mut self) -> Access {
        Access { gap: self.gap, ..self.inner.next_access() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::Synthetic;
    use dram_model::fault::{DisturbanceModel, FaultOracle, MuModel};
    use dram_model::refresh::RefreshEngine;
    use dram_model::timing::DramTiming;

    #[test]
    fn gap_is_enforced() {
        let mut w = RateLimited::new(Synthetic::s1(10, 4_096, 2), 777);
        for _ in 0..100 {
            assert_eq!(w.next_access().gap, 777);
        }
    }

    #[test]
    fn name_reflects_pacing() {
        let w = RateLimited::new(Synthetic::s3(4_096, 1), 50_000);
        assert_eq!(w.name(), "S3@50ns");
    }

    /// The break-even rate: a single-row hammer paced slower than
    /// `tREFW / T_RH` per ACT cannot flip an *unprotected* bank — plain
    /// auto-refresh restores the victims in time. Faster than that, it can.
    #[test]
    fn auto_refresh_alone_wins_below_breakeven_rate() {
        let t = DramTiming::ddr4_2400();
        let t_rh = 5_000u64;
        let breakeven = t.t_refw / t_rh; // 12.8 µs per ACT at T_RH = 5K

        let flips_at = |gap: u64, acts: u64| {
            let mut w = RateLimited::new(Synthetic::s3(65_536, 7), gap);
            let mut oracle =
                FaultOracle::new(DisturbanceModel { t_rh, mu: MuModel::Adjacent }, 65_536);
            let mut auto = RefreshEngine::new(&t, 65_536);
            let mut now = 0u64;
            for _ in 0..acts {
                let a = w.next_access();
                now += a.gap;
                oracle.refresh_rows(auto.catch_up(now));
                oracle.activate(a.row, now);
            }
            oracle.flips().len()
        };

        // 2× slower than break-even: ~1.6 windows of hammering, zero flips.
        assert_eq!(flips_at(2 * breakeven, 2 * t_rh), 0);
        // 4× faster than break-even: flips well within the budget.
        assert!(flips_at(breakeven / 4, 2 * t_rh) > 0);
    }

    #[test]
    fn into_inner_returns_source() {
        let w = RateLimited::new(Synthetic::s3(4_096, 1), 10);
        assert_eq!(w.into_inner().name(), "S3");
    }
}
