//! Classic Row Hammer attack shapes.
//!
//! Beyond the paper's S1–S4, the literature names several canonical shapes
//! that every defense test-bench should include:
//!
//! * **single-sided** — one aggressor (S3 already covers this);
//! * **double-sided** — two aggressors sandwiching one victim, halving the
//!   per-aggressor ACT budget (the reason for the `T_RH/2` term in
//!   Inequality 2);
//! * **many-sided** — `n` aggressors around a victim region, the TRRespass
//!   family that defeated in-DRAM TRR samplers by exceeding their tracking
//!   capacity. [`NSidedAttack`] places aggressors at every other row
//!   (`v±1, v±3, …`), so all of them share victims.

use dram_model::geometry::RowId;

use crate::stream::{Access, Workload};

/// An `n`-sided hammering pattern around a victim row.
///
/// # Example
///
/// ```
/// use workloads::{NSidedAttack, Workload};
///
/// let mut atk = NSidedAttack::new(100, 4, 65_536);
/// // Aggressors at 99, 101, 97, 103 in rotation.
/// let rows: Vec<u32> = (0..4).map(|_| atk.next_access().row.0).collect();
/// assert_eq!(rows, vec![99, 101, 97, 103]);
/// ```
#[derive(Debug, Clone)]
pub struct NSidedAttack {
    aggressors: Vec<RowId>,
    victim: RowId,
    position: usize,
}

impl NSidedAttack {
    /// Builds the pattern: `sides` aggressors at odd offsets around
    /// `victim`, clipped to the bank.
    ///
    /// # Panics
    ///
    /// Panics if `sides == 0` or the victim is outside the bank.
    pub fn new(victim: u32, sides: u32, rows_per_bank: u32) -> Self {
        assert!(sides > 0, "need at least one aggressor");
        assert!(victim < rows_per_bank, "victim outside bank");
        let mut aggressors = Vec::with_capacity(sides as usize);
        let mut d = 1u32;
        while aggressors.len() < sides as usize {
            if let Some(lo) = victim.checked_sub(d) {
                aggressors.push(RowId(lo));
            }
            if aggressors.len() < sides as usize && victim + d < rows_per_bank {
                aggressors.push(RowId(victim + d));
            }
            d += 2; // odd offsets: every aggressor is adjacent to even rows
        }
        NSidedAttack { aggressors, victim: RowId(victim), position: 0 }
    }

    /// The victim row at the pattern's center.
    pub fn victim(&self) -> RowId {
        self.victim
    }

    /// The aggressor rows, in hammering order.
    pub fn aggressors(&self) -> &[RowId] {
        &self.aggressors
    }
}

impl Workload for NSidedAttack {
    fn name(&self) -> String {
        format!("{}-sided", self.aggressors.len())
    }

    fn next_access(&mut self) -> Access {
        let row = self.aggressors[self.position % self.aggressors.len()];
        self.position += 1;
        Access { bank: 0, row, gap: 0, stream: 0 }
    }
}

/// A many-sided pattern striped across every bank of the system.
///
/// Each bank gets its own [`NSidedAttack`] lane around a bank-specific
/// victim (victims are offset so the aggressor windows never overlap
/// modulo the bank). Accesses round-robin over the banks, so under a
/// bank- or channel-interleaved mapping the hammer pressure lands on
/// every channel at once — the full-system analogue of TRRespass-style
/// many-sided hammering.
///
/// # Example
///
/// ```
/// use workloads::{StripedNSided, Workload};
///
/// let mut atk = StripedNSided::new(100, 4, 8, 65_536);
/// let a = atk.next_access();
/// assert_eq!(a.bank, 0);
/// assert_eq!(atk.next_access().bank, 1);
/// ```
#[derive(Debug, Clone)]
pub struct StripedNSided {
    lanes: Vec<NSidedAttack>,
    position: usize,
}

impl StripedNSided {
    /// `sides` aggressors per bank, striped over `banks` banks, with the
    /// first bank's victim at `victim`.
    ///
    /// # Panics
    ///
    /// Panics if `banks == 0`, `sides == 0`, or any lane's victim falls
    /// outside the bank.
    pub fn new(victim: u32, sides: u32, banks: u16, rows_per_bank: u32) -> Self {
        assert!(banks > 0, "need at least one bank");
        // Offset each lane past the previous lane's aggressor window so
        // no two banks share a victim row index.
        let stride = 2 * sides + 3;
        let lanes = (0..banks as u32)
            .map(|b| NSidedAttack::new((victim + b * stride) % rows_per_bank, sides, rows_per_bank))
            .collect();
        StripedNSided { lanes, position: 0 }
    }

    /// The per-bank attack lanes, indexed by bank.
    pub fn lanes(&self) -> &[NSidedAttack] {
        &self.lanes
    }
}

impl Workload for StripedNSided {
    fn name(&self) -> String {
        format!("striped-{}x{}-sided", self.lanes.len(), self.lanes[0].aggressors().len())
    }

    fn next_access(&mut self) -> Access {
        let lane = self.position % self.lanes.len();
        self.position += 1;
        let mut a = self.lanes[lane].next_access();
        a.bank = lane as u16;
        a
    }
}

/// The ABACuS-style same-row-all-banks pattern: hammer the *same* row
/// index in every bank of the system simultaneously.
///
/// A full sweep touches row `victim − 1` in banks `0..banks`, the next
/// sweep row `victim + 1`, and so on — double-sided pressure whose
/// per-bank ACT counts are perfectly correlated across the whole system.
/// Defenses that track per-bank see `1/banks` of the total ACT rate;
/// anything keyed on the global row index sees all of it.
///
/// # Example
///
/// ```
/// use workloads::{SameRowAllBanks, Workload};
///
/// let mut atk = SameRowAllBanks::new(100, 4, 65_536);
/// let first: Vec<_> = (0..4).map(|_| atk.next_access()).collect();
/// assert!(first.iter().all(|a| a.row.0 == 99));
/// assert_eq!(first.iter().map(|a| a.bank).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct SameRowAllBanks {
    aggressors: [RowId; 2],
    banks: u16,
    position: usize,
}

impl SameRowAllBanks {
    /// Double-sided aggressors around `victim`, swept across `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks == 0` or `victim ± 1` falls outside the bank.
    pub fn new(victim: u32, banks: u16, rows_per_bank: u32) -> Self {
        assert!(banks > 0, "need at least one bank");
        assert!(victim >= 1 && victim + 1 < rows_per_bank, "victim too close to bank edge");
        SameRowAllBanks { aggressors: [RowId(victim - 1), RowId(victim + 1)], banks, position: 0 }
    }

    /// The shared victim row index hammered in every bank.
    pub fn victim(&self) -> RowId {
        RowId(self.aggressors[0].0 + 1)
    }
}

impl Workload for SameRowAllBanks {
    fn name(&self) -> String {
        format!("same-row-{}banks", self.banks)
    }

    fn next_access(&mut self) -> Access {
        // `position % banks` is bounded by the u16 bank count; the checked
        // conversion documents that invariant instead of narrowing silently.
        let bank = u16::try_from(self.position % self.banks as usize)
            .expect("modulo a u16 bank count fits u16");
        let sweep = self.position / self.banks as usize;
        self.position += 1;
        Access { bank, row: self.aggressors[sweep % 2], gap: 0, stream: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn double_sided_sandwiches_victim() {
        let atk = NSidedAttack::new(500, 2, 65_536);
        assert_eq!(atk.aggressors(), &[RowId(499), RowId(501)]);
        assert_eq!(atk.victim(), RowId(500));
    }

    #[test]
    fn many_sided_uses_odd_offsets() {
        let atk = NSidedAttack::new(500, 6, 65_536);
        assert_eq!(
            atk.aggressors(),
            &[RowId(499), RowId(501), RowId(497), RowId(503), RowId(495), RowId(505)]
        );
        // All aggressors are odd-distance from the victim.
        for a in atk.aggressors() {
            assert_eq!(a.0.abs_diff(500) % 2, 1);
        }
    }

    #[test]
    fn clips_at_bank_start() {
        let atk = NSidedAttack::new(1, 4, 65_536);
        // d=1: rows 0 and 2; d=3: only row 4 (1-3 underflows); d=5: row 6.
        assert_eq!(atk.aggressors(), &[RowId(0), RowId(2), RowId(4), RowId(6)]);
    }

    #[test]
    fn rotation_is_fair() {
        let mut atk = NSidedAttack::new(100, 4, 65_536);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..400 {
            *counts.entry(atk.next_access().row).or_insert(0u32) += 1;
        }
        assert!(counts.values().all(|&c| c == 100));
    }

    #[test]
    fn name_reflects_sides() {
        assert_eq!(NSidedAttack::new(9, 8, 65_536).name(), "8-sided");
    }

    #[test]
    #[should_panic(expected = "victim outside bank")]
    fn victim_out_of_bank_panics() {
        let _ = NSidedAttack::new(100, 2, 50);
    }

    #[test]
    fn striped_covers_every_bank_fairly() {
        let mut atk = StripedNSided::new(200, 4, 16, 65_536);
        let mut per_bank = vec![0u32; 16];
        for _ in 0..16 * 40 {
            per_bank[atk.next_access().bank as usize] += 1;
        }
        assert!(per_bank.iter().all(|&c| c == 40));
    }

    #[test]
    fn striped_lanes_have_disjoint_victims() {
        let atk = StripedNSided::new(300, 6, 16, 65_536);
        let victims: std::collections::HashSet<_> =
            atk.lanes().iter().map(|l| l.victim()).collect();
        assert_eq!(victims.len(), 16, "each bank must have its own victim");
        // No lane's aggressors reach into a neighbouring lane's window.
        for pair in atk.lanes().windows(2) {
            let hi = pair[0].aggressors().iter().map(|r| r.0).max().unwrap();
            let lo = pair[1].aggressors().iter().map(|r| r.0).min().unwrap();
            assert!(hi < lo, "aggressor windows overlap: {hi} >= {lo}");
        }
    }

    #[test]
    fn striped_name_reflects_shape() {
        assert_eq!(StripedNSided::new(100, 4, 8, 65_536).name(), "striped-8x4-sided");
    }

    #[test]
    fn same_row_sweeps_banks_then_alternates_sides() {
        let mut atk = SameRowAllBanks::new(100, 4, 65_536);
        let sweep1: Vec<_> = (0..4).map(|_| atk.next_access()).collect();
        let sweep2: Vec<_> = (0..4).map(|_| atk.next_access()).collect();
        assert!(sweep1.iter().all(|a| a.row == RowId(99)));
        assert!(sweep2.iter().all(|a| a.row == RowId(101)));
        assert_eq!(sweep2.iter().map(|a| a.bank).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(atk.victim(), RowId(100));
    }

    #[test]
    fn same_row_name_reflects_banks() {
        assert_eq!(SameRowAllBanks::new(5, 64, 65_536).name(), "same-row-64banks");
    }

    #[test]
    #[should_panic(expected = "victim too close to bank edge")]
    fn same_row_rejects_edge_victim() {
        let _ = SameRowAllBanks::new(0, 4, 65_536);
    }
}
