//! Classic Row Hammer attack shapes.
//!
//! Beyond the paper's S1–S4, the literature names several canonical shapes
//! that every defense test-bench should include:
//!
//! * **single-sided** — one aggressor (S3 already covers this);
//! * **double-sided** — two aggressors sandwiching one victim, halving the
//!   per-aggressor ACT budget (the reason for the `T_RH/2` term in
//!   Inequality 2);
//! * **many-sided** — `n` aggressors around a victim region, the TRRespass
//!   family that defeated in-DRAM TRR samplers by exceeding their tracking
//!   capacity. [`NSidedAttack`] places aggressors at every other row
//!   (`v±1, v±3, …`), so all of them share victims.

use dram_model::geometry::RowId;

use crate::stream::{Access, Workload};

/// An `n`-sided hammering pattern around a victim row.
///
/// # Example
///
/// ```
/// use workloads::{NSidedAttack, Workload};
///
/// let mut atk = NSidedAttack::new(100, 4, 65_536);
/// // Aggressors at 99, 101, 97, 103 in rotation.
/// let rows: Vec<u32> = (0..4).map(|_| atk.next_access().row.0).collect();
/// assert_eq!(rows, vec![99, 101, 97, 103]);
/// ```
#[derive(Debug, Clone)]
pub struct NSidedAttack {
    aggressors: Vec<RowId>,
    victim: RowId,
    position: usize,
}

impl NSidedAttack {
    /// Builds the pattern: `sides` aggressors at odd offsets around
    /// `victim`, clipped to the bank.
    ///
    /// # Panics
    ///
    /// Panics if `sides == 0` or the victim is outside the bank.
    pub fn new(victim: u32, sides: u32, rows_per_bank: u32) -> Self {
        assert!(sides > 0, "need at least one aggressor");
        assert!(victim < rows_per_bank, "victim outside bank");
        let mut aggressors = Vec::with_capacity(sides as usize);
        let mut d = 1u32;
        while aggressors.len() < sides as usize {
            if let Some(lo) = victim.checked_sub(d) {
                aggressors.push(RowId(lo));
            }
            if aggressors.len() < sides as usize && victim + d < rows_per_bank {
                aggressors.push(RowId(victim + d));
            }
            d += 2; // odd offsets: every aggressor is adjacent to even rows
        }
        NSidedAttack { aggressors, victim: RowId(victim), position: 0 }
    }

    /// The victim row at the pattern's center.
    pub fn victim(&self) -> RowId {
        self.victim
    }

    /// The aggressor rows, in hammering order.
    pub fn aggressors(&self) -> &[RowId] {
        &self.aggressors
    }
}

impl Workload for NSidedAttack {
    fn name(&self) -> String {
        format!("{}-sided", self.aggressors.len())
    }

    fn next_access(&mut self) -> Access {
        let row = self.aggressors[self.position % self.aggressors.len()];
        self.position += 1;
        Access { bank: 0, row, gap: 0, stream: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn double_sided_sandwiches_victim() {
        let atk = NSidedAttack::new(500, 2, 65_536);
        assert_eq!(atk.aggressors(), &[RowId(499), RowId(501)]);
        assert_eq!(atk.victim(), RowId(500));
    }

    #[test]
    fn many_sided_uses_odd_offsets() {
        let atk = NSidedAttack::new(500, 6, 65_536);
        assert_eq!(
            atk.aggressors(),
            &[RowId(499), RowId(501), RowId(497), RowId(503), RowId(495), RowId(505)]
        );
        // All aggressors are odd-distance from the victim.
        for a in atk.aggressors() {
            assert_eq!(a.0.abs_diff(500) % 2, 1);
        }
    }

    #[test]
    fn clips_at_bank_start() {
        let atk = NSidedAttack::new(1, 4, 65_536);
        // d=1: rows 0 and 2; d=3: only row 4 (1-3 underflows); d=5: row 6.
        assert_eq!(atk.aggressors(), &[RowId(0), RowId(2), RowId(4), RowId(6)]);
    }

    #[test]
    fn rotation_is_fair() {
        let mut atk = NSidedAttack::new(100, 4, 65_536);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..400 {
            *counts.entry(atk.next_access().row).or_insert(0u32) += 1;
        }
        assert!(counts.values().all(|&c| c == 100));
    }

    #[test]
    fn name_reflects_sides() {
        assert_eq!(NSidedAttack::new(9, 8, 65_536).name(), "8-sided");
    }

    #[test]
    #[should_panic(expected = "victim outside bank")]
    fn victim_out_of_bank_panics() {
        let _ = NSidedAttack::new(100, 2, 50);
    }
}
