//! The fallible-filesystem seam under trace and checkpoint I/O.
//!
//! Every byte the fleet service persists — RHT4 trace chunks, `fleetckpt`
//! checkpoint files — flows through this trait pair instead of calling
//! [`std::fs`] directly. In production the indirection is one vtable hop
//! ([`RealFs`] delegates straight to the OS); in the chaos harness the
//! `faultsim` crate substitutes a shim that injects **deterministic,
//! seeded I/O faults** (torn writes, bit rot, fsync failures, reader
//! stalls) under the exact same code paths, so crash-and-corruption
//! behavior is tested against the real reader/writer logic rather than a
//! mock of it.
//!
//! The traits are deliberately minimal: just the operations the trace and
//! checkpoint paths actually perform. Directory enumeration, permissions,
//! and metadata stay outside the seam — corruption of *content* and loss
//! of *durability* are the failure classes under test.

use std::fmt::Debug;
use std::io::{self, Read, Seek, Write};
use std::path::Path;
use std::sync::Arc;

/// An open file handle behind the fallible-FS seam.
///
/// `Read + Write + Seek` covers the trace reader (chunked reads + seeks),
/// the trace writer (streaming appends + the header patch), and checkpoint
/// I/O; [`sync_all`](Self::sync_all) is the durability point a crash model
/// cares about.
pub trait VfsFile: Read + Write + Seek + Debug + Send {
    /// Flushes file content and metadata to the storage device
    /// ([`std::fs::File::sync_all`] semantics).
    ///
    /// # Errors
    ///
    /// Propagates the underlying fsync failure.
    fn sync_all(&mut self) -> io::Result<()>;
}

/// A filesystem the trace and checkpoint paths can be pointed at.
///
/// Implementations must be shareable (`Send + Sync`): one `Arc<dyn Vfs>`
/// is typically threaded through a whole fleet run so a single injection
/// plan governs every file the run touches.
pub trait Vfs: Debug + Send + Sync {
    /// Creates (truncating) a file for writing.
    ///
    /// # Errors
    ///
    /// Propagates the underlying create failure.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Opens an existing file for reading (and seeking).
    ///
    /// # Errors
    ///
    /// Propagates the underlying open failure.
    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Atomically renames `from` onto `to` (same-directory rename; the
    /// commit point of every atomic-write idiom in this workspace).
    ///
    /// # Errors
    ///
    /// Propagates the underlying rename failure.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes a file; missing files are an error (callers that don't care
    /// ignore it).
    ///
    /// # Errors
    ///
    /// Propagates the underlying unlink failure.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// True if `path` currently exists.
    fn exists(&self, path: &Path) -> bool;

    /// Reads a whole file as UTF-8 text (checkpoint files are line-oriented
    /// text). Routed through [`open`](Self::open) so read-side fault
    /// injection applies.
    ///
    /// # Errors
    ///
    /// Propagates open/read failures; non-UTF-8 content maps to
    /// [`std::io::ErrorKind::InvalidData`].
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        let mut f = self.open(path)?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        String::from_utf8(buf).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{}: not UTF-8", path.display()))
        })
    }
}

/// The production filesystem: a zero-state passthrough to [`std::fs`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

/// The default `Arc<dyn Vfs>` used when a caller doesn't supply one.
pub fn real_fs() -> Arc<dyn Vfs> {
    Arc::new(RealFs)
}

#[derive(Debug)]
struct RealFile(std::fs::File);

impl Read for RealFile {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.0.read(buf)
    }
}

impl Write for RealFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

impl Seek for RealFile {
    fn seek(&mut self, pos: io::SeekFrom) -> io::Result<u64> {
        self.0.seek(pos)
    }
}

impl VfsFile for RealFile {
    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl Vfs for RealFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        // Read+write so the trace writer can patch its header at finish.
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(std::fs::File::open(path)?)))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("graphene_repro_vfs");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{name}", std::process::id()))
    }

    #[test]
    fn real_fs_round_trips_and_renames() {
        let fs = real_fs();
        let a = tmp("a.bin");
        let b = tmp("b.bin");
        {
            let mut f = fs.create(&a).unwrap();
            f.write_all(b"integrity").unwrap();
            f.sync_all().unwrap();
        }
        assert!(fs.exists(&a));
        fs.rename(&a, &b).unwrap();
        assert!(!fs.exists(&a));
        assert_eq!(fs.read_to_string(&b).unwrap(), "integrity");
        let mut f = fs.open(&b).unwrap();
        f.seek(io::SeekFrom::Start(2)).unwrap();
        let mut rest = String::new();
        f.read_to_string(&mut rest).unwrap();
        assert_eq!(rest, "tegrity");
        fs.remove_file(&b).unwrap();
        assert!(!fs.exists(&b));
        assert!(fs.remove_file(&b).is_err(), "double unlink is an error");
    }

    #[test]
    fn create_is_read_write() {
        let fs = real_fs();
        let p = tmp("patch.bin");
        let mut f = fs.create(&p).unwrap();
        f.write_all(b"0123456789").unwrap();
        f.seek(io::SeekFrom::Start(4)).unwrap();
        f.write_all(b"XX").unwrap();
        f.seek(io::SeekFrom::Start(0)).unwrap();
        let mut back = String::new();
        f.read_to_string(&mut back).unwrap();
        assert_eq!(back, "0123XX6789");
        fs.remove_file(&p).ok();
    }
}
