//! # workloads
//!
//! Workload generators for the Graphene (MICRO 2020) reproduction.
//!
//! Three families, matching Section V-B of the paper:
//!
//! * [`synthetic`] — the adversarial benchmarks **S1–S4**: S1 cycles through
//!   `N` fixed aggressor rows (N = 10, 20), S2 interleaves the cycle with
//!   occasional random rows, S3 hammers a single row, and S4 mixes S3 with
//!   random accesses.
//! * [`patterns`] — the targeted attack patterns of Figure 7: the
//!   frequency-skew pattern `{x−4, x−2, x−2, x, x, x, x+2, x+2, x+4}` that
//!   defeats PRoHIT's frequency-ordered tables, and the 8-aggressor rotation
//!   that overflows MRLoc's 15-entry history queue.
//! * [`spec_like`] — proxy generators standing in for the paper's SPEC
//!   CPU2006 / PARSEC / GAP traces (see DESIGN.md §4): parameterized by
//!   footprint, Zipf row-popularity skew, sequential-streaming fraction and
//!   memory intensity, with per-benchmark presets whose knobs follow the
//!   qualitative memory behaviour of the named applications.
//!
//! All generators implement [`Workload`], an infinite stream of [`Access`]es
//! (bank, row, inter-arrival gap). Use [`mix::Interleaved`] to merge per-core
//! streams into a multi-bank trace, as the paper's 16-core setup does.
//!
//! # Example
//!
//! ```
//! use workloads::{synthetic::Synthetic, Workload};
//!
//! let mut s1 = Synthetic::s1(10, 4096, 1);
//! let a = s1.next_access();
//! assert!(a.row.0 < 4096);
//! ```

pub mod attacks;
pub mod crc;
pub mod mix;
pub mod patterns;
pub mod spec_like;
pub mod stream;
pub mod synthetic;
pub mod throttle;
pub mod trace;
pub mod trace3;
pub mod vfs;
pub mod zipf;

pub use attacks::{NSidedAttack, SameRowAllBanks, StripedNSided};
pub use crc::{crc32c, Crc32c};
pub use mix::Interleaved;
pub use patterns::{MrlocAttack, ProhitAttack};
pub use spec_like::{ProxyParams, ProxyWorkload, SpecPreset};
pub use stream::{Access, Workload};
pub use synthetic::Synthetic;
pub use throttle::RateLimited;
pub use trace::{Trace, TraceError, TraceReplay};
pub use trace3::{TraceReader, TraceWriter};
pub use vfs::{real_fs, RealFs, Vfs, VfsFile};
pub use zipf::Zipf;
