//! A deterministic Zipf sampler over `0..n`.
//!
//! Row popularity in real workloads is heavy-tailed; the SPEC-like proxies
//! use a Zipf(α) distribution over their row footprint. The sampler
//! precomputes the CDF once and draws by binary search, so sampling is
//! O(log n) with no rejection.

use rand::Rng;

/// Zipf(α) distribution over `{0, 1, …, n−1}` (rank 0 is the most popular).
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use workloads::Zipf;
///
/// let z = Zipf::new(1000, 1.0);
/// let mut rng = StdRng::seed_from_u64(1);
/// let x = z.sample(&mut rng);
/// assert!(x < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    alpha: f64,
}

impl Zipf {
    /// Builds the distribution for `n` items with exponent `alpha ≥ 0`
    /// (`alpha = 0` is uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha` is negative/non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!(alpha.is_finite() && alpha >= 0.0, "alpha must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(alpha);
            cdf.push(total);
        }
        // Normalize.
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf, alpha }
    }

    /// The exponent α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the distribution covers no items. Always `false` in practice
    /// — [`Zipf::new`] rejects `n == 0` — but derived honestly from the
    /// stored CDF so the answer cannot drift from [`Zipf::len`].
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..len()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `k`.
    ///
    /// Ranks outside the support (`k ≥ len()`) have zero mass and return
    /// `0.0` rather than panicking, so callers may probe arbitrary ranks.
    pub fn pmf(&self, k: usize) -> f64 {
        if k >= self.cdf.len() {
            0.0
        } else if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_alpha_zero() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn skew_increases_with_alpha() {
        let z1 = Zipf::new(100, 0.8);
        let z2 = Zipf::new(100, 1.5);
        assert!(z2.pmf(0) > z1.pmf(0));
        assert!(z2.pmf(99) < z1.pmf(99));
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(57, 1.1);
        let sum: f64 = (0..57).map(|k| z.pmf(k)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn samples_match_pmf_roughly() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200_000;
        let mut counts = [0u64; 10];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for k in 0..10 {
            let freq = counts[k] as f64 / n as f64;
            assert!((freq - z.pmf(k)).abs() < 0.01, "rank {k}: {freq} vs {}", z.pmf(k));
        }
    }

    #[test]
    fn sample_always_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn never_empty_and_len_consistent() {
        let z = Zipf::new(7, 1.0);
        assert!(!z.is_empty());
        assert_eq!(z.len(), 7);
    }

    #[test]
    fn pmf_out_of_support_is_zero() {
        // Regression: `pmf(len())` used to panic on a raw index.
        let z = Zipf::new(5, 1.2);
        assert_eq!(z.pmf(5), 0.0);
        assert_eq!(z.pmf(usize::MAX), 0.0);
        assert!(z.pmf(4) > 0.0);
    }
}
