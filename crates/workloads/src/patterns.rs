//! The targeted attack patterns of Figure 7.
//!
//! * [`ProhitAttack`] — `{x−4, x−2, x−2, x, x, x, x+2, x+2, x+4}` repeated.
//!   Every aggressor in the set disturbs the victims `x−5 … x+5`; the victims
//!   `x±1, x±3` are disturbed by *two* aggressors each and therefore appear
//!   frequently in PRoHIT's tables, while `x±5` are disturbed by only one
//!   infrequent aggressor — so frequency-ordered refresh starves them.
//! * [`MrlocAttack`] — eight distinct, non-adjacent rows accessed in order.
//!   Sixteen victims overflow MRLoc's 15-entry history queue, nullifying its
//!   locality boost.

use dram_model::geometry::RowId;

use crate::stream::{Access, Workload};

/// The Figure 7(a) pattern that defeats PRoHIT.
///
/// # Example
///
/// ```
/// use workloads::{patterns::ProhitAttack, Workload};
///
/// let mut atk = ProhitAttack::new(1000);
/// let first: Vec<u32> = (0..9).map(|_| atk.next_access().row.0).collect();
/// assert_eq!(first, vec![996, 998, 998, 1000, 1000, 1000, 1002, 1002, 1004]);
/// ```
#[derive(Debug, Clone)]
pub struct ProhitAttack {
    sequence: [RowId; 9],
    position: usize,
}

impl ProhitAttack {
    /// Builds the pattern around center row `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x < 4` (the pattern would underflow the bank).
    pub fn new(x: u32) -> Self {
        assert!(x >= 4, "center row must leave room for x-4");
        ProhitAttack {
            sequence: [
                RowId(x - 4),
                RowId(x - 2),
                RowId(x - 2),
                RowId(x),
                RowId(x),
                RowId(x),
                RowId(x + 2),
                RowId(x + 2),
                RowId(x + 4),
            ],
            position: 0,
        }
    }

    /// The victims that the pattern under-protects (`x−5` and `x+5`): each is
    /// adjacent to only the least-frequent aggressors `x∓4`.
    pub fn starved_victims(&self) -> [RowId; 2] {
        let x = self.sequence[3].0;
        [RowId(x - 5), RowId(x + 5)]
    }

    /// Aggressor ACTs per repetition that disturb a starved victim (1 of 9).
    pub fn starved_fraction(&self) -> f64 {
        1.0 / 9.0
    }
}

impl Workload for ProhitAttack {
    fn name(&self) -> String {
        "fig7a-prohit".to_owned()
    }

    fn next_access(&mut self) -> Access {
        let row = self.sequence[self.position % 9];
        self.position += 1;
        Access { bank: 0, row, gap: 0, stream: 0 }
    }
}

/// The Figure 7(b) pattern that defeats MRLoc: `{x₁ … x₈}` repeated, all
/// rows distinct and non-adjacent.
#[derive(Debug, Clone)]
pub struct MrlocAttack {
    rows: [RowId; 8],
    position: usize,
}

impl MrlocAttack {
    /// Eight aggressors spaced `stride ≥ 3` apart starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `stride < 3` (victim sets would overlap and reduce the
    /// distinct-victim count below 16).
    pub fn new(base: u32, stride: u32) -> Self {
        assert!(stride >= 3, "aggressors must be non-adjacent");
        let mut rows = [RowId(0); 8];
        for (i, r) in rows.iter_mut().enumerate() {
            *r = RowId(base + i as u32 * stride);
        }
        MrlocAttack { rows, position: 0 }
    }

    /// The aggressor rows.
    pub fn aggressors(&self) -> &[RowId; 8] {
        &self.rows
    }

    /// Number of distinct victim rows the pattern generates (2 per
    /// aggressor): 16, exceeding the 15-entry history queue.
    pub fn distinct_victims(&self) -> usize {
        16
    }
}

impl Workload for MrlocAttack {
    fn name(&self) -> String {
        "fig7b-mrloc".to_owned()
    }

    fn next_access(&mut self) -> Access {
        let row = self.rows[self.position % 8];
        self.position += 1;
        Access { bank: 0, row, gap: 0, stream: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn prohit_pattern_matches_figure_7a() {
        let mut atk = ProhitAttack::new(100);
        let two_cycles: Vec<u32> = (0..18).map(|_| atk.next_access().row.0).collect();
        let expected = [96, 98, 98, 100, 100, 100, 102, 102, 104];
        assert_eq!(&two_cycles[..9], &expected);
        assert_eq!(&two_cycles[9..], &expected);
    }

    #[test]
    fn prohit_starved_victims_are_x_pm_5() {
        let atk = ProhitAttack::new(100);
        assert_eq!(atk.starved_victims(), [RowId(95), RowId(105)]);
    }

    #[test]
    fn prohit_frequency_profile() {
        // Per cycle: x appears 3×, x±2 2×, x±4 1× — the skew that biases
        // PRoHIT's tables.
        let mut atk = ProhitAttack::new(100);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..900 {
            *counts.entry(atk.next_access().row.0).or_insert(0) += 1;
        }
        assert_eq!(counts[&100], 300);
        assert_eq!(counts[&98], 200);
        assert_eq!(counts[&102], 200);
        assert_eq!(counts[&96], 100);
        assert_eq!(counts[&104], 100);
    }

    #[test]
    fn mrloc_pattern_has_16_distinct_victims() {
        let atk = MrlocAttack::new(1000, 10);
        let mut victims = HashSet::new();
        for a in atk.aggressors() {
            victims.insert(a.0 - 1);
            victims.insert(a.0 + 1);
        }
        assert_eq!(victims.len(), atk.distinct_victims());
    }

    #[test]
    fn mrloc_cycles_in_order() {
        let mut atk = MrlocAttack::new(0, 3);
        let rows: Vec<u32> = (0..8).map(|_| atk.next_access().row.0).collect();
        assert_eq!(rows, vec![0, 3, 6, 9, 12, 15, 18, 21]);
        assert_eq!(atk.next_access().row.0, 0); // wraps
    }

    #[test]
    #[should_panic(expected = "non-adjacent")]
    fn mrloc_rejects_small_stride() {
        let _ = MrlocAttack::new(0, 2);
    }

    #[test]
    #[should_panic(expected = "room for x-4")]
    fn prohit_rejects_edge_center() {
        let _ = ProhitAttack::new(3);
    }
}
