//! The paper's adversarial synthetic benchmarks S1–S4 (Section V-B).
//!
//! * **S1** repeats `N` arbitrarily selected rows (the paper runs N = 10 and
//!   N = 20);
//! * **S2** is S1 with occasional random rows mixed in;
//! * **S3** hammers a single row — the classic Row Hammer loop;
//! * **S4** mixes S3 with random row accesses.

use dram_model::geometry::RowId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::stream::{Access, Workload};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    S1 { n: u32 },
    S2 { n: u32 },
    S3,
    S4,
}

/// The S1–S4 generators. All run at full rate (`gap = 0`) on bank 0, as an
/// attacker saturating one bank would; wrap in
/// [`Interleaved`](crate::mix::Interleaved) for multi-bank attacks.
#[derive(Debug, Clone)]
pub struct Synthetic {
    kind: Kind,
    rows_per_bank: u32,
    /// The fixed aggressor rows of the repeating part.
    aggressors: Vec<RowId>,
    position: usize,
    rng: StdRng,
}

impl Synthetic {
    /// S1: repeat `n` arbitrarily selected rows.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > rows_per_bank`.
    pub fn s1(n: u32, rows_per_bank: u32, seed: u64) -> Self {
        Self::with_kind(Kind::S1 { n }, n, rows_per_bank, seed)
    }

    /// S2: the S1 cycle with occasional random rows in between
    /// (one random access per full cycle on average).
    pub fn s2(n: u32, rows_per_bank: u32, seed: u64) -> Self {
        Self::with_kind(Kind::S2 { n }, n, rows_per_bank, seed)
    }

    /// S3: a single repeatedly accessed row — the straightforward attack.
    pub fn s3(rows_per_bank: u32, seed: u64) -> Self {
        Self::with_kind(Kind::S3, 1, rows_per_bank, seed)
    }

    /// S4: S3 mixed with random row accesses (50/50).
    pub fn s4(rows_per_bank: u32, seed: u64) -> Self {
        Self::with_kind(Kind::S4, 1, rows_per_bank, seed)
    }

    fn with_kind(kind: Kind, n: u32, rows_per_bank: u32, seed: u64) -> Self {
        assert!(n > 0, "need at least one aggressor row");
        assert!(
            rows_per_bank / n >= 3,
            "bank too small to hold {n} aggressors with disjoint victim sets"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        // Arbitrarily selected, well-separated aggressor rows: one per
        // stride-wide slot with a random jitter inside the slot, so all
        // pairwise distances stay > 2 (victim sets never overlap) without
        // rejection sampling that could dead-end on dense configurations.
        let stride = rows_per_bank / n;
        let jitter_room = stride - 2;
        let aggressors =
            (0..n).map(|i| RowId(i * stride + rng.gen_range(0..jitter_room))).collect();
        Synthetic { kind, rows_per_bank, aggressors, position: 0, rng }
    }

    /// The fixed aggressor rows this instance hammers.
    pub fn aggressors(&self) -> &[RowId] {
        &self.aggressors
    }

    fn next_aggressor(&mut self) -> RowId {
        let r = self.aggressors[self.position % self.aggressors.len()];
        self.position += 1;
        r
    }

    fn random_row(&mut self) -> RowId {
        RowId(self.rng.gen_range(0..self.rows_per_bank))
    }
}

impl Workload for Synthetic {
    fn name(&self) -> String {
        match self.kind {
            Kind::S1 { n } => format!("S1-{n}"),
            Kind::S2 { n } => format!("S2-{n}"),
            Kind::S3 => "S3".to_owned(),
            Kind::S4 => "S4".to_owned(),
        }
    }

    fn next_access(&mut self) -> Access {
        let row = match self.kind {
            Kind::S1 { .. } | Kind::S3 => self.next_aggressor(),
            Kind::S2 { n } => {
                // One random access per cycle of n aggressors, on average.
                if self.rng.gen_range(0..=n) == 0 {
                    self.random_row()
                } else {
                    self.next_aggressor()
                }
            }
            Kind::S4 => {
                if self.rng.gen_bool(0.5) {
                    self.next_aggressor()
                } else {
                    self.random_row()
                }
            }
        };
        Access { bank: 0, row, gap: 0, stream: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn s1_cycles_exactly_n_rows() {
        let mut w = Synthetic::s1(10, 65_536, 7);
        let rows: HashSet<_> = w.take_accesses(1000).into_iter().map(|a| a.row).collect();
        assert_eq!(rows.len(), 10);
    }

    #[test]
    fn s1_rows_are_separated() {
        let w = Synthetic::s1(20, 65_536, 9);
        let a = w.aggressors();
        for (i, x) in a.iter().enumerate() {
            for y in &a[i + 1..] {
                assert!(x.0.abs_diff(y.0) > 2, "aggressors too close: {x} {y}");
            }
        }
    }

    #[test]
    fn s2_mostly_cycles_with_some_noise() {
        let mut w = Synthetic::s2(10, 65_536, 7);
        let accesses = w.take_accesses(10_000);
        let aggressors: HashSet<_> =
            Synthetic::s2(10, 65_536, 7).aggressors().to_vec().into_iter().collect();
        let noise = accesses.iter().filter(|a| !aggressors.contains(&a.row)).count();
        // Roughly 1 in 11 accesses is random.
        assert!(noise > 400 && noise < 1800, "noise {noise}");
    }

    #[test]
    fn s3_single_row() {
        let mut w = Synthetic::s3(65_536, 3);
        let rows: HashSet<_> = w.take_accesses(100).into_iter().map(|a| a.row).collect();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn s4_half_hammer_half_random() {
        let mut w = Synthetic::s4(65_536, 3);
        let target = Synthetic::s4(65_536, 3).aggressors()[0];
        let n = 20_000;
        let hits = w.take_accesses(n).iter().filter(|a| a.row == target).count();
        let frac = hits as f64 / n as f64;
        assert!((0.45..0.56).contains(&frac), "hammer fraction {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<_> = Synthetic::s2(10, 4096, 42).take_accesses(100);
        let b: Vec<_> = Synthetic::s2(10, 4096, 42).take_accesses(100);
        assert_eq!(a, b);
    }

    #[test]
    fn names() {
        assert_eq!(Synthetic::s1(10, 64, 0).name(), "S1-10");
        assert_eq!(Synthetic::s2(20, 64, 0).name(), "S2-20");
        assert_eq!(Synthetic::s3(64, 0).name(), "S3");
        assert_eq!(Synthetic::s4(64, 0).name(), "S4");
    }

    #[test]
    #[should_panic(expected = "at least one aggressor")]
    fn zero_aggressors_panics() {
        let _ = Synthetic::s1(0, 64, 0);
    }
}
