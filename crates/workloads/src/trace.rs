//! Trace recording and replay.
//!
//! Every generator in this crate is deterministic, but experiments sometimes
//! need the *same* access sequence replayed against many defenses, shipped
//! to another process, or archived next to results. A [`Trace`] is a
//! materialized access list with a compact binary encoding
//! (16 bytes/access: bank `u16`, row `u32`, gap `u64`, stream `u16`,
//! little-endian).
//!
//! The v2 format has no geometry metadata, so a trace recorded for one
//! bank/row layout replayed against a smaller system produces out-of-range
//! banks. Decoders that know the target geometry should use
//! [`Trace::from_bytes_for`] / [`Trace::read_from_file_for`], which reject
//! such traces up front with a typed [`TraceError`] instead of letting a
//! late `McError` (or silent per-bank aliasing) surface mid-run. The
//! streaming v3 format ([`crate::trace3`]) stamps the geometry into the
//! header so the check needs no out-of-band knowledge.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dram_model::geometry::{DramGeometry, RowId};

use crate::stream::{Access, Workload};

/// Magic prefix of the binary encoding (`"RHT2"`).
const MAGIC: [u8; 4] = *b"RHT2";

/// A malformed, oversized, or geometry-incompatible trace encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// Fewer bytes than the fixed header.
    ShortHeader {
        /// Bytes actually present.
        len: usize,
    },
    /// The magic prefix is not a known trace format.
    BadMagic {
        /// The four bytes found where the magic should be.
        found: [u8; 4],
    },
    /// The body length disagrees with the header's record count.
    LengthMismatch {
        /// Bytes remaining after the header.
        body: usize,
        /// Records the header promised.
        records: u64,
    },
    /// More accesses than the header's length field can carry.
    TooLong {
        /// Accesses in the trace.
        len: usize,
    },
    /// The trace was recorded on a different geometry than the replay
    /// target (v3 traces carry their geometry in the header).
    GeometryMismatch {
        /// The geometry the replay runs on.
        expected: DramGeometry,
        /// The geometry stamped into the trace.
        found: DramGeometry,
    },
    /// An access addresses a bank or row outside the target geometry.
    OutOfRange {
        /// Index of the offending access within the trace.
        index: u64,
        /// Its bank index.
        bank: u16,
        /// Its row index.
        row: u32,
        /// The geometry it was validated against.
        geometry: DramGeometry,
    },
    /// A CRC32C integrity frame failed to verify: the bytes on disk are not
    /// the bytes that were written (bit rot, a torn write behind a valid
    /// header, or an overwrite). Structurally valid data with a bad
    /// checksum must never be replayed.
    Corrupt {
        /// Which frame failed (`"header"`, `"chunk 3"`, …).
        what: String,
        /// The checksum stored in the file.
        stored: u32,
        /// The checksum computed over the bytes actually read.
        computed: u32,
    },
    /// Any other structural corruption (bad varint, truncated chunk, …).
    Malformed {
        /// Human-readable description of the corruption.
        detail: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::ShortHeader { len } => {
                write!(f, "trace shorter than header ({len} bytes)")
            }
            TraceError::BadMagic { found } => write!(f, "bad magic {found:?}"),
            TraceError::LengthMismatch { body, records } => {
                write!(f, "body length {body} does not match {records} accesses")
            }
            TraceError::TooLong { len } => write!(
                f,
                "trace has {len} accesses but the header length field is a u32 (max {})",
                u32::MAX
            ),
            TraceError::GeometryMismatch { expected, found } => {
                write!(f, "trace recorded for {found:?} cannot replay on {expected:?}")
            }
            TraceError::OutOfRange { index, bank, row, geometry } => write!(
                f,
                "access #{index} (bank {bank}, row {row}) is outside the target geometry \
                 ({} banks × {} rows)",
                geometry.total_banks(),
                geometry.rows_per_bank
            ),
            TraceError::Corrupt { what, stored, computed } => write!(
                f,
                "corrupt trace {what}: crc32c mismatch (stored {stored:#010x}, \
                 computed {computed:#010x})"
            ),
            TraceError::Malformed { detail } => write!(f, "malformed trace: {detail}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<TraceError> for std::io::Error {
    fn from(e: TraceError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Writes `bytes` to `path` atomically: the content goes to a temp sibling
/// first and is renamed into place, so a crash mid-write can never leave a
/// truncated file at `path` that still begins with valid magic — the
/// destination either keeps its previous content or holds the complete new
/// encoding.
pub(crate) fn write_atomic(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = tmp_sibling(path);
    let result = std::fs::write(&tmp, bytes).and_then(|()| std::fs::rename(&tmp, path));
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// The temp sibling `write_atomic` stages into: same directory (so the
/// rename cannot cross filesystems), name suffixed with `.tmp`.
pub(crate) fn tmp_sibling(path: &std::path::Path) -> std::path::PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// A recorded access trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    accesses: Vec<Access>,
    name: String,
}

impl Trace {
    /// Records `n` accesses from a workload.
    pub fn record(workload: &mut dyn Workload, n: usize) -> Self {
        let accesses = (0..n).map(|_| workload.next_access()).collect();
        Trace { accesses, name: format!("trace({})", workload.name()) }
    }

    /// Builds a trace from an explicit access list.
    pub fn from_accesses(name: impl Into<String>, accesses: Vec<Access>) -> Self {
        Trace { accesses, name: name.into() }
    }

    /// The recorded accesses.
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// Number of recorded accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Serializes to the compact binary form.
    ///
    /// # Panics
    ///
    /// Panics if the trace holds more than `u32::MAX` accesses — the header
    /// length field is a `u32`, and a trace that long used to be silently
    /// truncated modulo 2³², corrupting the encoding. Use
    /// [`try_to_bytes`](Self::try_to_bytes) to handle the case as an error.
    pub fn to_bytes(&self) -> Bytes {
        self.try_to_bytes().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`to_bytes`](Self::to_bytes), but surfaces an over-long trace
    /// as an error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::TooLong`] if the access count does not fit the
    /// header's `u32` length field.
    pub fn try_to_bytes(&self) -> Result<Bytes, TraceError> {
        let n = u32::try_from(self.accesses.len())
            .map_err(|_| TraceError::TooLong { len: self.accesses.len() })?;
        let mut buf = BytesMut::with_capacity(4 + 4 + self.accesses.len() * 16);
        buf.put_slice(&MAGIC);
        buf.put_u32_le(n);
        for a in &self.accesses {
            buf.put_u16_le(a.bank);
            buf.put_u32_le(a.row.0);
            buf.put_u64_le(a.gap);
            buf.put_u16_le(a.stream);
        }
        Ok(buf.freeze())
    }

    /// Parses the binary form produced by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns the typed malformation (bad magic, truncated body, trailing
    /// bytes).
    pub fn from_bytes(mut data: Bytes) -> Result<Self, TraceError> {
        if data.remaining() < 8 {
            return Err(TraceError::ShortHeader { len: data.remaining() });
        }
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if magic != MAGIC {
            return Err(TraceError::BadMagic { found: magic });
        }
        let n = data.get_u32_le() as usize;
        if data.remaining() != n * 16 {
            return Err(TraceError::LengthMismatch { body: data.remaining(), records: n as u64 });
        }
        let mut accesses = Vec::with_capacity(n);
        for _ in 0..n {
            let bank = data.get_u16_le();
            let row = RowId(data.get_u32_le());
            let gap = data.get_u64_le();
            let stream = data.get_u16_le();
            accesses.push(Access { bank, row, gap, stream });
        }
        Ok(Trace { accesses, name: "trace(decoded)".to_owned() })
    }

    /// [`from_bytes`](Self::from_bytes) plus a geometry bound check on
    /// every decoded access — the v2 header carries no geometry metadata,
    /// so this is the only way to catch a trace recorded for a larger
    /// layout before it routes out of range mid-run.
    ///
    /// # Errors
    ///
    /// Returns the decode errors of [`from_bytes`](Self::from_bytes), or
    /// [`TraceError::OutOfRange`] naming the first offending access.
    pub fn from_bytes_for(data: Bytes, geometry: &DramGeometry) -> Result<Self, TraceError> {
        let trace = Self::from_bytes(data)?;
        trace.validate_for(geometry)?;
        Ok(trace)
    }

    /// Checks every access addresses a bank and row inside `geometry`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::OutOfRange`] for the first access outside the
    /// geometry.
    pub fn validate_for(&self, geometry: &DramGeometry) -> Result<(), TraceError> {
        let banks = geometry.total_banks();
        let rows = geometry.rows_per_bank;
        for (i, a) in self.accesses.iter().enumerate() {
            if u32::from(a.bank) >= banks || a.row.0 >= rows {
                return Err(TraceError::OutOfRange {
                    index: i as u64,
                    bank: a.bank,
                    row: a.row.0,
                    geometry: *geometry,
                });
            }
        }
        Ok(())
    }

    /// An infinitely looping replayer over this trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn replay(&self) -> TraceReplay {
        assert!(!self.accesses.is_empty(), "cannot replay an empty trace");
        TraceReplay { trace: self.clone(), position: 0 }
    }

    /// Writes the binary form to a file, atomically: the encoding is staged
    /// in a temp sibling and renamed into place, so a crash mid-write
    /// leaves either the previous file or the complete new one — never a
    /// truncated body behind valid magic.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the filesystem.
    pub fn write_to_file(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        write_atomic(path.as_ref(), self.to_bytes().as_ref())
    }

    /// Reads a trace previously written with
    /// [`write_to_file`](Self::write_to_file).
    ///
    /// # Errors
    ///
    /// Returns an [`std::io::Error`] for filesystem problems or a malformed
    /// file (mapped to [`std::io::ErrorKind::InvalidData`]).
    pub fn read_from_file(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let data = std::fs::read(path)?;
        Self::from_bytes(Bytes::from(data)).map_err(Into::into)
    }

    /// [`read_from_file`](Self::read_from_file) with the geometry bound
    /// check of [`from_bytes_for`](Self::from_bytes_for).
    ///
    /// # Errors
    ///
    /// Returns an [`std::io::Error`]; geometry violations map to
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn read_from_file_for(
        path: impl AsRef<std::path::Path>,
        geometry: &DramGeometry,
    ) -> std::io::Result<Self> {
        let data = std::fs::read(path)?;
        Self::from_bytes_for(Bytes::from(data), geometry).map_err(Into::into)
    }
}

/// Replays a [`Trace`], looping at the end.
#[derive(Debug, Clone)]
pub struct TraceReplay {
    trace: Trace,
    position: usize,
}

impl Workload for TraceReplay {
    fn name(&self) -> String {
        self.trace.name.clone()
    }

    fn next_access(&mut self) -> Access {
        let a = self.trace.accesses[self.position % self.trace.accesses.len()];
        self.position += 1;
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::Synthetic;

    #[test]
    fn record_and_replay_match_source() {
        let mut source = Synthetic::s1(10, 65_536, 42);
        let trace = Trace::record(&mut source, 500);
        let mut fresh = Synthetic::s1(10, 65_536, 42);
        let mut replay = trace.replay();
        for _ in 0..500 {
            assert_eq!(replay.next_access(), fresh.next_access());
        }
    }

    #[test]
    fn replay_loops() {
        let trace = Trace::from_accesses(
            "t",
            vec![
                Access { bank: 0, row: RowId(1), gap: 5, stream: 0 },
                Access { bank: 1, row: RowId(2), gap: 6, stream: 0 },
            ],
        );
        let mut r = trace.replay();
        let first: Vec<_> = (0..4).map(|_| r.next_access().row.0).collect();
        assert_eq!(first, vec![1, 2, 1, 2]);
    }

    #[test]
    fn binary_roundtrip() {
        let mut source = Synthetic::s4(4_096, 7);
        let trace = Trace::record(&mut source, 1_000);
        let decoded = Trace::from_bytes(trace.to_bytes()).unwrap();
        assert_eq!(decoded.accesses(), trace.accesses());
    }

    #[test]
    fn encoded_size_is_deterministic() {
        let trace = Trace::from_accesses(
            "t",
            vec![Access { bank: 3, row: RowId(9), gap: 11, stream: 0 }; 10],
        );
        assert_eq!(trace.to_bytes().len(), 8 + 10 * 16);
    }

    #[test]
    fn header_length_field_round_trips() {
        // The length field is the 4 bytes after the magic, little-endian.
        // It used to be written with a silently-truncating `as u32`; pin
        // that it encodes the exact access count and decodes back to it.
        for n in [0usize, 1, 7, 1_000] {
            let trace = Trace::from_accesses(
                "t",
                vec![Access { bank: 0, row: RowId(5), gap: 1, stream: 0 }; n],
            );
            let bytes = trace.try_to_bytes().unwrap();
            let field = u32::from_le_bytes(bytes.as_ref()[4..8].try_into().unwrap());
            assert_eq!(field as usize, trace.len());
            assert_eq!(Trace::from_bytes(bytes).unwrap().len(), n);
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let err = Trace::from_bytes(Bytes::from_static(b"XXXX\x00\x00\x00\x00")).unwrap_err();
        assert_eq!(err, TraceError::BadMagic { found: *b"XXXX" });
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn rejects_truncation() {
        let trace =
            Trace::from_accesses("t", vec![Access { bank: 0, row: RowId(1), gap: 2, stream: 0 }]);
        let mut bytes = trace.to_bytes().to_vec();
        bytes.pop();
        assert!(matches!(
            Trace::from_bytes(Bytes::from(bytes)),
            Err(TraceError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn rejects_short_header() {
        assert!(matches!(
            Trace::from_bytes(Bytes::from_static(b"RHT")),
            Err(TraceError::ShortHeader { len: 3 })
        ));
    }

    #[test]
    fn geometry_validation_catches_foreign_trace() {
        // Recorded on a 64-bank/64K-row layout, replayed against 4 banks of
        // 1K rows: the v2 header cannot tell, so the decode-time check must.
        let trace = Trace::from_accesses(
            "big",
            vec![Access { bank: 37, row: RowId(50_000), gap: 1, stream: 0 }],
        );
        let small = DramGeometry {
            channels: 1,
            ranks_per_channel: 1,
            banks_per_rank: 4,
            rows_per_bank: 1_024,
        };
        let err = Trace::from_bytes_for(trace.to_bytes(), &small).unwrap_err();
        assert!(
            matches!(err, TraceError::OutOfRange { index: 0, bank: 37, row: 50_000, .. }),
            "{err}"
        );
        // The same bytes replay fine on the layout they were recorded for.
        let big = DramGeometry::micro2020();
        assert!(Trace::from_bytes_for(trace.to_bytes(), &big).is_ok());
    }

    #[test]
    fn geometry_validation_checks_rows_independently_of_banks() {
        let g = DramGeometry::single_bank(100);
        let ok =
            Trace::from_accesses("t", vec![Access { bank: 0, row: RowId(99), gap: 0, stream: 0 }]);
        assert!(ok.validate_for(&g).is_ok());
        let bad_row =
            Trace::from_accesses("t", vec![Access { bank: 0, row: RowId(100), gap: 0, stream: 0 }]);
        assert!(bad_row.validate_for(&g).is_err());
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_replay_panics() {
        let _ = Trace::default().replay();
    }

    #[test]
    fn file_roundtrip() {
        let mut source = Synthetic::s1(10, 4_096, 3);
        let trace = Trace::record(&mut source, 200);
        let path = std::env::temp_dir().join("graphene_repro_trace_roundtrip.rht");
        trace.write_to_file(&path).unwrap();
        let loaded = Trace::read_from_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.accesses(), trace.accesses());
    }

    #[test]
    fn read_malformed_file_is_invalid_data() {
        let path = std::env::temp_dir().join("graphene_repro_trace_malformed.rht");
        std::fs::write(&path, b"not a trace").unwrap();
        let err = Trace::read_from_file(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn torn_write_never_corrupts_destination() {
        // Regression: `write_to_file` used to write the destination in
        // place, so a crash mid-write left a truncated file that still
        // began with valid magic. The atomic path stages into a temp
        // sibling: an aborted writer (simulated here by a torn temp file
        // that never got renamed) leaves the destination byte-identical.
        let dir = std::env::temp_dir().join("graphene_repro_torn_write");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.rht");
        let old = Trace::from_accesses(
            "old",
            vec![Access { bank: 1, row: RowId(7), gap: 3, stream: 0 }; 50],
        );
        old.write_to_file(&path).unwrap();

        // A writer that died mid-write leaves only a torn temp sibling.
        let new = Trace::from_accesses(
            "new",
            vec![Access { bank: 2, row: RowId(9), gap: 4, stream: 1 }; 50],
        );
        let torn = &new.to_bytes().as_ref()[..20].to_vec();
        std::fs::write(tmp_sibling(&path), torn).unwrap();

        let loaded = Trace::read_from_file(&path).unwrap();
        assert_eq!(loaded.accesses(), old.accesses(), "destination must be the old trace");

        // A subsequent complete write replaces both, leaving no temp debris.
        new.write_to_file(&path).unwrap();
        assert_eq!(Trace::read_from_file(&path).unwrap().accesses(), new.accesses());
        assert!(!tmp_sibling(&path).exists(), "rename must consume the temp file");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_write_cleans_up_temp_file() {
        let dir = std::env::temp_dir().join("graphene_repro_failed_write_missing_dir");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("trace.rht");
        let trace =
            Trace::from_accesses("t", vec![Access { bank: 0, row: RowId(1), gap: 2, stream: 0 }]);
        assert!(trace.write_to_file(&path).is_err(), "missing parent dir must fail");
        assert!(!path.exists());
    }
}
