//! Trace recording and replay.
//!
//! Every generator in this crate is deterministic, but experiments sometimes
//! need the *same* access sequence replayed against many defenses, shipped
//! to another process, or archived next to results. A [`Trace`] is a
//! materialized access list with a compact binary encoding
//! (16 bytes/access: bank `u16`, row `u32`, gap `u64`, stream `u16`,
//! little-endian).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dram_model::geometry::RowId;

use crate::stream::{Access, Workload};

/// Magic prefix of the binary encoding (`"RHT2"`).
const MAGIC: [u8; 4] = *b"RHT2";

/// A recorded access trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    accesses: Vec<Access>,
    name: String,
}

impl Trace {
    /// Records `n` accesses from a workload.
    pub fn record(workload: &mut dyn Workload, n: usize) -> Self {
        let accesses = (0..n).map(|_| workload.next_access()).collect();
        Trace { accesses, name: format!("trace({})", workload.name()) }
    }

    /// Builds a trace from an explicit access list.
    pub fn from_accesses(name: impl Into<String>, accesses: Vec<Access>) -> Self {
        Trace { accesses, name: name.into() }
    }

    /// The recorded accesses.
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// Number of recorded accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Serializes to the compact binary form.
    ///
    /// # Panics
    ///
    /// Panics if the trace holds more than `u32::MAX` accesses — the header
    /// length field is a `u32`, and a trace that long used to be silently
    /// truncated modulo 2³², corrupting the encoding. Use
    /// [`try_to_bytes`](Self::try_to_bytes) to handle the case as an error.
    pub fn to_bytes(&self) -> Bytes {
        self.try_to_bytes().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`to_bytes`](Self::to_bytes), but surfaces an over-long trace
    /// as an error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns an error if the access count does not fit the header's
    /// `u32` length field.
    pub fn try_to_bytes(&self) -> Result<Bytes, String> {
        let n = u32::try_from(self.accesses.len()).map_err(|_| {
            format!(
                "trace has {} accesses but the header length field is a u32 (max {})",
                self.accesses.len(),
                u32::MAX
            )
        })?;
        let mut buf = BytesMut::with_capacity(4 + 4 + self.accesses.len() * 16);
        buf.put_slice(&MAGIC);
        buf.put_u32_le(n);
        for a in &self.accesses {
            buf.put_u16_le(a.bank);
            buf.put_u32_le(a.row.0);
            buf.put_u64_le(a.gap);
            buf.put_u16_le(a.stream);
        }
        Ok(buf.freeze())
    }

    /// Parses the binary form produced by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation (bad magic, truncated body,
    /// trailing bytes).
    pub fn from_bytes(mut data: Bytes) -> Result<Self, String> {
        if data.remaining() < 8 {
            return Err("trace shorter than header".to_owned());
        }
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if magic != MAGIC {
            return Err(format!("bad magic {magic:?}"));
        }
        let n = data.get_u32_le() as usize;
        if data.remaining() != n * 16 {
            return Err(format!("body length {} does not match {n} accesses", data.remaining()));
        }
        let mut accesses = Vec::with_capacity(n);
        for _ in 0..n {
            let bank = data.get_u16_le();
            let row = RowId(data.get_u32_le());
            let gap = data.get_u64_le();
            let stream = data.get_u16_le();
            accesses.push(Access { bank, row, gap, stream });
        }
        Ok(Trace { accesses, name: "trace(decoded)".to_owned() })
    }

    /// An infinitely looping replayer over this trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn replay(&self) -> TraceReplay {
        assert!(!self.accesses.is_empty(), "cannot replay an empty trace");
        TraceReplay { trace: self.clone(), position: 0 }
    }

    /// Writes the binary form to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the filesystem.
    pub fn write_to_file(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads a trace previously written with
    /// [`write_to_file`](Self::write_to_file).
    ///
    /// # Errors
    ///
    /// Returns an [`std::io::Error`] for filesystem problems or a malformed
    /// file (mapped to [`std::io::ErrorKind::InvalidData`]).
    pub fn read_from_file(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let data = std::fs::read(path)?;
        Self::from_bytes(Bytes::from(data))
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Replays a [`Trace`], looping at the end.
#[derive(Debug, Clone)]
pub struct TraceReplay {
    trace: Trace,
    position: usize,
}

impl Workload for TraceReplay {
    fn name(&self) -> String {
        self.trace.name.clone()
    }

    fn next_access(&mut self) -> Access {
        let a = self.trace.accesses[self.position % self.trace.accesses.len()];
        self.position += 1;
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::Synthetic;

    #[test]
    fn record_and_replay_match_source() {
        let mut source = Synthetic::s1(10, 65_536, 42);
        let trace = Trace::record(&mut source, 500);
        let mut fresh = Synthetic::s1(10, 65_536, 42);
        let mut replay = trace.replay();
        for _ in 0..500 {
            assert_eq!(replay.next_access(), fresh.next_access());
        }
    }

    #[test]
    fn replay_loops() {
        let trace = Trace::from_accesses(
            "t",
            vec![
                Access { bank: 0, row: RowId(1), gap: 5, stream: 0 },
                Access { bank: 1, row: RowId(2), gap: 6, stream: 0 },
            ],
        );
        let mut r = trace.replay();
        let first: Vec<_> = (0..4).map(|_| r.next_access().row.0).collect();
        assert_eq!(first, vec![1, 2, 1, 2]);
    }

    #[test]
    fn binary_roundtrip() {
        let mut source = Synthetic::s4(4_096, 7);
        let trace = Trace::record(&mut source, 1_000);
        let decoded = Trace::from_bytes(trace.to_bytes()).unwrap();
        assert_eq!(decoded.accesses(), trace.accesses());
    }

    #[test]
    fn encoded_size_is_deterministic() {
        let trace = Trace::from_accesses(
            "t",
            vec![Access { bank: 3, row: RowId(9), gap: 11, stream: 0 }; 10],
        );
        assert_eq!(trace.to_bytes().len(), 8 + 10 * 16);
    }

    #[test]
    fn header_length_field_round_trips() {
        // The length field is the 4 bytes after the magic, little-endian.
        // It used to be written with a silently-truncating `as u32`; pin
        // that it encodes the exact access count and decodes back to it.
        for n in [0usize, 1, 7, 1_000] {
            let trace = Trace::from_accesses(
                "t",
                vec![Access { bank: 0, row: RowId(5), gap: 1, stream: 0 }; n],
            );
            let bytes = trace.try_to_bytes().unwrap();
            let field = u32::from_le_bytes(bytes.as_ref()[4..8].try_into().unwrap());
            assert_eq!(field as usize, trace.len());
            assert_eq!(Trace::from_bytes(bytes).unwrap().len(), n);
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let err = Trace::from_bytes(Bytes::from_static(b"XXXX\x00\x00\x00\x00")).unwrap_err();
        assert!(err.contains("bad magic"));
    }

    #[test]
    fn rejects_truncation() {
        let trace =
            Trace::from_accesses("t", vec![Access { bank: 0, row: RowId(1), gap: 2, stream: 0 }]);
        let mut bytes = trace.to_bytes().to_vec();
        bytes.pop();
        assert!(Trace::from_bytes(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn rejects_short_header() {
        assert!(Trace::from_bytes(Bytes::from_static(b"RHT")).is_err());
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_replay_panics() {
        let _ = Trace::default().replay();
    }

    #[test]
    fn file_roundtrip() {
        let mut source = Synthetic::s1(10, 4_096, 3);
        let trace = Trace::record(&mut source, 200);
        let path = std::env::temp_dir().join("graphene_repro_trace_roundtrip.rht");
        trace.write_to_file(&path).unwrap();
        let loaded = Trace::read_from_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.accesses(), trace.accesses());
    }

    #[test]
    fn read_malformed_file_is_invalid_data() {
        let path = std::env::temp_dir().join("graphene_repro_trace_malformed.rht");
        std::fs::write(&path, b"not a trace").unwrap();
        let err = Trace::read_from_file(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
