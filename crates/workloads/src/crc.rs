//! CRC32C (Castagnoli) — the integrity check framing every on-disk fleet
//! artifact.
//!
//! RHT4 trace chunks ([`crate::trace3`]) and `fleetckpt.v2` checkpoint
//! files carry CRC32C frames so that bit rot, torn writes, and truncation
//! are **detected at read time** instead of silently replaying wrong data
//! into a resumed run. CRC32C is chosen over CRC32 (IEEE) for its
//! error-detection profile on short records and because it is the checksum
//! hardware-accelerated everywhere (SSE4.2 `crc32`, ARMv8 CRC extensions) —
//! this software implementation is a table-driven stand-in with the same
//! polynomial (0x1EDC6F41, reflected 0x82F63B78), so artifacts stay
//! byte-compatible if an accelerated path is ever dropped in.
//!
//! The CRC of a single-bit-flipped buffer always differs (CRCs detect all
//! single-bit errors by construction), which is exactly the fault class the
//! chaos layer's bit-rot injector exercises.

/// The reflected CRC32C polynomial.
const POLY: u32 = 0x82F6_3B78;

/// 8-entry-per-bit lookup table, built at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            *slot = crc;
        }
        t
    })
}

/// A streaming CRC32C digest.
///
/// # Example
///
/// ```
/// use workloads::crc::Crc32c;
///
/// let mut d = Crc32c::new();
/// d.update(b"hello ");
/// d.update(b"world");
/// assert_eq!(d.finish(), workloads::crc::crc32c(b"hello world"));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Crc32c {
    state: u32,
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32c {
    /// A fresh digest.
    pub fn new() -> Self {
        Crc32c { state: !0 }
    }

    /// Folds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ t[usize::from((crc as u8) ^ b)];
        }
        self.state = crc;
    }

    /// The final checksum value.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC32C of a buffer.
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut d = Crc32c::new();
    d.update(bytes);
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 §B.4 / kernel crc32c test vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        for split in [0usize, 1, 255, 256, 4_096, 9_999, 10_000] {
            let mut d = Crc32c::new();
            d.update(&data[..split]);
            d.update(&data[split..]);
            assert_eq!(d.finish(), crc32c(&data));
        }
    }

    #[test]
    fn every_single_bit_flip_changes_the_crc() {
        let data = b"fleetckpt.v2 integrity framing probe".to_vec();
        let clean = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), clean, "flip at byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn truncation_changes_the_crc() {
        let data: Vec<u8> = (0..100u8).collect();
        let clean = crc32c(&data);
        for cut in 0..data.len() {
            assert_ne!(crc32c(&data[..cut]), clean, "truncated to {cut}");
        }
    }
}
