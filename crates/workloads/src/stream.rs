//! The access-stream abstraction shared by all generators.

use dram_model::geometry::RowId;
use dram_model::timing::Picoseconds;
use serde::{Deserialize, Serialize};

/// One memory access as the DRAM bank sees it: which bank, which row, and
/// how long after the previous access it arrives.
///
/// `gap = 0` models a saturating stream (an attacker activating as fast as
/// tRC allows — the controller enforces the actual timing); larger gaps model
/// the think time of realistic workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Access {
    /// Flattened bank index in the simulated system.
    pub bank: u16,
    /// Row within the bank.
    pub row: RowId,
    /// Arrival gap after the previous access of this stream (ps).
    pub gap: Picoseconds,
    /// Originating stream (core) id — [`crate::mix::Interleaved`] stamps the
    /// source index here so the simulator can compute per-core latency and
    /// the paper's weighted-speedup metric. Single-stream generators use 0.
    pub stream: u16,
}

impl Access {
    /// Convenience constructor for single-stream (stream 0) generators.
    pub fn new(bank: u16, row: RowId, gap: Picoseconds) -> Self {
        Access { bank, row, gap, stream: 0 }
    }
}

/// An infinite access stream.
///
/// Generators are deterministic for a fixed seed so experiments are exactly
/// reproducible.
pub trait Workload {
    /// Short name for reports (e.g. `"S1-10"`, `"mcf-like"`).
    fn name(&self) -> String;

    /// Produces the next access.
    fn next_access(&mut self) -> Access;

    /// Convenience: materializes the next `n` accesses.
    fn take_accesses(&mut self, n: usize) -> Vec<Access>
    where
        Self: Sized,
    {
        (0..n).map(|_| self.next_access()).collect()
    }
}

impl<W: Workload + ?Sized> Workload for Box<W> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn next_access(&mut self) -> Access {
        (**self).next_access()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed;
    impl Workload for Fixed {
        fn name(&self) -> String {
            "fixed".to_owned()
        }
        fn next_access(&mut self) -> Access {
            Access { bank: 0, row: RowId(1), gap: 0, stream: 0 }
        }
    }

    #[test]
    fn take_accesses_materializes() {
        let mut w = Fixed;
        assert_eq!(w.take_accesses(3).len(), 3);
    }

    #[test]
    fn boxed_workload_delegates() {
        let mut w: Box<dyn Workload> = Box::new(Fixed);
        assert_eq!(w.name(), "fixed");
        assert_eq!(w.next_access().row, RowId(1));
    }
}
