//! The RHT4 streaming trace format: geometry-stamped, delta-encoded,
//! chunked, **CRC32C-framed**.
//!
//! The v2 [`crate::trace::Trace`] materializes every access in memory on
//! both ends, which caps replays at whatever fits in RAM. Fleet-scale runs
//! (billions of ACTs) need a disk format that is written incrementally and
//! read back at bounded memory. RHT4 provides:
//!
//! * a **geometry-stamped header** — channels/ranks/banks/rows are recorded
//!   at write time, so a trace replayed against a mismatched
//!   [`DramGeometry`] is rejected at open ([`TraceError::GeometryMismatch`])
//!   instead of routing out of range mid-run;
//! * **delta-encoded records** — bank/row/stream are zigzag-varint deltas
//!   against the previous record (the inter-arrival `gap` is already a time
//!   delta and is stored as a raw varint), shrinking well-behaved streams to
//!   a few bytes per access versus v2's fixed 16;
//! * **self-contained chunks** — each chunk restarts the delta baseline and
//!   carries its own record count and byte length, so a reader can skip
//!   whole chunks without decoding them (the checkpoint/resume path in
//!   `rh-sim` seeks this way) and never holds more than one chunk in memory;
//! * **integrity framing** — the header and every chunk carry a CRC32C
//!   ([`crate::crc`]); bit rot, torn writes behind a valid header, and
//!   foreign overwrites surface as [`TraceError::Corrupt`] at read time and
//!   are never silently replayed. The legacy unframed RHT3 encoding is
//!   still readable (it simply gets no corruption detection);
//! * **atomic writes** — [`TraceWriter`] streams into a temp sibling and
//!   renames into place on [`finish`](TraceWriter::finish), so a crash
//!   mid-write never leaves a truncated file behind valid magic.
//!
//! All file I/O goes through the [`crate::vfs`] seam, so the `faultsim`
//! chaos harness can inject deterministic I/O faults (torn writes, bit rot,
//! fsync failures) under this exact reader/writer logic.
//!
//! ## Layout (RHT4)
//!
//! ```text
//! header:  "RHT4" | channels u8 | ranks u8 | banks_per_rank u8 |
//!          rows_per_bank u32 LE | total_records u64 LE |
//!          header_crc u32 LE | name_len u16 LE | name bytes
//! chunk*:  records u32 LE | payload_len u32 LE | chunk_crc u32 LE | payload
//! payload: per record, against the previous record of the *same chunk*
//!          (baseline bank 0 / row 0 / stream 0 at each chunk start):
//!          zigzag(Δbank) | zigzag(Δrow) | varint(gap) | zigzag(Δstream)
//! ```
//!
//! `header_crc` is CRC32C over the header bytes with the crc field itself
//! excised (magic through `total_records`, then `name_len` and the name);
//! `chunk_crc` covers the chunk's own 8 framing bytes plus its payload, so
//! a corrupted record count or length field is caught as corruption, not
//! misparsed as structure. `total_records` (and therefore `header_crc`) is
//! patched just before the final rename, so a reader never sees a count the
//! body cannot back. RHT3 files lack both crc fields and use 8-byte chunk
//! framing.

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use dram_model::geometry::{DramGeometry, RowId};

use crate::crc::{crc32c, Crc32c};
use crate::stream::{Access, Workload};
use crate::trace::{tmp_sibling, TraceError};
use crate::vfs::{real_fs, Vfs, VfsFile};

/// Magic prefix of the CRC-framed streaming encoding (`"RHT4"`).
const MAGIC: [u8; 4] = *b"RHT4";

/// Magic prefix of the legacy unframed encoding (`"RHT3"`), still readable.
const MAGIC_V3: [u8; 4] = *b"RHT3";

/// Records per chunk unless overridden — 64 KiB-ish payloads at typical
/// delta widths, small enough that one decoded chunk is negligible next to
/// the simulator state.
pub const DEFAULT_CHUNK_RECORDS: u32 = 8_192;

/// Largest chunk payload a reader will allocate for (64 MiB — orders of
/// magnitude above any real chunk). Lengths beyond this are treated as
/// corruption of the frame itself rather than honored.
const MAX_CHUNK_PAYLOAD: u32 = 1 << 26;

/// Byte offset of the `total_records` field within the header
/// (magic + 3 geometry bytes + rows_per_bank).
const COUNT_OFFSET: u64 = 4 + 3 + 4;

/// Byte offset of the RHT4 `header_crc` field (right after
/// `total_records`).
const HEADER_CRC_OFFSET: u64 = COUNT_OFFSET + 8;

/// Which on-disk framing a reader is decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Framing {
    /// Legacy RHT3: no CRC fields, 8-byte chunk headers.
    V3,
    /// RHT4: header CRC + 12-byte chunk headers with a chunk CRC.
    V4,
}

fn invalid(e: TraceError) -> std::io::Error {
    e.into()
}

/// Appends a LEB128 varint.
fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Zigzag-maps a signed delta onto the varint-friendly unsigned line.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Reads one LEB128 varint from `buf` at `*pos`.
fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos).ok_or_else(|| TraceError::Malformed {
            detail: "varint runs past the end of its chunk".to_owned(),
        })?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(TraceError::Malformed { detail: "varint wider than 64 bits".to_owned() });
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// The delta baseline each chunk starts from.
const BASELINE: Access = Access { bank: 0, row: RowId(0), gap: 0, stream: 0 };

fn encode_record(buf: &mut Vec<u8>, prev: &Access, a: &Access) {
    put_varint(buf, zigzag(i64::from(a.bank) - i64::from(prev.bank)));
    put_varint(buf, zigzag(i64::from(a.row.0) - i64::from(prev.row.0)));
    put_varint(buf, a.gap);
    put_varint(buf, zigzag(i64::from(a.stream) - i64::from(prev.stream)));
}

fn decode_record(buf: &[u8], pos: &mut usize, prev: &Access) -> Result<Access, TraceError> {
    let d_bank = unzigzag(get_varint(buf, pos)?);
    let d_row = unzigzag(get_varint(buf, pos)?);
    let gap = get_varint(buf, pos)?;
    let d_stream = unzigzag(get_varint(buf, pos)?);
    let field = |base: i64, delta: i64, max: i64, what: &str| {
        let v = base.checked_add(delta).filter(|&v| (0..=max).contains(&v));
        v.ok_or_else(|| TraceError::Malformed {
            detail: format!("{what} delta {delta} from {base} leaves the field's range"),
        })
    };
    let bank = field(i64::from(prev.bank), d_bank, i64::from(u16::MAX), "bank")? as u16;
    let row = field(i64::from(prev.row.0), d_row, i64::from(u32::MAX), "row")? as u32;
    let stream = field(i64::from(prev.stream), d_stream, i64::from(u16::MAX), "stream")? as u16;
    Ok(Access { bank, row: RowId(row), gap, stream })
}

/// The RHT4 header bytes for `geometry`/`records`/`name`, with the
/// `header_crc` field filled in.
fn render_header(geometry: &DramGeometry, records: u64, name: &[u8]) -> Vec<u8> {
    let mut covered = Vec::with_capacity(21 + name.len());
    covered.extend_from_slice(&MAGIC);
    covered.push(geometry.channels);
    covered.push(geometry.ranks_per_channel);
    covered.push(geometry.banks_per_rank);
    covered.extend_from_slice(&geometry.rows_per_bank.to_le_bytes());
    covered.extend_from_slice(&records.to_le_bytes());
    let name_len = u16::try_from(name.len()).expect("validated at create");
    covered.extend_from_slice(&name_len.to_le_bytes());
    covered.extend_from_slice(name);
    let crc = crc32c(&covered);
    let mut header = covered;
    // Splice the crc field in at its offset (between total_records and
    // name_len).
    header.splice(
        HEADER_CRC_OFFSET as usize..HEADER_CRC_OFFSET as usize,
        crc.to_le_bytes().iter().copied(),
    );
    header
}

/// Incremental writer of an RHT4 trace.
///
/// Streams records to a temp sibling of the destination, one CRC-framed
/// chunk at a time, and atomically renames the complete file into place on
/// [`finish`](Self::finish). Dropping an unfinished writer removes the temp
/// file — the destination is never touched until the trace is whole.
#[derive(Debug)]
pub struct TraceWriter {
    fs: Arc<dyn Vfs>,
    file: Option<Box<dyn VfsFile>>,
    tmp: PathBuf,
    path: PathBuf,
    geometry: DramGeometry,
    name: Vec<u8>,
    buf: Vec<u8>,
    chunk_records: u32,
    chunk_capacity: u32,
    prev: Access,
    records: u64,
}

impl TraceWriter {
    /// Opens a writer targeting `path` with the default chunk size.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; rejects an unusable geometry or an
    /// over-long name as [`std::io::ErrorKind::InvalidData`].
    pub fn create(
        path: impl AsRef<Path>,
        name: &str,
        geometry: DramGeometry,
    ) -> std::io::Result<Self> {
        Self::with_chunk_capacity(path, name, geometry, DEFAULT_CHUNK_RECORDS)
    }

    /// [`create`](Self::create) with an explicit records-per-chunk bound
    /// (the unit of reader memory and of checkpoint seek granularity).
    ///
    /// # Errors
    ///
    /// Like [`create`](Self::create); additionally rejects
    /// `chunk_capacity == 0`.
    pub fn with_chunk_capacity(
        path: impl AsRef<Path>,
        name: &str,
        geometry: DramGeometry,
        chunk_capacity: u32,
    ) -> std::io::Result<Self> {
        Self::with_chunk_capacity_on(real_fs(), path, name, geometry, chunk_capacity)
    }

    /// [`with_chunk_capacity`](Self::with_chunk_capacity) on an explicit
    /// filesystem — the chaos-injection entry point.
    ///
    /// # Errors
    ///
    /// Like [`with_chunk_capacity`](Self::with_chunk_capacity).
    pub fn with_chunk_capacity_on(
        fs: Arc<dyn Vfs>,
        path: impl AsRef<Path>,
        name: &str,
        geometry: DramGeometry,
        chunk_capacity: u32,
    ) -> std::io::Result<Self> {
        if chunk_capacity == 0 {
            return Err(invalid(TraceError::Malformed {
                detail: "chunk capacity must be at least one record".to_owned(),
            }));
        }
        geometry.validate().map_err(|e| {
            invalid(TraceError::Malformed { detail: format!("unusable geometry: {e}") })
        })?;
        if u16::try_from(name.len()).is_err() {
            return Err(invalid(TraceError::Malformed {
                detail: format!("trace name of {} bytes exceeds the u16 length field", name.len()),
            }));
        }
        let path = path.as_ref().to_path_buf();
        let tmp = tmp_sibling(&path);
        let mut file = fs.create(&tmp)?;
        file.write_all(&render_header(&geometry, 0, name.as_bytes()))?;
        Ok(TraceWriter {
            fs,
            file: Some(file),
            tmp,
            path,
            geometry,
            name: name.as_bytes().to_vec(),
            buf: Vec::new(),
            chunk_records: 0,
            chunk_capacity,
            prev: BASELINE,
            records: 0,
        })
    }

    /// The geometry stamped into the header.
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// Records written so far.
    pub fn len(&self) -> u64 {
        self.records
    }

    /// True before the first [`push`](Self::push).
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Appends one access.
    ///
    /// # Errors
    ///
    /// Rejects an access outside the stamped geometry
    /// ([`std::io::ErrorKind::InvalidData`]) and propagates write errors.
    pub fn push(&mut self, access: &Access) -> std::io::Result<()> {
        if u32::from(access.bank) >= self.geometry.total_banks()
            || access.row.0 >= self.geometry.rows_per_bank
        {
            return Err(invalid(TraceError::OutOfRange {
                index: self.records,
                bank: access.bank,
                row: access.row.0,
                geometry: self.geometry,
            }));
        }
        encode_record(&mut self.buf, &self.prev, access);
        self.prev = *access;
        self.records += 1;
        self.chunk_records += 1;
        if self.chunk_records == self.chunk_capacity {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Streams `n` accesses from a workload.
    ///
    /// # Errors
    ///
    /// Like [`push`](Self::push).
    pub fn record(&mut self, workload: &mut dyn Workload, n: u64) -> std::io::Result<()> {
        for _ in 0..n {
            self.push(&workload.next_access())?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> std::io::Result<()> {
        if self.chunk_records == 0 {
            return Ok(());
        }
        let payload_len = u32::try_from(self.buf.len()).map_err(|_| {
            invalid(TraceError::Malformed {
                detail: format!("chunk payload of {} bytes exceeds u32", self.buf.len()),
            })
        })?;
        // The chunk CRC covers the framing fields too, so a flipped record
        // count or length is corruption, not plausible structure.
        let mut digest = Crc32c::new();
        digest.update(&self.chunk_records.to_le_bytes());
        digest.update(&payload_len.to_le_bytes());
        digest.update(&self.buf);
        let file = self.file.as_mut().expect("writer alive until finish");
        file.write_all(&self.chunk_records.to_le_bytes())?;
        file.write_all(&payload_len.to_le_bytes())?;
        file.write_all(&digest.finish().to_le_bytes())?;
        file.write_all(&self.buf)?;
        self.buf.clear();
        self.chunk_records = 0;
        self.prev = BASELINE;
        Ok(())
    }

    /// Flushes the final chunk, patches the total record count (and the
    /// header CRC that covers it) into the header, and atomically renames
    /// the temp file onto the destination.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; on error the temp file is removed and
    /// the destination is untouched.
    pub fn finish(mut self) -> std::io::Result<()> {
        let result = (|| {
            self.flush_chunk()?;
            let header = render_header(&self.geometry, self.records, &self.name);
            let file = self.file.as_mut().expect("writer alive until finish");
            file.seek(SeekFrom::Start(COUNT_OFFSET))?;
            file.write_all(&header[COUNT_OFFSET as usize..HEADER_CRC_OFFSET as usize + 4])?;
            file.sync_all()?;
            self.file = None; // close before rename
            self.fs.rename(&self.tmp, &self.path)
        })();
        if result.is_err() {
            self.file = None;
            let _ = self.fs.remove_file(&self.tmp);
        }
        // Drop must not remove the renamed file.
        self.tmp.clear();
        result
    }
}

impl Drop for TraceWriter {
    fn drop(&mut self) {
        if !self.tmp.as_os_str().is_empty() {
            self.file = None;
            let _ = self.fs.remove_file(&self.tmp);
        }
    }
}

/// Chunked reader of an RHT4 (or legacy RHT3) trace, implementing
/// [`Workload`] at O(chunk) memory.
///
/// The reader holds exactly one decoded chunk; [`next_access`] refills from
/// disk when the chunk drains and loops back to the first chunk at
/// end-of-trace (mirroring [`crate::trace::TraceReplay`]). Each RHT4 chunk
/// is CRC-verified before any of its records are decoded; a failed frame is
/// [`TraceError::Corrupt`]. I/O or decode failures mid-stream panic through
/// [`next_access`] — the `Workload` contract has no error channel — but
/// fallible consumers (the fleet pipeline) use [`try_next`](Self::try_next)
/// and surface the typed error instead.
///
/// [`next_access`]: Workload::next_access
#[derive(Debug)]
pub struct TraceReader {
    file: Box<dyn VfsFile>,
    framing: Framing,
    geometry: DramGeometry,
    name: String,
    total: u64,
    body_start: u64,
    chunk: Vec<Access>,
    chunk_pos: usize,
    /// Records consumed since open/skip, monotonically (loops included).
    position: u64,
    /// Records of the underlying file consumed within the current loop.
    file_position: u64,
}

impl TraceReader {
    /// Opens a trace, validating magic, header structure, and (for RHT4)
    /// the header CRC.
    ///
    /// # Errors
    ///
    /// Returns filesystem errors, or malformations mapped to
    /// [`std::io::ErrorKind::InvalidData`] ([`TraceError::Corrupt`] for a
    /// failed CRC).
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::open_on(real_fs(), path)
    }

    /// [`open`](Self::open) on an explicit filesystem — the
    /// chaos-injection entry point.
    ///
    /// # Errors
    ///
    /// Like [`open`](Self::open).
    pub fn open_on(fs: Arc<dyn Vfs>, path: impl AsRef<Path>) -> std::io::Result<Self> {
        let mut file = fs.open(path.as_ref())?;
        let mut magic = [0u8; 4];
        let got = read_up_to(&mut file, &mut magic)?;
        if got < magic.len() {
            return Err(invalid(TraceError::ShortHeader { len: got }));
        }
        let framing = match magic {
            MAGIC => Framing::V4,
            MAGIC_V3 => Framing::V3,
            found => return Err(invalid(TraceError::BadMagic { found })),
        };
        // Geometry + total, plus the header crc field for v4.
        let fixed_len = match framing {
            Framing::V3 => 15,
            Framing::V4 => 19,
        };
        let mut fixed = vec![0u8; fixed_len];
        let got = read_up_to(&mut file, &mut fixed)?;
        if got < fixed.len() {
            return Err(invalid(TraceError::ShortHeader { len: 4 + got }));
        }
        let geometry = DramGeometry {
            channels: fixed[0],
            ranks_per_channel: fixed[1],
            banks_per_rank: fixed[2],
            rows_per_bank: u32::from_le_bytes(fixed[3..7].try_into().expect("4 bytes")),
        };
        geometry.validate().map_err(|e| {
            invalid(TraceError::Malformed { detail: format!("unusable geometry: {e}") })
        })?;
        let total = u64::from_le_bytes(fixed[7..15].try_into().expect("8 bytes"));
        let mut name_len = [0u8; 2];
        file.read_exact(&mut name_len).map_err(|_| {
            invalid(TraceError::Malformed { detail: "header ends inside name field".to_owned() })
        })?;
        let mut name = vec![0u8; usize::from(u16::from_le_bytes(name_len))];
        file.read_exact(&mut name).map_err(|_| {
            invalid(TraceError::Malformed { detail: "header ends inside name".to_owned() })
        })?;
        if framing == Framing::V4 {
            let stored = u32::from_le_bytes(fixed[15..19].try_into().expect("4 bytes"));
            let mut digest = Crc32c::new();
            digest.update(&magic);
            digest.update(&fixed[..15]);
            digest.update(&name_len);
            digest.update(&name);
            let computed = digest.finish();
            if computed != stored {
                return Err(invalid(TraceError::Corrupt {
                    what: "header".to_owned(),
                    stored,
                    computed,
                }));
            }
        }
        let name = String::from_utf8(name).map_err(|_| {
            invalid(TraceError::Malformed { detail: "trace name is not UTF-8".to_owned() })
        })?;
        let body_start = file.stream_position()?;
        Ok(TraceReader {
            file,
            framing,
            geometry,
            name,
            total,
            body_start,
            chunk: Vec::new(),
            chunk_pos: 0,
            position: 0,
            file_position: 0,
        })
    }

    /// [`open`](Self::open), additionally requiring the stamped geometry to
    /// equal `expected` — the check that makes a mismatched replay a typed
    /// open-time error instead of a mid-run routing failure.
    ///
    /// # Errors
    ///
    /// Like [`open`](Self::open), plus [`TraceError::GeometryMismatch`]
    /// (mapped to [`std::io::ErrorKind::InvalidData`]).
    pub fn open_for(path: impl AsRef<Path>, expected: &DramGeometry) -> std::io::Result<Self> {
        Self::open_for_on(real_fs(), path, expected)
    }

    /// [`open_for`](Self::open_for) on an explicit filesystem.
    ///
    /// # Errors
    ///
    /// Like [`open_for`](Self::open_for).
    pub fn open_for_on(
        fs: Arc<dyn Vfs>,
        path: impl AsRef<Path>,
        expected: &DramGeometry,
    ) -> std::io::Result<Self> {
        let reader = Self::open_on(fs, path)?;
        if reader.geometry != *expected {
            return Err(invalid(TraceError::GeometryMismatch {
                expected: *expected,
                found: reader.geometry,
            }));
        }
        Ok(reader)
    }

    /// The geometry stamped into the trace header.
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// The name stamped into the trace header.
    pub fn name(&self) -> String {
        self.name.clone()
    }

    /// Total records in the trace.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True for a trace with no records.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Records consumed since open (or since the last
    /// [`skip_to`](Self::skip_to)), counting loops.
    pub fn position(&self) -> u64 {
        self.position
    }

    /// Repositions the stream so the next access is the one an
    /// uninterrupted reader would produce as its `position`-th record
    /// (loops folded in). Whole chunks are skipped by their byte length
    /// without decoding — and without CRC verification: a resumed run never
    /// re-executes those records, so their integrity cannot affect it —
    /// and only the chunk containing the target is decoded (and, for RHT4,
    /// verified). This is the checkpoint-resume entry point.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and chunk-structure malformations. Seeking an
    /// empty trace to a nonzero position is
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn skip_to(&mut self, position: u64) -> std::io::Result<()> {
        if self.total == 0 && position != 0 {
            return Err(invalid(TraceError::Malformed {
                detail: "cannot seek an empty trace".to_owned(),
            }));
        }
        self.file.seek(SeekFrom::Start(self.body_start))?;
        self.chunk.clear();
        self.chunk_pos = 0;
        self.position = position;
        self.file_position = 0;
        let mut remaining = if self.total == 0 { 0 } else { position % self.total };
        // Skip whole chunks by length; decode only the one holding the target.
        while remaining > 0 {
            let frame = self.read_chunk_header()?.ok_or_else(|| {
                invalid(TraceError::LengthMismatch { body: 0, records: self.total })
            })?;
            if u64::from(frame.records) <= remaining {
                self.file.seek(SeekFrom::Current(i64::from(frame.payload_len)))?;
                self.file_position += u64::from(frame.records);
                remaining -= u64::from(frame.records);
            } else {
                self.decode_chunk(&frame)?;
                self.chunk_pos = remaining as usize;
                self.file_position += remaining;
                remaining = 0;
            }
        }
        Ok(())
    }

    /// Reads the next chunk header; `None` at end-of-file.
    fn read_chunk_header(&mut self) -> std::io::Result<Option<ChunkFrame>> {
        let frame_len = match self.framing {
            Framing::V3 => 8,
            Framing::V4 => 12,
        };
        let mut header = [0u8; 12];
        let got = read_up_to(&mut self.file, &mut header[..frame_len])?;
        if got == 0 {
            return Ok(None);
        }
        if got < frame_len {
            return Err(invalid(TraceError::Malformed {
                detail: "truncated chunk header".to_owned(),
            }));
        }
        let records = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let payload_len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        let stored_crc = match self.framing {
            Framing::V3 => None,
            Framing::V4 => Some(u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"))),
        };
        if records == 0 {
            return Err(invalid(TraceError::Malformed {
                detail: "chunk with zero records".to_owned(),
            }));
        }
        // Plausibility caps BEFORE the payload allocation: a corrupted
        // length field must fail here as Malformed, not drive a multi-GB
        // zeroed allocation whose bytes the CRC would reject anyway. Every
        // record occupies at least one payload byte.
        if payload_len > MAX_CHUNK_PAYLOAD || u64::from(records) > u64::from(payload_len) {
            return Err(invalid(TraceError::Malformed {
                detail: format!(
                    "implausible chunk frame: {records} record(s) in {payload_len} payload byte(s)"
                ),
            }));
        }
        Ok(Some(ChunkFrame { records, payload_len, stored_crc }))
    }

    /// Decodes one chunk payload into `self.chunk`, verifying the CRC frame
    /// first when the format carries one.
    fn decode_chunk(&mut self, frame: &ChunkFrame) -> std::io::Result<()> {
        let mut payload = vec![0u8; frame.payload_len as usize];
        self.file.read_exact(&mut payload).map_err(|_| {
            invalid(TraceError::Malformed { detail: "truncated chunk payload".to_owned() })
        })?;
        if let Some(stored) = frame.stored_crc {
            let mut digest = Crc32c::new();
            digest.update(&frame.records.to_le_bytes());
            digest.update(&frame.payload_len.to_le_bytes());
            digest.update(&payload);
            let computed = digest.finish();
            if computed != stored {
                // file_position still names the first record of this chunk.
                let chunk_of = self.file_position;
                return Err(invalid(TraceError::Corrupt {
                    what: format!("chunk at record {chunk_of}"),
                    stored,
                    computed,
                }));
            }
        }
        self.chunk.clear();
        self.chunk.reserve(frame.records as usize);
        let mut pos = 0usize;
        let mut prev = BASELINE;
        for i in 0..frame.records {
            let a = decode_record(&payload, &mut pos, &prev).map_err(invalid)?;
            if u32::from(a.bank) >= self.geometry.total_banks()
                || a.row.0 >= self.geometry.rows_per_bank
            {
                return Err(invalid(TraceError::OutOfRange {
                    index: self.file_position + u64::from(i),
                    bank: a.bank,
                    row: a.row.0,
                    geometry: self.geometry,
                }));
            }
            prev = a;
            self.chunk.push(a);
        }
        if pos != payload.len() {
            return Err(invalid(TraceError::Malformed {
                detail: format!(
                    "chunk payload has {} trailing byte(s) after its records",
                    payload.len() - pos
                ),
            }));
        }
        self.chunk_pos = 0;
        Ok(())
    }

    /// Advances to the next access, refilling (and looping) as needed —
    /// the fallible twin of [`Workload::next_access`], used by consumers
    /// (the fleet pipeline) that must surface corruption as a typed error
    /// instead of panicking mid-run.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and typed [`TraceError`] malformations
    /// (mapped to [`std::io::ErrorKind::InvalidData`]), including
    /// [`TraceError::Corrupt`] for a chunk whose CRC frame fails.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty (checked at stream setup by every
    /// caller).
    pub fn try_next(&mut self) -> std::io::Result<Access> {
        assert!(self.total > 0, "cannot replay an empty trace");
        loop {
            if self.chunk_pos < self.chunk.len() {
                let a = self.chunk[self.chunk_pos];
                self.chunk_pos += 1;
                self.position += 1;
                self.file_position += 1;
                return Ok(a);
            }
            match self.read_chunk_header()? {
                Some(frame) => self.decode_chunk(&frame)?,
                None => {
                    if self.file_position != self.total {
                        return Err(invalid(TraceError::LengthMismatch {
                            body: 0,
                            records: self.total,
                        }));
                    }
                    self.file.seek(SeekFrom::Start(self.body_start))?;
                    self.file_position = 0;
                }
            }
        }
    }
}

/// One chunk's framing fields.
#[derive(Debug, Clone, Copy)]
struct ChunkFrame {
    records: u32,
    payload_len: u32,
    /// `None` for legacy RHT3 chunks, which carry no CRC.
    stored_crc: Option<u32>,
}

/// `read` until the buffer is full or EOF; returns bytes read. (`read_exact`
/// cannot distinguish clean EOF from truncation.)
fn read_up_to(file: &mut dyn Read, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match file.read(&mut buf[filled..])? {
            0 => break,
            n => filled += n,
        }
    }
    Ok(filled)
}

impl Workload for TraceReader {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn next_access(&mut self) -> Access {
        self.try_next().unwrap_or_else(|e| panic!("trace stream failed: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::Synthetic;
    use proptest::prelude::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("graphene_repro_rht3");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn geom(banks: u8, rows: u32) -> DramGeometry {
        DramGeometry {
            channels: 1,
            ranks_per_channel: 1,
            banks_per_rank: banks,
            rows_per_bank: rows,
        }
    }

    fn write_accesses(path: &Path, g: DramGeometry, chunk: u32, accesses: &[Access]) {
        let mut w = TraceWriter::with_chunk_capacity(path, "t", g, chunk).unwrap();
        for a in accesses {
            w.push(a).unwrap();
        }
        w.finish().unwrap();
    }

    /// Writes the legacy RHT3 encoding by hand (no CRC fields, 8-byte chunk
    /// framing) — the writer only emits RHT4 now, but the reader must keep
    /// accepting archived v3 traces.
    fn write_v3(path: &Path, g: DramGeometry, chunk: u32, accesses: &[Access]) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_V3);
        bytes.push(g.channels);
        bytes.push(g.ranks_per_channel);
        bytes.push(g.banks_per_rank);
        bytes.extend_from_slice(&g.rows_per_bank.to_le_bytes());
        bytes.extend_from_slice(&(accesses.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.push(b't');
        for group in accesses.chunks(chunk as usize) {
            let mut payload = Vec::new();
            let mut prev = BASELINE;
            for a in group {
                encode_record(&mut payload, &prev, a);
                prev = *a;
            }
            bytes.extend_from_slice(&(group.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&payload);
        }
        std::fs::write(path, bytes).unwrap();
    }

    fn read_all(path: &Path) -> Vec<Access> {
        let mut r = TraceReader::open(path).unwrap();
        let n = r.len();
        (0..n).map(|_| r.next_access()).collect()
    }

    #[test]
    fn varint_round_trips_extremes() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, i64::from(u32::MAX), -i64::from(u32::MAX), i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn round_trip_synthetic_workload() {
        let path = tmp("round_trip.rht3");
        let g = geom(16, 65_536);
        let mut source = Synthetic::s1(10, 65_536, 42);
        let reference = crate::trace::Trace::record(&mut source, 5_000);
        write_accesses(&path, g, 512, reference.accesses());
        let decoded = read_all(&path);
        assert_eq!(decoded, reference.accesses());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_v3_traces_stay_readable() {
        let path = tmp("legacy_v3.rht3");
        let g = geom(8, 4_096);
        let mut source = Synthetic::s2(6, 4_096, 3);
        let reference = crate::trace::Trace::record(&mut source, 700);
        write_v3(&path, g, 64, reference.accesses());
        let mut r = TraceReader::open(&path).unwrap();
        assert_eq!(r.len(), 700);
        assert_eq!(r.geometry(), &g);
        let decoded: Vec<Access> = (0..700).map(|_| r.next_access()).collect();
        assert_eq!(decoded, reference.accesses());
        // skip_to works on v3 framing too.
        let mut skipped = TraceReader::open(&path).unwrap();
        skipped.skip_to(130).unwrap();
        assert_eq!(skipped.next_access(), reference.accesses()[130]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn gap_overflow_values_round_trip() {
        // The gap field is a raw varint; the extremes (including u64::MAX,
        // which would overflow any narrower delta) must survive.
        let path = tmp("gap_overflow.rht3");
        let g = geom(2, 100);
        let accesses = vec![
            Access { bank: 0, row: RowId(0), gap: u64::MAX, stream: 0 },
            Access { bank: 1, row: RowId(99), gap: 0, stream: 1 },
            Access { bank: 0, row: RowId(50), gap: u64::MAX - 1, stream: 0 },
        ];
        write_accesses(&path, g, 2, &accesses);
        assert_eq!(read_all(&path), accesses);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_length_trace_round_trips() {
        let path = tmp("zero_len.rht3");
        write_accesses(&path, geom(4, 1_000), 8, &[]);
        let r = TraceReader::open(&path).unwrap();
        assert_eq!(r.len(), 0);
        assert!(r.is_empty());
        assert_eq!(r.geometry(), &geom(4, 1_000));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn replaying_zero_length_trace_panics() {
        let path = tmp("zero_len_replay.rht3");
        write_accesses(&path, geom(4, 1_000), 8, &[]);
        let mut r = TraceReader::open(&path).unwrap();
        let _ = r.next_access();
    }

    #[test]
    fn geometry_mismatch_is_rejected_at_open() {
        let path = tmp("geometry_mismatch.rht3");
        let recorded = geom(16, 65_536);
        write_accesses(
            &path,
            recorded,
            8,
            &[Access { bank: 9, row: RowId(60_000), gap: 1, stream: 0 }],
        );
        let smaller = geom(4, 1_024);
        let err = TraceReader::open_for(&path, &smaller).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("cannot replay on"), "{err}");
        assert!(TraceReader::open_for(&path, &recorded).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn writer_rejects_out_of_geometry_access() {
        let path = tmp("writer_bounds.rht3");
        let mut w = TraceWriter::create(&path, "t", geom(4, 100)).unwrap();
        let err = w.push(&Access { bank: 4, row: RowId(0), gap: 0, stream: 0 }).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let err = w.push(&Access { bank: 0, row: RowId(100), gap: 0, stream: 0 }).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        drop(w);
        assert!(!path.exists(), "unfinished writer must not create the destination");
        assert!(!tmp_sibling(&path).exists(), "dropped writer must remove its temp file");
    }

    #[test]
    fn reader_loops_like_trace_replay() {
        let path = tmp("loops.rht3");
        let accesses = vec![
            Access { bank: 0, row: RowId(1), gap: 5, stream: 0 },
            Access { bank: 1, row: RowId(2), gap: 6, stream: 0 },
        ];
        write_accesses(&path, geom(2, 10), 1, &accesses);
        let mut r = TraceReader::open(&path).unwrap();
        let rows: Vec<_> = (0..5).map(|_| r.next_access().row.0).collect();
        assert_eq!(rows, vec![1, 2, 1, 2, 1]);
        assert_eq!(r.position(), 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn skip_to_matches_sequential_consumption() {
        let path = tmp("skip_to.rht3");
        let g = geom(16, 4_096);
        let mut source = Synthetic::s2(10, 4_096, 7);
        let reference = crate::trace::Trace::record(&mut source, 1_000);
        write_accesses(&path, g, 64, reference.accesses());
        // Positions inside the first chunk, at chunk borders, and past one
        // full loop.
        for target in [0u64, 1, 63, 64, 65, 512, 999, 1_000, 1_001, 2_500] {
            let mut sequential = TraceReader::open(&path).unwrap();
            for _ in 0..target {
                sequential.next_access();
            }
            let mut skipped = TraceReader::open(&path).unwrap();
            skipped.skip_to(target).unwrap();
            assert_eq!(skipped.position(), target);
            for i in 0..50 {
                assert_eq!(
                    skipped.next_access(),
                    sequential.next_access(),
                    "target {target}, offset {i}"
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_body_is_detected() {
        let path = tmp("truncated.rht3");
        let g = geom(4, 1_000);
        let accesses: Vec<Access> = (0..100)
            .map(|i| Access { bank: (i % 4) as u16, row: RowId(i * 7 % 1_000), gap: 3, stream: 0 })
            .collect();
        write_accesses(&path, g, 16, &accesses);
        let whole = std::fs::read(&path).unwrap();
        std::fs::write(&path, &whole[..whole.len() - 5]).unwrap();
        let mut r = TraceReader::open(&path).unwrap();
        let err = (0..100).try_for_each(|_| r.try_next().map(|_| ())).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_rot_in_a_chunk_is_detected_by_crc() {
        let path = tmp("bit_rot.rht4");
        let g = geom(4, 1_000);
        let accesses: Vec<Access> = (0..200)
            .map(|i| Access { bank: (i % 4) as u16, row: RowId(i * 3 % 1_000), gap: 9, stream: 0 })
            .collect();
        write_accesses(&path, g, 32, &accesses);
        let clean = std::fs::read(&path).unwrap();
        let header_len = 25 + 1; // fixed 25 + 1-byte name "t"
                                 // Flip one bit in every byte of the body, one at a time: each single
                                 // flip must surface as Corrupt (or a structural error), never decode
                                 // silently.
        for target in [header_len, header_len + 13, clean.len() / 2, clean.len() - 1] {
            let mut rotted = clean.clone();
            rotted[target] ^= 0x10;
            std::fs::write(&path, &rotted).unwrap();
            let mut r = TraceReader::open(&path).unwrap();
            let err = (0..200).try_for_each(|_| r.try_next().map(|_| ())).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "byte {target}");
        }
        // And the typed variant names the crc values for a payload flip.
        let mut rotted = clean.clone();
        *rotted.last_mut().unwrap() ^= 0x01;
        std::fs::write(&path, &rotted).unwrap();
        let mut r = TraceReader::open(&path).unwrap();
        let err = (0..200).try_for_each(|_| r.try_next().map(|_| ())).unwrap_err();
        assert!(err.to_string().contains("crc32c mismatch"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_rot_in_the_header_is_detected_at_open() {
        let path = tmp("header_rot.rht4");
        write_accesses(
            &path,
            geom(4, 1_000),
            8,
            &[Access { bank: 1, row: RowId(5), gap: 2, stream: 0 }],
        );
        let clean = std::fs::read(&path).unwrap();
        // Flip a bit of total_records: structurally plausible, caught only
        // by the header CRC.
        let mut rotted = clean.clone();
        rotted[COUNT_OFFSET as usize] ^= 0x02;
        std::fs::write(&path, &rotted).unwrap();
        let err = TraceReader::open(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("header"), "{err}");
        // Flip a bit of the stored name: also header-CRC territory.
        let mut rotted = clean;
        let last_header_byte = 25; // the 1-byte name "t"
        rotted[last_header_byte] ^= 0x40;
        std::fs::write(&path, &rotted).unwrap();
        assert!(TraceReader::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic_and_short_header() {
        let path = tmp("bad_magic.rht3");
        std::fs::write(&path, b"RHT2\x01\x01\x01\x00\x04\x00\x00plus-enough-padding").unwrap();
        let err = TraceReader::open(&path).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
        std::fs::write(&path, b"RHT4").unwrap();
        let err = TraceReader::open(&path).unwrap_err();
        assert!(err.to_string().contains("shorter than header"), "{err}");
        std::fs::write(&path, b"RH").unwrap();
        let err = TraceReader::open(&path).unwrap_err();
        assert!(err.to_string().contains("shorter than header"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn delta_encoding_is_compact_for_local_streams() {
        // A sequential walk (deltas of ±1 and small gaps) must beat the
        // fixed 16-byte v2 record by a wide margin, CRC frames included.
        let path = tmp("compact.rht3");
        let g = geom(1, 65_536);
        let accesses: Vec<Access> = (0..10_000)
            .map(|i| Access { bank: 0, row: RowId(i), gap: 60_000, stream: 0 })
            .collect();
        write_accesses(&path, g, 1_024, &accesses);
        let size = std::fs::metadata(&path).unwrap().len();
        assert!(
            size < 10_000 * 8,
            "delta encoding should be ≤ half of v2's 16 B/record, got {size} bytes"
        );
        assert_eq!(read_all(&path), accesses);
        std::fs::remove_file(&path).ok();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_codec_round_trips(
            seed in 0u64..1_000,
            n in 0usize..600,
            chunk in 1u32..100,
        ) {
            use rand::{rngs::StdRng, Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let g = geom(16, 65_536);
            let accesses: Vec<Access> = (0..n)
                .map(|_| Access {
                    bank: rng.gen_range(0..16),
                    row: RowId(rng.gen_range(0..65_536)),
                    // Mix small gaps with extreme ones to stress the varint.
                    gap: if rng.gen_bool(0.1) { u64::MAX - rng.gen_range(0..3) } else { rng.gen_range(0..100_000) },
                    stream: rng.gen_range(0..8),
                })
                .collect();
            let path = tmp(&format!("prop_{seed}_{n}_{chunk}.rht3"));
            write_accesses(&path, g, chunk, &accesses);
            let decoded = read_all(&path);
            std::fs::remove_file(&path).ok();
            prop_assert_eq!(decoded, accesses);
        }

        #[test]
        fn prop_skip_to_agrees_with_sequential(
            seed in 0u64..500,
            n in 1usize..400,
            chunk in 1u32..64,
            frac in 0u64..2_000,
        ) {
            use rand::{rngs::StdRng, Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let g = geom(8, 4_096);
            let accesses: Vec<Access> = (0..n)
                .map(|_| Access {
                    bank: rng.gen_range(0..8),
                    row: RowId(rng.gen_range(0..4_096)),
                    gap: rng.gen_range(0..10_000),
                    stream: 0,
                })
                .collect();
            let path = tmp(&format!("prop_skip_{seed}_{n}_{chunk}_{frac}.rht3"));
            write_accesses(&path, g, chunk, &accesses);
            let target = frac % (2 * n as u64 + 1);
            let mut sequential = TraceReader::open(&path).unwrap();
            for _ in 0..target {
                sequential.next_access();
            }
            let mut skipped = TraceReader::open(&path).unwrap();
            skipped.skip_to(target).unwrap();
            let a: Vec<Access> = (0..5).map(|_| sequential.next_access()).collect();
            let b: Vec<Access> = (0..5).map(|_| skipped.next_access()).collect();
            std::fs::remove_file(&path).ok();
            prop_assert_eq!(a, b);
        }
    }
}
