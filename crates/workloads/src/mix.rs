//! Combining per-core streams into one system trace.
//!
//! The paper's setup runs 16 cores against 4 channels × 16 banks. Each core
//! produces its own stream; [`Interleaved`] merges them by next-arrival
//! order (each stream keeps its own clock, advanced by its accesses' gaps),
//! which is how concurrent cores interleave at the controller. [`BankShift`]
//! relocates a single-bank stream (like the S1–S4 attacks) onto another bank.

use dram_model::timing::Picoseconds;

use crate::stream::{Access, Workload};

/// Merges streams by earliest next arrival (a k-way merge on stream clocks).
pub struct Interleaved {
    streams: Vec<Box<dyn Workload + Send>>,
    /// Next pending access and its absolute arrival time, per stream.
    pending: Vec<(Picoseconds, Access)>,
    /// Arrival time of the access most recently emitted.
    last_emitted: Picoseconds,
    name: String,
}

impl std::fmt::Debug for Interleaved {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interleaved")
            .field("name", &self.name)
            .field("streams", &self.streams.len())
            .finish()
    }
}

impl Interleaved {
    /// Merges the given streams.
    ///
    /// # Panics
    ///
    /// Panics if no streams are provided.
    pub fn new(mut streams: Vec<Box<dyn Workload + Send>>) -> Self {
        assert!(!streams.is_empty(), "need at least one stream");
        let name =
            format!("mix[{}]", streams.iter().map(|s| s.name()).collect::<Vec<_>>().join("+"));
        let pending = streams
            .iter_mut()
            .map(|s| {
                let a = s.next_access();
                (a.gap, a)
            })
            .collect();
        Interleaved { streams, pending, last_emitted: 0, name }
    }

    /// Number of merged streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }
}

impl Workload for Interleaved {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn next_access(&mut self) -> Access {
        // Pick the stream whose pending access arrives first.
        let (idx, &(at, access)) = self
            .pending
            .iter()
            .enumerate()
            .min_by_key(|&(_, &(t, _))| t)
            .expect("at least one stream");
        // Refill that stream's pending slot.
        let next = self.streams[idx].next_access();
        self.pending[idx] = (at + next.gap, next);
        // Emit with the gap relative to the previous emission, stamped with
        // the source (core) index for per-stream accounting.
        let gap = at.saturating_sub(self.last_emitted);
        self.last_emitted = at;
        Access { gap, stream: idx as u16, ..access }
    }
}

/// Relocates a stream's accesses onto a different bank.
#[derive(Debug)]
pub struct BankShift<W> {
    inner: W,
    bank: u16,
}

impl<W: Workload> BankShift<W> {
    /// Forces every access of `inner` onto `bank`.
    pub fn new(inner: W, bank: u16) -> Self {
        BankShift { inner, bank }
    }
}

impl<W: Workload> Workload for BankShift<W> {
    fn name(&self) -> String {
        format!("{}@bank{}", self.inner.name(), self.bank)
    }

    fn next_access(&mut self) -> Access {
        Access { bank: self.bank, ..self.inner.next_access() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::Synthetic;
    use dram_model::geometry::RowId;

    struct Ticker {
        gap: Picoseconds,
        row: u32,
    }
    impl Workload for Ticker {
        fn name(&self) -> String {
            format!("tick{}", self.gap)
        }
        fn next_access(&mut self) -> Access {
            Access { bank: 0, row: RowId(self.row), gap: self.gap, stream: 0 }
        }
    }

    #[test]
    fn merge_orders_by_arrival_time() {
        // Stream A arrives every 10 ps, stream B every 25 ps: the merge must
        // emit A,A,B,A,A,B,… (with ties broken deterministically).
        let mut m = Interleaved::new(vec![
            Box::new(Ticker { gap: 10, row: 1 }),
            Box::new(Ticker { gap: 25, row: 2 }),
        ]);
        let rows: Vec<u32> = (0..8).map(|_| m.next_access().row.0).collect();
        let a_count = rows.iter().filter(|&&r| r == 1).count();
        // In 8 emissions spanning ~55 ps: A ≈ 5-6, B ≈ 2-3.
        assert!(a_count >= 5, "rows {rows:?}");
    }

    #[test]
    fn merged_gaps_reconstruct_arrivals() {
        let mut m = Interleaved::new(vec![
            Box::new(Ticker { gap: 10, row: 1 }),
            Box::new(Ticker { gap: 25, row: 2 }),
        ]);
        let mut clock = 0u64;
        let mut arrivals = Vec::new();
        for _ in 0..10 {
            let a = m.next_access();
            clock += a.gap;
            arrivals.push(clock);
        }
        // Arrival times must be non-decreasing and match the union of the
        // two streams' schedules (10,20,25,30,40,50,50,60,70,75 …).
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(arrivals[0], 10);
        assert!(arrivals.contains(&25));
    }

    #[test]
    fn bank_shift_relocates() {
        let mut w = BankShift::new(Synthetic::s3(4096, 1), 7);
        for _ in 0..10 {
            assert_eq!(w.next_access().bank, 7);
        }
        assert!(w.name().contains("@bank7"));
    }

    #[test]
    fn merge_of_saturating_streams_emits_zero_gaps() {
        let mut m = Interleaved::new(vec![
            Box::new(Synthetic::s3(4096, 1)),
            Box::new(Synthetic::s3(4096, 2)),
        ]);
        for _ in 0..10 {
            assert_eq!(m.next_access().gap, 0);
        }
    }

    #[test]
    fn name_lists_components() {
        let m = Interleaved::new(vec![
            Box::new(Synthetic::s3(4096, 1)),
            Box::new(Synthetic::s1(10, 4096, 2)),
        ]);
        assert_eq!(m.name(), "mix[S3+S1-10]");
        assert_eq!(m.stream_count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn empty_merge_panics() {
        let _ = Interleaved::new(Vec::new());
    }
}
