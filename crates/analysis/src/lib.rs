//! # rh-analysis
//!
//! The closed-form and semi-analytic models behind the Graphene paper's
//! evaluation:
//!
//! * [`area`] — per-scheme table footprints: Table IV (CBT-128, TWiCe,
//!   Graphene at `T_RH` = 50K) and the Figure 9(a) scaling sweep.
//! * [`energy`] — the Table V energy constants (Micron DDR4 power-calculator
//!   numbers plus Graphene's synthesis results) and the refresh-energy
//!   overhead accounting used in Figures 8 and 9: one victim-row refresh
//!   costs one ACT+PRE pair against the background of per-bank auto-refresh
//!   energy per tREFW.
//! * [`certificates`] — bounded false-negative certificates for the
//!   tracker-arena's probabilistic schemes: CoMeT's collision-discount
//!   bound and BlockHammer's deterministic rate-cap margin, checked against
//!   audited runs' ground-truth disturbance.
//! * [`security`] — Section V-A: the PARA failure recurrence `P(e_N)`, the
//!   system-level (64 banks × 1 year) failure probability, the minimal `p`
//!   search that reproduces PARA-0.00145 and the Figure 9 `p` ladder, plus
//!   the semi-analytic evaluation of PRoHIT/MRLoc under the Figure 7
//!   patterns.
//! * [`worstcase`] — Figure 6: worst-case additional refreshes and table
//!   size versus the reset-window divisor `k`.
//! * [`report`] — small fixed-width table formatting used by the experiment
//!   binaries.
//!
//! # Example
//!
//! ```
//! use rh_analysis::security;
//!
//! // The paper: p = 0.00145 gives near-complete protection at T_RH = 50K.
//! let pw = security::para_window_failure(0.00145, 50_000, 1_358_404);
//! let yearly = security::yearly_failure(pw, 64);
//! assert!(yearly < 0.02, "yearly failure {yearly}");
//! ```

pub mod area;
pub mod certificates;
pub mod energy;
pub mod export;
pub mod montecarlo;
pub mod report;
pub mod security;
pub mod sensitivity;
pub mod worstcase;

pub use area::{AreaComparison, ArenaAreaComparison};
pub use certificates::{FnCertCheck, FnCertificate};
pub use energy::EnergyModel;
pub use report::TablePrinter;
