//! Table-size models: Table IV and Figure 9(a).

use graphene_core::GrapheneConfig;
use mitigations::{
    AbacusConfig, AbacusDefense, BlockHammerConfig, BlockHammerDefense, CbtConfig, CometConfig,
    CometDefense, RowHammerDefense, TableBits, TwiceConfig,
};
use serde::{Deserialize, Serialize};

/// Per-scheme table footprints at one Row Hammer threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AreaComparison {
    /// The threshold the comparison was computed for.
    pub t_rh: u64,
    /// Graphene (pure CAM).
    pub graphene: TableBits,
    /// CBT with the Figure 9 counter scaling (pure SRAM).
    pub cbt: TableBits,
    /// TWiCe (CAM + SRAM).
    pub twice: TableBits,
}

impl AreaComparison {
    /// Computes the comparison at `t_rh` using each scheme's own sizing rule
    /// (Graphene: Inequalities 1-3 with `k = 2`; CBT: counter doubling;
    /// TWiCe: the pruning-rate bound).
    pub fn at_threshold(t_rh: u64) -> Self {
        let graphene = GrapheneConfig::builder()
            .row_hammer_threshold(t_rh)
            .build()
            .expect("valid threshold")
            .derive()
            .expect("derivable");
        AreaComparison {
            t_rh,
            graphene: TableBits { cam_bits: graphene.table_bits_per_bank(), sram_bits: 0 },
            cbt: CbtConfig::scaled_for_threshold(t_rh).table_bits(),
            twice: TwiceConfig::with_threshold(t_rh).table_bits(),
        }
    }

    /// The Figure 9(a) threshold ladder: 50K, 25K, 12.5K, 6.25K, 3.125K, 1.56K.
    pub fn figure9_thresholds() -> [u64; 6] {
        [50_000, 25_000, 12_500, 6_250, 3_125, 1_560]
    }

    /// The full Figure 9(a) sweep.
    pub fn figure9_sweep() -> Vec<AreaComparison> {
        Self::figure9_thresholds().iter().map(|&t| Self::at_threshold(t)).collect()
    }

    /// TWiCe-to-Graphene total-bits ratio (the paper's "order of magnitude").
    pub fn twice_over_graphene(&self) -> f64 {
        self.twice.total() as f64 / self.graphene.total() as f64
    }
}

/// Converts bits for a rank of `banks` banks to megabytes.
pub fn rank_megabytes(bits: TableBits, banks: u32) -> f64 {
    bits.per_rank(banks) as f64 / 8.0 / 1024.0 / 1024.0
}

/// Per-bank table footprints of the tracker-arena schemes at one threshold.
///
/// Complements [`AreaComparison`] (the paper's own Table IV schemes) with
/// the next-generation trackers: CoMeT's fixed-geometry sketch + RAT,
/// ABACuS's single all-bank table (reported as its per-bank share so rank
/// totals stay comparable), and BlockHammer's dual counting-Bloom filters.
/// Each footprint comes from the scheme's own [`TableBits`] accounting, so
/// the arena report and the defense implementations can never drift apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArenaAreaComparison {
    /// The threshold the comparison was computed for.
    pub t_rh: u64,
    /// Graphene (pure CAM), the exact baseline.
    pub graphene: TableBits,
    /// CoMeT: CMS (SRAM) + recent-aggressor table (CAM).
    pub comet: TableBits,
    /// ABACuS: per-bank share of the one shared all-bank table.
    pub abacus: TableBits,
    /// BlockHammer: two counting-Bloom filters + pacing register.
    pub blockhammer: TableBits,
}

impl ArenaAreaComparison {
    /// Computes the arena comparison at `t_rh` for a rank of `banks` banks
    /// of `rows_per_bank` rows.
    ///
    /// # Errors
    ///
    /// Propagates any scheme's configuration-derivation error as text.
    pub fn at_threshold(t_rh: u64, banks: u32, rows_per_bank: u32) -> Result<Self, String> {
        let graphene = GrapheneConfig::builder()
            .row_hammer_threshold(t_rh)
            .rows_per_bank(rows_per_bank)
            .build()
            .map_err(|e| format!("{e:?}"))?
            .derive()
            .map_err(|e| format!("{e:?}"))?;
        let comet = CometDefense::new(CometConfig::for_threshold(t_rh, rows_per_bank)?);
        // One facade over the genuinely shared table (`single` would shrink
        // the config to one bank and misreport the share).
        let abacus = AbacusDefense::shared_for_banks(AbacusConfig::for_geometry(
            t_rh,
            2,
            banks,
            rows_per_bank,
        )?)
        .swap_remove(0);
        let blockhammer =
            BlockHammerDefense::new(BlockHammerConfig::for_threshold(t_rh, rows_per_bank)?);
        Ok(ArenaAreaComparison {
            t_rh,
            graphene: TableBits { cam_bits: graphene.table_bits_per_bank(), sram_bits: 0 },
            comet: comet.table_bits(),
            abacus: abacus.table_bits(),
            blockhammer: blockhammer.table_bits(),
        })
    }

    /// The full arena sweep over the Figure 9(a) threshold ladder.
    ///
    /// # Errors
    ///
    /// Propagates the first failing threshold's error.
    pub fn figure9_sweep(banks: u32, rows_per_bank: u32) -> Result<Vec<Self>, String> {
        AreaComparison::figure9_thresholds()
            .iter()
            .map(|&t| Self::at_threshold(t, banks, rows_per_bank))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_graphene_exact() {
        let c = AreaComparison::at_threshold(50_000);
        assert_eq!(c.graphene.total(), 2_511); // paper: 2,511 CAM bits/bank
        assert_eq!(c.graphene.sram_bits, 0);
    }

    #[test]
    fn table_iv_cbt_within_one_percent() {
        let c = AreaComparison::at_threshold(50_000);
        // Paper: 3,824 SRAM bits/bank; our model gives 3,840.
        let err = (c.cbt.total() as f64 - 3_824.0).abs() / 3_824.0;
        assert!(err < 0.01, "CBT bits {} (err {err})", c.cbt.total());
    }

    #[test]
    fn table_iv_twice_order_of_magnitude() {
        let c = AreaComparison::at_threshold(50_000);
        // Paper: 20,484 CAM + 15,932 SRAM = 36,416 bits/bank. Our
        // pruning-rate provisioning lands in the same order of magnitude.
        assert!(c.twice.total() > 15_000 && c.twice.total() < 80_000);
        assert!(c.twice_over_graphene() > 8.0, "ratio {}", c.twice_over_graphene());
    }

    #[test]
    fn figure9_all_schemes_scale_inversely() {
        let sweep = AreaComparison::figure9_sweep();
        for pair in sweep.windows(2) {
            assert!(pair[1].graphene.total() > pair[0].graphene.total());
            assert!(pair[1].cbt.total() > pair[0].cbt.total());
            assert!(pair[1].twice.total() > pair[0].twice.total());
        }
    }

    #[test]
    fn figure9_twice_becomes_megabyte_scale_at_1_56k() {
        // Paper: at T_RH = 1.56K, TWiCe ≈ 1.19 MB per rank (16 banks).
        let c = AreaComparison::at_threshold(1_560);
        let mb = rank_megabytes(c.twice, 16);
        assert!(mb > 0.5 && mb < 3.0, "TWiCe {mb} MB/rank");
        // Graphene stays an order of magnitude below TWiCe.
        let g_mb = rank_megabytes(c.graphene, 16);
        assert!(c.twice_over_graphene() > 8.0, "graphene {g_mb} MB/rank");
    }

    #[test]
    fn arena_comet_area_is_flat_across_thresholds() {
        // CoMeT's sketch geometry is fixed (4×512); only counter widths and
        // the RAT's count field grow logarithmically, so the footprint is
        // near-flat while Graphene's table grows ~linearly in 1/T_RH.
        let sweep = ArenaAreaComparison::figure9_sweep(16, 65_536).unwrap();
        let first = sweep.first().unwrap().comet.total() as f64;
        let last = sweep.last().unwrap().comet.total() as f64;
        assert!(last / first < 1.3, "CoMeT grew {first} -> {last}");
        let g_first = sweep.first().unwrap().graphene.total() as f64;
        let g_last = sweep.last().unwrap().graphene.total() as f64;
        assert!(g_last / g_first > 10.0, "Graphene grew {g_first} -> {g_last}");
    }

    #[test]
    fn arena_abacus_share_beats_graphene_per_bank() {
        // ABACuS's entire point: one all-bank table whose per-bank share is
        // far below a private per-bank Graphene table.
        let c = ArenaAreaComparison::at_threshold(50_000, 16, 65_536).unwrap();
        assert!(
            c.abacus.total() < c.graphene.total(),
            "abacus {} vs graphene {}",
            c.abacus.total(),
            c.graphene.total()
        );
    }

    #[test]
    fn arena_blockhammer_is_pure_sram() {
        let c = ArenaAreaComparison::at_threshold(50_000, 16, 65_536).unwrap();
        assert_eq!(c.blockhammer.cam_bits, 0);
        assert!(c.blockhammer.sram_bits > 0);
    }

    #[test]
    fn four_channel_system_totals() {
        // Paper §V-C: at 1.56K a 4-channel system needs ~4.76 MB for TWiCe,
        // ~1.12 MB for CBT, ~0.53 MB for Graphene. Check the ordering and
        // magnitudes (×4 ranks of 16 banks).
        let c = AreaComparison::at_threshold(1_560);
        let twice = 4.0 * rank_megabytes(c.twice, 16);
        let cbt = 4.0 * rank_megabytes(c.cbt, 16);
        let graphene = 4.0 * rank_megabytes(c.graphene, 16);
        assert!(twice > cbt && cbt > graphene, "twice {twice}, cbt {cbt}, graphene {graphene}");
        assert!(graphene < 1.0, "graphene {graphene} MB");
    }
}
