//! Monte-Carlo cross-validation of the analytic security models.
//!
//! The PARA failure recurrence of [`crate::security`] is a dynamic program;
//! this module validates it empirically by simulating the actual Bernoulli
//! process — per ACT, each victim of the hammered row is refreshed with
//! probability `q` — and checking whether `T_RH` consecutive disturbing ACTs
//! ever elapse without a refresh. The agreement test at small thresholds is
//! part of the test suite; the harness also exposes the estimator so
//! experiments can quote simulated confidence alongside analytic numbers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One simulated window: does the worst-case single-row hammer beat PARA?
///
/// Simulates `w` ACTs; each ACT each victim survives refresh with
/// probability `1 − q`. Returns true if either victim accumulates `t_rh`
/// ACTs since its last refresh.
pub fn simulate_para_window(q: f64, t_rh: u64, w: u64, rng: &mut StdRng) -> bool {
    let mut since_refresh = [0u64; 2];
    for _ in 0..w {
        for s in &mut since_refresh {
            if rng.gen_bool(q) {
                *s = 0;
            } else {
                *s += 1;
                if *s >= t_rh {
                    return true;
                }
            }
        }
    }
    false
}

/// Monte-Carlo estimate of the per-window failure probability, with the
/// standard error of the estimate.
///
/// # Panics
///
/// Panics if `trials == 0` or `q` is not a probability.
pub fn estimate_para_failure(q: f64, t_rh: u64, w: u64, trials: u32, seed: u64) -> (f64, f64) {
    assert!(trials > 0, "need at least one trial");
    assert!((0.0..=1.0).contains(&q), "q must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut failures = 0u32;
    for _ in 0..trials {
        if simulate_para_window(q, t_rh, w, &mut rng) {
            failures += 1;
        }
    }
    let p = f64::from(failures) / f64::from(trials);
    let se = (p * (1.0 - p) / f64::from(trials)).sqrt();
    (p, se)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::security::victim_failure_probability;

    /// The analytic recurrence and the simulated process must agree within
    /// sampling error at parameters where failures are common enough to
    /// measure.
    #[test]
    fn recurrence_matches_simulation() {
        // Small threshold/window so the failure probability is ~10-50%.
        let (q, t_rh, w) = (0.02, 200, 4_000);
        let analytic = victim_failure_probability(q, t_rh, w, 2);
        let (simulated, se) = estimate_para_failure(q, t_rh, w, 3_000, 7);
        let tolerance = 4.0 * se + 0.01;
        assert!(
            (analytic - simulated).abs() < tolerance,
            "analytic {analytic:.4} vs simulated {simulated:.4} ± {se:.4}"
        );
    }

    #[test]
    fn higher_q_lowers_simulated_failure() {
        let (low_q, _) = estimate_para_failure(0.01, 200, 4_000, 1_500, 1);
        let (high_q, _) = estimate_para_failure(0.04, 200, 4_000, 1_500, 1);
        assert!(high_q < low_q, "{high_q} !< {low_q}");
    }

    #[test]
    fn zero_q_always_fails_when_window_allows() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(simulate_para_window(0.0, 100, 100, &mut rng));
        assert!(!simulate_para_window(0.0, 100, 99, &mut rng));
    }

    #[test]
    fn estimator_is_deterministic_per_seed() {
        let a = estimate_para_failure(0.02, 150, 2_000, 500, 42);
        let b = estimate_para_failure(0.02, 150, 2_000, 500, 42);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let _ = estimate_para_failure(0.1, 10, 10, 0, 0);
    }
}
