//! CSV export of experiment data.
//!
//! Every figure runner can emit its series as plain CSV so downstream users
//! can plot the reproduction against the paper's figures without scraping
//! stdout. No external dependency: the writer handles quoting for the small
//! value space we emit (numbers and simple names).

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// An in-memory CSV table.
///
/// # Example
///
/// ```
/// use rh_analysis::export::Csv;
///
/// let mut csv = Csv::new(vec!["k", "entries"]);
/// csv.row(vec!["1".into(), "108".into()]);
/// assert_eq!(csv.render(), "k,entries\n1,108\n");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csv {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Csv {
    /// Starts a table with the given column names.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Csv { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width — ragged CSV
    /// silently corrupts downstream plots, so it is rejected here.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders RFC-4180-style CSV (quoting cells containing commas, quotes
    /// or newlines).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if cell.contains([',', '"', '\n']) {
                    let escaped = cell.replace('"', "\"\"");
                    let _ = write!(out, "\"{escaped}\"");
                } else {
                    out.push_str(cell);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        for r in &self.rows {
            write_row(&mut out, r);
        }
        out
    }

    /// Writes the rendered CSV to a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.render())
    }
}

/// Resolves the experiment output directory: `$RH_OUT` or `./experiment-data`.
pub fn output_dir() -> std::path::PathBuf {
    std::env::var_os("RH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("experiment-data"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_simple_table() {
        let mut c = Csv::new(vec!["a", "b"]);
        c.row(vec!["1".into(), "2".into()]);
        c.row(vec!["3".into(), "4".into()]);
        assert_eq!(c.render(), "a,b\n1,2\n3,4\n");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn quotes_special_cells() {
        let mut c = Csv::new(vec!["name"]);
        c.row(vec!["mix[a+b],2".into()]);
        c.row(vec!["say \"hi\"".into()]);
        assert_eq!(c.render(), "name\n\"mix[a+b],2\"\n\"say \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        let mut c = Csv::new(vec!["a", "b"]);
        c.row(vec!["only-one".into()]);
    }

    #[test]
    fn writes_file_creating_directories() {
        let dir = std::env::temp_dir().join("graphene_repro_csv_test");
        let path = dir.join("nested").join("t.csv");
        let mut c = Csv::new(vec!["x"]);
        c.row(vec!["7".into()]);
        c.write_to(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(content, "x\n7\n");
    }

    #[test]
    fn output_dir_default() {
        // Do not mutate the environment (tests run in parallel); just check
        // the default when RH_OUT is absent in this test environment.
        if std::env::var_os("RH_OUT").is_none() {
            assert_eq!(output_dir(), std::path::PathBuf::from("experiment-data"));
        }
    }
}
