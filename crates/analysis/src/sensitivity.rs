//! Sensitivity of the protection parameters to deployment conditions.
//!
//! The paper's numbers assume tREFW = 64 ms, 64 banks and a 1 %-per-year
//! failure target. Real deployments vary all three:
//!
//! * **temperature** — above 85 °C JEDEC halves the refresh window
//!   (tREFW = 32 ms), which halves `W` and shrinks Graphene's table while
//!   leaving `T` (a function of `T_RH` only) unchanged;
//! * **system size** — more banks mean more parallel attack surfaces, so
//!   PARA's minimal `p` must grow (slowly: the failure target is shared
//!   across `banks × windows` trials);
//! * **failure target** — a stricter target than 1 %/year also pushes `p`
//!   up, again logarithmically.
//!
//! Graphene's counters are deterministic, so only the table *size* moves
//! with the environment; PARA's protection level itself does. This module
//! quantifies both, and its tests pin the directions.

use dram_model::timing::DramTiming;
use graphene_core::{GrapheneConfig, GrapheneParams};
use serde::{Deserialize, Serialize};

use crate::security::{minimal_para_probability, para_window_failure, yearly_failure};

/// Graphene parameters under a scaled refresh window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RefreshWindowPoint {
    /// The refresh window (ps).
    pub t_refw: u64,
    /// Derived parameters at this window.
    pub params: GrapheneParams,
}

/// Derives Graphene across refresh windows (e.g. 64 ms nominal vs 32 ms
/// high-temperature).
///
/// # Panics
///
/// Panics if any window produces an underivable configuration.
pub fn graphene_vs_refresh_window(t_rh: u64, windows_ms: &[u64]) -> Vec<RefreshWindowPoint> {
    windows_ms
        .iter()
        .map(|&ms| {
            let mut timing = DramTiming::ddr4_2400();
            timing.t_refw = ms * 1_000_000_000;
            let params = GrapheneConfig::builder()
                .row_hammer_threshold(t_rh)
                .timing(timing)
                .build()
                .expect("valid configuration")
                .derive()
                .expect("derivable");
            RefreshWindowPoint { t_refw: timing.t_refw, params }
        })
        .collect()
}

/// Minimal PARA probability as a function of system size (bank count).
pub fn para_p_vs_banks(t_rh: u64, banks: &[u32], target: f64) -> Vec<(u32, f64)> {
    let w = DramTiming::ddr4_2400().max_acts_per_refresh_window();
    banks.iter().map(|&b| (b, minimal_para_probability(t_rh, w, b, target))).collect()
}

/// Minimal PARA probability as a function of the yearly failure target.
pub fn para_p_vs_target(t_rh: u64, banks: u32, targets: &[f64]) -> Vec<(f64, f64)> {
    let w = DramTiming::ddr4_2400().max_acts_per_refresh_window();
    targets.iter().map(|&t| (t, minimal_para_probability(t_rh, w, banks, t))).collect()
}

/// Years of protection a fixed PARA `p` provides before the cumulative
/// failure probability crosses `target`.
pub fn para_protection_horizon_years(p: f64, t_rh: u64, banks: u32, target: f64) -> f64 {
    let w = DramTiming::ddr4_2400().max_acts_per_refresh_window();
    let one_year = yearly_failure(para_window_failure(p, t_rh, w), banks);
    if one_year <= 0.0 {
        return f64::INFINITY;
    }
    if one_year >= 1.0 {
        return 0.0;
    }
    // (1 − (1−q)^years) = target  ⇒  years = ln(1−target)/ln(1−q).
    f64::ln_1p(-target) / f64::ln_1p(-one_year)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_temperature_window_shrinks_table_not_t() {
        let points = graphene_vs_refresh_window(50_000, &[64, 32]);
        let (nominal, hot) = (&points[0].params, &points[1].params);
        // T depends only on T_RH and k.
        assert_eq!(nominal.tracking_threshold, hot.tracking_threshold);
        // W halves → the table roughly halves.
        assert_eq!(hot.acts_per_window, nominal.acts_per_window / 2);
        let ratio = nominal.n_entry as f64 / hot.n_entry as f64;
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
        // And the derived parameters remain provably protective.
        hot.validate_protection().unwrap();
    }

    #[test]
    fn para_p_grows_with_system_size() {
        let pts = para_p_vs_banks(50_000, &[16, 64, 1_024], 0.01);
        assert!(pts[0].1 < pts[1].1 && pts[1].1 < pts[2].1, "{pts:?}");
        // But only logarithmically: 64× more banks, far less than 64× more p.
        assert!(pts[2].1 / pts[0].1 < 1.5);
    }

    #[test]
    fn para_p_grows_with_stricter_target() {
        let pts = para_p_vs_target(50_000, 64, &[0.10, 0.01, 0.001]);
        assert!(pts[0].1 < pts[1].1 && pts[1].1 < pts[2].1, "{pts:?}");
    }

    #[test]
    fn protection_horizon_matches_yearly_target() {
        // At the minimal p for 1 %/year, the 1 % horizon is ≈ 1 year.
        let p = minimal_para_probability(
            50_000,
            DramTiming::ddr4_2400().max_acts_per_refresh_window(),
            64,
            0.01,
        );
        let years = para_protection_horizon_years(p, 50_000, 64, 0.01);
        assert!((0.8..1.5).contains(&years), "horizon {years}");
        // A slightly larger p buys a dramatically longer horizon.
        let longer = para_protection_horizon_years(p * 1.2, 50_000, 64, 0.01);
        assert!(longer > 10.0 * years, "longer {longer}");
    }

    #[test]
    fn horizon_edges() {
        assert_eq!(para_protection_horizon_years(0.0, 50_000, 64, 0.01), 0.0);
        assert!(para_protection_horizon_years(0.5, 50_000, 64, 0.01).is_infinite());
    }
}
