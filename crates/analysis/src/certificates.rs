//! Bounded false-negative certificates for the probabilistic trackers.
//!
//! Graphene and ABACuS count exactly (Misra-Gries over full row addresses),
//! so the audit layer certifies them with the exact shadow oracle: zero
//! false negatives, checked row by row. CoMeT and BlockHammer trade that
//! exactness for area — a count-min sketch can under-serve a row only
//! through hash collisions — so their certificates are *bounds*, not
//! equalities:
//!
//! * **CoMeT** promotes a row into its exact recent-aggressor table when the
//!   sketch estimate crosses `T/2`. Sketch estimates only over-count, so
//!   promotion is never late and counts are never lost on promotion (the
//!   table seeds from the estimate). The one false-negative path is the
//!   post-mitigation *discount*: subtracting the fired amount from the
//!   row's counters also under-counts any row that collides with it in
//!   **all** `depth` sketch rows. A full collision for one row pair has
//!   probability `width^-depth`. An under-count only matters if the
//!   collided row could itself cross the threshold — it must absorb at
//!   least the `T/2` promotion quantum within the window, and a window of
//!   `W` activations holds at most `W/(T/2)` such rows. With at most `W/T`
//!   discounts per window, the per-window false-negative probability is
//!   bounded by `(W/T) · (2W/T) · width^-depth` — at the paper-default
//!   4×512 geometry, below 10⁻³ for every threshold in the Figure 9
//!   ladder.
//! * **BlockHammer** never misses by *probability* at all: counting-Bloom
//!   filters only over-count, so a row reaching `N_BL = T_RH/8` activations
//!   in the live epoch is always blacklisted on time. Its certificate is a
//!   deterministic rate cap — unthrottled activations are bounded by
//!   `2·N_BL = T_RH/4` per tREFW (two epochs), paced activations by
//!   `tREFW / throttle_interval = T_RH/8`, so a double-sided pair drives at
//!   most `3·T_RH/4` disturbance: a built-in 25 % design margin, with an
//!   analytic false-negative term of exactly zero.
//!
//! [`FnCertificate::check_observed`] closes the loop against simulation:
//! the audited run's maximum ground-truth disturbance must stay inside the
//! certificate's disturbance budget, and the analytic bound itself must be
//! below [`FnCertificate::MAX_TOLERABLE_FN`].

use graphene_core::GrapheneConfig;
use mitigations::{BlockHammerConfig, CometConfig};
use serde::{Deserialize, Serialize};

/// Analytic false-negative certificate for one probabilistic tracker at one
/// Row Hammer threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FnCertificate {
    /// Scheme the certificate covers.
    pub scheme: &'static str,
    /// The Row Hammer threshold being defended.
    pub t_rh: u64,
    /// Upper bound on the per-window probability of a false negative (a row
    /// crossing its tracking threshold unmitigated). Zero for deterministic
    /// rate caps.
    pub analytic_fn_bound: f64,
    /// Deterministic fraction of `T_RH` reserved as headroom: the tracker's
    /// own math caps worst-case disturbance at `(1 − margin) · T_RH`.
    pub design_margin: f64,
}

/// Outcome of checking a certificate against an audited run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FnCertCheck {
    /// Whether the run satisfied the certificate.
    pub passes: bool,
    /// The run's maximum ground-truth disturbance (from the shadow oracle).
    pub max_disturbance: u64,
    /// The certificate's disturbance budget `(1 − margin) · T_RH`.
    pub budget: u64,
    /// Observed near-miss margin: `1 − max_disturbance / T_RH`. Compare it
    /// against `design_margin` — observed should be at least as large.
    pub observed_margin: f64,
}

impl FnCertificate {
    /// Acceptance ceiling on the analytic bound: a certificate whose
    /// per-window false-negative probability exceeds this is rejected
    /// regardless of what the simulation observed.
    pub const MAX_TOLERABLE_FN: f64 = 1e-3;

    /// CoMeT's certificate at `t_rh`: collision-discount bound
    /// `(W/T) · (W/(T/2)) · width^-depth` (see the module docs for the
    /// derivation), no deterministic margin beyond the shared Graphene
    /// threshold derivation (the sketch fires at exactly the derived `T`,
    /// like Graphene's own counters).
    ///
    /// # Errors
    ///
    /// Propagates the threshold derivation error as text.
    pub fn comet(t_rh: u64, rows_per_bank: u32) -> Result<Self, String> {
        let cfg = CometConfig::for_threshold(t_rh, rows_per_bank)?;
        let params = GrapheneConfig::builder()
            .row_hammer_threshold(t_rh)
            .rows_per_bank(rows_per_bank)
            .build()
            .map_err(|e| format!("{e:?}"))?
            .derive()
            .map_err(|e| format!("{e:?}"))?;
        let w = params.acts_per_window as f64;
        let discounts_per_window = (w / cfg.nrr_threshold.max(1) as f64).max(1.0);
        // Rows that could turn an under-count into a false negative: each
        // must absorb at least the T/2 promotion quantum within the window.
        let candidate_rows = (w / cfg.insert_threshold.max(1) as f64).max(1.0);
        let full_collision = (cfg.width as f64).powi(-(cfg.depth as i32));
        Ok(FnCertificate {
            scheme: "CoMeT",
            t_rh,
            analytic_fn_bound: discounts_per_window * candidate_rows * full_collision,
            design_margin: 0.0,
        })
    }

    /// BlockHammer's certificate at `t_rh`: zero analytic false-negative
    /// probability (filters only over-count) and the deterministic 25 %
    /// margin of the `N_BL = T_RH/8`, `interval = 8·tREFW/T_RH` sizing.
    ///
    /// # Errors
    ///
    /// Propagates the threshold derivation error as text.
    pub fn blockhammer(t_rh: u64, rows_per_bank: u32) -> Result<Self, String> {
        let cfg = BlockHammerConfig::for_threshold(t_rh, rows_per_bank)?;
        // Reconstruct the cap from the actual integer-rounded config rather
        // than restating the ideal formula: unthrottled 2·N_BL per tREFW
        // plus (tREFW / interval) paced activations, doubled for a
        // double-sided pair sharing one victim.
        let t_refw = 2 * cfg.epoch;
        let unthrottled = 2 * cfg.blacklist_threshold;
        let paced = t_refw / cfg.throttle_interval;
        let per_aggressor = unthrottled + paced;
        let worst = (2 * per_aggressor).min(t_rh);
        Ok(FnCertificate {
            scheme: "BlockHammer",
            t_rh,
            analytic_fn_bound: 0.0,
            design_margin: 1.0 - worst as f64 / t_rh as f64,
        })
    }

    /// The disturbance budget the simulation must stay inside:
    /// `(1 − design_margin) · T_RH`, never below 1.
    pub fn disturbance_budget(&self) -> u64 {
        (((1.0 - self.design_margin) * self.t_rh as f64).floor() as u64).clamp(1, self.t_rh)
    }

    /// Checks an audited run's maximum ground-truth disturbance against the
    /// certificate. Passes when the observation is strictly inside the
    /// budget **and** the analytic bound is below
    /// [`Self::MAX_TOLERABLE_FN`].
    pub fn check_observed(&self, max_disturbance: u64) -> FnCertCheck {
        let budget = self.disturbance_budget();
        FnCertCheck {
            passes: max_disturbance < budget && self.analytic_fn_bound < Self::MAX_TOLERABLE_FN,
            max_disturbance,
            budget,
            observed_margin: 1.0 - max_disturbance as f64 / self.t_rh as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comet_bound_is_tiny_across_the_figure9_ladder() {
        for t_rh in crate::AreaComparison::figure9_thresholds() {
            let cert = FnCertificate::comet(t_rh, 65_536).unwrap();
            assert!(
                cert.analytic_fn_bound < FnCertificate::MAX_TOLERABLE_FN,
                "bound {} at T_RH {t_rh}",
                cert.analytic_fn_bound
            );
            assert!(cert.analytic_fn_bound > 0.0, "collision probability is never exactly zero");
        }
    }

    #[test]
    fn comet_bound_grows_as_threshold_drops() {
        // Lower T → more discounts per window → more collision exposure.
        let high = FnCertificate::comet(50_000, 65_536).unwrap();
        let low = FnCertificate::comet(1_560, 65_536).unwrap();
        assert!(low.analytic_fn_bound > high.analytic_fn_bound);
    }

    #[test]
    fn blockhammer_margin_is_about_a_quarter() {
        let cert = FnCertificate::blockhammer(50_000, 65_536).unwrap();
        assert_eq!(cert.analytic_fn_bound, 0.0);
        assert!(
            (cert.design_margin - 0.25).abs() < 0.02,
            "margin {} (integer rounding only)",
            cert.design_margin
        );
        assert!(cert.disturbance_budget() < 50_000);
    }

    #[test]
    fn check_passes_inside_budget_and_fails_outside() {
        let cert = FnCertificate::blockhammer(8_000, 65_536).unwrap();
        let ok = cert.check_observed(1_000);
        assert!(ok.passes);
        assert!(ok.observed_margin > cert.design_margin);
        let bad = cert.check_observed(cert.disturbance_budget());
        assert!(!bad.passes, "at-budget disturbance must fail");
        assert_eq!(bad.budget, cert.disturbance_budget());
    }

    #[test]
    fn inflated_analytic_bound_fails_regardless_of_observation() {
        let mut cert = FnCertificate::comet(50_000, 65_536).unwrap();
        cert.analytic_fn_bound = 0.5;
        assert!(!cert.check_observed(0).passes);
    }

    #[test]
    fn budget_never_degenerates_to_zero() {
        let cert =
            FnCertificate { scheme: "test", t_rh: 4, analytic_fn_bound: 0.0, design_margin: 1.0 };
        assert_eq!(cert.disturbance_budget(), 1);
    }
}
