//! Figure 6: worst-case additional refreshes and table size versus the
//! reset-window divisor `k`.
//!
//! For each `k`, Graphene's table shrinks (`N_entry ≈ (2W/T_RH)·(k+1)/k`)
//! while the worst-case number of NRR triggers grows (`k·⌊W_k/T_k⌋` per
//! tREFW, each refreshing two rows). The paper conservatively picks `k = 2`,
//! where the worst-case refresh-energy increase is the famous 0.34 %.

use graphene_core::{GrapheneConfig, GrapheneParams};
use serde::{Deserialize, Serialize};

use crate::energy::EnergyModel;

/// One point of the Figure 6 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Figure6Point {
    /// Reset-window divisor.
    pub k: u32,
    /// Table entries per bank.
    pub n_entry: usize,
    /// Table bits per bank.
    pub table_bits: u64,
    /// Worst-case victim-row refreshes per tREFW per bank.
    pub worst_case_victim_rows: u64,
    /// Worst-case additional refreshes relative to the rows auto-refreshed
    /// per tREFW (65,536 for the paper's bank).
    pub relative_additional_refreshes: f64,
    /// Worst-case refresh-energy increase (fraction).
    pub energy_overhead: f64,
}

/// Computes the Figure 6 sweep for `k = 1..=k_max` at the given threshold.
///
/// # Panics
///
/// Panics if any `k` yields an underivable configuration.
pub fn figure6_sweep(t_rh: u64, k_max: u32, rows_per_bank: u32) -> Vec<Figure6Point> {
    let energy = EnergyModel::micro2020();
    (1..=k_max)
        .map(|k| {
            let params: GrapheneParams = GrapheneConfig::builder()
                .row_hammer_threshold(t_rh)
                .reset_window_divisor(k)
                .rows_per_bank(rows_per_bank)
                .build()
                .expect("valid configuration")
                .derive()
                .expect("derivable");
            let victim_rows = params.worst_case_victim_rows_per_refw();
            Figure6Point {
                k,
                n_entry: params.n_entry,
                table_bits: params.table_bits_per_bank(),
                worst_case_victim_rows: victim_rows,
                relative_additional_refreshes: victim_rows as f64 / f64::from(rows_per_bank),
                energy_overhead: energy.refresh_energy_overhead(victim_rows, energy.t_refw, 1),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k2_reproduces_0_34_percent() {
        let sweep = figure6_sweep(50_000, 10, 65_536);
        let k2 = sweep[1];
        assert_eq!(k2.k, 2);
        assert_eq!(k2.n_entry, 81);
        assert_eq!(k2.worst_case_victim_rows, 324);
        assert!((k2.energy_overhead - 0.0034).abs() < 0.0002, "{}", k2.energy_overhead);
    }

    #[test]
    fn table_shrinks_and_refreshes_grow_with_k() {
        let sweep = figure6_sweep(50_000, 10, 65_536);
        assert!(sweep.windows(2).all(|w| w[1].n_entry <= w[0].n_entry));
        assert!(sweep[9].worst_case_victim_rows > sweep[0].worst_case_victim_rows);
    }

    #[test]
    fn table_size_saturates_quickly() {
        // §IV-C: "the table size quickly saturates as k increases".
        let sweep = figure6_sweep(50_000, 10, 65_536);
        let early_gain = sweep[0].n_entry - sweep[1].n_entry;
        let late_gain = sweep[8].n_entry - sweep[9].n_entry;
        assert!(early_gain >= 5 * late_gain.max(1) || late_gain == 0);
    }
}
