//! Security analysis of the probabilistic schemes (Section V-A).
//!
//! ## PARA
//!
//! Under the worst-case pattern (one row hammered for the whole window),
//! the probability that a series of `N` ACTs contains `T_RH` consecutive
//! ACTs with no victim refresh — i.e. a successful attack — follows the
//! paper's footnote-2 recurrence with per-victim refresh probability
//! `q = p/2`:
//!
//! ```text
//! P(e_N) = P(e_{N−1}) + 2·q·(1−q)^{T_RH} · (1 − P(e_{N−T_RH−1}))
//! ```
//!
//! (the factor 2 accounts for the two victim rows). "Near-complete
//! protection" requires the *yearly, system-wide* failure probability —
//! 64 banks × ~4.9×10⁸ windows — to stay below 1 %; the minimal `p`
//! satisfying it at `T_RH` = 50K is the paper's 0.00145.
//!
//! ## PRoHIT and MRLoc
//!
//! Both are defeated by the Figure 7 patterns, which depress the refresh
//! probability of specific victims. [`victim_failure_probability`] evaluates
//! the same recurrence with a *per-victim* refresh rate measured from a
//! short simulation of the defense under the attack pattern, giving the
//! per-window bit-flip probability the paper quotes (0.25 % per tREFW for
//! PRoHIT at PARA-0.00145's refresh budget).

/// Windows per year at the paper's DDR4 tREFW = 64 ms — the
/// [`windows_per_year`] instance the DDR4 analyses use.
pub const WINDOWS_PER_YEAR: f64 = 365.25 * 24.0 * 3600.0 / 0.064;

/// Refresh windows per year for a device with refresh window `t_refw`
/// (picoseconds) — the generation-generic form of [`WINDOWS_PER_YEAR`].
/// DDR5/LPDDR devices with 32 ms windows restart the attack game twice as
/// often, doubling the yearly trial count.
pub fn windows_per_year(t_refw: dram_model::Picoseconds) -> f64 {
    let seconds_per_year = 365.25 * 24.0 * 3600.0;
    seconds_per_year / (t_refw as f64 * 1e-12)
}

/// Probability that PARA with refresh probability `p` fails to protect a
/// single bank within one window of `w` ACTs at Row Hammer threshold `t_rh`
/// (the paper's recurrence, exact dynamic program).
pub fn para_window_failure(p: f64, t_rh: u64, w: u64) -> f64 {
    victim_failure_probability(p / 2.0, t_rh, w, 2)
}

/// The generalized recurrence: failure probability within `w` ACTs when each
/// ACT refreshes a given victim with probability `q`, with `victims`
/// simultaneously-attacked victim rows.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn victim_failure_probability(q: f64, t_rh: u64, w: u64, victims: u32) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q must be a probability");
    if w < t_rh {
        return 0.0;
    }
    if q == 0.0 {
        return 1.0; // T_RH unrefreshed ACTs occur deterministically
    }
    let t = t_rh as usize;
    // Hazard: first failure exactly at ACT N — requires the last refresh of a
    // victim at ACT N−T_RH and none in the T_RH ACTs since, union-bounded
    // over the simultaneously attacked victims.
    let no_refresh_run = ((t as f64) * f64::ln_1p(-q)).exp();
    let hazard = f64::from(victims) * q * no_refresh_run;
    // Ring buffer of P values for indices N−T_RH−1 … N−1.
    let mut ring = vec![0.0f64; t + 2];
    // Base: P(e_N) = 0 for N < T_RH; P(e_{T_RH}) = the first T_RH ACTs see no
    // refresh of some victim.
    let mut p_prev = (f64::from(victims) * no_refresh_run).min(1.0);
    if (w as usize) == t {
        return p_prev;
    }
    ring[t % (t + 2)] = p_prev;
    for n in (t + 1)..=(w as usize) {
        let lag = ring[(n - t - 1) % (t + 2)];
        let p_n = (p_prev + hazard * (1.0 - lag)).min(1.0);
        ring[n % (t + 2)] = p_n;
        p_prev = p_n;
    }
    p_prev
}

/// System-level failure probability over one year: `banks` banks, each
/// restarting the game every window. Computed in log space for tiny
/// per-window probabilities.
pub fn yearly_failure(p_window: f64, banks: u32) -> f64 {
    yearly_failure_for_window(p_window, banks, dram_model::DramTiming::ddr4_2400().t_refw)
}

/// [`yearly_failure`] for a device with refresh window `t_refw`: same
/// per-window probability, but the yearly trial count is derived from the
/// device's own window instead of the DDR4 64 ms assumption.
pub fn yearly_failure_for_window(
    p_window: f64,
    banks: u32,
    t_refw: dram_model::Picoseconds,
) -> f64 {
    let trials = f64::from(banks) * windows_per_year(t_refw);
    if p_window <= 0.0 {
        return 0.0;
    }
    if p_window >= 1.0 {
        return 1.0;
    }
    // 1 − (1 − p)^n, computed as −expm1(n · ln1p(−p)) to survive tiny p.
    -(trials * f64::ln_1p(-p_window)).exp_m1()
}

/// Minimal PARA probability `p` such that the yearly system failure stays
/// below `target` (default 1 %) — binary search over the recurrence.
pub fn minimal_para_probability(t_rh: u64, w: u64, banks: u32, target: f64) -> f64 {
    let (mut lo, mut hi) = (1e-5, 0.2);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        let yearly = yearly_failure(para_window_failure(mid, t_rh, w), banks);
        if yearly > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// The paper's Figure 9 PARA probability ladder for reference.
pub fn paper_para_ladder() -> [(u64, f64); 6] {
    [
        (50_000, 0.00145),
        (25_000, 0.00295),
        (12_500, 0.00602),
        (6_250, 0.01224),
        (3_125, 0.02485),
        (1_560, 0.05034),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: u64 = 1_358_404;

    #[test]
    fn windows_per_year_derives_the_ddr4_constant_and_halved_windows() {
        let ddr4 = dram_model::DramTiming::ddr4_2400().t_refw;
        assert!((windows_per_year(ddr4) - WINDOWS_PER_YEAR).abs() < 1e-6);
        // A 32 ms window restarts the game twice as often.
        let ddr5 = dram_model::Generation::Ddr5_4800.timing().t_refw;
        assert!((windows_per_year(ddr5) - 2.0 * WINDOWS_PER_YEAR).abs() < 1e-6);
        // And yearly_failure is exactly its 64 ms instance.
        let p = 1e-12;
        assert_eq!(yearly_failure(p, 64), yearly_failure_for_window(p, 64, ddr4));
        assert!(yearly_failure_for_window(p, 64, ddr5) > yearly_failure(p, 64));
    }

    #[test]
    fn para_0_00145_gives_near_complete_protection() {
        // The paper's headline: p = 0.00145 → <~1 % yearly failure at 50K.
        let pw = para_window_failure(0.00145, 50_000, W);
        let yearly = yearly_failure(pw, 64);
        assert!(yearly < 0.02, "yearly {yearly}");
        assert!(yearly > 1e-4, "yearly {yearly} suspiciously low");
    }

    #[test]
    fn slightly_lower_p_fails_the_target() {
        let pw = para_window_failure(0.0013, 50_000, W);
        let yearly = yearly_failure(pw, 64);
        assert!(yearly > 0.05, "yearly {yearly}");
    }

    #[test]
    fn minimal_p_reproduces_0_00145() {
        let p = minimal_para_probability(50_000, W, 64, 0.01);
        assert!((p - 0.00145).abs() < 0.0001, "minimal p {p}");
    }

    #[test]
    fn minimal_p_ladder_matches_figure_9() {
        // Each halving of T_RH roughly doubles the required p; the paper's
        // ladder values should match within ~10 %.
        for (t_rh, paper_p) in paper_para_ladder() {
            let p = minimal_para_probability(t_rh, W, 64, 0.01);
            let rel = (p - paper_p).abs() / paper_p;
            assert!(rel < 0.12, "T_RH {t_rh}: computed {p}, paper {paper_p}");
        }
    }

    #[test]
    fn failure_monotonically_decreases_with_p() {
        let a = para_window_failure(0.001, 50_000, W);
        let b = para_window_failure(0.002, 50_000, W);
        let c = para_window_failure(0.004, 50_000, W);
        assert!(a > b && b > c, "{a} {b} {c}");
    }

    #[test]
    fn failure_increases_with_window_length() {
        let short = para_window_failure(0.0015, 50_000, W / 2);
        let long = para_window_failure(0.0015, 50_000, W);
        assert!(long > short);
    }

    #[test]
    fn window_shorter_than_threshold_cannot_fail() {
        assert_eq!(para_window_failure(0.001, 50_000, 49_999), 0.0);
    }

    #[test]
    fn zero_probability_always_fails() {
        assert_eq!(para_window_failure(0.0, 50_000, W), 1.0);
    }

    #[test]
    fn yearly_failure_edges() {
        assert_eq!(yearly_failure(0.0, 64), 0.0);
        assert_eq!(yearly_failure(1.0, 64), 1.0);
        // Tiny probabilities scale ~linearly with trials.
        let tiny = yearly_failure(1e-15, 64);
        let expected = 1e-15 * 64.0 * WINDOWS_PER_YEAR;
        assert!((tiny / expected - 1.0).abs() < 0.01, "{tiny} vs {expected}");
    }

    #[test]
    fn victim_rate_below_para_raises_failure() {
        // A starved victim (rate q/5) fails far more often than a PARA victim
        // (rate q) — the quantitative core of the Figure 7(a) argument.
        let q = 0.00145 / 2.0;
        let starved = victim_failure_probability(q / 5.0, 50_000, W, 1);
        let healthy = victim_failure_probability(q, 50_000, W, 1);
        assert!(starved > 1e3 * healthy, "starved {starved}, healthy {healthy}");
    }
}
