//! The energy model (Table V plus the refresh-energy accounting of
//! Figures 8 and 9).
//!
//! Constants come from the paper: the Micron DDR4 power-calculator numbers
//! for device operations and the TSMC-40nm synthesis results for Graphene's
//! own hardware. The paper's Table V lists Graphene's static energy as
//! 4.03×10³ nJ per tREFW while the prose quotes 2.11×10³ nJ (0.373 % of
//! refresh energy); we expose the table value and the derived percentage
//! separately so both can be reported.

use dram_model::timing::{DramTiming, Picoseconds};
use serde::{Deserialize, Serialize};

/// Energy constants and derived overhead computations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy of one ACT+PRE pair (nJ) — also the cost of refreshing one row
    /// on demand. Micron power calculator: 11.49 nJ.
    pub act_pre_nj: f64,
    /// Auto-refresh energy per bank per tREFW (nJ): 1.08×10⁶ nJ.
    pub refresh_per_bank_per_refw_nj: f64,
    /// Graphene table dynamic energy per ACT (nJ): 3.69×10⁻³ nJ.
    pub graphene_dynamic_per_act_nj: f64,
    /// Graphene table static energy per tREFW (nJ): 4.03×10³ nJ (Table V).
    pub graphene_static_per_refw_nj: f64,
    /// The refresh window the per-window constants refer to.
    pub t_refw: Picoseconds,
}

impl EnergyModel {
    /// The paper's Table V constants for DDR4-2400 at tREFW = 64 ms.
    pub fn micro2020() -> Self {
        EnergyModel {
            act_pre_nj: 11.49,
            refresh_per_bank_per_refw_nj: 1.08e6,
            graphene_dynamic_per_act_nj: 3.69e-3,
            graphene_static_per_refw_nj: 4.03e3,
            t_refw: DramTiming::ddr4_2400().t_refw,
        }
    }

    /// [`EnergyModel::micro2020`] re-anchored to another device's refresh
    /// window: the per-window constants (auto-refresh energy, static
    /// tracker energy) are scaled pro rata to the new tREFW, so a 32 ms
    /// DDR5/LPDDR window spends half the per-window refresh energy of the
    /// DDR4 64 ms window, as the shorter window implies. Per-operation
    /// constants (ACT+PRE, dynamic lookup) are device-independent here.
    pub fn for_timing(timing: &DramTiming) -> Self {
        let base = Self::micro2020();
        let scale = timing.t_refw as f64 / base.t_refw as f64;
        EnergyModel {
            refresh_per_bank_per_refw_nj: base.refresh_per_bank_per_refw_nj * scale,
            graphene_static_per_refw_nj: base.graphene_static_per_refw_nj * scale,
            t_refw: timing.t_refw,
            ..base
        }
    }

    /// Graphene's dynamic energy per ACT as a fraction of one ACT+PRE pair —
    /// the paper reports 0.032 %.
    pub fn graphene_dynamic_fraction(&self) -> f64 {
        self.graphene_dynamic_per_act_nj / self.act_pre_nj
    }

    /// Graphene's static energy per tREFW as a fraction of per-bank refresh
    /// energy over the same period.
    pub fn graphene_static_fraction(&self) -> f64 {
        self.graphene_static_per_refw_nj / self.refresh_per_bank_per_refw_nj
    }

    /// Refresh-energy increase of a run: victim-row refreshes cost one
    /// ACT+PRE each, normalized to the auto-refresh energy the involved
    /// banks spent over the run's duration.
    ///
    /// Returns a fraction (0.0034 = 0.34 %).
    pub fn refresh_energy_overhead(
        &self,
        victim_rows_refreshed: u64,
        duration: Picoseconds,
        banks: u32,
    ) -> f64 {
        if duration == 0 || banks == 0 {
            return 0.0;
        }
        let windows = duration as f64 / self.t_refw as f64;
        let baseline = self.refresh_per_bank_per_refw_nj * windows * f64::from(banks);
        victim_rows_refreshed as f64 * self.act_pre_nj / baseline
    }

    /// Energy of one victim-row refresh burst of `rows` rows (nJ).
    pub fn victim_refresh_nj(&self, rows: u64) -> f64 {
        rows as f64 * self.act_pre_nj
    }

    /// Graphene's synthesized CAM density: 2,511 bits at `T_RH` = 50K is
    /// the one tracker whose dynamic and static energies the paper reports,
    /// so it anchors the per-bit scaling used for the arena trackers.
    const CALIBRATION_BITS: f64 = 2_511.0;

    /// First-order dynamic energy of one tracker lookup+update touching
    /// `bits_touched` storage bits (nJ): linear scaling calibrated on
    /// Graphene's synthesis point (3.69×10⁻³ nJ over 2,511 bits). A CMS
    /// touches only `depth` counters per ACT, not its whole table — pass
    /// the touched bits, not the total.
    pub fn tracker_dynamic_per_act_nj(&self, bits_touched: u64) -> f64 {
        self.graphene_dynamic_per_act_nj * bits_touched as f64 / Self::CALIBRATION_BITS
    }

    /// First-order static (leakage) energy per tREFW of a tracker holding
    /// `total_bits` of storage (nJ), calibrated on the same synthesis point
    /// (4.03×10³ nJ over 2,511 bits). SRAM leaks less per bit than CAM, so
    /// for sketch-heavy trackers this over- rather than under-estimates.
    pub fn tracker_static_per_refw_nj(&self, total_bits: u64) -> f64 {
        self.graphene_static_per_refw_nj * total_bits as f64 / Self::CALIBRATION_BITS
    }

    /// Throttling energy is *negative* traffic: a delayed ACT is an ACT
    /// that happens later, not an extra one, so BlockHammer's only energy
    /// cost is its filters. This helper folds a run's tracker energy into a
    /// fraction of the banks' auto-refresh energy, the same normalization
    /// as [`refresh_energy_overhead`](Self::refresh_energy_overhead).
    pub fn tracker_energy_overhead(
        &self,
        bits_touched_per_act: u64,
        total_bits: u64,
        activations: u64,
        duration: Picoseconds,
        banks: u32,
    ) -> f64 {
        if duration == 0 || banks == 0 {
            return 0.0;
        }
        let windows = duration as f64 / self.t_refw as f64;
        let baseline = self.refresh_per_bank_per_refw_nj * windows * f64::from(banks);
        let dynamic = self.tracker_dynamic_per_act_nj(bits_touched_per_act) * activations as f64;
        let static_ = self.tracker_static_per_refw_nj(total_bits) * windows * f64::from(banks);
        (dynamic + static_) / baseline
    }

    /// Constant refresh-energy overhead of PARA at probability `p`: PARA
    /// issues `p` extra row refreshes per ACT regardless of the pattern, so
    /// at full ACT rate the overhead is `p · W · E_actpre / E_refresh` per
    /// window — the paper's "2.1 % more refresh energy constantly" at
    /// p = 0.00145.
    pub fn para_constant_overhead(&self, p: f64, acts_per_window: u64) -> f64 {
        p * acts_per_window as f64 * self.act_pre_nj / self.refresh_per_bank_per_refw_nj
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::micro2020()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_timing_scales_per_window_constants_to_the_device_window() {
        let d4 = EnergyModel::micro2020();
        let d5 = EnergyModel::for_timing(&dram_model::Generation::Ddr5_4800.timing());
        assert_eq!(d5.t_refw, d4.t_refw / 2);
        let half = d4.refresh_per_bank_per_refw_nj / 2.0;
        assert!((d5.refresh_per_bank_per_refw_nj - half).abs() < 1e-6);
        // The refresh-energy *rate* is window-invariant, so equal-duration
        // runs with equal victim counts score the same overhead fraction.
        let a = d4.refresh_energy_overhead(100, d4.t_refw, 1);
        let b = d5.refresh_energy_overhead(100, d4.t_refw, 1);
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        // And the DDR4 instance is the paper's model, unchanged.
        assert_eq!(EnergyModel::for_timing(&DramTiming::ddr4_2400()), d4);
    }

    #[test]
    fn table_v_dynamic_fraction() {
        // Paper: 0.032 % of one ACT+PRE pair.
        let f = EnergyModel::micro2020().graphene_dynamic_fraction();
        assert!((f - 0.00032).abs() < 0.00002, "fraction {f}");
    }

    #[test]
    fn table_v_static_fraction() {
        // Table V's 4.03e3 nJ / 1.08e6 nJ = 0.373 % — matching the prose's
        // percentage (the prose's 2.11e3 nJ figure is the inconsistent one).
        let f = EnergyModel::micro2020().graphene_static_fraction();
        assert!((f - 0.00373).abs() < 0.0002, "fraction {f}");
    }

    #[test]
    fn graphene_worst_case_is_0_34_percent() {
        // §V-B2: 162 NRRs (2 windows × 81 crossings) × 2 rows over one tREFW
        // on one bank → 0.34 % more refresh energy.
        let m = EnergyModel::micro2020();
        let overhead = m.refresh_energy_overhead(324, m.t_refw, 1);
        assert!((overhead - 0.0034).abs() < 0.0002, "overhead {overhead}");
    }

    #[test]
    fn para_constant_overhead_is_2_1_percent() {
        // §V-B2: PARA-0.00145 consumes 2.1 % more refresh energy constantly.
        let m = EnergyModel::micro2020();
        let o = m.para_constant_overhead(0.00145, 1_358_404);
        assert!((o - 0.021).abs() < 0.002, "overhead {o}");
    }

    #[test]
    fn overhead_scales_with_duration_and_banks() {
        let m = EnergyModel::micro2020();
        let one = m.refresh_energy_overhead(100, m.t_refw, 1);
        let two_banks = m.refresh_energy_overhead(100, m.t_refw, 2);
        let two_windows = m.refresh_energy_overhead(100, 2 * m.t_refw, 1);
        assert!((one / two_banks - 2.0).abs() < 1e-9);
        assert!((one / two_windows - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs_are_zero() {
        let m = EnergyModel::micro2020();
        assert_eq!(m.refresh_energy_overhead(10, 0, 1), 0.0);
        assert_eq!(m.refresh_energy_overhead(10, 100, 0), 0.0);
        assert_eq!(m.tracker_energy_overhead(100, 1000, 10, 0, 1), 0.0);
        assert_eq!(m.tracker_energy_overhead(100, 1000, 10, 100, 0), 0.0);
    }

    #[test]
    fn tracker_scaling_recovers_graphene_at_calibration_point() {
        let m = EnergyModel::micro2020();
        let d = m.tracker_dynamic_per_act_nj(2_511);
        assert!((d - m.graphene_dynamic_per_act_nj).abs() < 1e-12);
        let s = m.tracker_static_per_refw_nj(2_511);
        assert!((s - m.graphene_static_per_refw_nj).abs() < 1e-9);
    }

    #[test]
    fn tracker_overhead_scales_linearly_in_bits() {
        let m = EnergyModel::micro2020();
        let small = m.tracker_energy_overhead(0, 1_000, 0, m.t_refw, 1);
        let big = m.tracker_energy_overhead(0, 2_000, 0, m.t_refw, 1);
        assert!((big / small - 2.0).abs() < 1e-9, "static term linear in bits");
        // A sketch that touches 4 counters of 16 bits per ACT costs far
        // less dynamic energy than Graphene's full-table CAM search.
        assert!(m.tracker_dynamic_per_act_nj(64) < m.graphene_dynamic_per_act_nj / 10.0);
    }
}
