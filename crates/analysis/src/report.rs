//! Fixed-width table formatting for the experiment binaries.
//!
//! Every `exp-*` runner prints "paper value vs measured value" tables; this
//! tiny formatter keeps them aligned without pulling in a table crate.

/// A column-aligned text table.
///
/// # Example
///
/// ```
/// use rh_analysis::TablePrinter;
///
/// let mut t = TablePrinter::new(vec!["scheme", "bits"]);
/// t.row(vec!["Graphene".into(), "2511".into()]);
/// let out = t.render();
/// assert!(out.contains("Graphene"));
/// ```
#[derive(Debug, Clone)]
pub struct TablePrinter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TablePrinter {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TablePrinter { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row; missing cells render empty, extra cells are kept.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate().take(cols) {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_owned()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a fraction as a percentage with two decimals (`0.0034` → `0.34%`).
pub fn pct(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

/// Formats a bit count with thousands separators (`2511` → `2,511`).
pub fn thousands(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TablePrinter::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a "));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = TablePrinter::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec![]);
        assert!(t.render().contains('2'));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.0034), "0.34%");
        assert_eq!(pct(0.5), "50.00%");
    }

    #[test]
    fn thousands_formats() {
        assert_eq!(thousands(2_511), "2,511");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1_358_404), "1,358,404");
    }
}
