//! Telemetry must be observation-only: instrumented sweeps produce the same
//! reports as uninstrumented ones, and recording sweeps actually contain the
//! trajectory series the report tooling consumes.

use rh_sim::{
    run_matrix_telemetry, try_run_matrix, DefenseSpec, SimConfig, TelemetrySpec, WorkloadSpec,
};

fn defenses() -> Vec<DefenseSpec> {
    vec![
        DefenseSpec::Graphene { t_rh: 5_000, k: 2 },
        DefenseSpec::Para { p: 0.001 },
        DefenseSpec::Twice { t_rh: 5_000 },
    ]
}

fn workloads() -> Vec<WorkloadSpec> {
    vec![WorkloadSpec::S3, WorkloadSpec::S1 { n: 10 }]
}

#[test]
fn noop_instrumented_matrix_is_bit_identical() {
    let plain = SimConfig::attack_bank(5_000, 8_000);
    let noop = SimConfig { telemetry: Some(TelemetrySpec::noop()), ..plain.clone() };
    let baseline = try_run_matrix(&plain, &defenses(), &workloads()).unwrap();
    let instrumented = run_matrix_telemetry(&noop, &defenses(), &workloads());
    assert_eq!(instrumented.reports, baseline, "NoopSink wiring must not perturb any run");
    assert!(instrumented.cells.is_empty(), "noop spec records nothing");
    assert!(instrumented.sweep.series.is_empty(), "noop spec skips sweep progress too");
}

#[test]
fn recording_matrix_leaves_stats_unchanged() {
    let plain = SimConfig::attack_bank(5_000, 8_000);
    let recording = SimConfig { telemetry: Some(TelemetrySpec::every_acts(500)), ..plain.clone() };
    let baseline = try_run_matrix(&plain, &defenses(), &workloads()).unwrap();
    let recorded = run_matrix_telemetry(&recording, &defenses(), &workloads());
    assert_eq!(recorded.reports, baseline, "recording must not perturb timing or counters");
}

#[test]
fn recording_matrix_captures_per_defense_series() {
    let cfg = SimConfig {
        telemetry: Some(TelemetrySpec::every_acts(500)),
        ..SimConfig::attack_bank(5_000, 8_000)
    };
    let defenses = defenses();
    let m = run_matrix_telemetry(&cfg, &defenses, &workloads());
    assert_eq!(m.cells.len(), m.reports.len(), "every cell snapshotted");

    // Graphene's scheme-specific trajectory is present per bank.
    let graphene = m.cells.iter().find(|c| c.defense == "Graphene" && c.workload == "S3").unwrap();
    for metric in ["graphene.spillover", "graphene.occupancy", "graphene.window_nrrs"] {
        let s = graphene.snapshot.series_for(metric, 0).unwrap_or_else(|| {
            panic!("missing {metric}: have {:?}", graphene.snapshot.series_metrics())
        });
        assert!(!s.samples.is_empty());
    }

    // All three defenses report the uniform wrapper metrics.
    for cell in m.cells.iter().filter(|c| c.workload == "S3") {
        let acts = cell.snapshot.series_for("defense.acts", 0).expect("uniform acts series");
        assert!(acts.samples.last().unwrap().value > 0.0, "{}", cell.defense);
        assert!(cell.snapshot.series_for("mc.acts", 0).is_some(), "controller tap series");
    }

    // Sweep progress reached the full job count: 2 baselines + 6 cells.
    let progress = m.sweep.series_for("sweep.jobs_done", 0).expect("sweep progress series");
    assert_eq!(progress.samples.last().unwrap().value, 8.0);

    // The merged snapshot survives a JSONL round trip with prefixed names.
    let merged = m.merged_snapshot("test-sweep");
    let text = merged.to_jsonl();
    let parsed = telemetry::Snapshot::parse_jsonl(&text).unwrap();
    assert_eq!(parsed, merged);
    assert!(parsed.series_for("S3/Graphene/graphene.spillover", 0).is_some());
}

#[test]
fn arena_trackers_report_their_scheme_series() {
    let cfg = SimConfig {
        telemetry: Some(TelemetrySpec::every_acts(500)),
        ..SimConfig::attack_bank(5_000, 12_000)
    };
    let defenses = vec![
        DefenseSpec::Comet { t_rh: 5_000 },
        DefenseSpec::Abacus { t_rh: 5_000, k: 2 },
        DefenseSpec::BlockHammer { t_rh: 5_000 },
    ];
    let m = run_matrix_telemetry(&cfg, &defenses, &[WorkloadSpec::S3]);

    // Tracker-specific trajectories: CMS occupancy, shared-table spillover,
    // and throttle accounting — plus the uniform wrapper series everywhere.
    let expect = [
        ("CoMeT", "comet.cms_occupancy"),
        ("ABACuS", "abacus.spillover"),
        ("BlockHammer", "blockhammer.throttled"),
    ];
    for (defense, metric) in expect {
        let cell = m.cells.iter().find(|c| c.defense == defense).unwrap();
        let s = cell.snapshot.series_for(metric, 0).unwrap_or_else(|| {
            panic!("missing {metric}: have {:?}", cell.snapshot.series_metrics())
        });
        assert!(!s.samples.is_empty(), "{metric} recorded no samples");
        let acts = cell.snapshot.series_for("defense.acts", 0).expect("uniform acts series");
        assert!(acts.samples.last().unwrap().value > 0.0, "{defense}");
    }

    // S3 hammers one row flat out, so BlockHammer's throttle series must
    // actually move.
    let bh = m.cells.iter().find(|c| c.defense == "BlockHammer").unwrap();
    let throttled = bh.snapshot.series_for("blockhammer.throttled", 0).unwrap();
    assert!(throttled.samples.last().unwrap().value > 0.0, "hot row never throttled");
}
