//! Property test pinning the central claim of the sharded system path:
//! channel-sharded batched execution of an interleaved trace produces
//! per-channel [`RunStats`] **bit-identical** to running each channel's
//! sub-trace through the legacy single-shard controller — for every
//! mapping policy, with and without recorded telemetry.
//!
//! The legacy comparison controller for channel `c` is seeded with the
//! *global* bank indices (`c × banks_per_channel + local`), exactly as the
//! system builder seeds its shards, so RNG-based defenses (PARA here) face
//! identical randomness. Its sub-trace carries delta gaps reconstructed
//! from the full trace's absolute arrival times, so every access arrives
//! at the same picosecond on both paths.

use dram_model::fault::DisturbanceModel;
use dram_model::geometry::DramGeometry;
use dram_model::RowId;
use memctrl::{MappingPolicy, McBuilder, McConfig, RunStats, TelemetryTap};
use proptest::prelude::*;
use rh_sim::DefenseSpec;
use telemetry::{Cadence, Recorder, SharedSink};
use workloads::{Access, Trace};

fn small_config() -> McConfig {
    let mut cfg = McConfig::micro2020();
    cfg.geometry =
        DramGeometry { channels: 4, ranks_per_channel: 1, banks_per_rank: 2, rows_per_bank: 512 };
    cfg.fault_model = Some(DisturbanceModel { t_rh: 500, ..DisturbanceModel::ddr4_50k() });
    cfg
}

/// Splits `trace` by where `policy` routes each access, rewriting banks to
/// shard-local indices and gaps to per-channel deltas of the global
/// arrival clock.
fn split_by_channel(
    trace: &[Access],
    policy: MappingPolicy,
    geometry: &DramGeometry,
) -> Vec<Vec<Access>> {
    let channels = geometry.channels as usize;
    let mut subs: Vec<Vec<Access>> = vec![Vec::new(); channels];
    let mut last_at = vec![0u64; channels];
    let mut clock = 0u64;
    for a in trace {
        clock += a.gap;
        let addr = policy.route(geometry, a.bank, a.row).expect("trace stays in geometry");
        let c = addr.coord.channel as usize;
        subs[c].push(Access {
            bank: MappingPolicy::shard_bank_index(geometry, addr) as u16,
            row: addr.row,
            gap: clock - last_at[c],
            stream: a.stream,
        });
        last_at[c] = clock;
    }
    subs
}

fn run_equivalence(trace: &[Access], policy: MappingPolicy, recorded: bool) {
    let cfg = small_config();
    let geometry = cfg.geometry;
    let rows = geometry.rows_per_bank;
    let per_channel = geometry.banks_per_channel() as usize;
    let defense = DefenseSpec::Para { p: 0.02 };

    // Sharded system path: batched ingestion through the routing front end.
    let shared = recorded.then(|| SharedSink::with_recorder(Recorder::with_ring_capacity(64)));
    let mut builder = McBuilder::new(cfg.clone()).mapping(policy).defenses(&defense);
    if let Some(s) = &shared {
        builder = builder.telemetry_per_shard(|channel, offset| {
            Some(TelemetryTap::keyed(
                Box::new(s.clone()),
                Cadence::EveryActs(50),
                offset,
                Some(channel),
            ))
        });
    }
    let mut system = builder.build_system();
    system.run_batched(trace);
    let system_stats = system.finish();

    // Legacy path: each channel's sub-trace through a single-shard
    // controller over the channel geometry.
    let shard_cfg = McConfig { geometry: geometry.channel_geometry(), ..cfg };
    for (c, sub) in split_by_channel(trace, policy, &geometry).into_iter().enumerate() {
        let got = &system_stats.per_channel[c];
        if sub.is_empty() {
            assert_eq!(got, &RunStats::default(), "idle channel {c} accumulated state");
            continue;
        }
        let legacy_shared =
            recorded.then(|| SharedSink::with_recorder(Recorder::with_ring_capacity(64)));
        let mut builder = McBuilder::new(shard_cfg.clone())
            .defenses_with(|b| defense.build(c * per_channel + b, rows));
        if let Some(s) = &legacy_shared {
            builder =
                builder.telemetry(TelemetryTap::new(Box::new(s.clone()), Cadence::EveryActs(50)));
        }
        let mut mc = builder.build();
        let n = sub.len() as u64;
        let legacy = mc.run(&mut Trace::from_accesses("sub", sub).replay(), n);
        assert_eq!(
            got, &legacy,
            "channel {c} diverged from the legacy path under {policy:?} (recorded: {recorded})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sharded_matches_legacy_per_channel(
        raw in prop::collection::vec((0u16..8, 0u32..512, 0u64..200_000, 0u16..4), 40..250),
        policy_idx in 0usize..3,
        recorded in any::<bool>(),
    ) {
        let policy = [
            MappingPolicy::RowInterleaved,
            MappingPolicy::BankInterleaved,
            MappingPolicy::ChannelXor,
        ][policy_idx];
        let trace: Vec<Access> = raw
            .into_iter()
            .map(|(bank, row, gap, stream)| Access { bank, row: RowId(row), gap, stream })
            .collect();
        run_equivalence(&trace, policy, recorded);
    }
}

/// Deterministic anchor alongside the property: a dense gap-free hammer
/// that keeps every channel saturated, under both telemetry modes.
#[test]
fn dense_hammer_equivalence_all_policies() {
    let trace: Vec<Access> = (0..6_000u32)
        .map(|i| Access {
            bank: (i % 8) as u16,
            row: RowId((i * 7) % 512),
            gap: if i % 3 == 0 { 0 } else { 45_000 },
            stream: (i % 4) as u16,
        })
        .collect();
    for policy in
        [MappingPolicy::RowInterleaved, MappingPolicy::BankInterleaved, MappingPolicy::ChannelXor]
    {
        run_equivalence(&trace, policy, false);
        run_equivalence(&trace, policy, true);
    }
}
