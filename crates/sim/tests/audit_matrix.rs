//! The audit layer over the full scenario catalog: every shipped defense
//! passes the run-wide invariant audit on every workload, auditing never
//! changes results, and a poisoned cell is isolated and named.

use rh_sim::{run_matrix, try_run_matrix, DefenseSpec, SimConfig, WorkloadSpec};

fn all_defenses(t_rh: u64) -> Vec<DefenseSpec> {
    vec![
        DefenseSpec::None,
        DefenseSpec::Graphene { t_rh, k: 2 },
        DefenseSpec::Para { p: 0.001 },
        DefenseSpec::Prohit,
        DefenseSpec::Mrloc { p: 0.001 },
        DefenseSpec::Cbt { t_rh },
        DefenseSpec::Cra { t_rh },
        DefenseSpec::Twice { t_rh },
        DefenseSpec::Ideal { t_rh },
    ]
}

#[test]
fn full_grid_is_green_under_audit() {
    // attack_bank turns the audit on by default: every cell below runs with
    // audited defenses, end-of-run stats invariants, and the ground-truth
    // oracle cross-check.
    let cfg = SimConfig::attack_bank(5_000, 4_000);
    assert!(cfg.audit, "attack_bank must audit by default");
    let defenses = all_defenses(5_000);
    let mut workloads = WorkloadSpec::adversarial_set();
    workloads.push(WorkloadSpec::MixHigh);
    let reports = run_matrix(&cfg, &defenses, &workloads);
    assert_eq!(reports.len(), defenses.len() * workloads.len());
}

#[test]
fn audit_does_not_change_results() {
    // The audit is observation-only: the same seed must yield bit-identical
    // run statistics with the layer on or off.
    let audited = SimConfig::attack_bank(5_000, 6_000);
    let plain = SimConfig { audit: false, ..audited.clone() };
    let defenses = [DefenseSpec::Graphene { t_rh: 5_000, k: 2 }, DefenseSpec::Para { p: 0.001 }];
    let workloads = [WorkloadSpec::S3, WorkloadSpec::S1 { n: 10 }];
    let with_audit = run_matrix(&audited, &defenses, &workloads);
    let without = run_matrix(&plain, &defenses, &workloads);
    assert_eq!(with_audit.len(), without.len());
    for (a, b) in with_audit.iter().zip(&without) {
        assert_eq!(a.stats, b.stats, "({}, {})", a.workload, a.defense);
        assert_eq!(a.slowdown, b.slowdown);
        assert_eq!(a.energy_overhead, b.energy_overhead);
        assert_eq!(a.weighted_speedup_loss, b.weighted_speedup_loss);
    }
}

#[test]
fn poisoned_cell_is_named_and_does_not_sink_the_grid() {
    // Graphene{t_rh: 1} has no valid derivation and panics during build;
    // the matrix must survive, name the pair, and keep the healthy cells.
    let cfg = SimConfig::attack_bank(5_000, 2_000);
    let defenses = [
        DefenseSpec::Para { p: 0.001 },
        DefenseSpec::Graphene { t_rh: 1, k: 2 },
        DefenseSpec::Twice { t_rh: 5_000 },
    ];
    let workloads = [WorkloadSpec::S3];
    let err = try_run_matrix(&cfg, &defenses, &workloads)
        .expect_err("poisoned defense must surface as an error");
    let msg = err.to_string();
    assert!(msg.contains("(S3, Graphene)"), "error must name the failing pair: {msg}");
    assert!(!msg.contains("PARA"), "healthy cells must not be blamed: {msg}");
    assert_eq!(err.failures.len(), 1);
}
