//! Corruption-safety of the integrity-framed fleet formats.
//!
//! The contract under test (DESIGN.md §6l): feed the fleet runner a
//! recorded trace or checkpoint with **arbitrary damage** — any byte
//! flipped, or the file truncated at any point — and the run either
//! produces statistics bit-identical to the fault-free run (the damage
//! struck bytes that were never consumed) or fails with a typed
//! [`FleetError`]. It never panics and never completes with silently
//! different numbers. CRC32C frames on every trace chunk, the trace
//! header, and every checkpoint line are what make the property hold; this
//! proptest is what keeps them honest.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use dram_model::geometry::DramGeometry;
use memctrl::SystemStats;
use proptest::prelude::*;
use rh_sim::{
    read_fleet_checkpoint, run_fleet, synth_fleet_trace, DefenseSpec, FleetConfig, FleetError,
};
use workloads::real_fs;

const TRACE_LEN: u64 = 8_000;

fn tmp(name: &str) -> PathBuf {
    static UNIQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("graphene_repro_chaos_it");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{}-{}", std::process::id(), UNIQ.fetch_add(1, Ordering::Relaxed), name))
}

fn config() -> FleetConfig {
    let mut cfg = FleetConfig::micro2020(DefenseSpec::Graphene { t_rh: 2_000, k: 2 });
    cfg.system.geometry =
        DramGeometry { channels: 4, ranks_per_channel: 1, banks_per_rank: 4, rows_per_bank: 4_096 };
    cfg.threads = 2;
    cfg.batch = 32;
    cfg.segment = TRACE_LEN;
    cfg
}

/// The clean recorded trace, synthesized once.
fn clean_trace_bytes() -> &'static Vec<u8> {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let path = tmp("clean.rht4");
        synth_fleet_trace(&path, "chaos-prop", &config().system.geometry, 32, TRACE_LEN, 13)
            .unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        bytes
    })
}

/// The fault-free run's statistics — the digest any corrupted run must
/// either reproduce exactly or refuse to produce at all.
fn reference() -> &'static SystemStats {
    static REF: OnceLock<SystemStats> = OnceLock::new();
    REF.get_or_init(|| {
        let path = tmp("ref.rht4");
        std::fs::write(&path, clean_trace_bytes()).unwrap();
        let report = run_fleet(&config(), &path, |_| {}).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(report.accesses_done, TRACE_LEN);
        report.stats
    })
}

/// A clean mid-run checkpoint, written once.
fn clean_ckpt_bytes() -> &'static Vec<u8> {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let trace = tmp("ckpt-src.rht4");
        std::fs::write(&trace, clean_trace_bytes()).unwrap();
        let ckpt = tmp("clean.ckpt");
        let mut cfg = config();
        cfg.segment = 3_000;
        cfg.stop_after = Some(3_000);
        cfg.checkpoint = Some(ckpt.clone());
        run_fleet(&cfg, &trace, |_| {}).unwrap();
        let bytes = std::fs::read(&ckpt).unwrap();
        std::fs::remove_file(&trace).ok();
        std::fs::remove_file(&ckpt).ok();
        bytes
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any single bit flip anywhere in the trace file: the replay either
    /// matches the fault-free digest exactly or fails typed. A flip in the
    /// header is caught at open; a flip in a chunk is caught by its CRC
    /// frame before any record of that chunk is replayed.
    #[test]
    fn trace_bit_rot_never_silently_diverges(pos in any::<u64>(), bit in 0u8..8) {
        let clean = clean_trace_bytes();
        let reference = reference();
        let mut rotted = clean.clone();
        let at = (pos % rotted.len() as u64) as usize;
        rotted[at] ^= 1 << bit;
        let path = tmp("rot.rht4");
        std::fs::write(&path, &rotted).unwrap();
        match run_fleet(&config(), &path, |_| {}) {
            Ok(report) => prop_assert_eq!(
                &report.stats, reference,
                "flip at byte {} bit {} replayed Ok with different stats", at, bit
            ),
            Err(e) => {
                // Typed, and it renders a diagnostic.
                prop_assert!(!e.to_string().is_empty());
                prop_assert!(
                    matches!(e, FleetError::Trace { .. } | FleetError::TraceStream { .. }),
                    "unexpected error class for trace damage: {:?}", e
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// Truncation at any point (a torn write that lost the tail): same
    /// contract. Cutting inside the final chunk must not replay a partial
    /// chunk as if it were whole.
    #[test]
    fn trace_truncation_never_silently_diverges(cut in any::<u64>()) {
        let clean = clean_trace_bytes();
        let reference = reference();
        let keep = (cut % clean.len() as u64) as usize;
        let path = tmp("cut.rht4");
        std::fs::write(&path, &clean[..keep]).unwrap();
        match run_fleet(&config(), &path, |_| {}) {
            Ok(report) => prop_assert_eq!(&report.stats, reference),
            Err(e) => prop_assert!(
                matches!(e, FleetError::Trace { .. } | FleetError::TraceStream { .. }),
                "unexpected error class for truncation at {}: {:?}", keep, e
            ),
        }
        std::fs::remove_file(&path).ok();
    }

    /// Any single bit flip anywhere in a checkpoint file is caught by its
    /// integrity footer (or, for non-UTF-8 damage, by the read itself) —
    /// reading it back is always a typed error, and a resume through it
    /// refuses to run rather than restoring half-plausible state.
    #[test]
    fn checkpoint_bit_rot_is_always_detected(pos in any::<u64>(), bit in 0u8..8) {
        let clean = clean_ckpt_bytes();
        let mut rotted = clean.clone();
        let at = (pos % rotted.len() as u64) as usize;
        rotted[at] ^= 1 << bit;
        let path = tmp("rot.ckpt");
        std::fs::write(&path, &rotted).unwrap();
        let err = read_fleet_checkpoint(real_fs().as_ref(), &path);
        prop_assert!(err.is_err(), "flip at byte {} bit {} read back Ok", at, bit);
        std::fs::remove_file(&path).ok();
    }

    /// Truncated checkpoints (torn writes) are rejected the same way.
    #[test]
    fn checkpoint_truncation_is_always_detected(cut in any::<u64>()) {
        let clean = clean_ckpt_bytes();
        let keep = (cut % clean.len() as u64) as usize;
        let path = tmp("cut.ckpt");
        std::fs::write(&path, &clean[..keep]).unwrap();
        let err = read_fleet_checkpoint(real_fs().as_ref(), &path);
        prop_assert!(err.is_err(), "truncation to {} bytes read back Ok", keep);
        std::fs::remove_file(&path).ok();
    }
}
