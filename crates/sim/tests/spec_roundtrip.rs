//! Property test: every defense spec — bare or generation-qualified —
//! round-trips through its canonical spec string, and the parser's typed
//! errors never panic on junk.

use dram_model::Generation;
use proptest::prelude::*;
use rh_sim::{DefenseSpec, GenSpec};

/// One spec of the full lineup, driven by plain generator inputs.
fn lineup_spec(idx: usize, t_rh: u64, k: u32, p: f64) -> DefenseSpec {
    match idx {
        0 => DefenseSpec::None,
        1 => DefenseSpec::Graphene { t_rh, k },
        2 => DefenseSpec::HardenedGraphene { t_rh, k },
        3 => DefenseSpec::Para { p },
        4 => DefenseSpec::Prohit,
        5 => DefenseSpec::Mrloc { p },
        6 => DefenseSpec::Cbt { t_rh },
        7 => DefenseSpec::Cra { t_rh },
        8 => DefenseSpec::Twice { t_rh },
        9 => DefenseSpec::Ideal { t_rh },
        10 => DefenseSpec::Comet { t_rh },
        11 => DefenseSpec::Abacus { t_rh, k },
        _ => DefenseSpec::BlockHammer { t_rh },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// spec → string → spec is the identity, for every defense shape and
    /// parameter draw.
    #[test]
    fn defense_specs_round_trip(
        idx in 0usize..13,
        t_rh in 1u64..10_000_000,
        k in 1u32..64,
        p_millionths in 1u64..1_000_000,
    ) {
        let spec = lineup_spec(idx, t_rh, k, p_millionths as f64 / 1e6);
        let text = spec.spec_string();
        let back = DefenseSpec::parse(&text)
            .unwrap_or_else(|e| panic!("`{text}` failed to re-parse: {e}"));
        prop_assert_eq!(back, spec, "{}", text);
    }

    /// The generation-qualified notation round-trips too, across every
    /// generation — and DDR4 strings stay bare (the legacy notation).
    #[test]
    fn generation_qualified_specs_round_trip(
        gen_idx in 0usize..4,
        idx in 0usize..13,
        t_rh in 1u64..10_000_000,
        k in 1u32..64,
        p_millionths in 1u64..1_000_000,
    ) {
        let generation = Generation::ALL[gen_idx];
        let spec = GenSpec::new(generation, lineup_spec(idx, t_rh, k, p_millionths as f64 / 1e6));
        let text = spec.spec_string();
        let back = GenSpec::parse(&text)
            .unwrap_or_else(|e| panic!("`{text}` failed to re-parse: {e}"));
        prop_assert_eq!(back, spec, "{}", text);
        prop_assert_eq!(
            text.contains('/'),
            generation != Generation::Ddr4_2400,
            "only non-DDR4 strings carry a generation prefix: {}", text
        );
    }

    /// The parser rejects junk with a typed error instead of panicking,
    /// and the error always names a field.
    #[test]
    fn junk_never_panics_the_parser(chars in prop::collection::vec(0usize..16, 0..24)) {
        const ALPHABET: [char; 16] =
            ['a', 'b', 'g', 'r', 'p', 'h', 'e', 'n', '0', '5', '9', '@', ',', '/', '=', '.'];
        let s: String = chars.iter().map(|&i| ALPHABET[i]).collect();
        if let Err(e) = GenSpec::parse(&s) {
            prop_assert!(
                ["defense", "generation", "args", "t_rh", "k", "p"].contains(&e.field),
                "`{}` -> unexpected field {}", s, e.field
            );
            prop_assert!(!e.to_string().is_empty());
        }
    }
}
