//! Checkpoint/resume bit-identity of the streaming fleet runner.
//!
//! The contract under test: killing a fleet replay at an arbitrary point
//! and resuming it from its last `fleetckpt.v1` checkpoint produces final
//! [`SystemStats`] **bit-identical** to an uninterrupted run of the same
//! trace — at every worker count, segment size, and kill point. The trace
//! is pre-synthesized (no runtime randomness to replay), every layer's
//! checkpoint captures exact dynamic state, and segment boundaries quiesce
//! the SPSC pipeline, so identity holds by construction; this proptest is
//! what keeps refactors honest about it.
//!
//! Runs audited: every shard's defense is wrapped in the invariant shim, so
//! the checkpoint also has to carry the audit's shadow accounting across
//! the kill — an audited resume that lost it would panic mid-continuation.
//!
//! The defense dimension spans the tracker arena: Graphene (exact CAM),
//! CoMeT (sketch + recent-aggressor table), ABACuS (one table shared by a
//! shard's banks — the restore has to rebuild shared-core state coherently
//! across its per-bank facades), and BlockHammer (counting-Bloom filters
//! plus the throttle feedback path, whose pending hold-until deadlines ride
//! the controller checkpoint).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use dram_model::geometry::DramGeometry;
use memctrl::SystemStats;
use proptest::prelude::*;
use rh_sim::{run_fleet, synth_fleet_trace, DefenseSpec, FleetConfig};

const TRACE_LEN: u64 = 24_000;

fn tmp(name: &str) -> PathBuf {
    static UNIQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("graphene_repro_fleet_it");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{}-{}", std::process::id(), UNIQ.fetch_add(1, Ordering::Relaxed), name))
}

/// The arena lineup under checkpoint test, indexed by the proptest's
/// defense dimension.
const DEFENSES: [DefenseSpec; 4] = [
    DefenseSpec::Graphene { t_rh: 2_000, k: 2 },
    DefenseSpec::Comet { t_rh: 2_000 },
    DefenseSpec::Abacus { t_rh: 2_000, k: 2 },
    DefenseSpec::BlockHammer { t_rh: 2_000 },
];

fn config(didx: usize) -> FleetConfig {
    let mut cfg = FleetConfig::micro2020(DEFENSES[didx]);
    cfg.system.geometry =
        DramGeometry { channels: 4, ranks_per_channel: 1, banks_per_rank: 4, rows_per_bank: 4_096 };
    cfg.audit = true;
    cfg.batch = 64;
    cfg
}

/// The shared fleet trace, synthesized once for the common geometry.
fn trace() -> &'static PathBuf {
    static TRACE: OnceLock<PathBuf> = OnceLock::new();
    TRACE.get_or_init(|| {
        let path = tmp("shared.rht3");
        synth_fleet_trace(&path, "fleet-prop", &config(0).system.geometry, 64, TRACE_LEN, 11)
            .unwrap();
        path
    })
}

/// The uninterrupted reference run of the shared trace under defense
/// `didx`, computed once per defense.
fn reference(didx: usize) -> &'static SystemStats {
    static REFERENCES: [OnceLock<SystemStats>; 4] =
        [OnceLock::new(), OnceLock::new(), OnceLock::new(), OnceLock::new()];
    REFERENCES[didx].get_or_init(|| {
        let mut cfg = config(didx);
        cfg.threads = 1;
        cfg.segment = TRACE_LEN;
        let report = run_fleet(&cfg, trace(), |_| {}).unwrap();
        assert_eq!(report.accesses_done, TRACE_LEN);
        report.stats
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn kill_resume_is_bit_identical_across_workers(
        segment in 1_500u64..7_000,
        kill in 500u64..23_500,
        widx in 0usize..3,
        didx in 0usize..4,
    ) {
        let trace = trace();
        let reference = reference(didx);
        let threads = [1usize, 2, 4][widx];
        let ckpt = tmp("case.ckpt");
        let mut cfg = config(didx);
        cfg.threads = threads;
        cfg.segment = segment;
        cfg.checkpoint = Some(ckpt.clone());

        // Phase 1: run until the kill point (rounded up to a segment
        // boundary by the runner) and die there.
        let mut killed = cfg.clone();
        killed.stop_after = Some(kill);
        let first = run_fleet(&killed, trace, |_| {}).unwrap();
        prop_assert!(first.accesses_done >= kill.min(TRACE_LEN));

        // Phase 2: a fresh invocation resumes from the checkpoint file.
        let second = run_fleet(&cfg, trace, |_| {}).unwrap();
        if first.accesses_done < TRACE_LEN {
            prop_assert_eq!(second.resumed_from, Some(first.accesses_done));
        }
        prop_assert_eq!(second.accesses_done, TRACE_LEN);
        prop_assert_eq!(&second.stats, reference);
        std::fs::remove_file(&ckpt).ok();
    }
}
