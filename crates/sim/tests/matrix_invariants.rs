//! Invariants of the sweep runner across the scenario catalog.

use rh_sim::{run_matrix, run_pair, DefenseSpec, SimConfig, WorkloadSpec};

#[test]
fn reports_are_ordered_workload_major() {
    let cfg = SimConfig::attack_bank(5_000, 4_000);
    let defenses = [DefenseSpec::None, DefenseSpec::Twice { t_rh: 5_000 }];
    let workloads = [WorkloadSpec::S3, WorkloadSpec::S4, WorkloadSpec::S1 { n: 10 }];
    let reports = run_matrix(&cfg, &defenses, &workloads);
    assert_eq!(reports.len(), 6);
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(r.workload, workloads[i / 2].name());
        assert_eq!(r.defense, defenses[i % 2].name());
    }
}

#[test]
fn matrix_matches_individual_pairs() {
    // The shared-baseline matrix must produce the same numbers as running
    // each pair separately (everything is deterministic by seed).
    let cfg = SimConfig::attack_bank(5_000, 6_000);
    let defense = DefenseSpec::Graphene { t_rh: 5_000, k: 2 };
    let workload = WorkloadSpec::S1 { n: 10 };
    let from_matrix = &run_matrix(&cfg, &[defense], &[workload.clone()])[0];
    let from_pair = run_pair(&cfg, &defense, &workload);
    assert_eq!(from_matrix.stats, from_pair.stats);
    assert_eq!(from_matrix.slowdown, from_pair.slowdown);
}

#[test]
fn energy_overhead_is_nonnegative_and_flipless_for_counter_schemes() {
    let cfg = SimConfig::attack_bank(4_000, 20_000);
    let defenses = [
        DefenseSpec::Graphene { t_rh: 4_000, k: 2 },
        DefenseSpec::Twice { t_rh: 4_000 },
        DefenseSpec::Cbt { t_rh: 4_000 },
        DefenseSpec::Ideal { t_rh: 4_000 },
    ];
    let workloads = WorkloadSpec::adversarial_set();
    for r in run_matrix(&cfg, &defenses, &workloads) {
        assert!(r.energy_overhead >= 0.0);
        assert_eq!(r.stats.bit_flips, 0, "{} flipped under {}", r.defense, r.workload);
        assert!(r.stats.accesses == 20_000);
    }
}

#[test]
fn defense_names_are_distinct_in_lineup() {
    let names: Vec<String> = DefenseSpec::paper_lineup(50_000).iter().map(|d| d.name()).collect();
    let set: std::collections::HashSet<_> = names.iter().collect();
    assert_eq!(set.len(), names.len(), "duplicate names {names:?}");
}

#[test]
fn attack_and_system_configs_differ_in_geometry() {
    let cfg = SimConfig::micro2020(1_000);
    assert_eq!(cfg.attack.geometry.total_banks(), 1);
    assert_eq!(cfg.system.geometry.total_banks(), 64);
    assert!(WorkloadSpec::S3.is_adversarial());
    assert!(!WorkloadSpec::MixBlend.is_adversarial());
}
