//! Thread-count determinism of the streaming sharded runner: the merged
//! [`SystemStats`] **and** the recorded telemetry [`Snapshot`] must be
//! bit-identical at 1, 2, 4, and 8 pool workers — and identical to the
//! sequential [`run_system`] reference — for every mapping policy.
//!
//! This is the other half of the `sharded_equivalence` anchor: that suite
//! pins the sharded system against the legacy single-shard controller;
//! this one pins the *parallel* schedule against the sequential one. The
//! two together let the perf-smoke CI job treat any stats drift as a real
//! correctness regression rather than a scheduling artifact.
//!
//! Determinism holds by construction — each channel's accesses arrive
//! pre-stamped with their global arrival times in routing order over a
//! per-channel FIFO, and shards never share mutable state — but the
//! construction is exactly what refactors break, so it is pinned here at
//! every worker count the scaling benchmark reports.

use dram_model::fault::DisturbanceModel;
use dram_model::geometry::DramGeometry;
use memctrl::MappingPolicy;
use rh_sim::{run_system, run_system_sharded, DefenseSpec, SimConfig, TelemetrySpec, WorkloadSpec};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn campaign(accesses: u64, telemetry: bool) -> SimConfig {
    let mut sim = SimConfig::micro2020(accesses);
    sim.system.geometry =
        DramGeometry { channels: 4, ranks_per_channel: 1, banks_per_rank: 4, rows_per_bank: 4_096 };
    sim.system.fault_model = Some(DisturbanceModel { t_rh: 2_000, ..DisturbanceModel::ddr4_50k() });
    sim.audit = false;
    if telemetry {
        sim.telemetry = Some(TelemetrySpec::every_acts(256));
    }
    sim
}

/// Stats are bit-identical across every worker count, batch size, mapping
/// policy, and defense — anchored to the sequential runner.
#[test]
fn stats_identical_at_every_thread_count() {
    let sim = campaign(24_000, false);
    let cases = [
        (MappingPolicy::RowInterleaved, DefenseSpec::Graphene { t_rh: 2_000, k: 2 }),
        (MappingPolicy::BankInterleaved, DefenseSpec::Para { p: 0.02 }),
        (MappingPolicy::ChannelXor, DefenseSpec::None),
    ];
    let workload = WorkloadSpec::StripedManySided { sides: 4, banks: 16 };
    for (policy, defense) in cases {
        let seq = run_system(&sim, policy, &defense, &workload);
        for threads in THREAD_COUNTS {
            // Batch sizes chosen to exercise exact-fit, ragged-tail, and
            // single-access dispatch.
            for batch in [1, 64, 193] {
                let par = run_system_sharded(&sim, policy, &defense, &workload, threads, batch);
                assert_eq!(
                    seq.stats,
                    par.stats,
                    "stats diverged under {policy:?}/{} at threads={threads} batch={batch}",
                    defense.name()
                );
            }
        }
    }
}

/// Recorded telemetry snapshots — every series, every sample, every
/// timestamp — are identical across worker counts and match the
/// sequential run. A reordered merge or a racy sampling cadence would
/// show up here even if the aggregate stats happened to agree.
#[test]
fn telemetry_snapshots_identical_at_every_thread_count() {
    let sim = campaign(16_000, true);
    let defense = DefenseSpec::Graphene { t_rh: 2_000, k: 2 };
    let workload = WorkloadSpec::StripedManySided { sides: 4, banks: 16 };
    for policy in
        [MappingPolicy::RowInterleaved, MappingPolicy::BankInterleaved, MappingPolicy::ChannelXor]
    {
        let seq = run_system(&sim, policy, &defense, &workload);
        let baseline = seq
            .snapshot
            .as_ref()
            .unwrap_or_else(|| panic!("recording campaign must yield a snapshot under {policy:?}"));
        for threads in THREAD_COUNTS {
            let par = run_system_sharded(&sim, policy, &defense, &workload, threads, 97);
            let got = par.snapshot.as_ref().expect("sharded run lost its snapshot");
            assert_eq!(
                baseline, got,
                "telemetry snapshot diverged under {policy:?} at threads={threads}"
            );
        }
    }
}

/// The audit certificate (per-shard invariant checks plus fault-oracle
/// cross-check) passes identically on the parallel schedule.
#[test]
fn audited_parallel_run_matches_sequential() {
    let mut sim = campaign(12_000, false);
    sim.audit = true;
    let defense = DefenseSpec::Graphene { t_rh: 2_000, k: 2 };
    let workload = WorkloadSpec::SameRowAllBanks { banks: 16 };
    let seq = run_system(&sim, MappingPolicy::BankInterleaved, &defense, &workload);
    for threads in [2, 8] {
        let par = run_system_sharded(
            &sim,
            MappingPolicy::BankInterleaved,
            &defense,
            &workload,
            threads,
            128,
        );
        assert_eq!(seq.stats, par.stats, "audited stats diverged at threads={threads}");
    }
    assert_eq!(seq.stats.merged.accesses, 12_000);
}
