//! The resilience matrix: fault-injected sweeps with graceful degradation.
//!
//! [`run_matrix_faulted`] crosses seeded [`FaultSpec`] plans with defenses
//! and workloads and runs every cell under injection at all three layers:
//!
//! * **tracker faults** flow through the controller into the defense
//!   ([`RowHammerDefense::inject_fault`](mitigations::RowHammerDefense));
//! * **controller faults** drop/defer NRRs, postpone refresh, and duplicate
//!   commands inside [`memctrl::FaultInjector`];
//! * **harness faults** hit the sweep itself: telemetry sink outages are
//!   ridden out by a [`RetrySink`] over a scripted [`FlakySink`], and
//!   injected worker stalls are cut short by the pool's cooperative
//!   watchdog ([`crate::pool::run_scoped_watched`]).
//!
//! Unlike [`crate::try_run_matrix`], cells are *standalone*: no
//! defense-free baseline and no cross-run audit, because duplicated
//! commands change the served-access count and make faulted stats
//! incomparable with a fault-free twin. What the matrix measures instead:
//!
//! * **false negatives** — ground-truth oracle bit flips; dropped NRRs and
//!   corrupted counters never touch the oracle, so every lost protection
//!   shows up here;
//! * **detection** — with the audit armed ([`SimConfig::audit_enabled`]),
//!   a defense whose certificate breaks mid-run is killed by the
//!   [`mitigations::AuditedDefense`] asserts and the cell is recorded as
//!   [`CellOutcome::AuditViolation`] — a *detected* failure, never a
//!   silent one;
//! * **degradation** — `HardenedGraphene`'s parity detections and repair
//!   NRRs, read back from its `fault.*` telemetry series.
//!
//! Everything in [`ResilienceReport::cells`] is bit-reproducible from the
//! plan seeds: injection schedules, retry accounting (the write-attempt
//! clock is deterministic), and telemetry snapshots (timestamps come from
//! the simulated clock). Only [`ResilienceReport::pool`] depends on
//! wall-clock scheduling and is excluded from that guarantee.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use faultsim::{FaultKind, FaultPlan, FaultSpec, HarnessFault};
use memctrl::{FaultStats, McBuilder, McConfig, RunStats, TelemetryTap};
use telemetry::{
    Cadence, FailureSpan, FlakySink, MetricsSink, RetryPolicy, RetrySink, RetryStats, SharedSink,
    Snapshot,
};

use crate::pool::{self, PoolReport, Spawner, WatchdogConfig};
use crate::runner::{payload_message, SimConfig};
use crate::scenarios::{DefenseSpec, WorkloadSpec};

/// Watchdog for the resilience sweep: injected stalls reach 120 ms, so a
/// 50 ms timeout reliably trips them while staying invisible to healthy
/// sub-millisecond bookkeeping. (A tripped flag only cuts cooperative
/// waits short; it never kills a computing cell.)
const SWEEP_WATCHDOG: WatchdogConfig =
    WatchdogConfig { timeout: Duration::from_millis(50), poll: Duration::from_millis(5) };

/// Short human label for a plan, used in [`ResilienceCell::plan`].
pub fn plan_label(spec: &FaultSpec) -> String {
    format!("seed{}-{}ev", spec.seed, spec.event_count())
}

/// Data from one *completed* fault-injected run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultedRun {
    /// Raw run counters (note: duplicated commands inflate `accesses`).
    pub stats: RunStats,
    /// What the controller-side injector did.
    pub faults: FaultStats,
    /// Ground-truth oracle bit flips — the false-negative count.
    pub false_negatives: u64,
    /// Parity mismatches `HardenedGraphene` detected (0 for other schemes).
    pub parity_detections: u64,
    /// Repair NRRs emitted while degrading (0 for other schemes).
    pub repair_nrrs: u64,
    /// What the telemetry retry layer endured under injected sink outages.
    pub sink: RetryStats,
    /// The cell's telemetry, including the `fault.*` series.
    pub snapshot: Snapshot,
}

/// How one matrix cell ended.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// The run finished; its counters are in the (boxed — the snapshot
    /// payload is large) run record.
    Completed(Box<FaultedRun>),
    /// The online audit layer (or any other in-run invariant) killed the
    /// run — the injected corruption was *detected*, not silently absorbed.
    /// The message is the audit panic text naming the broken certificate.
    AuditViolation {
        /// The panic message of the killed run.
        message: String,
    },
}

/// One (plan, workload, defense) cell of the resilience matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceCell {
    /// Plan label (see [`plan_label`]).
    pub plan: String,
    /// Workload name.
    pub workload: String,
    /// Defense name.
    pub defense: String,
    /// What happened.
    pub outcome: CellOutcome,
}

impl ResilienceCell {
    /// Oracle false negatives (0 when the audit killed the run first).
    pub fn false_negatives(&self) -> u64 {
        match &self.outcome {
            CellOutcome::Completed(run) => run.false_negatives,
            CellOutcome::AuditViolation { .. } => 0,
        }
    }

    /// True when the injected faults caused a *visible* protection failure:
    /// either the audit certificate broke mid-run or the ground-truth
    /// oracle recorded flips. The one thing the matrix exists to rule out
    /// is a failure that is neither.
    pub fn detected_failure(&self) -> bool {
        match &self.outcome {
            CellOutcome::Completed(run) => run.false_negatives > 0,
            CellOutcome::AuditViolation { .. } => true,
        }
    }

    /// The completed payload, if the run survived to the end.
    pub fn completed(&self) -> Option<&FaultedRun> {
        match &self.outcome {
            CellOutcome::Completed(run) => Some(run),
            CellOutcome::AuditViolation { .. } => None,
        }
    }
}

/// Result of a [`run_matrix_faulted`] sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReport {
    /// Cells in (plan-major, workload, defense-minor) order —
    /// bit-reproducible from the plan seeds.
    pub cells: Vec<ResilienceCell>,
    /// Pool accounting (jobs, watchdog trips). Wall-clock dependent and
    /// therefore **excluded** from the reproducibility guarantee.
    pub pool: PoolReport,
}

impl ResilienceReport {
    /// Every cell's telemetry in one [`Snapshot`], each prefixed with
    /// `"{plan}/{workload}/{defense}/"`. This is what `resilience-report`
    /// writes to disk.
    pub fn merged_snapshot(&self, source: &str) -> Snapshot {
        let mut out = Snapshot::empty(source);
        for cell in &self.cells {
            if let CellOutcome::Completed(run) = &cell.outcome {
                out.merge_prefixed(
                    &format!("{}/{}/{}/", cell.plan, cell.workload, cell.defense),
                    &run.snapshot,
                );
            }
        }
        out
    }

    /// Total false negatives across the matrix.
    pub fn total_false_negatives(&self) -> u64 {
        self.cells.iter().map(ResilienceCell::false_negatives).sum()
    }
}

/// A cloneable [`MetricsSink`] handle over one shared retry stack. The
/// controller tap writes through a clone; the cell keeps another to read
/// the [`RetryStats`] after the run.
#[derive(Clone)]
struct SharedRetrySink(Arc<Mutex<RetrySink<FlakySink<SharedSink>>>>);

impl SharedRetrySink {
    fn with<R>(&self, f: impl FnOnce(&mut RetrySink<FlakySink<SharedSink>>) -> R) -> R {
        f(&mut self.0.lock().expect("retry sink poisoned"))
    }
}

impl MetricsSink for SharedRetrySink {
    fn counter(&mut self, name: &'static str, delta: u64) {
        self.with(|s| s.counter(name, delta));
    }

    fn gauge(&mut self, name: &'static str, value: f64) {
        self.with(|s| s.gauge(name, value));
    }

    fn observe(&mut self, name: &'static str, value: f64) {
        self.with(|s| s.observe(name, value));
    }

    fn sample(&mut self, series: &'static str, bank: u16, t_ps: u64, value: f64) {
        self.with(|s| s.sample(series, bank, t_ps, value));
    }
}

/// Maps the plan's `SinkFailure` events onto the telemetry write-attempt
/// clock: the access index a harness event carries has no 1:1 counterpart
/// among write attempts (a tap flush is one access but several writes), so
/// the k-th outage deterministically starts at attempt `8k` — early enough
/// that even short runs exercise it.
fn sink_failure_spans(plan: &FaultPlan) -> Vec<FailureSpan> {
    plan.harness_events()
        .filter_map(|e| match e.kind {
            FaultKind::Harness(HarnessFault::SinkFailure { writes }) => Some(writes),
            _ => None,
        })
        .enumerate()
        .map(|(k, writes)| FailureSpan { at_attempt: 8 * k as u64, writes })
        .collect()
}

/// Executes the plan's injected worker stalls: each stall sleeps its
/// scripted duration in short slices, abandoning the wait as soon as the
/// pool watchdog trips — the sweep drains instead of serializing behind a
/// stalled worker.
fn perform_stalls(plan: &FaultPlan, spawner: &Spawner<'_, '_>) {
    for event in plan.harness_events() {
        if let FaultKind::Harness(HarnessFault::WorkerStall { millis }) = event.kind {
            let deadline = Instant::now() + Duration::from_millis(millis);
            while Instant::now() < deadline && !spawner.watchdog_tripped() {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Sums the last sampled value of `series` across all banks — the cumulative
/// counters `HardenedGraphene` emits at completion time.
fn last_sample_sum(snapshot: &Snapshot, series: &str, banks: u32) -> u64 {
    (0..banks)
        .filter_map(|bank| snapshot.series_for(series, bank as u16))
        .filter_map(|s| s.samples.last())
        .map(|s| s.value as u64)
        .sum()
}

/// One fault-injected cell: build, run, and fold the controller's fault
/// accounting plus the defense's degradation telemetry into a
/// [`FaultedRun`]. Panics (audit kills) propagate to the caller.
#[allow(clippy::too_many_arguments)]
fn execute_faulted(
    mc_cfg: &McConfig,
    every_acts: u64,
    plan: &FaultPlan,
    defense: &DefenseSpec,
    workload: &WorkloadSpec,
    accesses: u64,
    seed: u64,
    audit: bool,
) -> FaultedRun {
    let rows = mc_cfg.geometry.rows_per_bank;
    let banks = mc_cfg.geometry.total_banks();
    let shared = SharedSink::new();
    let retry = SharedRetrySink(Arc::new(Mutex::new(RetrySink::new(
        FlakySink::new(shared.clone(), sink_failure_spans(plan)),
        RetryPolicy::default_bounded(),
    ))));
    let mut mc = McBuilder::new(mc_cfg.clone())
        .defenses(defense)
        .audit(audit)
        .telemetry(TelemetryTap::new(Box::new(retry.clone()), Cadence::EveryActs(every_acts)))
        .faults(plan.clone())
        .build();
    let mut w = workload.build(banks as u16, rows, seed);
    let stats = mc.run(w.as_mut(), accesses);
    let faults = mc.fault_stats().copied().unwrap_or_default();
    let sink = retry.with(|s| *s.stats());
    // End-of-run bookkeeping goes straight into the recorder: these writes
    // are part of the harness, not of the (possibly still failing) sink
    // under test.
    shared.with(|rec| {
        for bank in 0..banks as usize {
            mc.defense(bank).emit_telemetry(bank as u16, stats.completion, rec);
        }
        rec.counter("fault.tracker_applied", faults.tracker_faults_applied);
        rec.counter("fault.tracker_vacuous", faults.tracker_faults_vacuous);
        rec.counter("fault.nrrs_dropped", faults.nrrs_dropped);
        rec.counter("fault.nrrs_deferred", faults.nrrs_deferred);
        rec.counter("fault.nrrs_released", faults.nrrs_released);
        rec.counter("fault.refreshes_postponed", faults.refreshes_postponed);
        rec.counter("fault.commands_duplicated", faults.commands_duplicated);
        rec.counter("fault.false_negatives", stats.bit_flips);
        rec.counter("fault.sink_retries", sink.retries);
        rec.counter("fault.sink_dropped_writes", sink.dropped_writes);
    });
    let snapshot = shared.snapshot(&format!(
        "{}/{}/{}",
        plan_label(plan.spec()),
        workload.name(),
        defense.name()
    ));
    let parity_detections = last_sample_sum(&snapshot, "fault.parity_detections", banks);
    let repair_nrrs = last_sample_sum(&snapshot, "fault.repair_nrrs", banks);
    FaultedRun {
        false_negatives: stats.bit_flips,
        stats,
        faults,
        parity_detections,
        repair_nrrs,
        sink,
        snapshot,
    }
}

/// Runs the full (plans × workloads × defenses) resilience matrix on the
/// watched work-stealing pool and returns every cell in (plan-major,
/// workload, defense-minor) order.
///
/// Each cell runs standalone under its generated [`FaultPlan`] (see the
/// module docs for why there is no baseline). A cell killed mid-run by the
/// audit layer becomes [`CellOutcome::AuditViolation`]; the rest of the
/// sweep continues. Harness faults are realized here: sink outages through
/// the retry stack, worker stalls cut short by the pool watchdog.
pub fn run_matrix_faulted(
    cfg: &SimConfig,
    plans: &[FaultSpec],
    defenses: &[DefenseSpec],
    workloads: &[WorkloadSpec],
) -> ResilienceReport {
    let audit = cfg.audit_enabled();
    let every_acts = cfg.telemetry.map_or(1_000, |t| t.every_acts);
    let n_def = defenses.len();
    let n_wl = workloads.len();
    let generated: Vec<FaultPlan> = plans.iter().map(FaultPlan::generate).collect();
    let slots: Vec<Mutex<Option<ResilienceCell>>> =
        (0..plans.len() * n_wl * n_def).map(|_| Mutex::new(None)).collect();

    let slots_ref = &slots;
    let mut jobs: Vec<pool::Job<'_>> = Vec::with_capacity(slots.len());
    for (pi, plan) in generated.iter().enumerate() {
        for (wi, workload) in workloads.iter().enumerate() {
            for (di, defense) in defenses.iter().enumerate() {
                let idx = (pi * n_wl + wi) * n_def + di;
                jobs.push(pool::job(move |spawner| {
                    perform_stalls(plan, spawner);
                    let mc_cfg = cfg.mc_config_for(workload);
                    let outcome = match catch_unwind(AssertUnwindSafe(|| {
                        execute_faulted(
                            mc_cfg,
                            every_acts,
                            plan,
                            defense,
                            workload,
                            cfg.accesses,
                            cfg.seed,
                            audit,
                        )
                    })) {
                        Ok(run) => CellOutcome::Completed(Box::new(run)),
                        Err(payload) => {
                            CellOutcome::AuditViolation { message: payload_message(&*payload) }
                        }
                    };
                    *slots_ref[idx].lock().expect("result slot poisoned") = Some(ResilienceCell {
                        plan: plan_label(plan.spec()),
                        workload: workload.name(),
                        defense: defense.name(),
                        outcome,
                    });
                }));
            }
        }
    }
    let threads =
        std::thread::available_parallelism().map_or(4, usize::from).min(jobs.len()).max(1);
    let pool_report = pool::run_scoped_watched(threads, jobs, None, Some(SWEEP_WATCHDOG));
    let cells = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every matrix cell filled by the pool")
        })
        .collect();
    ResilienceReport { cells, pool: pool_report }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_bit_spec(seed: u64, flips: u32, accesses: u64) -> FaultSpec {
        FaultSpec { accesses, ..FaultSpec::single_bit_flips(seed, flips) }
    }

    #[test]
    fn hardened_graphene_survives_single_bit_plans_with_zero_false_negatives() {
        // Both a single-hot-row and a multi-row workload: the latter keeps
        // the table populated, so address-field flips land on live entries
        // and the Hamming-ball repair path (not just count repair) is
        // exercised under the audit.
        let cfg = SimConfig::attack_bank(5_000, 20_000);
        let report = run_matrix_faulted(
            &cfg,
            &[single_bit_spec(7, 16, 20_000)],
            &[DefenseSpec::HardenedGraphene { t_rh: 5_000, k: 2 }],
            &[WorkloadSpec::S3, WorkloadSpec::S1 { n: 10 }],
        );
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            let run = cell.completed().unwrap_or_else(|| {
                panic!(
                    "hardened run must survive the audit on {}: {:?}",
                    cell.workload, cell.outcome
                )
            });
            assert_eq!(
                run.false_negatives, 0,
                "parity + conservative reset must hold the line on {}",
                cell.workload
            );
            assert!(
                run.faults.tracker_faults_applied > 0,
                "the plan must actually corrupt tracker state"
            );
            assert!(run.parity_detections > 0, "degradation events must be visible in telemetry");
            assert!(run.repair_nrrs > 0);
        }
    }

    #[test]
    fn plain_graphene_failures_are_detected_never_silent() {
        // Same single-bit fault pressure, unhardened scheme: the corruption
        // must surface either as a mid-run audit kill or as ground-truth
        // oracle flips — the matrix exists to rule out the third option.
        let cfg = SimConfig::attack_bank(5_000, 20_000);
        let report = run_matrix_faulted(
            &cfg,
            &[single_bit_spec(7, 32, 20_000)],
            &[DefenseSpec::Graphene { t_rh: 5_000, k: 2 }],
            &[WorkloadSpec::S3],
        );
        let cell = &report.cells[0];
        assert!(
            cell.detected_failure(),
            "unhardened Graphene under bit flips must fail detectably, got {:?}",
            cell.outcome
        );
    }

    #[test]
    fn sink_outages_are_ridden_out_without_dropping_writes() {
        let mut spec = FaultSpec::new(11);
        spec.accesses = 10_000;
        spec.sink_failures = 3;
        let cfg = SimConfig::attack_bank(5_000, 10_000);
        let report = run_matrix_faulted(
            &cfg,
            &[spec],
            &[DefenseSpec::Graphene { t_rh: 5_000, k: 2 }],
            &[WorkloadSpec::S3],
        );
        let run = report.cells[0].completed().expect("sink faults must not kill the run");
        assert!(run.sink.retries > 0, "the scripted outage must actually bite");
        assert_eq!(run.sink.dropped_writes, 0, "bounded outages lose nothing under retry");
    }

    #[test]
    fn worker_stalls_complete_under_the_watchdog() {
        let mut spec = FaultSpec::new(23);
        spec.accesses = 2_000;
        spec.worker_stalls = 2;
        let cfg = SimConfig::attack_bank(5_000, 2_000);
        let report = run_matrix_faulted(
            &cfg,
            &[spec],
            &[DefenseSpec::Graphene { t_rh: 5_000, k: 2 }],
            &[WorkloadSpec::S3],
        );
        assert!(report.cells[0].completed().is_some());
        assert_eq!(report.pool.jobs_completed, 1);
    }

    #[test]
    fn matrix_is_bit_reproducible_from_the_seed() {
        let run = || {
            let cfg = SimConfig::attack_bank(5_000, 8_000);
            let mut spec = FaultSpec::chaos(77);
            spec.accesses = 8_000;
            run_matrix_faulted(
                &cfg,
                &[spec],
                &[
                    DefenseSpec::Graphene { t_rh: 5_000, k: 2 },
                    DefenseSpec::HardenedGraphene { t_rh: 5_000, k: 2 },
                ],
                &[WorkloadSpec::S3, WorkloadSpec::S1 { n: 10 }],
            )
        };
        let a = run();
        let b = run();
        // Cells (runs, fault accounting, retry stats, snapshots) must be
        // identical; only the pool report may differ.
        assert_eq!(a.cells, b.cells);
        assert_eq!(a.cells.len(), 4);
    }

    #[test]
    fn merged_snapshot_prefixes_every_completed_cell() {
        let cfg = SimConfig::attack_bank(5_000, 5_000);
        let report = run_matrix_faulted(
            &cfg,
            &[single_bit_spec(3, 4, 5_000)],
            &[DefenseSpec::HardenedGraphene { t_rh: 5_000, k: 2 }],
            &[WorkloadSpec::S3],
        );
        let merged = report.merged_snapshot("test");
        let prefix = format!("{}/S3/HardenedGraphene/", report.cells[0].plan);
        assert!(
            merged.counters.iter().any(|(name, _)| name.starts_with(&prefix)),
            "merged snapshot must carry the cell prefix"
        );
    }
}
