//! A minimal scoped work-stealing thread pool (std-only).
//!
//! [`run_scoped`] executes a set of jobs on a fixed number of worker
//! threads. Each worker owns a deque; it pops from its own deque first and
//! steals from siblings when empty. Jobs receive a [`Spawner`] and may
//! enqueue further jobs mid-flight — the mechanism [`crate::run_matrix`]
//! uses to fan a workload's per-defense runs out as soon as that
//! workload's baseline finishes, without waiting for the other baselines.
//!
//! Why not one thread per job: a sweep grid is (workloads × defenses)
//! jobs of wildly different costs; stealing keeps every core busy until the
//! global queue drains, and the thread count stays bounded by the host's
//! parallelism rather than the grid size.
//!
//! [`run_scoped_watched`] adds a per-job cooperative watchdog: a monitor
//! thread flags jobs running past a timeout ([`Spawner::watchdog_tripped`])
//! so stalled jobs — the resilience sweep injects exactly such stalls — can
//! abandon the wait, and the sweep completes instead of hanging.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A unit of work. Takes a [`Spawner`] so it can enqueue follow-up jobs.
pub type Job<'env> = Box<dyn for<'p> FnOnce(&Spawner<'env, 'p>) + Send + 'env>;

/// Boxes a closure as a [`Job`], pinning its environment lifetime.
///
/// Coercing a closure to [`Job`] directly tends to make inference quantify
/// over `'env` as well as the pool lifetime, which then demands `'static`
/// captures; routing through this helper fixes `'env` to the borrows the
/// closure actually holds.
pub fn job<'env, F>(f: F) -> Job<'env>
where
    F: for<'p> FnOnce(&Spawner<'env, 'p>) + Send + 'env,
{
    Box::new(f)
}

/// Per-job watchdog configuration (see [`run_scoped_watched`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// A job running longer than this is *tripped*: counted in
    /// [`PoolReport::watchdog_trips`] and visible to the job itself through
    /// [`Spawner::watchdog_tripped`], so cooperative jobs can abandon a
    /// stalled wait and finish.
    pub timeout: Duration,
    /// How often the monitor thread re-examines running jobs.
    pub poll: Duration,
}

impl WatchdogConfig {
    /// A watchdog tripping after `timeout_ms` milliseconds, polling at a
    /// quarter of that (at least every millisecond).
    pub fn after_millis(timeout_ms: u64) -> Self {
        WatchdogConfig {
            timeout: Duration::from_millis(timeout_ms),
            poll: Duration::from_millis((timeout_ms / 4).max(1)),
        }
    }
}

/// What a pool run did — job count plus watchdog accounting.
///
/// `watchdog_trips` depends on wall-clock scheduling and is **not**
/// reproducible across runs; keep it out of any bit-reproducibility
/// comparison.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolReport {
    /// Jobs executed (spawned jobs included, panicked jobs included).
    pub jobs_completed: usize,
    /// Jobs the watchdog flagged as running past the timeout.
    pub watchdog_trips: u64,
}

/// Watchdog state shared between workers and the monitor thread.
struct WatchState {
    /// Per-worker start of the current job, in milliseconds since `epoch`
    /// **plus one** (0 means idle, so a job starting at the epoch itself is
    /// still visible).
    started: Vec<AtomicU64>,
    /// Per-worker flag: the current job overran the timeout.
    tripped: Vec<AtomicBool>,
    trips: AtomicU64,
    epoch: Instant,
    cfg: WatchdogConfig,
}

impl WatchState {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }
}

struct Shared<'env> {
    /// One deque per worker; workers push/pop their own and steal others'.
    deques: Vec<Mutex<VecDeque<Job<'env>>>>,
    /// Jobs enqueued or currently executing. Workers exit when it reaches 0.
    pending: AtomicUsize,
    /// Jobs finished so far (including panicked ones), for the observer.
    completed: AtomicUsize,
    /// Called with the completed-job count after each job finishes — live
    /// sweep progress for telemetry. Must be cheap and panic-free.
    observer: Option<&'env (dyn Fn(usize) + Sync)>,
    /// Parking spot for workers that found every deque empty.
    idle: Mutex<()>,
    wakeup: Condvar,
    /// First panic payload caught from a job; re-thrown by [`run_scoped`]
    /// after the remaining jobs drain.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Present when the caller asked for a watchdog.
    watch: Option<WatchState>,
}

/// Handle through which a running job submits more jobs to the pool.
pub struct Spawner<'env, 'pool> {
    shared: &'pool Shared<'env>,
    /// The worker executing the current job; spawned jobs land on its own
    /// deque (depth-first, cache-warm) and get stolen if it stays busy.
    worker: usize,
}

impl<'env> Spawner<'env, '_> {
    /// Enqueues `job` for execution before the pool shuts down.
    pub fn spawn<F>(&self, job: F)
    where
        F: for<'p> FnOnce(&Spawner<'env, 'p>) + Send + 'env,
    {
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        self.shared.deques[self.worker]
            .lock()
            .expect("pool deque poisoned")
            .push_back(Box::new(job));
        self.shared.wakeup.notify_one();
    }

    /// True once the watchdog has flagged the *current* job as running past
    /// the timeout. Cooperative jobs poll this inside long waits (injected
    /// stalls, external polling loops) and bail out instead of holding a
    /// worker hostage. Always false when the pool runs without a watchdog.
    pub fn watchdog_tripped(&self) -> bool {
        self.shared.watch.as_ref().is_some_and(|w| w.tripped[self.worker].load(Ordering::SeqCst))
    }
}

/// Runs `initial` jobs (plus everything they spawn) to completion on
/// `threads` workers, blocking until the queue drains.
///
/// Jobs may borrow from the caller's environment (`'env`); results are
/// returned through whatever shared slots the jobs capture.
///
/// # Panics
///
/// Panics if `threads == 0`, or re-raises the **first** panic any job hit —
/// but only after the remaining jobs have run to completion. A panicking
/// job used to leave `pending` stuck above zero, parking every worker
/// forever (and poisoning the caller's result slots); now the worker
/// catches the unwind, finishes the queue, and the payload is re-thrown
/// from the calling thread.
pub fn run_scoped<'env>(threads: usize, initial: Vec<Job<'env>>) {
    run_scoped_observed(threads, initial, None);
}

/// [`run_scoped`] with a progress observer: after every job completes
/// (spawned jobs included, panicked jobs included), `observer` is called
/// with the total number of jobs finished so far. Callers use it to stream
/// live sweep progress into a telemetry sink. The observer runs on worker
/// threads and must be `Sync`, cheap, and panic-free.
///
/// # Panics
///
/// Same contract as [`run_scoped`].
pub fn run_scoped_observed<'env>(
    threads: usize,
    initial: Vec<Job<'env>>,
    observer: Option<&'env (dyn Fn(usize) + Sync)>,
) {
    run_scoped_watched(threads, initial, observer, None);
}

/// [`run_scoped_observed`] with an optional per-job watchdog.
///
/// When `watchdog` is set, a dedicated monitor thread checks every running
/// job against [`WatchdogConfig::timeout`]; an overrunning job is counted
/// in [`PoolReport::watchdog_trips`] and its [`Spawner::watchdog_tripped`]
/// flag flips, letting a cooperative job cut a stalled wait short so the
/// sweep still drains. The watchdog cannot preempt a job that never polls
/// the flag — it detects and reports, the job cooperates.
///
/// # Panics
///
/// Same contract as [`run_scoped`].
pub fn run_scoped_watched<'env>(
    threads: usize,
    initial: Vec<Job<'env>>,
    observer: Option<&'env (dyn Fn(usize) + Sync)>,
    watchdog: Option<WatchdogConfig>,
) -> PoolReport {
    assert!(threads > 0, "pool needs at least one worker");
    let mut shared = Shared {
        deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
        pending: AtomicUsize::new(initial.len()),
        completed: AtomicUsize::new(0),
        observer,
        idle: Mutex::new(()),
        wakeup: Condvar::new(),
        panic: Mutex::new(None),
        watch: watchdog.map(|cfg| WatchState {
            started: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            tripped: (0..threads).map(|_| AtomicBool::new(false)).collect(),
            trips: AtomicU64::new(0),
            epoch: Instant::now(),
            cfg,
        }),
    };
    // Round-robin the seed jobs so workers start without stealing.
    for (i, job) in initial.into_iter().enumerate() {
        shared.deques[i % threads].get_mut().expect("fresh mutex").push_back(job);
    }
    std::thread::scope(|scope| {
        let shared = &shared;
        for worker in 0..threads {
            scope.spawn(move || worker_loop(shared, worker));
        }
        if shared.watch.is_some() {
            scope.spawn(move || watchdog_loop(shared));
        }
    });
    let report = PoolReport {
        jobs_completed: shared.completed.load(Ordering::SeqCst),
        watchdog_trips: shared.watch.as_ref().map_or(0, |w| w.trips.load(Ordering::SeqCst)),
    };
    if let Some(payload) = shared.panic.get_mut().expect("fresh mutex").take() {
        resume_unwind(payload);
    }
    report
}

/// Runs `initial` jobs on `threads` workers while `driver` executes on the
/// **calling thread** inside the same scope, returning the driver's result
/// once both the driver and every job (including spawned ones) have
/// finished.
///
/// This is the harness for producer/consumer pipelines: the caller's
/// closure feeds bounded queues that the jobs drain (the streaming sharded
/// runner routes accesses here while shard jobs execute them). Jobs that
/// find their queue empty should re-enqueue themselves via
/// [`Spawner::spawn`] and return, so a worker is never parked on a queue
/// that a co-scheduled job must fill — that cooperative yield is what keeps
/// the pipeline live even when `threads` is smaller than the number of
/// consumer jobs.
///
/// # Panics
///
/// Panics if `threads == 0`; re-raises a driver panic after the jobs drain
/// (a driver that owns the producer halves closes its queues by unwinding,
/// so consumers still terminate), or the first job panic otherwise.
pub fn run_scoped_with_driver<'env, R>(
    threads: usize,
    initial: Vec<Job<'env>>,
    driver: impl FnOnce() -> R,
) -> R {
    assert!(threads > 0, "pool needs at least one worker");
    let mut shared = Shared {
        deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
        pending: AtomicUsize::new(initial.len()),
        completed: AtomicUsize::new(0),
        observer: None,
        idle: Mutex::new(()),
        wakeup: Condvar::new(),
        panic: Mutex::new(None),
        watch: None,
    };
    for (i, job) in initial.into_iter().enumerate() {
        shared.deques[i % threads].get_mut().expect("fresh mutex").push_back(job);
    }
    let result = std::thread::scope(|scope| {
        let shared = &shared;
        for worker in 0..threads {
            scope.spawn(move || worker_loop(shared, worker));
        }
        // The driver runs on this thread; the scope joins the workers after
        // it returns (or unwinds — dropping its producer handles closes the
        // queues, so the workers drain and exit either way).
        driver()
    });
    if let Some(payload) = shared.panic.get_mut().expect("fresh mutex").take() {
        resume_unwind(payload);
    }
    result
}

/// The monitor: wakes every [`WatchdogConfig::poll`], flags any job running
/// past the timeout (once per job — the flag resets when the job ends), and
/// exits when the queue has drained.
fn watchdog_loop(shared: &Shared<'_>) {
    // invariant: watchdog_loop is only spawned when `watch` is Some.
    let watch = shared.watch.as_ref().expect("watchdog spawned with state");
    loop {
        if shared.pending.load(Ordering::SeqCst) == 0 {
            return;
        }
        let now = watch.now_ms();
        let timeout_ms = watch.cfg.timeout.as_millis() as u64;
        for (started, tripped) in watch.started.iter().zip(&watch.tripped) {
            let s = started.load(Ordering::SeqCst);
            if s > 0
                && now.saturating_sub(s - 1) > timeout_ms
                && !tripped.swap(true, Ordering::SeqCst)
            {
                watch.trips.fetch_add(1, Ordering::SeqCst);
            }
        }
        std::thread::sleep(watch.cfg.poll);
    }
}

fn worker_loop<'env>(shared: &Shared<'env>, worker: usize) {
    let n = shared.deques.len();
    loop {
        // Own deque first (LIFO locality not needed — FIFO keeps baseline
        // jobs flowing before their spawned defense jobs pile up), then
        // sweep siblings for something to steal.
        let job = (0..n)
            .map(|off| (worker + off) % n)
            .find_map(|i| shared.deques[i].lock().expect("pool deque poisoned").pop_front());
        match job {
            Some(job) => {
                let spawner = Spawner { shared, worker };
                if let Some(watch) = &shared.watch {
                    watch.tripped[worker].store(false, Ordering::SeqCst);
                    watch.started[worker].store(watch.now_ms() + 1, Ordering::SeqCst);
                }
                // Catch the unwind so `pending` is decremented no matter
                // what: otherwise one panicking job parks every other
                // worker forever waiting for a count that never drains.
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| job(&spawner))) {
                    let mut slot = shared.panic.lock().expect("pool panic slot poisoned");
                    // Keep the first payload; later ones are usually noise
                    // from the same root cause.
                    slot.get_or_insert(payload);
                }
                if let Some(watch) = &shared.watch {
                    watch.started[worker].store(0, Ordering::SeqCst);
                    watch.tripped[worker].store(false, Ordering::SeqCst);
                }
                let done = shared.completed.fetch_add(1, Ordering::SeqCst) + 1;
                if let Some(observer) = shared.observer {
                    observer(done);
                }
                if shared.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                    // Last job out: wake everyone so they observe pending == 0.
                    shared.wakeup.notify_all();
                }
            }
            None => {
                if shared.pending.load(Ordering::SeqCst) == 0 {
                    return;
                }
                // A job is still in flight and may spawn more. Park briefly;
                // the timeout guards against a wakeup racing the re-check.
                let guard = shared.idle.lock().expect("pool idle lock poisoned");
                let _ = shared
                    .wakeup
                    .wait_timeout(guard, Duration::from_millis(1))
                    .expect("pool idle lock poisoned");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_initial_job() {
        let hits = AtomicU64::new(0);
        let hits_ref = &hits;
        let jobs: Vec<Job<'_>> = (0..100)
            .map(|_| {
                job(move |_| {
                    hits_ref.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        run_scoped(4, jobs);
        assert_eq!(hits.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn jobs_can_spawn_jobs() {
        // Each seed job fans out 10 children; children run before shutdown.
        let hits = AtomicU64::new(0);
        let hits_ref = &hits;
        let jobs: Vec<Job<'_>> = (0..8)
            .map(|_| {
                job(move |sp| {
                    for _ in 0..10 {
                        sp.spawn(move |_| {
                            hits_ref.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                })
            })
            .collect();
        run_scoped(3, jobs);
        assert_eq!(hits.load(Ordering::SeqCst), 80);
    }

    #[test]
    fn work_spawned_on_one_worker_is_stolen() {
        // A single seed job spawns everything from one worker's deque; with
        // several workers the children still all complete (and, on any
        // multicore box, finish while the spawner's own deque drains).
        let hits = AtomicU64::new(0);
        let hits_ref = &hits;
        let seed: Vec<Job<'_>> = vec![job(move |sp| {
            for _ in 0..64 {
                sp.spawn(move |_| {
                    hits_ref.fetch_add(1, Ordering::SeqCst);
                });
            }
        })];
        run_scoped(4, seed);
        assert_eq!(hits.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn single_thread_pool_completes_nested_spawns() {
        let hits = AtomicU64::new(0);
        let hits_ref = &hits;
        let seed: Vec<Job<'_>> = vec![job(move |sp| {
            sp.spawn(move |sp2| {
                hits_ref.fetch_add(1, Ordering::SeqCst);
                sp2.spawn(move |_| {
                    hits_ref.fetch_add(1, Ordering::SeqCst);
                });
            });
        })];
        run_scoped(1, seed);
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn empty_job_list_returns_immediately() {
        run_scoped(2, Vec::new());
    }

    #[test]
    fn observer_sees_every_completion_including_spawned() {
        let max_seen = AtomicU64::new(0);
        let observer = |done: usize| {
            max_seen.fetch_max(done as u64, Ordering::SeqCst);
        };
        let jobs: Vec<Job<'_>> = (0..5)
            .map(|_| {
                job(move |sp| {
                    sp.spawn(|_| {});
                })
            })
            .collect();
        run_scoped_observed(3, jobs, Some(&observer));
        // 5 seeds + 5 children all reported.
        assert_eq!(max_seen.load(Ordering::SeqCst), 10);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        run_scoped(0, Vec::new());
    }

    #[test]
    fn panicking_job_does_not_hang_or_starve_others() {
        // Regression: a panicking job never decremented `pending`, so every
        // other worker parked forever and run_scoped never returned. Now the
        // surviving jobs all complete and the panic is re-raised afterwards.
        let hits = AtomicU64::new(0);
        let hits_ref = &hits;
        let mut jobs: Vec<Job<'_>> = (0..20)
            .map(|_| {
                job(move |_| {
                    hits_ref.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        jobs.insert(10, job(|_| panic!("boom in job 10")));
        let result = catch_unwind(AssertUnwindSafe(|| run_scoped(4, jobs)));
        let payload = result.expect_err("the job panic must propagate");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom in job 10"));
        assert_eq!(hits.load(Ordering::SeqCst), 20, "surviving jobs must all run");
    }

    #[test]
    fn first_of_many_panics_wins() {
        let jobs: Vec<Job<'_>> = vec![job(|_| panic!("first")), job(|_| panic!("second"))];
        // Single worker makes the execution order deterministic.
        let payload =
            catch_unwind(AssertUnwindSafe(|| run_scoped(1, jobs))).expect_err("must panic");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"first"));
    }

    #[test]
    fn watchdog_trips_a_stalled_job_and_the_pool_drains() {
        // A cooperative stall: the job spins in short sleeps until the
        // watchdog flags it, then finishes — the injected worker-stall shape
        // the resilience sweep uses. Without the trip this job would hold
        // its worker for 10 seconds; the pool must return long before that.
        let hits = AtomicU64::new(0);
        let hits_ref = &hits;
        let mut jobs: Vec<Job<'_>> = vec![job(|sp| {
            let start = Instant::now();
            while !sp.watchdog_tripped() && start.elapsed() < Duration::from_secs(10) {
                std::thread::sleep(Duration::from_millis(2));
            }
            assert!(sp.watchdog_tripped(), "the watchdog must cut the stall short");
        })];
        jobs.extend((0..8).map(|_| {
            job(move |_| {
                hits_ref.fetch_add(1, Ordering::SeqCst);
            })
        }));
        let report = run_scoped_watched(2, jobs, None, Some(WatchdogConfig::after_millis(20)));
        assert_eq!(report.jobs_completed, 9);
        assert!(report.watchdog_trips >= 1);
        assert_eq!(hits.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn fast_jobs_never_trip_the_watchdog() {
        let jobs: Vec<Job<'_>> = (0..16).map(|_| job(|_| {})).collect();
        let report = run_scoped_watched(4, jobs, None, Some(WatchdogConfig::after_millis(5_000)));
        assert_eq!(report.jobs_completed, 16);
        assert_eq!(report.watchdog_trips, 0);
    }

    #[test]
    fn unwatched_pool_reports_no_trips_and_flag_stays_false() {
        let jobs: Vec<Job<'_>> = vec![job(|sp| {
            assert!(!sp.watchdog_tripped());
        })];
        let report = run_scoped_watched(1, jobs, None, None);
        assert_eq!(report.jobs_completed, 1);
        assert_eq!(report.watchdog_trips, 0);
    }

    #[test]
    fn driver_runs_alongside_jobs_and_returns_its_result() {
        // The driver produces on the calling thread while a pool job
        // consumes; both sides must make progress concurrently and the
        // driver's return value must come back out.
        let consumed = AtomicU64::new(0);
        let consumed_ref = &consumed;
        let flag = std::sync::atomic::AtomicBool::new(false);
        let flag_ref = &flag;
        let jobs: Vec<Job<'_>> = vec![job(move |_| {
            while !flag_ref.load(Ordering::Acquire) {
                // Yield, not spin: on a single-core box the driver thread
                // needs the CPU to perform the store this job is awaiting.
                std::thread::yield_now();
            }
            consumed_ref.fetch_add(1, Ordering::SeqCst);
        })];
        let answer = run_scoped_with_driver(2, jobs, move || {
            // The job is blocked on this store: if the driver did not run
            // concurrently with the pool, this would deadlock.
            flag_ref.store(true, Ordering::Release);
            42u64
        });
        assert_eq!(answer, 42);
        assert_eq!(consumed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn driver_panic_propagates_after_jobs_finish() {
        let hits = AtomicU64::new(0);
        let hits_ref = &hits;
        let jobs: Vec<Job<'_>> = (0..4)
            .map(|_| {
                job(move |_| {
                    hits_ref.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        let payload = catch_unwind(AssertUnwindSafe(|| {
            run_scoped_with_driver(2, jobs, || -> u64 { panic!("driver boom") })
        }))
        .expect_err("driver panic must propagate");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"driver boom"));
        assert_eq!(hits.load(Ordering::SeqCst), 4, "pool jobs still complete");
    }

    #[test]
    fn panic_in_spawned_child_propagates() {
        let hits = AtomicU64::new(0);
        let hits_ref = &hits;
        let seed: Vec<Job<'_>> = vec![job(move |sp| {
            sp.spawn(|_| panic!("child panic"));
            sp.spawn(move |_| {
                hits_ref.fetch_add(1, Ordering::SeqCst);
            });
        })];
        let payload =
            catch_unwind(AssertUnwindSafe(|| run_scoped(2, seed))).expect_err("must panic");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"child panic"));
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }
}
