//! # rh-sim
//!
//! The end-to-end simulation harness that regenerates the Graphene paper's
//! Figures 8 and 9: it pairs every defense with every workload, runs each
//! pair against a defense-free baseline of the *same* trace, and reports
//! victim-refresh counts, refresh-energy overhead, performance slowdown,
//! and ground-truth bit flips.
//!
//! * [`scenarios`] — the catalog: [`DefenseSpec`] (Graphene, PARA, PRoHIT,
//!   MRLoc, CBT, TWiCe, Ideal, None) and [`WorkloadSpec`] (S1–S4, the
//!   Figure 7 patterns, SPEC-like mixes).
//! * [`runner`] — baseline-relative execution of one (defense, workload)
//!   pair and parallel matrices of pairs.
//! * [`pool`] — the std-only work-stealing thread pool the matrix sweep
//!   fans its (workload × defense) grid out on.
//! * [`sharded`] — the full-system path: accesses streamed through a
//!   [`memctrl::MappingPolicy`] router into per-channel shards that drain
//!   bounded [`spsc`] queues concurrently on the same pool, bit-identical
//!   to sequential execution at every worker count.
//! * [`spsc`] — the std-only bounded single-producer/single-consumer ring
//!   the streaming pipeline is built on.
//! * [`faulted`] — the resilience matrix: seeded fault plans crossed with
//!   defenses and workloads, measuring false negatives, audit detections,
//!   and graceful degradation under injected tracker, controller, and
//!   harness faults.
//! * [`fleet`] — bounded-memory fleet replay: RHT3 traces streamed from
//!   disk through the sharded pipeline in checkpointed segments, with
//!   bit-identical kill/resume via `fleetckpt.v1` checkpoints and
//!   multi-tenant trace synthesis.
//! * [`arena`] — the tracker arena: Graphene, CoMeT, ABACuS, and
//!   BlockHammer head to head across attack workloads and thresholds,
//!   each audited cell scored on security (exact or bounded-FN
//!   certificate), slowdown, area, and energy.
//! * [`generations`] — the cross-generation matrix: the same lineup raced
//!   on every DRAM generation ([`dram_model::Generation`]) with
//!   per-generation derived parameters, RFM-issuing defenses on DDR5 and
//!   LPDDR5, and a DDR4 column pinned bit-identical to the legacy path.
//!
//! # Example
//!
//! ```
//! use rh_sim::{DefenseSpec, SimConfig, WorkloadSpec};
//!
//! let cfg = SimConfig::attack_bank(5_000, 20_000);
//! let report = rh_sim::run_pair(
//!     &cfg,
//!     &DefenseSpec::Graphene { t_rh: 5_000, k: 2 },
//!     &WorkloadSpec::S3,
//! );
//! assert_eq!(report.stats.bit_flips, 0);
//! ```

pub mod arena;
pub mod faulted;
pub mod fleet;
pub mod generations;
pub mod pool;
pub mod runner;
pub mod scenarios;
pub mod sharded;
pub mod spsc;

pub use arena::{arena_lineup, run_arena, ArenaCell, ArenaConfig};
pub use faulted::{
    plan_label, run_matrix_faulted, CellOutcome, FaultedRun, ResilienceCell, ResilienceReport,
};
pub use fleet::{
    read_fleet_checkpoint, run_fleet, run_fleet_supervised, synth_fleet_trace,
    write_fleet_checkpoint, CheckpointStore, CkptFingerprint, FleetCheckpoint, FleetConfig,
    FleetError, FleetProgress, FleetReport, SupervisorConfig, SupervisorReport,
    FLEET_CKPT_FOOTER_SCHEMA, FLEET_CKPT_SCHEMA, FLEET_CKPT_SCHEMA_V1,
};
pub use generations::{
    generation_lineup, run_generation_matrix, GenerationCell, GenerationMatrixConfig,
};
pub use pool::{PoolReport, WatchdogConfig};
pub use runner::{
    run_matrix, run_matrix_telemetry, run_pair, try_run_matrix, try_run_matrix_telemetry,
    CellFailure, CellTelemetry, MatrixError, MatrixTelemetry, SimConfig, SimReport, TelemetrySpec,
};
pub use scenarios::{DefenseSpec, GenSpec, SpecParseError, WorkloadSpec};
pub use sharded::{run_system, run_system_matrix, run_system_sharded, SystemReport};
