//! Baseline-relative execution and parallel sweeps.

use dram_model::fault::DisturbanceModel;
use memctrl::{McConfig, MemoryController, RunStats};
use rh_analysis::EnergyModel;
use serde::{Deserialize, Serialize};

use crate::scenarios::{DefenseSpec, WorkloadSpec};

/// Configuration of one simulation campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Memory-controller/system configuration used for *normal* workloads.
    pub system: McConfig,
    /// Memory-controller configuration used for *adversarial* workloads
    /// (single bank, as in §V-B's per-bank attack accounting).
    pub attack: McConfig,
    /// Accesses per run.
    pub accesses: u64,
    /// Workload seed (identical traces across defenses).
    pub seed: u64,
}

impl SimConfig {
    /// The paper's system at `T_RH = 50K` with the fault oracle armed.
    pub fn micro2020(accesses: u64) -> Self {
        SimConfig {
            system: McConfig::micro2020(),
            attack: McConfig::single_bank(65_536, Some(DisturbanceModel::ddr4_50k())),
            accesses,
            seed: 42,
        }
    }

    /// Like [`SimConfig::micro2020`] with a custom Row Hammer threshold
    /// (Figure 9 scaling runs).
    pub fn with_threshold(t_rh: u64, accesses: u64) -> Self {
        let model = DisturbanceModel { t_rh, ..DisturbanceModel::ddr4_50k() };
        let mut cfg = Self::micro2020(accesses);
        cfg.system.fault_model = Some(model.clone());
        cfg.attack.fault_model = Some(model);
        cfg
    }

    /// A fast single-bank configuration for tests: threshold `t_rh`, fault
    /// oracle armed, `accesses` accesses.
    pub fn attack_bank(t_rh: u64, accesses: u64) -> Self {
        let model = DisturbanceModel { t_rh, ..DisturbanceModel::ddr4_50k() };
        SimConfig {
            system: McConfig::single_bank(65_536, Some(model.clone())),
            attack: McConfig::single_bank(65_536, Some(model)),
            accesses,
            seed: 42,
        }
    }

    fn mc_config_for(&self, workload: &WorkloadSpec) -> &McConfig {
        if workload.is_adversarial() {
            &self.attack
        } else {
            &self.system
        }
    }
}

/// Result of one (defense, workload) pair, relative to the defense-free
/// baseline of the same trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Defense name.
    pub defense: String,
    /// Workload name.
    pub workload: String,
    /// Raw run counters.
    pub stats: RunStats,
    /// Refresh-energy increase versus auto-refresh over the run (fraction).
    pub energy_overhead: f64,
    /// Completion-time slowdown versus the defense-free baseline (fraction).
    pub slowdown: f64,
    /// Mean-access-latency increase versus the baseline (fraction). More
    /// sensitive than completion time on underloaded systems, where defense
    /// refreshes hide in idle gaps but still delay the requests they collide
    /// with.
    pub latency_increase: f64,
    /// The paper's metric: weighted-speedup loss versus the baseline,
    /// computed from per-stream (per-core) mean latencies (fraction; 0 = no
    /// degradation).
    pub weighted_speedup_loss: f64,
}

impl SimReport {
    /// Victim-refresh commands per million activations — the false-positive
    /// rate counter-based schemes are judged by on normal workloads.
    pub fn refreshes_per_macts(&self) -> f64 {
        if self.stats.activations == 0 {
            0.0
        } else {
            self.stats.defense_refresh_commands as f64 * 1e6 / self.stats.activations as f64
        }
    }
}

fn execute(
    cfg: &McConfig,
    defense: &DefenseSpec,
    workload: &WorkloadSpec,
    accesses: u64,
    seed: u64,
) -> RunStats {
    let rows = cfg.geometry.rows_per_bank;
    let mut mc = MemoryController::new(cfg.clone(), |bank| defense.build(bank, rows));
    let mut w = workload.build(cfg.geometry.total_banks() as u16, rows, seed);
    mc.run(w.as_mut(), accesses)
}

/// Builds the baseline-relative report for one finished run — the single
/// place the report recipe lives, shared by [`run_pair`] and [`run_matrix`].
fn report_for(
    defense: &DefenseSpec,
    workload: &WorkloadSpec,
    stats: RunStats,
    baseline: &RunStats,
    energy: EnergyModel,
    banks: u32,
) -> SimReport {
    let energy_overhead =
        energy.refresh_energy_overhead(stats.victim_rows_refreshed, stats.completion, banks);
    let slowdown = stats.slowdown_vs(baseline);
    let latency_increase = latency_increase(&stats, baseline);
    let weighted_speedup_loss = stats.weighted_speedup_loss_vs(baseline);
    SimReport {
        defense: defense.name(),
        workload: workload.name(),
        stats,
        energy_overhead,
        slowdown,
        latency_increase,
        weighted_speedup_loss,
    }
}

/// Runs one (defense, workload) pair plus its defense-free baseline and
/// returns the relative report.
pub fn run_pair(cfg: &SimConfig, defense: &DefenseSpec, workload: &WorkloadSpec) -> SimReport {
    let mc_cfg = cfg.mc_config_for(workload);
    let baseline = execute(mc_cfg, &DefenseSpec::None, workload, cfg.accesses, cfg.seed);
    let stats = execute(mc_cfg, defense, workload, cfg.accesses, cfg.seed);
    report_for(
        defense,
        workload,
        stats,
        &baseline,
        EnergyModel::micro2020(),
        mc_cfg.geometry.total_banks(),
    )
}

fn latency_increase(stats: &memctrl::RunStats, baseline: &memctrl::RunStats) -> f64 {
    if baseline.mean_latency() == 0.0 {
        0.0
    } else {
        stats.mean_latency() / baseline.mean_latency() - 1.0
    }
}

/// Runs the full (defenses × workloads) matrix in parallel and returns the
/// reports in (workload-major, defense-minor) order.
///
/// Every cell of the grid is an independent job on a work-stealing pool
/// ([`crate::pool`]): one baseline job per workload, which on completion
/// fans out one job per defense sharing that baseline. Compared to the old
/// one-thread-per-workload scheme (defenses serial within each thread), a
/// slow workload no longer serializes its D defense runs on a single core,
/// and the thread count is bounded by the host's parallelism rather than
/// the number of workloads.
///
/// The defense-free baseline of each workload is executed once and shared by
/// every defense of that workload (unlike repeated [`run_pair`] calls, which
/// would re-run it per pair).
pub fn run_matrix(
    cfg: &SimConfig,
    defenses: &[DefenseSpec],
    workloads: &[WorkloadSpec],
) -> Vec<SimReport> {
    use std::sync::{Arc, Mutex};

    let energy = EnergyModel::micro2020();
    let n_def = defenses.len();
    let slots: Vec<Mutex<Option<SimReport>>> =
        (0..workloads.len() * n_def).map(|_| Mutex::new(None)).collect();

    // One job per grid cell plus one baseline per workload can be in flight;
    // more threads than that (or than the host has cores) would only idle.
    let jobs_upper_bound = workloads.len() * (n_def + 1);
    let threads =
        std::thread::available_parallelism().map_or(4, usize::from).min(jobs_upper_bound).max(1);

    let slots_ref = &slots;
    let initial: Vec<crate::pool::Job<'_>> = workloads
        .iter()
        .enumerate()
        .map(|(wi, workload)| {
            crate::pool::job(move |spawner| {
                let mc_cfg = cfg.mc_config_for(workload);
                let banks = mc_cfg.geometry.total_banks();
                let baseline =
                    Arc::new(execute(mc_cfg, &DefenseSpec::None, workload, cfg.accesses, cfg.seed));
                for (di, defense) in defenses.iter().enumerate() {
                    let baseline = Arc::clone(&baseline);
                    spawner.spawn(move |_| {
                        let stats = execute(mc_cfg, defense, workload, cfg.accesses, cfg.seed);
                        let report = report_for(defense, workload, stats, &baseline, energy, banks);
                        *slots_ref[wi * n_def + di].lock().expect("result slot poisoned") =
                            Some(report);
                    });
                }
            })
        })
        .collect();
    crate::pool::run_scoped(threads, initial);

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every grid cell filled by the pool")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graphene_on_s3_is_clean_and_cheap() {
        let cfg = SimConfig::attack_bank(5_000, 30_000);
        let r = run_pair(&cfg, &DefenseSpec::Graphene { t_rh: 5_000, k: 2 }, &WorkloadSpec::S3);
        assert_eq!(r.stats.bit_flips, 0);
        assert!(r.stats.defense_refresh_commands > 0);
        assert!(r.energy_overhead < 0.05, "energy {}", r.energy_overhead);
    }

    #[test]
    fn no_defense_on_s3_flips() {
        let cfg = SimConfig::attack_bank(5_000, 30_000);
        let r = run_pair(&cfg, &DefenseSpec::None, &WorkloadSpec::S3);
        assert!(r.stats.bit_flips > 0);
        assert_eq!(r.slowdown, 0.0);
    }

    #[test]
    fn cbt_slower_than_graphene_on_attack() {
        let cfg = SimConfig::attack_bank(5_000, 30_000);
        let g = run_pair(&cfg, &DefenseSpec::Graphene { t_rh: 5_000, k: 2 }, &WorkloadSpec::S3);
        let c = run_pair(&cfg, &DefenseSpec::Cbt { t_rh: 5_000 }, &WorkloadSpec::S3);
        assert_eq!(c.stats.bit_flips, 0, "CBT must protect");
        assert!(
            c.stats.victim_rows_refreshed > g.stats.victim_rows_refreshed,
            "CBT bursts ({}) should dwarf Graphene ({})",
            c.stats.victim_rows_refreshed,
            g.stats.victim_rows_refreshed
        );
    }

    #[test]
    fn matrix_runs_all_pairs_in_order() {
        let cfg = SimConfig::attack_bank(5_000, 5_000);
        let defenses =
            [DefenseSpec::Graphene { t_rh: 5_000, k: 2 }, DefenseSpec::Para { p: 0.001 }];
        let workloads = [WorkloadSpec::S3, WorkloadSpec::S1 { n: 10 }];
        let reports = run_matrix(&cfg, &defenses, &workloads);
        assert_eq!(reports.len(), 4);
        assert_eq!(reports[0].workload, "S3");
        assert_eq!(reports[0].defense, "Graphene");
        assert_eq!(reports[3].workload, "S1-10");
        assert_eq!(reports[3].defense, "PARA-0.001");
    }

    #[test]
    fn identical_traces_across_defenses() {
        // The baseline and the defended run must see the same trace: their
        // access counts and (for deterministic defenses) activation counts
        // coincide.
        let cfg = SimConfig::attack_bank(5_000, 10_000);
        let a = run_pair(&cfg, &DefenseSpec::None, &WorkloadSpec::S1 { n: 10 });
        let b = run_pair(&cfg, &DefenseSpec::Twice { t_rh: 5_000 }, &WorkloadSpec::S1 { n: 10 });
        assert_eq!(a.stats.accesses, b.stats.accesses);
        assert_eq!(a.stats.activations, b.stats.activations);
    }
}
