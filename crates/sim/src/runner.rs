//! Baseline-relative execution and parallel sweeps.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

use dram_model::fault::DisturbanceModel;
use memctrl::{
    DefenseFactory, McBuilder, McConfig, MemoryController, RunStats, StatsAudit, TelemetryTap,
};
use rh_analysis::EnergyModel;
use serde::{Deserialize, Serialize};
use telemetry::{Cadence, MetricsSink, NoopSink, Recorder, SharedSink, Snapshot};

use crate::scenarios::{DefenseSpec, WorkloadSpec};

/// Telemetry wiring for a campaign: how often instrumented defenses and the
/// controller tap sample, how much history each per-bank ring keeps, and
/// whether to use a recording sink at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetrySpec {
    /// Sample every this many ACTs (must be ≥ 1).
    pub every_acts: u64,
    /// Ring capacity per (metric, bank) series.
    pub ring_capacity: usize,
    /// Wire the instrumentation but with a [`NoopSink`]: nothing is
    /// recorded and the run must be bit-identical to an uninstrumented one.
    /// This is the configuration `perf_snapshot` measures.
    pub noop: bool,
}

impl TelemetrySpec {
    /// Recording telemetry sampling every `every_acts` ACTs.
    pub fn every_acts(every_acts: u64) -> Self {
        assert!(every_acts > 0, "telemetry cadence of 0 never fires");
        TelemetrySpec { every_acts, ring_capacity: telemetry::DEFAULT_RING_CAPACITY, noop: false }
    }

    /// Instrumentation wired but discarding everything (overhead probes).
    pub fn noop() -> Self {
        TelemetrySpec { noop: true, ..TelemetrySpec::every_acts(1_000) }
    }
}

impl Default for TelemetrySpec {
    fn default() -> Self {
        TelemetrySpec::every_acts(1_000)
    }
}

/// Configuration of one simulation campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Memory-controller/system configuration used for *normal* workloads.
    pub system: McConfig,
    /// Memory-controller configuration used for *adversarial* workloads
    /// (single bank, as in §V-B's per-bank attack accounting).
    pub attack: McConfig,
    /// Accesses per run.
    pub accesses: u64,
    /// Workload seed (identical traces across defenses).
    pub seed: u64,
    /// Run the invariant audit: wrap every defense in
    /// [`mitigations::AuditedDefense`], check [`StatsAudit`] at run end,
    /// and cross-check the fault oracle's ground truth. On by default in
    /// the test configurations ([`SimConfig::attack_bank`]); the `RH_AUDIT`
    /// environment variable forces it on everywhere (the `--audit` flag of
    /// rh-bench sets it).
    pub audit: bool,
    /// Telemetry wiring; `None` runs completely uninstrumented (the
    /// historical behavior and the default everywhere).
    pub telemetry: Option<TelemetrySpec>,
}

impl SimConfig {
    /// The paper's system at `T_RH = 50K` with the fault oracle armed.
    pub fn micro2020(accesses: u64) -> Self {
        SimConfig {
            system: McConfig::micro2020(),
            attack: McConfig::single_bank(65_536, Some(DisturbanceModel::ddr4_50k())),
            accesses,
            seed: 42,
            audit: false,
            telemetry: None,
        }
    }

    /// Like [`SimConfig::micro2020`] with a custom Row Hammer threshold
    /// (Figure 9 scaling runs).
    pub fn with_threshold(t_rh: u64, accesses: u64) -> Self {
        let model = DisturbanceModel { t_rh, ..DisturbanceModel::ddr4_50k() };
        let mut cfg = Self::micro2020(accesses);
        cfg.system.fault_model = Some(model.clone());
        cfg.attack.fault_model = Some(model);
        cfg
    }

    /// A fast single-bank configuration for tests: threshold `t_rh`, fault
    /// oracle armed, `accesses` accesses, invariant audit on.
    pub fn attack_bank(t_rh: u64, accesses: u64) -> Self {
        let model = DisturbanceModel { t_rh, ..DisturbanceModel::ddr4_50k() };
        SimConfig {
            system: McConfig::single_bank(65_536, Some(model.clone())),
            attack: McConfig::single_bank(65_536, Some(model)),
            accesses,
            seed: 42,
            audit: true,
            telemetry: None,
        }
    }

    pub(crate) fn mc_config_for(&self, workload: &WorkloadSpec) -> &McConfig {
        if workload.is_adversarial() {
            &self.attack
        } else {
            &self.system
        }
    }

    /// Whether this campaign runs audited: the config flag, or the
    /// `RH_AUDIT` environment override.
    pub fn audit_enabled(&self) -> bool {
        self.audit || std::env::var_os("RH_AUDIT").is_some()
    }
}

/// Result of one (defense, workload) pair, relative to the defense-free
/// baseline of the same trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Defense name.
    pub defense: String,
    /// Workload name.
    pub workload: String,
    /// Raw run counters.
    pub stats: RunStats,
    /// Refresh-energy increase versus auto-refresh over the run (fraction).
    pub energy_overhead: f64,
    /// Completion-time slowdown versus the defense-free baseline (fraction).
    pub slowdown: f64,
    /// Mean-access-latency increase versus the baseline (fraction). More
    /// sensitive than completion time on underloaded systems, where defense
    /// refreshes hide in idle gaps but still delay the requests they collide
    /// with.
    pub latency_increase: f64,
    /// The paper's metric: weighted-speedup loss versus the baseline,
    /// computed from per-stream (per-core) mean latencies (fraction; 0 = no
    /// degradation).
    pub weighted_speedup_loss: f64,
}

impl SimReport {
    /// Victim-refresh commands per million activations — the false-positive
    /// rate counter-based schemes are judged by on normal workloads.
    pub fn refreshes_per_macts(&self) -> f64 {
        if self.stats.activations == 0 {
            0.0
        } else {
            self.stats.defense_refresh_commands as f64 * 1e6 / self.stats.activations as f64
        }
    }
}

fn execute(
    cfg: &McConfig,
    defense: &DefenseSpec,
    workload: &WorkloadSpec,
    accesses: u64,
    seed: u64,
    audit: bool,
) -> RunStats {
    let rows = cfg.geometry.rows_per_bank;
    let mut mc = McBuilder::new(cfg.clone()).defenses(defense).audit(audit).build();
    let mut w = workload.build(cfg.geometry.total_banks() as u16, rows, seed);
    let stats = mc.run(w.as_mut(), accesses);
    if audit {
        audit_run(&mc, &stats, defense, workload);
    }
    stats
}

/// [`execute`] with the telemetry wiring of `spec`: every defense goes
/// through [`mitigations::instrumented`] and the controller gets a
/// [`TelemetryTap`], all feeding one shared recorder per cell. With
/// `spec.noop` (or `spec == None`, which skips the wiring entirely) no
/// snapshot is produced.
fn execute_cell(
    cfg: &McConfig,
    spec: Option<&TelemetrySpec>,
    defense: &DefenseSpec,
    workload: &WorkloadSpec,
    accesses: u64,
    seed: u64,
    audit: bool,
) -> (RunStats, Option<Snapshot>) {
    let Some(spec) = spec else {
        return (execute(cfg, defense, workload, accesses, seed, audit), None);
    };
    let rows = cfg.geometry.rows_per_bank;
    let shared = (!spec.noop)
        .then(|| SharedSink::with_recorder(Recorder::with_ring_capacity(spec.ring_capacity)));
    let cadence = Cadence::EveryActs(spec.every_acts);
    let sink_for = |shared: &Option<SharedSink>| -> Box<dyn MetricsSink + Send> {
        match shared {
            Some(s) => Box::new(s.clone()),
            None => Box::new(NoopSink),
        }
    };
    // Honor the all-bank factory path under instrumentation too: pre-build
    // the shared pool (ABACuS) and drain it in bank order, falling back to
    // the per-bank factory for everything else. Each facade still gets its
    // own instrumentation wrapper, so per-bank series stay per-bank.
    let mut all_bank_pool =
        defense.build_all_bank(0, cfg.geometry.total_banks(), rows, audit).map(Vec::into_iter);
    let mut mc = McBuilder::new(cfg.clone())
        .defenses_with(|bank| {
            let inner = match all_bank_pool.as_mut() {
                Some(pool) => pool.next().expect("all-bank defense pool exhausted"),
                None => defense.build_defense(bank, rows, audit),
            };
            mitigations::instrumented(inner, sink_for(&shared), bank as u16, rows, cadence)
        })
        .telemetry(TelemetryTap::new(sink_for(&shared), cadence))
        .build();
    let mut w = workload.build(cfg.geometry.total_banks() as u16, rows, seed);
    let stats = mc.run(w.as_mut(), accesses);
    if audit {
        audit_run(&mc, &stats, defense, workload);
    }
    let snapshot = shared.map(|s| {
        // One final scheme-state sample at completion time — the trajectory
        // would otherwise stop at the last cadence boundary.
        s.with(|rec| {
            for bank in 0..cfg.geometry.total_banks() as usize {
                mc.defense(bank).emit_telemetry(bank as u16, stats.completion, rec);
            }
        });
        s.snapshot(&format!("{}/{}", workload.name(), defense.name()))
    });
    (stats, snapshot)
}

/// End-of-run invariant audit: the cross-counter checks of [`StatsAudit`]
/// plus, when the fault oracle is armed, the ground-truth cross-check —
/// the per-bank flip counts must sum to the reported total, and a
/// zero-flip verdict must be backed by every bank's worst disturbance
/// staying below `T_RH`.
pub(crate) fn audit_run(
    mc: &MemoryController,
    stats: &RunStats,
    defense: &DefenseSpec,
    workload: &WorkloadSpec,
) {
    if let Err(findings) = StatsAudit::check_at(stats, mc.clock()) {
        let list: Vec<String> = findings.iter().map(ToString::to_string).collect();
        panic!(
            "stats audit failed for {} on {}: {}",
            defense.name(),
            workload.name(),
            list.join("; ")
        );
    }
    if mc.config().fault_model.is_none() {
        return;
    }
    let banks = mc.config().geometry.total_banks() as usize;
    let mut oracle_flips = 0u64;
    for bank in 0..banks {
        let oracle = mc.oracle(bank).expect("fault model armed");
        oracle_flips += oracle.flip_count();
        if stats.bit_flips == 0 {
            let margin = oracle.max_disturbance();
            let t_rh = oracle.threshold_acts();
            assert!(
                margin < t_rh,
                "ground-truth audit failed for {} on {}: zero flips reported but bank \
                 {bank}'s hottest victim accumulated {margin:.1} of {t_rh:.1} ACT-equivalents",
                defense.name(),
                workload.name()
            );
        }
    }
    assert_eq!(
        oracle_flips,
        stats.bit_flips,
        "ground-truth audit failed for {} on {}: oracles saw {oracle_flips} flip(s) but the \
         run reported {}",
        defense.name(),
        workload.name(),
        stats.bit_flips
    );
}

/// Audit-mode cross-run check: the defended run and its baseline saw the
/// same trace, so they must have activated the same stream set — anything
/// else silently skews the weighted-speedup metric.
fn audit_cross(stats: &RunStats, baseline: &RunStats, defense: &DefenseSpec, w: &WorkloadSpec) {
    if let Err(findings) = StatsAudit::check_cross(stats, baseline) {
        let list: Vec<String> = findings.iter().map(ToString::to_string).collect();
        panic!(
            "cross-run audit failed for {} on {}: {}",
            defense.name(),
            w.name(),
            list.join("; ")
        );
    }
}

/// Builds the baseline-relative report for one finished run — the single
/// place the report recipe lives, shared by [`run_pair`] and [`run_matrix`].
fn report_for(
    defense: &DefenseSpec,
    workload: &WorkloadSpec,
    stats: RunStats,
    baseline: &RunStats,
    energy: EnergyModel,
    banks: u32,
) -> SimReport {
    let energy_overhead =
        energy.refresh_energy_overhead(stats.victim_rows_refreshed, stats.completion, banks);
    let slowdown = stats.slowdown_vs(baseline);
    let latency_increase = latency_increase(&stats, baseline);
    let weighted_speedup_loss = stats.weighted_speedup_loss_vs(baseline);
    SimReport {
        defense: defense.name(),
        workload: workload.name(),
        stats,
        energy_overhead,
        slowdown,
        latency_increase,
        weighted_speedup_loss,
    }
}

/// Runs one (defense, workload) pair plus its defense-free baseline and
/// returns the relative report.
pub fn run_pair(cfg: &SimConfig, defense: &DefenseSpec, workload: &WorkloadSpec) -> SimReport {
    let audit = cfg.audit_enabled();
    let mc_cfg = cfg.mc_config_for(workload);
    let baseline = execute(mc_cfg, &DefenseSpec::None, workload, cfg.accesses, cfg.seed, audit);
    let stats = execute(mc_cfg, defense, workload, cfg.accesses, cfg.seed, audit);
    if audit {
        audit_cross(&stats, &baseline, defense, workload);
    }
    report_for(
        defense,
        workload,
        stats,
        &baseline,
        EnergyModel::micro2020(),
        mc_cfg.geometry.total_banks(),
    )
}

fn latency_increase(stats: &memctrl::RunStats, baseline: &memctrl::RunStats) -> f64 {
    if baseline.mean_latency() == 0.0 {
        0.0
    } else {
        stats.mean_latency() / baseline.mean_latency() - 1.0
    }
}

/// One failed grid cell of [`try_run_matrix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// The workload of the failing cell.
    pub workload: String,
    /// The defense of the failing cell.
    pub defense: String,
    /// The panic message of the failing run.
    pub message: String,
}

/// One or more grid cells of a matrix sweep failed; every *other* cell
/// still ran to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixError {
    /// Every failing (workload, defense) pair with its panic message.
    pub failures: Vec<CellFailure>,
}

impl std::fmt::Display for MatrixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} matrix cell(s) failed:", self.failures.len())?;
        for c in &self.failures {
            writeln!(f, "  ({}, {}): {}", c.workload, c.defense, c.message)?;
        }
        Ok(())
    }
}

impl std::error::Error for MatrixError {}

/// Renders a caught panic payload for [`CellFailure::message`].
pub(crate) fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// The telemetry snapshot of one matrix cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellTelemetry {
    /// Workload name.
    pub workload: String,
    /// Defense name.
    pub defense: String,
    /// The cell's recorded snapshot.
    pub snapshot: Snapshot,
}

/// Reports plus telemetry from a matrix sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixTelemetry {
    /// Per-cell reports, (workload-major, defense-minor) as in
    /// [`try_run_matrix`].
    pub reports: Vec<SimReport>,
    /// Per-cell snapshots (empty when the campaign ran without a recording
    /// sink, i.e. `telemetry: None` or a noop spec).
    pub cells: Vec<CellTelemetry>,
    /// Live sweep progress: series `sweep.jobs_done` over wall-clock time
    /// (ps since sweep start), one sample per finished pool job.
    pub sweep: Snapshot,
}

impl MatrixTelemetry {
    /// Everything in one [`Snapshot`]: each cell's metrics prefixed with
    /// `"{workload}/{defense}/"`, the sweep-progress series unprefixed.
    /// This is what `telemetry-report` writes to disk.
    pub fn merged_snapshot(&self, source: &str) -> Snapshot {
        let mut out = Snapshot::empty(source);
        for cell in &self.cells {
            out.merge_prefixed(&format!("{}/{}/", cell.workload, cell.defense), &cell.snapshot);
        }
        out.merge_prefixed("", &self.sweep);
        out
    }
}

/// Runs the full (defenses × workloads) matrix in parallel and returns the
/// reports in (workload-major, defense-minor) order.
///
/// Every cell of the grid is an independent job on a work-stealing pool
/// ([`crate::pool`]): one baseline job per workload, which on completion
/// fans out one job per defense sharing that baseline. Compared to the old
/// one-thread-per-workload scheme (defenses serial within each thread), a
/// slow workload no longer serializes its D defense runs on a single core,
/// and the thread count is bounded by the host's parallelism rather than
/// the number of workloads.
///
/// The defense-free baseline of each workload is executed once and shared by
/// every defense of that workload (unlike repeated [`run_pair`] calls, which
/// would re-run it per pair).
///
/// A panicking cell no longer aborts the whole sweep with a poisoned-slot
/// panic: each cell runs under `catch_unwind`, the rest of the grid
/// completes, and the error names every failing (workload, defense) pair.
/// A panicking *baseline* fails all of that workload's cells, since they
/// have nothing to compare against.
///
/// # Errors
///
/// Returns [`MatrixError`] listing each failed cell.
pub fn try_run_matrix(
    cfg: &SimConfig,
    defenses: &[DefenseSpec],
    workloads: &[WorkloadSpec],
) -> Result<Vec<SimReport>, MatrixError> {
    try_run_matrix_telemetry(cfg, defenses, workloads).map(|m| m.reports)
}

/// [`try_run_matrix`] keeping the telemetry: per-cell snapshots (when
/// `cfg.telemetry` is a recording spec) and the live sweep-progress series
/// sampled from the work-stealing pool's completion stream.
///
/// The defense-free baselines run uninstrumented — they define the
/// reference timing and should not appear in defense-labelled series.
///
/// # Errors
///
/// Returns [`MatrixError`] listing each failed cell, like
/// [`try_run_matrix`].
pub fn try_run_matrix_telemetry(
    cfg: &SimConfig,
    defenses: &[DefenseSpec],
    workloads: &[WorkloadSpec],
) -> Result<MatrixTelemetry, MatrixError> {
    use std::sync::{Arc, Mutex};

    let audit = cfg.audit_enabled();
    let energy = EnergyModel::micro2020();
    let spec = cfg.telemetry.as_ref();
    let n_def = defenses.len();
    type CellResult = Result<(SimReport, Option<Snapshot>), String>;
    let slots: Vec<Mutex<Option<CellResult>>> =
        (0..workloads.len() * n_def).map(|_| Mutex::new(None)).collect();

    // One job per grid cell plus one baseline per workload can be in flight;
    // more threads than that (or than the host has cores) would only idle.
    let jobs_upper_bound = workloads.len() * (n_def + 1);
    let threads =
        std::thread::available_parallelism().map_or(4, usize::from).min(jobs_upper_bound).max(1);

    // Live sweep progress: one sample per finished pool job, timestamped in
    // wall-clock picoseconds since sweep start.
    let sweep_sink = spec.filter(|s| !s.noop).map(|_| SharedSink::new());
    let sweep_start = std::time::Instant::now();
    let observe = sweep_sink.clone().map(|sink| {
        move |done: usize| {
            let t_ps = sweep_start.elapsed().as_nanos() as u64 * 1_000;
            sink.with(|rec| rec.sample("sweep.jobs_done", 0, t_ps, done as f64));
        }
    });

    let slots_ref = &slots;
    let initial: Vec<crate::pool::Job<'_>> = workloads
        .iter()
        .enumerate()
        .map(|(wi, workload)| {
            crate::pool::job(move |spawner| {
                let mc_cfg = cfg.mc_config_for(workload);
                let banks = mc_cfg.geometry.total_banks();
                let baseline = match catch_unwind(AssertUnwindSafe(|| {
                    execute(mc_cfg, &DefenseSpec::None, workload, cfg.accesses, cfg.seed, audit)
                })) {
                    Ok(b) => Arc::new(b),
                    Err(payload) => {
                        let msg = format!("baseline panicked: {}", payload_message(&*payload));
                        for di in 0..n_def {
                            *slots_ref[wi * n_def + di].lock().expect("result slot poisoned") =
                                Some(Err(msg.clone()));
                        }
                        return;
                    }
                };
                for (di, defense) in defenses.iter().enumerate() {
                    let baseline = Arc::clone(&baseline);
                    spawner.spawn(move |_| {
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            let (stats, snapshot) = execute_cell(
                                mc_cfg,
                                spec,
                                defense,
                                workload,
                                cfg.accesses,
                                cfg.seed,
                                audit,
                            );
                            if audit {
                                audit_cross(&stats, &baseline, defense, workload);
                            }
                            (
                                report_for(defense, workload, stats, &baseline, energy, banks),
                                snapshot,
                            )
                        }))
                        .map_err(|payload| payload_message(&*payload));
                        *slots_ref[wi * n_def + di].lock().expect("result slot poisoned") =
                            Some(result);
                    });
                }
            })
        })
        .collect();
    let observer: Option<&(dyn Fn(usize) + Sync)> =
        observe.as_ref().map(|f| f as &(dyn Fn(usize) + Sync));
    crate::pool::run_scoped_observed(threads, initial, observer);

    let mut reports = Vec::with_capacity(slots.len());
    let mut cells = Vec::new();
    let mut failures = Vec::new();
    for (i, slot) in slots.into_iter().enumerate() {
        let cell = slot
            .into_inner()
            .expect("result slot poisoned")
            .expect("every grid cell filled by the pool");
        match cell {
            Ok((report, snapshot)) => {
                if let Some(snapshot) = snapshot {
                    cells.push(CellTelemetry {
                        workload: report.workload.clone(),
                        defense: report.defense.clone(),
                        snapshot,
                    });
                }
                reports.push(report);
            }
            Err(message) => failures.push(CellFailure {
                workload: workloads[i / n_def].name(),
                defense: defenses[i % n_def].name(),
                message,
            }),
        }
    }
    if !failures.is_empty() {
        return Err(MatrixError { failures });
    }
    let sweep = sweep_sink.map(|s| s.snapshot("sweep")).unwrap_or_else(|| Snapshot::empty("sweep"));
    Ok(MatrixTelemetry { reports, cells, sweep })
}

/// [`try_run_matrix`], panicking with the full failure list if any cell
/// failed.
///
/// # Panics
///
/// Panics with the [`MatrixError`] rendering when one or more cells panic.
pub fn run_matrix(
    cfg: &SimConfig,
    defenses: &[DefenseSpec],
    workloads: &[WorkloadSpec],
) -> Vec<SimReport> {
    try_run_matrix(cfg, defenses, workloads).unwrap_or_else(|e| panic!("{e}"))
}

/// [`try_run_matrix_telemetry`], panicking with the full failure list if any
/// cell failed.
///
/// # Panics
///
/// Panics with the [`MatrixError`] rendering when one or more cells panic.
pub fn run_matrix_telemetry(
    cfg: &SimConfig,
    defenses: &[DefenseSpec],
    workloads: &[WorkloadSpec],
) -> MatrixTelemetry {
    try_run_matrix_telemetry(cfg, defenses, workloads).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graphene_on_s3_is_clean_and_cheap() {
        let cfg = SimConfig::attack_bank(5_000, 30_000);
        let r = run_pair(&cfg, &DefenseSpec::Graphene { t_rh: 5_000, k: 2 }, &WorkloadSpec::S3);
        assert_eq!(r.stats.bit_flips, 0);
        assert!(r.stats.defense_refresh_commands > 0);
        assert!(r.energy_overhead < 0.05, "energy {}", r.energy_overhead);
    }

    #[test]
    fn no_defense_on_s3_flips() {
        let cfg = SimConfig::attack_bank(5_000, 30_000);
        let r = run_pair(&cfg, &DefenseSpec::None, &WorkloadSpec::S3);
        assert!(r.stats.bit_flips > 0);
        assert_eq!(r.slowdown, 0.0);
    }

    #[test]
    fn cbt_slower_than_graphene_on_attack() {
        let cfg = SimConfig::attack_bank(5_000, 30_000);
        let g = run_pair(&cfg, &DefenseSpec::Graphene { t_rh: 5_000, k: 2 }, &WorkloadSpec::S3);
        let c = run_pair(&cfg, &DefenseSpec::Cbt { t_rh: 5_000 }, &WorkloadSpec::S3);
        assert_eq!(c.stats.bit_flips, 0, "CBT must protect");
        assert!(
            c.stats.victim_rows_refreshed > g.stats.victim_rows_refreshed,
            "CBT bursts ({}) should dwarf Graphene ({})",
            c.stats.victim_rows_refreshed,
            g.stats.victim_rows_refreshed
        );
    }

    #[test]
    fn matrix_runs_all_pairs_in_order() {
        let cfg = SimConfig::attack_bank(5_000, 5_000);
        let defenses =
            [DefenseSpec::Graphene { t_rh: 5_000, k: 2 }, DefenseSpec::Para { p: 0.001 }];
        let workloads = [WorkloadSpec::S3, WorkloadSpec::S1 { n: 10 }];
        let reports = run_matrix(&cfg, &defenses, &workloads);
        assert_eq!(reports.len(), 4);
        assert_eq!(reports[0].workload, "S3");
        assert_eq!(reports[0].defense, "Graphene");
        assert_eq!(reports[3].workload, "S1-10");
        assert_eq!(reports[3].defense, "PARA-0.001");
    }

    #[test]
    fn poisoned_cell_is_isolated_and_named() {
        // Regression: one panicking cell used to poison its slot and abort
        // the whole sweep with "result slot poisoned", discarding every
        // other cell's result. Graphene{t_rh: 1} panics in the defense
        // factory (threshold too low to derive T).
        let cfg = SimConfig::attack_bank(5_000, 2_000);
        let defenses = [
            DefenseSpec::Para { p: 0.001 },
            DefenseSpec::Graphene { t_rh: 1, k: 2 },
            DefenseSpec::Twice { t_rh: 5_000 },
        ];
        let workloads = [WorkloadSpec::S3, WorkloadSpec::S1 { n: 10 }];
        let err = try_run_matrix(&cfg, &defenses, &workloads).unwrap_err();
        assert_eq!(err.failures.len(), 2, "one bad defense × two workloads");
        for f in &err.failures {
            assert_eq!(f.defense, "Graphene");
            assert!(!f.message.is_empty());
        }
        let shown = err.to_string();
        assert!(shown.contains("(S3, Graphene)"), "{shown}");
        assert!(shown.contains("(S1-10, Graphene)"), "{shown}");
    }

    #[test]
    fn healthy_matrix_returns_ok() {
        let cfg = SimConfig::attack_bank(5_000, 2_000);
        let reports =
            try_run_matrix(&cfg, &[DefenseSpec::Para { p: 0.001 }], &[WorkloadSpec::S3]).unwrap();
        assert_eq!(reports.len(), 1);
    }

    #[test]
    #[should_panic(expected = "matrix cell(s) failed")]
    fn run_matrix_panics_with_failing_pairs() {
        let cfg = SimConfig::attack_bank(5_000, 1_000);
        let _ = run_matrix(&cfg, &[DefenseSpec::Graphene { t_rh: 1, k: 2 }], &[WorkloadSpec::S3]);
    }

    #[test]
    fn identical_traces_across_defenses() {
        // The baseline and the defended run must see the same trace: their
        // access counts and (for deterministic defenses) activation counts
        // coincide.
        let cfg = SimConfig::attack_bank(5_000, 10_000);
        let a = run_pair(&cfg, &DefenseSpec::None, &WorkloadSpec::S1 { n: 10 });
        let b = run_pair(&cfg, &DefenseSpec::Twice { t_rh: 5_000 }, &WorkloadSpec::S1 { n: 10 });
        assert_eq!(a.stats.accesses, b.stats.accesses);
        assert_eq!(a.stats.activations, b.stats.activations);
    }
}
