//! The cross-generation defense matrix: the full tracker lineup raced on
//! every DRAM generation in one audited sweep.
//!
//! Every cell binds one defense to one [`Generation`] through
//! [`GenSpec`], so its parameters — reset window, tracking threshold,
//! table size — are re-derived from that generation's timing, and on the
//! generations that define Refresh Management (DDR5, LPDDR5) the defense
//! issues standardised RFM commands instead of raw neighbor-row refreshes.
//! The DDR4 column of the matrix is **bit-identical** to the legacy
//! pre-generation path; `ddr4_cells_are_bit_identical_to_the_legacy_path`
//! below pins that equivalence counter for counter.
//!
//! Like the tracker arena, every cell runs fully audited: the action audit
//! validates each refresh (RFM or NRR spelling), the fault oracle records
//! ground-truth disturbance, and the end-of-run invariant audit
//! cross-checks both.

use std::sync::Mutex;

use dram_model::fault::DisturbanceModel;
use dram_model::Generation;
use memctrl::{McBuilder, McConfig, RunStats};
use rh_analysis::EnergyModel;
use serde::Serialize;

use crate::pool;
use crate::scenarios::{DefenseSpec, GenSpec, WorkloadSpec};

/// Configuration of one cross-generation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationMatrixConfig {
    /// Generations to race (columns of the matrix).
    pub generations: Vec<Generation>,
    /// How many presets to take from the *tail* (harshest end) of each
    /// generation's `T_RH` ladder; saturates at the full ladder.
    pub preset_tail: usize,
    /// Attack workloads; system-scale ones run on the multi-bank config.
    pub workloads: Vec<WorkloadSpec>,
    /// Accesses per run.
    pub accesses: u64,
    /// Workload seed (identical traces across defenses and generations).
    pub seed: u64,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Banks in the multi-bank config used for system-scale workloads.
    pub system_banks: u8,
}

impl GenerationMatrixConfig {
    /// The full matrix: every generation, its entire preset ladder (down
    /// to `T_RH = 1K` on the RFM generations), single-bank and all-bank
    /// attack shapes.
    pub fn full() -> Self {
        GenerationMatrixConfig {
            generations: Generation::ALL.to_vec(),
            preset_tail: usize::MAX,
            workloads: vec![WorkloadSpec::S3, WorkloadSpec::SameRowAllBanks { banks: 16 }],
            accesses: 400_000,
            seed: 42,
            rows_per_bank: 65_536,
            system_banks: 16,
        }
    }

    /// A small matrix for CI smoke: three generations (one per refresh
    /// spelling: DDR4 NRR, DDR5 RFM, LPDDR5 RFM) at each ladder's harshest
    /// preset, single-row hammer only.
    pub fn smoke() -> Self {
        GenerationMatrixConfig {
            generations: vec![Generation::Ddr4_2400, Generation::Ddr5_4800, Generation::Lpddr5],
            preset_tail: 1,
            workloads: vec![WorkloadSpec::S3],
            accesses: 40_000,
            seed: 42,
            rows_per_bank: 65_536,
            system_banks: 4,
        }
    }

    /// The thresholds this sweep runs `generation` at: the tail (harshest
    /// end) of its preset ladder, in ladder order.
    pub fn thresholds_for(&self, generation: Generation) -> &'static [u64] {
        let presets = generation.t_rh_presets();
        &presets[presets.len().saturating_sub(self.preset_tail)..]
    }

    fn mc_config(&self, generation: Generation, t_rh: u64, workload: &WorkloadSpec) -> McConfig {
        let model = DisturbanceModel { t_rh, ..DisturbanceModel::ddr4_50k() };
        let mut cfg =
            McConfig::single_bank_for_generation(generation, self.rows_per_bank, Some(model));
        if workload.is_system_scale() {
            cfg.geometry.banks_per_rank = self.system_banks;
        }
        cfg
    }
}

/// The defense lineup of one matrix column: the defense-free baseline,
/// the probabilistic PARA baseline, and every first-class tracker, each
/// bound to `generation` (RFM-issuing where the generation defines it).
pub fn generation_lineup(generation: Generation, t_rh: u64) -> Vec<GenSpec> {
    let p = rh_analysis::security::paper_para_ladder()
        .iter()
        .find(|&&(t, _)| t == t_rh)
        .map(|&(_, p)| p)
        .unwrap_or(0.00145);
    [
        DefenseSpec::None,
        DefenseSpec::Para { p },
        DefenseSpec::Graphene { t_rh, k: 2 },
        DefenseSpec::Comet { t_rh },
        DefenseSpec::Abacus { t_rh, k: 2 },
        DefenseSpec::BlockHammer { t_rh },
    ]
    .into_iter()
    .map(|defense| GenSpec::new(generation, defense))
    .collect()
}

/// One scored cell of the cross-generation matrix.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GenerationCell {
    /// Generation name (`ddr4`, `ddr5`, `lpddr4x`, `lpddr5`).
    pub generation: String,
    /// Row Hammer threshold of this cell (a preset of the generation).
    pub t_rh: u64,
    /// Workload name.
    pub workload: String,
    /// Defense name (the inner scheme; RFM spelling is `rfm_mode`).
    pub defense: String,
    /// Parseable generation-qualified spec string ([`GenSpec::spec_string`]).
    pub spec: String,
    /// Whether the defense issued RFM commands instead of raw NRRs.
    pub rfm_mode: bool,
    /// Bit flips of the defended run (ground truth from the fault oracle).
    pub bit_flips: u64,
    /// Bit flips of the defense-free baseline on the identical trace.
    pub baseline_bit_flips: u64,
    /// Hottest victim's ACT-equivalent disturbance across banks (ceiled).
    pub max_disturbance: u64,
    /// Ground-truth verdict: zero flips and worst disturbance below `T_RH`.
    pub protected: bool,
    /// Defense-requested RFM commands executed by the controller.
    pub rfm_commands: u64,
    /// Untargeted RFMs the controller forced at the RAAMMT backstop.
    pub forced_rfms: u64,
    /// All defense refresh commands (NRR and RFM spellings).
    pub defense_refresh_commands: u64,
    /// Completion-time slowdown versus the defense-free baseline.
    pub slowdown: f64,
    /// Activations delayed through the throttle feedback path.
    pub throttled_acts: u64,
    /// Refresh-energy overhead, scored against the generation's tREFW.
    pub energy_overhead: f64,
}

/// Runs the cross-generation sweep, one worker-pool job per (generation,
/// threshold, workload) group, and returns the cells in deterministic
/// generation-major/threshold/workload/lineup order.
pub fn run_generation_matrix(cfg: &GenerationMatrixConfig) -> Vec<GenerationCell> {
    let groups: Vec<(Generation, u64, WorkloadSpec)> = cfg
        .generations
        .iter()
        .flat_map(|&g| {
            cfg.thresholds_for(g)
                .iter()
                .flat_map(move |&t_rh| cfg.workloads.iter().map(move |w| (g, t_rh, w.clone())))
        })
        .collect();
    let results: Mutex<Vec<(usize, Vec<GenerationCell>)>> = Mutex::new(Vec::new());
    let jobs: Vec<pool::Job> = groups
        .iter()
        .enumerate()
        .map(|(idx, (generation, t_rh, workload))| {
            let results = &results;
            let (generation, t_rh) = (*generation, *t_rh);
            pool::job(move |_spawner| {
                let cells = run_group(cfg, generation, t_rh, workload);
                results.lock().unwrap().push((idx, cells));
            })
        })
        .collect();
    let threads =
        std::thread::available_parallelism().map_or(4, usize::from).min(jobs.len()).max(1);
    pool::run_scoped(threads, jobs);
    let mut grouped = results.into_inner().unwrap();
    grouped.sort_by_key(|(idx, _)| *idx);
    grouped.into_iter().flat_map(|(_, cells)| cells).collect()
}

/// One (generation, threshold, workload) group: the defense-free baseline
/// plus every lineup defense on the identical trace.
fn run_group(
    cfg: &GenerationMatrixConfig,
    generation: Generation,
    t_rh: u64,
    workload: &WorkloadSpec,
) -> Vec<GenerationCell> {
    let mc_cfg = cfg.mc_config(generation, t_rh, workload);
    let energy = EnergyModel::for_timing(&generation.timing());
    let banks = mc_cfg.geometry.total_banks();
    let lineup = generation_lineup(generation, t_rh);
    let (baseline, baseline_dist) = run_cell(&mc_cfg, &lineup[0], workload, cfg.accesses, cfg.seed);
    lineup
        .iter()
        .map(|spec| {
            let (stats, max_disturbance) = if matches!(spec.defense, DefenseSpec::None) {
                (baseline.clone(), baseline_dist)
            } else {
                run_cell(&mc_cfg, spec, workload, cfg.accesses, cfg.seed)
            };
            GenerationCell {
                generation: generation.name().to_owned(),
                t_rh,
                workload: workload.name(),
                defense: spec.defense.name(),
                spec: spec.spec_string(),
                rfm_mode: spec.issues_rfm(),
                bit_flips: stats.bit_flips,
                baseline_bit_flips: baseline.bit_flips,
                max_disturbance,
                protected: stats.bit_flips == 0 && max_disturbance < t_rh,
                rfm_commands: stats.rfm_commands,
                forced_rfms: stats.forced_rfms,
                defense_refresh_commands: stats.defense_refresh_commands,
                slowdown: stats.slowdown_vs(&baseline),
                throttled_acts: stats.throttled_acts,
                energy_overhead: energy.refresh_energy_overhead(
                    stats.victim_rows_refreshed,
                    stats.completion,
                    banks,
                ),
            }
        })
        .collect()
}

/// Executes one audited run and extracts the ground-truth worst-case
/// disturbance from the per-bank oracles before the controller drops.
fn run_cell(
    mc_cfg: &McConfig,
    spec: &GenSpec,
    workload: &WorkloadSpec,
    accesses: u64,
    seed: u64,
) -> (RunStats, u64) {
    let rows = mc_cfg.geometry.rows_per_bank;
    let mut mc = McBuilder::new(mc_cfg.clone()).defenses(spec).audit(true).build();
    let mut w = workload.build(mc_cfg.geometry.total_banks() as u16, rows, seed);
    let stats = mc.run(w.as_mut(), accesses);
    crate::runner::audit_run(&mc, &stats, &spec.defense, workload);
    let max_disturbance = (0..mc_cfg.geometry.total_banks() as usize)
        .map(|bank| mc.oracle(bank).expect("matrix runs arm the fault oracle").max_disturbance())
        .fold(0.0_f64, f64::max);
    (stats, max_disturbance.ceil() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::DefenseSpec;

    #[test]
    fn lineup_covers_baselines_and_every_tracker() {
        let lineup = generation_lineup(Generation::Ddr5_4800, 1_000);
        let names: Vec<String> = lineup.iter().map(|s| s.defense.name()).collect();
        assert_eq!(names, ["None", "PARA-0.00145", "Graphene", "CoMeT", "ABACuS", "BlockHammer"]);
        for spec in &lineup {
            assert_eq!(GenSpec::parse(&spec.spec_string()).unwrap(), *spec);
        }
        // DDR4 lineup strings stay bare (the legacy notation).
        for spec in generation_lineup(Generation::Ddr4_2400, 1_560) {
            assert!(!spec.spec_string().contains('/'), "{}", spec.spec_string());
        }
    }

    #[test]
    fn ddr4_cells_are_bit_identical_to_the_legacy_path() {
        // The pin of the whole refactor: routing DDR4-2400 through the
        // generation API — config, factory, audit certificate — must not
        // move a single counter relative to the pre-generation path.
        let rows = 65_536u32;
        let t_rh = 1_560u64;
        let model = DisturbanceModel { t_rh, ..DisturbanceModel::ddr4_50k() };
        let legacy_cfg = McConfig::single_bank(rows, Some(model.clone()));
        let gen_cfg =
            McConfig::single_bank_for_generation(Generation::Ddr4_2400, rows, Some(model));
        assert_eq!(legacy_cfg, gen_cfg, "DDR4 generation config must equal the legacy config");
        for defense in [
            DefenseSpec::Graphene { t_rh, k: 2 },
            DefenseSpec::Comet { t_rh },
            DefenseSpec::Abacus { t_rh, k: 2 },
            DefenseSpec::BlockHammer { t_rh },
        ] {
            let workload = WorkloadSpec::S3;
            let legacy = {
                let mut mc =
                    McBuilder::new(legacy_cfg.clone()).defenses(&defense).audit(true).build();
                let mut w = workload.build(1, rows, 42);
                mc.run(w.as_mut(), 30_000)
            };
            let (generational, _) =
                run_cell(&gen_cfg, &GenSpec::ddr4(defense), &workload, 30_000, 42);
            assert_eq!(legacy, generational, "{} diverged on DDR4", defense.name());
        }
    }

    #[test]
    fn smoke_matrix_certifies_across_three_generations() {
        let cells = run_generation_matrix(&GenerationMatrixConfig::smoke());
        // 3 generations × 1 threshold × 1 workload × 6 lineup entries.
        assert_eq!(cells.len(), 3 * 6);
        for cell in &cells {
            assert!(
                cell.baseline_bit_flips > 0,
                "{}: S3 at the harshest preset must flip the unprotected baseline",
                cell.spec
            );
        }
        for cell in cells.iter().filter(|c| {
            matches!(c.defense.as_str(), "Graphene" | "CoMeT" | "ABACuS" | "BlockHammer")
        }) {
            assert_eq!(cell.bit_flips, 0, "{} let flips through", cell.spec);
            assert!(cell.protected, "{} failed ground truth: {cell:?}", cell.spec);
            match cell.generation.as_str() {
                // RFM generations: every defense refresh is an RFM, and the
                // spec string is generation-qualified.
                "ddr5" | "lpddr5" => {
                    assert!(cell.rfm_mode, "{}", cell.spec);
                    assert!(cell.spec.contains('/'), "{}", cell.spec);
                    if cell.defense_refresh_commands > 0 {
                        assert_eq!(
                            cell.rfm_commands, cell.defense_refresh_commands,
                            "{}: every defense refresh must be RFM-spelled",
                            cell.spec
                        );
                    }
                }
                // DDR4: no RFM machinery anywhere near the legacy path.
                _ => {
                    assert!(!cell.rfm_mode, "{}", cell.spec);
                    assert_eq!(cell.rfm_commands, 0, "{}", cell.spec);
                    assert_eq!(cell.forced_rfms, 0, "{}", cell.spec);
                }
            }
        }
        // The refresh-issuing trackers actually exercised RFM on DDR5.
        let ddr5_graphene = cells
            .iter()
            .find(|c| c.generation == "ddr5" && c.defense == "Graphene")
            .expect("ddr5 Graphene cell");
        assert!(ddr5_graphene.rfm_commands > 0, "{ddr5_graphene:?}");
    }

    #[test]
    fn cells_come_back_in_deterministic_generation_order() {
        let mut cfg = GenerationMatrixConfig::smoke();
        cfg.accesses = 4_000;
        let cells = run_generation_matrix(&cfg);
        let generations: Vec<&str> =
            cells.iter().map(|c| c.generation.as_str()).step_by(6).collect();
        assert_eq!(generations, ["ddr4", "ddr5", "lpddr5"]);
        let again = run_generation_matrix(&cfg);
        assert_eq!(cells, again, "generation matrix must be deterministic");
    }
}
