//! The tracker arena: Graphene, CoMeT, ABACuS, and BlockHammer head to
//! head across attack workloads and Row Hammer thresholds.
//!
//! Every cell runs fully audited — [`mitigations::AuditedDefense`] wraps
//! the tracker, the fault oracle records ground-truth disturbance, and the
//! end-of-run invariant audit cross-checks both — and is then scored along
//! the four axes the arena report tabulates:
//!
//! * **Security** — bit flips, the hottest victim's ACT-equivalent
//!   disturbance, and the scheme's certificate: the exact no-false-negative
//!   shadow oracle for Graphene and ABACuS (exact counters), the bounded-FN
//!   [`FnCertificate`] for CoMeT (collision-discount bound) and BlockHammer
//!   (deterministic rate cap).
//! * **Slowdown** — completion time against the defense-free baseline of
//!   the identical trace; BlockHammer is the interesting one, since it
//!   *throttles* instead of refreshing.
//! * **Area** — CAM/SRAM bits from each tracker's own
//!   [`table_bits`](mitigations::RowHammerDefense::table_bits); ABACuS rows
//!   report the per-bank *share* of the one shared all-bank table.
//! * **Energy** — victim-refresh energy plus first-order tracker
//!   lookup/leakage energy ([`EnergyModel::tracker_energy_overhead`]), with
//!   per-ACT touched bits modeling the structural difference between a CAM
//!   search (whole table) and a sketch probe (`depth` counters).

use std::sync::Mutex;

use dram_model::fault::DisturbanceModel;
use memctrl::{McBuilder, McConfig, RunStats};
use mitigations::{BlockHammerConfig, CometConfig, TableBits};
use rh_analysis::{ArenaAreaComparison, EnergyModel, FnCertificate};
use serde::Serialize;

use crate::pool;
use crate::scenarios::{DefenseSpec, WorkloadSpec};

/// Configuration of one arena sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ArenaConfig {
    /// Row Hammer thresholds to sweep (the Figure 9 ladder plus 1K in
    /// [`ArenaConfig::full`]).
    pub thresholds: Vec<u64>,
    /// Attack workloads; system-scale ones run on the multi-bank config.
    pub workloads: Vec<WorkloadSpec>,
    /// Accesses per run.
    pub accesses: u64,
    /// Workload seed (identical traces across defenses).
    pub seed: u64,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Banks in the multi-bank config used for system-scale workloads
    /// (single-controller, so ABACuS shares one table across all of them).
    pub system_banks: u8,
}

impl ArenaConfig {
    /// The full arena: all four trackers × three attack shapes × the
    /// Figure 9 threshold ladder extended down to `T_RH = 1K`.
    pub fn full() -> Self {
        ArenaConfig {
            thresholds: vec![50_000, 25_000, 12_500, 6_250, 3_125, 1_560, 1_000],
            workloads: vec![
                WorkloadSpec::S1 { n: 10 },
                WorkloadSpec::S3,
                WorkloadSpec::SameRowAllBanks { banks: 16 },
            ],
            accesses: 400_000,
            seed: 42,
            rows_per_bank: 65_536,
            system_banks: 16,
        }
    }

    /// A small matrix for CI smoke and fast mode: one mid-ladder threshold,
    /// the single-row hammer, and the ABACuS-adversarial all-banks pattern
    /// on a 4-bank system.
    pub fn smoke() -> Self {
        ArenaConfig {
            thresholds: vec![6_250],
            workloads: vec![WorkloadSpec::S3, WorkloadSpec::SameRowAllBanks { banks: 4 }],
            accesses: 40_000,
            seed: 42,
            rows_per_bank: 65_536,
            system_banks: 4,
        }
    }

    fn mc_config(&self, t_rh: u64, workload: &WorkloadSpec) -> McConfig {
        let model = DisturbanceModel { t_rh, ..DisturbanceModel::ddr4_50k() };
        let mut cfg = McConfig::single_bank(self.rows_per_bank, Some(model));
        if workload.is_system_scale() {
            cfg.geometry.banks_per_rank = self.system_banks;
        }
        cfg
    }
}

/// The arena lineup at one threshold: every first-class tracker, exact and
/// probabilistic, in fixed report order.
pub fn arena_lineup(t_rh: u64) -> Vec<DefenseSpec> {
    vec![
        DefenseSpec::Graphene { t_rh, k: 2 },
        DefenseSpec::Comet { t_rh },
        DefenseSpec::Abacus { t_rh, k: 2 },
        DefenseSpec::BlockHammer { t_rh },
    ]
}

/// One scored cell of the arena matrix.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ArenaCell {
    /// Row Hammer threshold of this cell.
    pub t_rh: u64,
    /// Workload name.
    pub workload: String,
    /// Defense name.
    pub defense: String,
    /// Parseable defense spec string ([`DefenseSpec::spec_string`]).
    pub spec: String,
    /// Bit flips of the defended run (ground truth from the fault oracle).
    pub bit_flips: u64,
    /// Bit flips of the defense-free baseline on the identical trace.
    pub baseline_bit_flips: u64,
    /// Hottest victim's ACT-equivalent disturbance across banks (ceiled).
    pub max_disturbance: u64,
    /// Certificate kind: `exact-no-fn` (shadow oracle) or `bounded-fn`
    /// ([`FnCertificate`]).
    pub cert_kind: &'static str,
    /// Whether the certificate held for this run.
    pub cert_passes: bool,
    /// Analytic per-window false-negative bound (zero for exact schemes).
    pub analytic_fn_bound: f64,
    /// Deterministic design margin claimed by the certificate.
    pub design_margin: f64,
    /// Observed near-miss margin `1 − max_disturbance / T_RH`.
    pub observed_margin: f64,
    /// Completion-time slowdown versus the defense-free baseline.
    pub slowdown: f64,
    /// Activations delayed by [`ThrottleDecision`](mitigations::ThrottleDecision).
    pub throttled_acts: u64,
    /// CAM bits per bank (ABACuS: per-bank share of the shared table).
    pub cam_bits: u64,
    /// SRAM bits per bank (same convention).
    pub sram_bits: u64,
    /// Refresh-plus-tracker energy overhead versus auto-refresh energy.
    pub energy_overhead: f64,
}

/// Runs the full arena sweep, one worker-pool job per (threshold, workload)
/// group, and returns the cells in deterministic
/// threshold-major/workload/lineup order.
pub fn run_arena(cfg: &ArenaConfig) -> Vec<ArenaCell> {
    let groups: Vec<(u64, WorkloadSpec)> = cfg
        .thresholds
        .iter()
        .flat_map(|&t_rh| cfg.workloads.iter().map(move |w| (t_rh, w.clone())))
        .collect();
    let results: Mutex<Vec<(usize, Vec<ArenaCell>)>> = Mutex::new(Vec::new());
    let jobs: Vec<pool::Job> = groups
        .iter()
        .enumerate()
        .map(|(idx, (t_rh, workload))| {
            let results = &results;
            let t_rh = *t_rh;
            pool::job(move |_spawner| {
                let cells = run_group(cfg, t_rh, workload);
                results.lock().unwrap().push((idx, cells));
            })
        })
        .collect();
    let threads =
        std::thread::available_parallelism().map_or(4, usize::from).min(jobs.len()).max(1);
    pool::run_scoped(threads, jobs);
    let mut grouped = results.into_inner().unwrap();
    grouped.sort_by_key(|(idx, _)| *idx);
    grouped.into_iter().flat_map(|(_, cells)| cells).collect()
}

/// One (threshold, workload) group: the defense-free baseline plus every
/// lineup tracker on the identical trace.
fn run_group(cfg: &ArenaConfig, t_rh: u64, workload: &WorkloadSpec) -> Vec<ArenaCell> {
    let mc_cfg = cfg.mc_config(t_rh, workload);
    let banks = mc_cfg.geometry.total_banks();
    let area = ArenaAreaComparison::at_threshold(t_rh, banks, cfg.rows_per_bank)
        .expect("arena thresholds must derive");
    let (baseline, _) = run_cell(&mc_cfg, &DefenseSpec::None, workload, cfg.accesses, cfg.seed);
    arena_lineup(t_rh)
        .into_iter()
        .map(|spec| {
            let (stats, max_disturbance) =
                run_cell(&mc_cfg, &spec, workload, cfg.accesses, cfg.seed);
            score_cell(cfg, &spec, workload, t_rh, banks, &area, &stats, &baseline, max_disturbance)
        })
        .collect()
}

/// Executes one audited run and extracts the ground-truth worst-case
/// disturbance from the per-bank oracles before the controller drops.
fn run_cell(
    mc_cfg: &McConfig,
    spec: &DefenseSpec,
    workload: &WorkloadSpec,
    accesses: u64,
    seed: u64,
) -> (RunStats, u64) {
    let rows = mc_cfg.geometry.rows_per_bank;
    let mut mc = McBuilder::new(mc_cfg.clone()).defenses(spec).audit(true).build();
    let mut w = workload.build(mc_cfg.geometry.total_banks() as u16, rows, seed);
    let stats = mc.run(w.as_mut(), accesses);
    crate::runner::audit_run(&mc, &stats, spec, workload);
    let max_disturbance = (0..mc_cfg.geometry.total_banks() as usize)
        .map(|bank| mc.oracle(bank).expect("arena runs arm the fault oracle").max_disturbance())
        .fold(0.0_f64, f64::max);
    (stats, max_disturbance.ceil() as u64)
}

#[allow(clippy::too_many_arguments)]
fn score_cell(
    cfg: &ArenaConfig,
    spec: &DefenseSpec,
    workload: &WorkloadSpec,
    t_rh: u64,
    banks: u32,
    area: &ArenaAreaComparison,
    stats: &RunStats,
    baseline: &RunStats,
    max_disturbance: u64,
) -> ArenaCell {
    let bits = table_bits_for(spec, area);
    let (cert_kind, cert, observed_margin) = certificate_for(spec, t_rh, cfg.rows_per_bank)
        .map_or_else(
            || {
                // Exact schemes: surviving the audited run *is* the
                // certificate — the shadow oracle asserted no-FN inline, so
                // here we only restate the ground truth.
                ("exact-no-fn", None, 1.0 - max_disturbance as f64 / t_rh as f64)
            },
            |c| {
                let check = c.check_observed(max_disturbance);
                ("bounded-fn", Some((c, check)), check.observed_margin)
            },
        );
    let (cert_passes, analytic_fn_bound, design_margin) = match cert {
        Some((c, check)) => {
            (check.passes && stats.bit_flips == 0, c.analytic_fn_bound, c.design_margin)
        }
        None => (stats.bit_flips == 0 && max_disturbance < t_rh, 0.0, 0.0),
    };
    ArenaCell {
        t_rh,
        workload: workload.name(),
        defense: spec.name(),
        spec: spec.spec_string(),
        bit_flips: stats.bit_flips,
        baseline_bit_flips: baseline.bit_flips,
        max_disturbance,
        cert_kind,
        cert_passes,
        analytic_fn_bound,
        design_margin,
        observed_margin,
        slowdown: stats.slowdown_vs(baseline),
        throttled_acts: stats.throttled_acts,
        cam_bits: bits.cam_bits,
        sram_bits: bits.sram_bits,
        energy_overhead: energy_overhead_for(spec, t_rh, cfg.rows_per_bank, &bits, stats, banks),
    }
}

/// The bounded-FN certificate for probabilistic trackers; `None` for the
/// exact ones (their certificate is the shadow oracle itself).
fn certificate_for(spec: &DefenseSpec, t_rh: u64, rows_per_bank: u32) -> Option<FnCertificate> {
    match spec {
        DefenseSpec::Comet { .. } => {
            Some(FnCertificate::comet(t_rh, rows_per_bank).expect("arena thresholds must derive"))
        }
        DefenseSpec::BlockHammer { .. } => Some(
            FnCertificate::blockhammer(t_rh, rows_per_bank).expect("arena thresholds must derive"),
        ),
        _ => None,
    }
}

fn table_bits_for(spec: &DefenseSpec, area: &ArenaAreaComparison) -> TableBits {
    match spec {
        DefenseSpec::Comet { .. } => area.comet,
        DefenseSpec::Abacus { .. } => area.abacus,
        DefenseSpec::BlockHammer { .. } => area.blockhammer,
        _ => area.graphene,
    }
}

/// Refresh energy plus first-order tracker energy. Per-ACT touched bits:
/// a CAM-based exact tracker searches its whole table every activation,
/// while CoMeT's sketch touches `depth` counters (one per hash row, i.e.
/// `sram / width` bits) plus a full search of its small recent-aggressor
/// CAM, and BlockHammer probes `depth` counters in each of its two
/// counting-Bloom filters (together `sram / width` bits — both filters
/// observe every ACT).
fn energy_overhead_for(
    spec: &DefenseSpec,
    t_rh: u64,
    rows_per_bank: u32,
    bits: &TableBits,
    stats: &RunStats,
    banks: u32,
) -> f64 {
    let touched = match spec {
        DefenseSpec::Comet { .. } => {
            let width = CometConfig::for_threshold(t_rh, rows_per_bank)
                .expect("arena thresholds must derive")
                .width as u64;
            bits.cam_bits + bits.sram_bits / width.max(1)
        }
        DefenseSpec::BlockHammer { .. } => {
            let width = BlockHammerConfig::for_threshold(t_rh, rows_per_bank)
                .expect("arena thresholds must derive")
                .width as u64;
            bits.sram_bits / width.max(1)
        }
        _ => bits.total(),
    };
    let energy = EnergyModel::micro2020();
    energy.refresh_energy_overhead(stats.victim_rows_refreshed, stats.completion, banks)
        + energy.tracker_energy_overhead(
            touched,
            bits.total(),
            stats.activations,
            stats.completion,
            banks,
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_is_the_four_first_class_trackers() {
        let names: Vec<String> = arena_lineup(6_250).iter().map(DefenseSpec::name).collect();
        assert_eq!(names, ["Graphene", "CoMeT", "ABACuS", "BlockHammer"]);
        for spec in arena_lineup(6_250) {
            assert_eq!(DefenseSpec::parse(&spec.spec_string()).unwrap(), spec);
        }
    }

    #[test]
    fn single_row_hammer_group_certifies_every_tracker() {
        let mut cfg = ArenaConfig::smoke();
        cfg.workloads = vec![WorkloadSpec::S3];
        let cells = run_arena(&cfg);
        assert_eq!(cells.len(), 4);
        for cell in &cells {
            assert!(
                cell.baseline_bit_flips > 0,
                "S3 at T_RH 6250 must flip the unprotected baseline"
            );
            assert_eq!(cell.bit_flips, 0, "{} let flips through", cell.defense);
            assert!(cell.cert_passes, "{} failed its certificate: {cell:?}", cell.defense);
            assert!(cell.max_disturbance < cell.t_rh);
            assert!(cell.observed_margin > 0.0);
            assert!(cell.cam_bits + cell.sram_bits > 0);
            // `slowdown_vs` reports the excess fraction (0.0 = baseline speed).
            assert!(cell.slowdown > -0.01, "{} sped up under defense?", cell.defense);
            assert!(cell.energy_overhead >= 0.0);
        }
        let kinds: Vec<&str> = cells.iter().map(|c| c.cert_kind).collect();
        assert_eq!(kinds, ["exact-no-fn", "bounded-fn", "exact-no-fn", "bounded-fn"]);
        let blockhammer = cells.iter().find(|c| c.defense == "BlockHammer").unwrap();
        assert!(blockhammer.throttled_acts > 0, "BlockHammer must throttle a hot row");
        assert!(blockhammer.design_margin > 0.2, "rate cap margin missing");
        let refreshers: u64 =
            cells.iter().filter(|c| c.defense != "BlockHammer").map(|c| c.throttled_acts).sum();
        assert_eq!(refreshers, 0, "refresh-based trackers never throttle");
    }

    #[test]
    fn same_row_all_banks_shows_the_shared_table_advantage() {
        let mut cfg = ArenaConfig::smoke();
        cfg.workloads = vec![WorkloadSpec::SameRowAllBanks { banks: 4 }];
        cfg.accesses = 36_000;
        let cells = run_arena(&cfg);
        let abacus = cells.iter().find(|c| c.defense == "ABACuS").unwrap();
        let graphene = cells.iter().find(|c| c.defense == "Graphene").unwrap();
        assert!(abacus.baseline_bit_flips > 0, "per-bank pressure must exceed T_RH unprotected");
        assert!(abacus.cert_passes && graphene.cert_passes);
        // The advantage: one shared table protects all banks, so the
        // per-bank share undercuts Graphene's per-bank footprint even at
        // only 4 banks (the gap widens with bank count — the 16-bank case
        // is covered by rh-analysis's arena area tests).
        let abacus_bits = abacus.cam_bits + abacus.sram_bits;
        let graphene_bits = graphene.cam_bits + graphene.sram_bits;
        assert!(
            abacus_bits < graphene_bits,
            "ABACuS share {abacus_bits} vs Graphene {graphene_bits}"
        );
    }

    #[test]
    fn cells_come_back_in_deterministic_group_order() {
        let mut cfg = ArenaConfig::smoke();
        cfg.accesses = 4_000;
        let cells = run_arena(&cfg);
        assert_eq!(cells.len(), 2 * 4);
        let workloads: Vec<&str> = cells.iter().map(|c| c.workload.as_str()).step_by(4).collect();
        assert_eq!(workloads, ["S3", "same-row-4banks"]);
        let again = run_arena(&cfg);
        assert_eq!(cells, again, "arena sweep must be deterministic");
    }
}
