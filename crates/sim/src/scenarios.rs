//! The defense and workload catalogs used by the experiment harness.

use dram_model::timing::DramTiming;
use graphene_core::GrapheneConfig;
use memctrl::DefenseFactory;
use mitigations::{
    AbacusConfig, AbacusDefense, AuditConfig, AuditedDefense, BlockHammerConfig,
    BlockHammerDefense, Cbt, CbtConfig, CometConfig, CometDefense, Cra, CraConfig, GrapheneDefense,
    HardenedGraphene, IdealCounters, Mrloc, MrlocConfig, NoDefense, Para, Prohit, ProhitConfig,
    RowHammerDefense, ShadowCert, Twice, TwiceConfig,
};
use serde::{Deserialize, Serialize};
use workloads::{
    Interleaved, MrlocAttack, ProhitAttack, ProxyWorkload, SameRowAllBanks, SpecPreset,
    StripedNSided, Synthetic, Workload,
};

/// A named, buildable defense configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DefenseSpec {
    /// No protection (the baseline).
    None,
    /// Graphene at the given threshold and reset-window divisor.
    Graphene {
        /// Row Hammer threshold.
        t_rh: u64,
        /// Reset-window divisor `k`.
        k: u32,
    },
    /// Graphene hardened with scrub-on-access parity and conservative reset
    /// — the graceful-degradation variant the resilience matrix compares
    /// against plain Graphene under tracker-SRAM fault injection.
    HardenedGraphene {
        /// Row Hammer threshold.
        t_rh: u64,
        /// Reset-window divisor `k`.
        k: u32,
    },
    /// PARA with refresh probability `p`.
    Para {
        /// Per-ACT refresh probability.
        p: f64,
    },
    /// PRoHIT with the paper's 7-entry configuration.
    Prohit,
    /// MRLoc with the paper's 15-entry queue and base probability `p`.
    Mrloc {
        /// Base (PARA-equivalent) probability.
        p: f64,
    },
    /// CBT with the Figure 9 counter scaling for the threshold.
    Cbt {
        /// Row Hammer threshold.
        t_rh: u64,
    },
    /// CRA with a 128-entry counter cache at the given threshold.
    Cra {
        /// Row Hammer threshold.
        t_rh: u64,
    },
    /// TWiCe at the given threshold.
    Twice {
        /// Row Hammer threshold.
        t_rh: u64,
    },
    /// Ideal per-row counters at the given threshold.
    Ideal {
        /// Row Hammer threshold.
        t_rh: u64,
    },
    /// CoMeT: count-min sketch + exact recent-aggressor table, with a
    /// bounded-FN certificate instead of the exact shadow cert.
    Comet {
        /// Row Hammer threshold.
        t_rh: u64,
    },
    /// ABACuS: one shared all-bank counter table. Built through the
    /// all-bank factory path (one table per controller/shard); the strictly
    /// per-bank path falls back to private single-bank tables.
    Abacus {
        /// Row Hammer threshold.
        t_rh: u64,
        /// Reset-window divisor `k`.
        k: u32,
    },
    /// BlockHammer: dual counting-Bloom blacklist that throttles blacklisted
    /// activations through the [`mitigations::ThrottleDecision`] feedback
    /// path instead of refreshing victims.
    BlockHammer {
        /// Row Hammer threshold.
        t_rh: u64,
    },
}

impl DefenseSpec {
    /// Scheme name for reports.
    pub fn name(&self) -> String {
        match *self {
            DefenseSpec::None => "None".into(),
            DefenseSpec::Graphene { .. } => "Graphene".into(),
            DefenseSpec::HardenedGraphene { .. } => "HardenedGraphene".into(),
            DefenseSpec::Para { p } => format!("PARA-{p}"),
            DefenseSpec::Prohit => "PRoHIT".into(),
            DefenseSpec::Mrloc { .. } => "MRLoc".into(),
            DefenseSpec::Cbt { t_rh } => {
                format!("CBT-{}", CbtConfig::scaled_for_threshold(t_rh).num_counters)
            }
            DefenseSpec::Cra { .. } => "CRA-128".into(),
            DefenseSpec::Twice { .. } => "TWiCe".into(),
            DefenseSpec::Ideal { .. } => "Ideal".into(),
            DefenseSpec::Comet { .. } => "CoMeT".into(),
            DefenseSpec::Abacus { .. } => "ABACuS".into(),
            DefenseSpec::BlockHammer { .. } => "BlockHammer".into(),
        }
    }

    /// Canonical machine-readable spec string, parseable by
    /// [`DefenseSpec::parse`] — the CLI/CSV notation of the arena report
    /// (e.g. `graphene@50000,k=2`, `abacus@50000,k=2`, `para@0.00145`).
    pub fn spec_string(&self) -> String {
        match *self {
            DefenseSpec::None => "none".into(),
            DefenseSpec::Graphene { t_rh, k } => format!("graphene@{t_rh},k={k}"),
            DefenseSpec::HardenedGraphene { t_rh, k } => format!("hardened-graphene@{t_rh},k={k}"),
            DefenseSpec::Para { p } => format!("para@{p}"),
            DefenseSpec::Prohit => "prohit".into(),
            DefenseSpec::Mrloc { p } => format!("mrloc@{p}"),
            DefenseSpec::Cbt { t_rh } => format!("cbt@{t_rh}"),
            DefenseSpec::Cra { t_rh } => format!("cra@{t_rh}"),
            DefenseSpec::Twice { t_rh } => format!("twice@{t_rh}"),
            DefenseSpec::Ideal { t_rh } => format!("ideal@{t_rh}"),
            DefenseSpec::Comet { t_rh } => format!("comet@{t_rh}"),
            DefenseSpec::Abacus { t_rh, k } => format!("abacus@{t_rh},k={k}"),
            DefenseSpec::BlockHammer { t_rh } => format!("blockhammer@{t_rh}"),
        }
    }

    /// Parses the notation of [`DefenseSpec::spec_string`].
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed spec.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (head, args) = match s.split_once('@') {
            Some((h, a)) => (h, Some(a)),
            None => (s, None),
        };
        let no_args = |spec: DefenseSpec| match args {
            None => Ok(spec),
            Some(_) => Err(format!("`{head}` takes no `@` arguments")),
        };
        let t_rh_arg = || -> Result<u64, String> {
            args.ok_or_else(|| format!("`{head}` needs `@<t_rh>`"))?
                .parse::<u64>()
                .map_err(|e| format!("bad t_rh in `{s}`: {e}"))
        };
        let t_rh_k_args = || -> Result<(u64, u32), String> {
            let args = args.ok_or_else(|| format!("`{head}` needs `@<t_rh>,k=<k>`"))?;
            let (t, k) = args
                .split_once(",k=")
                .ok_or_else(|| format!("`{head}` needs `@<t_rh>,k=<k>`, got `{args}`"))?;
            Ok((
                t.parse::<u64>().map_err(|e| format!("bad t_rh in `{s}`: {e}"))?,
                k.parse::<u32>().map_err(|e| format!("bad k in `{s}`: {e}"))?,
            ))
        };
        let p_arg = || -> Result<f64, String> {
            args.ok_or_else(|| format!("`{head}` needs `@<p>`"))?
                .parse::<f64>()
                .map_err(|e| format!("bad p in `{s}`: {e}"))
        };
        match head {
            "none" => no_args(DefenseSpec::None),
            "prohit" => no_args(DefenseSpec::Prohit),
            "graphene" => t_rh_k_args().map(|(t_rh, k)| DefenseSpec::Graphene { t_rh, k }),
            "hardened-graphene" => {
                t_rh_k_args().map(|(t_rh, k)| DefenseSpec::HardenedGraphene { t_rh, k })
            }
            "abacus" => t_rh_k_args().map(|(t_rh, k)| DefenseSpec::Abacus { t_rh, k }),
            "para" => p_arg().map(|p| DefenseSpec::Para { p }),
            "mrloc" => p_arg().map(|p| DefenseSpec::Mrloc { p }),
            "cbt" => t_rh_arg().map(|t_rh| DefenseSpec::Cbt { t_rh }),
            "cra" => t_rh_arg().map(|t_rh| DefenseSpec::Cra { t_rh }),
            "twice" => t_rh_arg().map(|t_rh| DefenseSpec::Twice { t_rh }),
            "ideal" => t_rh_arg().map(|t_rh| DefenseSpec::Ideal { t_rh }),
            "comet" => t_rh_arg().map(|t_rh| DefenseSpec::Comet { t_rh }),
            "blockhammer" => t_rh_arg().map(|t_rh| DefenseSpec::BlockHammer { t_rh }),
            other => Err(format!("unknown defense `{other}`")),
        }
    }

    /// Builds one per-bank instance; `bank` seeds RNG-based schemes.
    ///
    /// # Panics
    ///
    /// Panics if the spec's parameters are underivable for the given bank
    /// size (e.g. a threshold too low for Graphene).
    pub fn build(&self, bank: usize, rows_per_bank: u32) -> Box<dyn RowHammerDefense + Send> {
        let timing = DramTiming::ddr4_2400();
        match *self {
            DefenseSpec::None => Box::new(NoDefense::new()),
            DefenseSpec::Graphene { t_rh, k } => {
                let cfg = GrapheneConfig::builder()
                    .row_hammer_threshold(t_rh)
                    .reset_window_divisor(k)
                    .rows_per_bank(rows_per_bank)
                    .build()
                    .expect("valid Graphene config");
                Box::new(GrapheneDefense::from_config(&cfg).expect("derivable"))
            }
            DefenseSpec::HardenedGraphene { t_rh, k } => {
                let cfg = GrapheneConfig::builder()
                    .row_hammer_threshold(t_rh)
                    .reset_window_divisor(k)
                    .rows_per_bank(rows_per_bank)
                    .build()
                    .expect("valid Graphene config");
                Box::new(HardenedGraphene::from_config(&cfg).expect("derivable"))
            }
            DefenseSpec::Para { p } => Box::new(Para::new(p, bank as u64 + 1)),
            DefenseSpec::Prohit => {
                Box::new(Prohit::new(ProhitConfig::micro2020(), bank as u64 + 1))
            }
            DefenseSpec::Mrloc { p } => Box::new(Mrloc::new(
                MrlocConfig { base_probability: p, ..MrlocConfig::micro2020() },
                bank as u64 + 1,
            )),
            DefenseSpec::Cbt { t_rh } => {
                let cfg = CbtConfig { rows_per_bank, ..CbtConfig::scaled_for_threshold(t_rh) };
                Box::new(Cbt::new(cfg))
            }
            DefenseSpec::Cra { t_rh } => Box::new(Cra::new(CraConfig {
                row_hammer_threshold: t_rh,
                rows_per_bank,
                ..CraConfig::micro2020()
            })),
            DefenseSpec::Twice { t_rh } => Box::new(Twice::new(TwiceConfig::with_threshold(t_rh))),
            DefenseSpec::Ideal { t_rh } => {
                Box::new(IdealCounters::new(t_rh, rows_per_bank, timing.t_refw))
            }
            DefenseSpec::Comet { t_rh } => Box::new(CometDefense::new(
                CometConfig::for_threshold(t_rh, rows_per_bank).expect("valid CoMeT config"),
            )),
            DefenseSpec::Abacus { t_rh, k } => {
                // Per-bank fallback: a private single-bank table. The shared
                // all-bank table is built through `build_all_bank` below.
                Box::new(AbacusDefense::single(
                    AbacusConfig::for_geometry(t_rh, k, 1, rows_per_bank)
                        .expect("valid ABACuS config"),
                ))
            }
            DefenseSpec::BlockHammer { t_rh } => Box::new(BlockHammerDefense::new(
                BlockHammerConfig::for_threshold(t_rh, rows_per_bank)
                    .expect("valid BlockHammer config"),
            )),
        }
    }

    /// Like [`DefenseSpec::build`], wrapped in an [`AuditedDefense`] that
    /// validates every refresh action online. For Graphene the wrapper also
    /// carries the derived `T` and reset window, certifying the paper's
    /// multiples-of-`T` trigger against an independent shadow count.
    ///
    /// # Panics
    ///
    /// Panics like [`DefenseSpec::build`] on underivable parameters.
    pub fn build_audited(
        &self,
        bank: usize,
        rows_per_bank: u32,
    ) -> Box<dyn RowHammerDefense + Send> {
        let inner = self.build(bank, rows_per_bank);
        let mut cfg = AuditConfig::new(rows_per_bank);
        // The hardened variant runs under the *same* certificate as plain
        // Graphene: its repair NRRs are ordinary Neighbors actions, so the
        // shadow count still proves the no-false-negative property —
        // including while it degrades under injected corruption.
        if let DefenseSpec::Graphene { t_rh, k } | DefenseSpec::HardenedGraphene { t_rh, k } = *self
        {
            let params = GrapheneConfig::builder()
                .row_hammer_threshold(t_rh)
                .reset_window_divisor(k)
                .rows_per_bank(rows_per_bank)
                .build()
                .expect("valid Graphene config")
                .derive()
                .expect("derivable");
            cfg.max_radius = params.blast_radius;
            cfg.certify = Some(ShadowCert {
                tracking_threshold: params.tracking_threshold,
                reset_window: params.reset_window,
            });
        }
        if matches!(*self, DefenseSpec::HardenedGraphene { .. }) {
            // A scrubbing defense that detects a corrupted *address* cannot
            // know which row the slot was tracking; its Hamming-ball repair
            // may name never-activated rows. The audit keeps the bank bound
            // and the certificate, waiving only the was-activated check.
            cfg.degraded_repairs = true;
        }
        // ABACuS counts exactly too (Misra-Gries over full row addresses),
        // so it carries the same no-false-negative certificate as Graphene
        // — at its cert threshold (2× the shared-table tracking quantum,
        // headroom for cross-bank spillover churn).
        if let DefenseSpec::Abacus { t_rh, k } = *self {
            let a =
                AbacusConfig::for_geometry(t_rh, k, 1, rows_per_bank).expect("valid ABACuS config");
            cfg.max_radius = a.radius;
            cfg.certify = Some(ShadowCert {
                tracking_threshold: a.cert_threshold,
                reset_window: a.reset_window,
            });
        }
        // CoMeT's sketch can (with bounded probability) under-count, so it
        // runs under the plain action audit plus the analysis-layer
        // bounded-FN certificate, not the exact shadow cert.
        if let DefenseSpec::Comet { t_rh } = *self {
            cfg.max_radius =
                CometConfig::for_threshold(t_rh, rows_per_bank).expect("valid CoMeT config").radius;
        }
        Box::new(AuditedDefense::new(inner, cfg))
    }

    /// The four schemes Figure 8/9 compare, at threshold `t_rh` with the
    /// Figure 9 PARA probability ladder.
    pub fn paper_lineup(t_rh: u64) -> Vec<DefenseSpec> {
        let p = rh_analysis::security::paper_para_ladder()
            .iter()
            .find(|&&(t, _)| t == t_rh)
            .map(|&(_, p)| p)
            .unwrap_or(0.00145);
        vec![
            DefenseSpec::Para { p },
            DefenseSpec::Cbt { t_rh },
            DefenseSpec::Twice { t_rh },
            DefenseSpec::Graphene { t_rh, k: 2 },
        ]
    }
}

/// [`DefenseSpec`] is *the* defense factory of the repo: the sim runner,
/// the bench binaries, the audit layer, and the sharded system path all
/// construct per-bank defense instances through this one impl, so the
/// seed derivation (`bank + 1`) and the audit wrapping live in a single
/// place. The `bank` index is the **global flat** index — the sharded
/// system builder offsets it per channel — so a sharded system and a
/// whole-system controller seed bit-identically.
impl DefenseFactory for DefenseSpec {
    fn build_defense(
        &self,
        bank: usize,
        rows_per_bank: u32,
        audited: bool,
    ) -> Box<dyn RowHammerDefense + Send> {
        if audited {
            self.build_audited(bank, rows_per_bank)
        } else {
            self.build(bank, rows_per_bank)
        }
    }

    fn build_all_bank(
        &self,
        _first_bank: usize,
        banks: u32,
        rows_per_bank: u32,
        audited: bool,
    ) -> Option<Vec<Box<dyn RowHammerDefense + Send>>> {
        let DefenseSpec::Abacus { t_rh, k } = *self else { return None };
        let cfg = AbacusConfig::for_geometry(t_rh, k, banks, rows_per_bank)
            .expect("valid ABACuS geometry");
        Some(
            AbacusDefense::shared_for_banks(cfg)
                .into_iter()
                .map(|facade| {
                    let inner: Box<dyn RowHammerDefense + Send> = Box::new(facade);
                    if !audited {
                        return inner;
                    }
                    // Same exact certificate as the per-bank audited path:
                    // the audit shell is per-bank even when the table is
                    // shared, so every bank's shadow count independently
                    // proves the no-false-negative property.
                    let mut audit = AuditConfig::new(rows_per_bank);
                    audit.max_radius = cfg.radius;
                    audit.certify = Some(ShadowCert {
                        tracking_threshold: cfg.cert_threshold,
                        reset_window: cfg.reset_window,
                    });
                    Box::new(AuditedDefense::new(inner, audit))
                })
                .collect(),
        )
    }
}

/// A named, buildable workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum WorkloadSpec {
    /// S1 with `n` aggressor rows.
    S1 {
        /// Number of aggressor rows in rotation.
        n: u32,
    },
    /// S2 with `n` aggressor rows plus noise.
    S2 {
        /// Number of aggressor rows in rotation.
        n: u32,
    },
    /// Single-row hammer.
    S3,
    /// Single-row hammer mixed with random accesses.
    S4,
    /// The Figure 7(a) PRoHIT-defeating pattern.
    Fig7a,
    /// The Figure 7(b) MRLoc-defeating pattern.
    Fig7b,
    /// Sixteen copies of one SPEC-like preset (the paper's SPEC-high runs).
    SpecHomogeneous {
        /// The preset to replicate.
        preset: SpecPreset,
    },
    /// The paper's mix-high: one copy of each SPEC-high application, plus
    /// repeats to fill 16 cores.
    MixHigh,
    /// The paper's mix-blend: a blend across all presets.
    MixBlend,
    /// Many-sided hammering striped across `banks` banks (and, through the
    /// mapping policy, across channels) — the full-system TRRespass shape.
    StripedManySided {
        /// Aggressors per bank.
        sides: u32,
        /// Number of banks the stripe covers (clamped to the system).
        banks: u16,
    },
    /// ABACuS-style same-row-all-banks hammering: the identical row index
    /// double-sided in every bank simultaneously.
    SameRowAllBanks {
        /// Number of banks swept (clamped to the system).
        banks: u16,
    },
}

impl WorkloadSpec {
    /// Workload name for reports.
    pub fn name(&self) -> String {
        match self {
            WorkloadSpec::S1 { n } => format!("S1-{n}"),
            WorkloadSpec::S2 { n } => format!("S2-{n}"),
            WorkloadSpec::S3 => "S3".into(),
            WorkloadSpec::S4 => "S4".into(),
            WorkloadSpec::Fig7a => "fig7a".into(),
            WorkloadSpec::Fig7b => "fig7b".into(),
            WorkloadSpec::SpecHomogeneous { preset } => {
                format!("{}x16", ProxyWorkload::from_preset(*preset, 1, 1 << 20, 0).name())
            }
            WorkloadSpec::MixHigh => "mix-high".into(),
            WorkloadSpec::MixBlend => "mix-blend".into(),
            WorkloadSpec::StripedManySided { sides, banks } => {
                format!("striped-{banks}x{sides}-sided")
            }
            WorkloadSpec::SameRowAllBanks { banks } => format!("same-row-{banks}banks"),
        }
    }

    /// True for the adversarial (attacker-controlled, bank-saturating)
    /// workloads, which are evaluated on a single bank as in §V-B.
    pub fn is_adversarial(&self) -> bool {
        matches!(
            self,
            WorkloadSpec::S1 { .. }
                | WorkloadSpec::S2 { .. }
                | WorkloadSpec::S3
                | WorkloadSpec::S4
                | WorkloadSpec::Fig7a
                | WorkloadSpec::Fig7b
        )
    }

    /// True for the system-scale attack shapes, which only make sense on a
    /// multi-bank (and ideally multi-channel) geometry. Unlike the
    /// [`is_adversarial`](Self::is_adversarial) set they are *not* forced
    /// onto a single bank: the whole point is cross-bank, cross-channel
    /// pressure, so they run on the full system configuration.
    pub fn is_system_scale(&self) -> bool {
        matches!(self, WorkloadSpec::StripedManySided { .. } | WorkloadSpec::SameRowAllBanks { .. })
    }

    /// Builds the workload for a system of `banks` banks of `rows` rows.
    pub fn build(&self, banks: u16, rows: u32, seed: u64) -> Box<dyn Workload + Send> {
        match self {
            WorkloadSpec::S1 { n } => Box::new(Synthetic::s1(*n, rows, seed)),
            WorkloadSpec::S2 { n } => Box::new(Synthetic::s2(*n, rows, seed)),
            WorkloadSpec::S3 => Box::new(Synthetic::s3(rows, seed)),
            WorkloadSpec::S4 => Box::new(Synthetic::s4(rows, seed)),
            WorkloadSpec::Fig7a => Box::new(ProhitAttack::new(rows / 2)),
            WorkloadSpec::Fig7b => Box::new(MrlocAttack::new(rows / 2, 100)),
            WorkloadSpec::SpecHomogeneous { preset } => {
                let cores: Vec<Box<dyn Workload + Send>> = (0..16)
                    .map(|c| {
                        Box::new(ProxyWorkload::from_preset(*preset, banks, rows, seed + c))
                            as Box<dyn Workload + Send>
                    })
                    .collect();
                Box::new(Interleaved::new(cores))
            }
            WorkloadSpec::MixHigh => {
                let presets = SpecPreset::spec_high();
                let cores: Vec<Box<dyn Workload + Send>> = (0..16)
                    .map(|c| {
                        let preset = presets[c as usize % presets.len()];
                        Box::new(ProxyWorkload::from_preset(preset, banks, rows, seed + c))
                            as Box<dyn Workload + Send>
                    })
                    .collect();
                Box::new(Interleaved::new(cores))
            }
            WorkloadSpec::MixBlend => {
                let presets = SpecPreset::all();
                let cores: Vec<Box<dyn Workload + Send>> = (0..16)
                    .map(|c| {
                        let preset = presets[c as usize % presets.len()];
                        Box::new(ProxyWorkload::from_preset(preset, banks, rows, seed + c))
                            as Box<dyn Workload + Send>
                    })
                    .collect();
                Box::new(Interleaved::new(cores))
            }
            WorkloadSpec::StripedManySided { sides, banks: width } => {
                let width = (*width).clamp(1, banks);
                let victim = (rows / 2 + (seed % 97) as u32) % rows;
                Box::new(StripedNSided::new(victim, *sides, width, rows))
            }
            WorkloadSpec::SameRowAllBanks { banks: width } => {
                let width = (*width).clamp(1, banks);
                let victim = 1 + (rows / 2 + (seed % 97) as u32) % (rows - 2);
                Box::new(SameRowAllBanks::new(victim, width, rows))
            }
        }
    }

    /// The adversarial set of Figure 8(b): S1-10, S1-20, S2-10, S3, S4.
    pub fn adversarial_set() -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::S1 { n: 10 },
            WorkloadSpec::S1 { n: 20 },
            WorkloadSpec::S2 { n: 10 },
            WorkloadSpec::S3,
            WorkloadSpec::S4,
        ]
    }

    /// The normal-workload set of Figure 8(a)/(c): the nine SPEC-high
    /// homogeneous runs, the two mixes, and the multithreaded proxies.
    pub fn normal_set() -> Vec<WorkloadSpec> {
        let mut v: Vec<WorkloadSpec> = SpecPreset::spec_high()
            .into_iter()
            .map(|preset| WorkloadSpec::SpecHomogeneous { preset })
            .collect();
        v.push(WorkloadSpec::MixHigh);
        v.push(WorkloadSpec::MixBlend);
        v.extend(
            SpecPreset::multithreaded()
                .into_iter()
                .map(|preset| WorkloadSpec::SpecHomogeneous { preset }),
        );
        v
    }

    /// The system-scale attack set exercised by the sharded full-system
    /// path: many-sided stripes of two widths plus the same-row sweep.
    pub fn system_set(banks: u16) -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::StripedManySided { sides: 2, banks },
            WorkloadSpec::StripedManySided { sides: 8, banks },
            WorkloadSpec::SameRowAllBanks { banks },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_defenses_build() {
        for spec in [
            DefenseSpec::None,
            DefenseSpec::Graphene { t_rh: 50_000, k: 2 },
            DefenseSpec::HardenedGraphene { t_rh: 50_000, k: 2 },
            DefenseSpec::Para { p: 0.00145 },
            DefenseSpec::Prohit,
            DefenseSpec::Mrloc { p: 0.00145 },
            DefenseSpec::Cbt { t_rh: 50_000 },
            DefenseSpec::Cra { t_rh: 50_000 },
            DefenseSpec::Twice { t_rh: 50_000 },
            DefenseSpec::Ideal { t_rh: 50_000 },
            DefenseSpec::Comet { t_rh: 50_000 },
            DefenseSpec::Abacus { t_rh: 50_000, k: 2 },
            DefenseSpec::BlockHammer { t_rh: 50_000 },
        ] {
            let d = spec.build(0, 65_536);
            assert!(!d.name().is_empty());
            assert!(!spec.name().is_empty());
            let a = spec.build_audited(0, 65_536);
            assert_eq!(a.name(), format!("Audited({})", d.name()));
            assert_eq!(a.table_bits(), d.table_bits(), "audit must not change footprint");
        }
    }

    #[test]
    fn spec_strings_round_trip() {
        for spec in [
            DefenseSpec::None,
            DefenseSpec::Graphene { t_rh: 50_000, k: 2 },
            DefenseSpec::HardenedGraphene { t_rh: 12_500, k: 4 },
            DefenseSpec::Para { p: 0.00145 },
            DefenseSpec::Prohit,
            DefenseSpec::Mrloc { p: 0.00145 },
            DefenseSpec::Cbt { t_rh: 50_000 },
            DefenseSpec::Cra { t_rh: 50_000 },
            DefenseSpec::Twice { t_rh: 50_000 },
            DefenseSpec::Ideal { t_rh: 50_000 },
            DefenseSpec::Comet { t_rh: 25_000 },
            DefenseSpec::Abacus { t_rh: 25_000, k: 2 },
            DefenseSpec::BlockHammer { t_rh: 25_000 },
        ] {
            let text = spec.spec_string();
            let back = DefenseSpec::parse(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(back, spec, "{text}");
        }
    }

    #[test]
    fn arena_spec_strings_carry_all_bank_factory_params() {
        // The ABACuS notation must round-trip the reset-window divisor the
        // all-bank factory consumes, not just the threshold.
        let spec = DefenseSpec::parse("abacus@6250,k=4").unwrap();
        assert_eq!(spec, DefenseSpec::Abacus { t_rh: 6_250, k: 4 });
        assert_eq!(spec.spec_string(), "abacus@6250,k=4");
        assert_eq!(DefenseSpec::parse("comet@1560").unwrap(), DefenseSpec::Comet { t_rh: 1_560 });
        assert_eq!(
            DefenseSpec::parse("blockhammer@3125").unwrap(),
            DefenseSpec::BlockHammer { t_rh: 3_125 },
        );
    }

    #[test]
    fn malformed_spec_strings_are_rejected_with_reasons() {
        for (text, needle) in [
            ("abacus@6250", "k="),
            ("comet", "t_rh"),
            ("blockhammer@abc", "bad t_rh"),
            ("prohit@7", "no `@` arguments"),
            ("warp-field@9000", "unknown defense"),
        ] {
            let err = DefenseSpec::parse(text).unwrap_err();
            assert!(err.contains(needle), "`{text}` -> {err}");
        }
    }

    #[test]
    fn abacus_all_bank_factory_shares_one_table() {
        let spec = DefenseSpec::Abacus { t_rh: 50_000, k: 2 };
        let pool = spec.build_all_bank(0, 4, 65_536, false).expect("ABACuS is all-bank");
        assert_eq!(pool.len(), 4);
        for d in &pool {
            assert_eq!(d.name(), "ABACuS");
        }
        let audited = spec.build_all_bank(0, 4, 65_536, true).expect("ABACuS is all-bank");
        assert_eq!(audited[0].name(), "Audited(ABACuS)");
        // Everything else keeps the per-bank path.
        assert!(DefenseSpec::Comet { t_rh: 50_000 }.build_all_bank(0, 4, 65_536, false).is_none());
        assert!(DefenseSpec::Graphene { t_rh: 50_000, k: 2 }
            .build_all_bank(0, 4, 65_536, false)
            .is_none());
    }

    #[test]
    fn paper_lineup_has_four_schemes() {
        let lineup = DefenseSpec::paper_lineup(50_000);
        assert_eq!(lineup.len(), 4);
        assert_eq!(lineup[0].name(), "PARA-0.00145");
        assert_eq!(lineup[1].name(), "CBT-128");
    }

    #[test]
    fn paper_lineup_scales_cbt() {
        let lineup = DefenseSpec::paper_lineup(12_500);
        assert_eq!(lineup[1].name(), "CBT-512");
        assert_eq!(lineup[0].name(), "PARA-0.00602");
    }

    #[test]
    fn all_workloads_build_and_emit() {
        let mut specs = WorkloadSpec::adversarial_set();
        specs.push(WorkloadSpec::MixHigh);
        for spec in specs {
            let mut w = spec.build(64, 65_536, 7);
            let a = w.next_access();
            assert!(a.row.0 < 65_536, "{}", spec.name());
        }
    }

    #[test]
    fn adversarial_classification() {
        assert!(WorkloadSpec::S3.is_adversarial());
        assert!(!WorkloadSpec::MixHigh.is_adversarial());
    }

    #[test]
    fn system_scale_workloads_are_not_single_bank() {
        for spec in WorkloadSpec::system_set(64) {
            assert!(spec.is_system_scale(), "{}", spec.name());
            assert!(
                !spec.is_adversarial(),
                "{} must not be forced onto the single-bank attack config",
                spec.name()
            );
        }
        assert!(!WorkloadSpec::S3.is_system_scale());
        assert!(!WorkloadSpec::MixBlend.is_system_scale());
    }

    #[test]
    fn system_scale_workloads_cover_many_banks() {
        for spec in WorkloadSpec::system_set(64) {
            let mut w = spec.build(64, 65_536, 7);
            let banks: std::collections::HashSet<u16> =
                (0..256).map(|_| w.next_access().bank).collect();
            assert_eq!(banks.len(), 64, "{} must stripe all banks", spec.name());
        }
    }

    #[test]
    fn defense_factory_matches_direct_builds() {
        let spec = DefenseSpec::Graphene { t_rh: 50_000, k: 2 };
        let plain = spec.build_defense(3, 65_536, false);
        assert_eq!(plain.name(), spec.build(3, 65_536).name());
        let audited = spec.build_defense(3, 65_536, true);
        assert_eq!(audited.name(), format!("Audited({})", plain.name()));
    }

    #[test]
    fn normal_set_matches_paper_count() {
        // 9 SPEC-high + 2 mixes + 5 multithreaded = 16 workloads.
        assert_eq!(WorkloadSpec::normal_set().len(), 16);
    }
}
