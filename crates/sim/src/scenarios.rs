//! The defense and workload catalogs used by the experiment harness.

use std::fmt;

use dram_model::Generation;
use graphene_core::GrapheneConfig;
use memctrl::DefenseFactory;
use mitigations::{
    AbacusConfig, AbacusDefense, AuditConfig, AuditedDefense, BlockHammerConfig,
    BlockHammerDefense, Cbt, CbtConfig, CometConfig, CometDefense, Cra, CraConfig, GrapheneDefense,
    HardenedGraphene, IdealCounters, Mrloc, MrlocConfig, NoDefense, Para, Prohit, ProhitConfig,
    RfmIssuer, RowHammerDefense, ShadowCert, Twice, TwiceConfig,
};
use serde::{Deserialize, Serialize};
use workloads::{
    Interleaved, MrlocAttack, ProhitAttack, ProxyWorkload, SameRowAllBanks, SpecPreset,
    StripedNSided, Synthetic, Workload,
};

/// A malformed defense or generation spec string, broken down into the
/// field that failed, the offending token, and what the parser expected —
/// the typed replacement for the old stringly parse failures, so CLI
/// front-ends can point at the exact token instead of grepping a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecParseError {
    /// Which part of the spec failed: `"defense"`, `"generation"`,
    /// `"args"`, `"t_rh"`, `"k"`, or `"p"`.
    pub field: &'static str,
    /// The token (or whole spec) that did not parse.
    pub token: String,
    /// What the parser expected in its place.
    pub expected: String,
}

impl SpecParseError {
    fn new(field: &'static str, token: impl Into<String>, expected: impl Into<String>) -> Self {
        SpecParseError { field, token: token.into(), expected: expected.into() }
    }
}

impl fmt::Display for SpecParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.field {
            "defense" => write!(f, "unknown defense `{}` (expected {})", self.token, self.expected),
            "generation" => {
                write!(f, "unknown DRAM generation `{}` (expected {})", self.token, self.expected)
            }
            field => write!(f, "bad {field} `{}`: expected {}", self.token, self.expected),
        }
    }
}

impl std::error::Error for SpecParseError {}

/// A named, buildable defense configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DefenseSpec {
    /// No protection (the baseline).
    None,
    /// Graphene at the given threshold and reset-window divisor.
    Graphene {
        /// Row Hammer threshold.
        t_rh: u64,
        /// Reset-window divisor `k`.
        k: u32,
    },
    /// Graphene hardened with scrub-on-access parity and conservative reset
    /// — the graceful-degradation variant the resilience matrix compares
    /// against plain Graphene under tracker-SRAM fault injection.
    HardenedGraphene {
        /// Row Hammer threshold.
        t_rh: u64,
        /// Reset-window divisor `k`.
        k: u32,
    },
    /// PARA with refresh probability `p`.
    Para {
        /// Per-ACT refresh probability.
        p: f64,
    },
    /// PRoHIT with the paper's 7-entry configuration.
    Prohit,
    /// MRLoc with the paper's 15-entry queue and base probability `p`.
    Mrloc {
        /// Base (PARA-equivalent) probability.
        p: f64,
    },
    /// CBT with the Figure 9 counter scaling for the threshold.
    Cbt {
        /// Row Hammer threshold.
        t_rh: u64,
    },
    /// CRA with a 128-entry counter cache at the given threshold.
    Cra {
        /// Row Hammer threshold.
        t_rh: u64,
    },
    /// TWiCe at the given threshold.
    Twice {
        /// Row Hammer threshold.
        t_rh: u64,
    },
    /// Ideal per-row counters at the given threshold.
    Ideal {
        /// Row Hammer threshold.
        t_rh: u64,
    },
    /// CoMeT: count-min sketch + exact recent-aggressor table, with a
    /// bounded-FN certificate instead of the exact shadow cert.
    Comet {
        /// Row Hammer threshold.
        t_rh: u64,
    },
    /// ABACuS: one shared all-bank counter table. Built through the
    /// all-bank factory path (one table per controller/shard); the strictly
    /// per-bank path falls back to private single-bank tables.
    Abacus {
        /// Row Hammer threshold.
        t_rh: u64,
        /// Reset-window divisor `k`.
        k: u32,
    },
    /// BlockHammer: dual counting-Bloom blacklist that throttles blacklisted
    /// activations through the [`mitigations::ThrottleDecision`] feedback
    /// path instead of refreshing victims.
    BlockHammer {
        /// Row Hammer threshold.
        t_rh: u64,
    },
}

impl DefenseSpec {
    /// Scheme name for reports.
    pub fn name(&self) -> String {
        match *self {
            DefenseSpec::None => "None".into(),
            DefenseSpec::Graphene { .. } => "Graphene".into(),
            DefenseSpec::HardenedGraphene { .. } => "HardenedGraphene".into(),
            DefenseSpec::Para { p } => format!("PARA-{p}"),
            DefenseSpec::Prohit => "PRoHIT".into(),
            DefenseSpec::Mrloc { .. } => "MRLoc".into(),
            DefenseSpec::Cbt { t_rh } => {
                format!("CBT-{}", CbtConfig::scaled_for_threshold(t_rh).num_counters)
            }
            DefenseSpec::Cra { .. } => "CRA-128".into(),
            DefenseSpec::Twice { .. } => "TWiCe".into(),
            DefenseSpec::Ideal { .. } => "Ideal".into(),
            DefenseSpec::Comet { .. } => "CoMeT".into(),
            DefenseSpec::Abacus { .. } => "ABACuS".into(),
            DefenseSpec::BlockHammer { .. } => "BlockHammer".into(),
        }
    }

    /// Whether this defense identifies aggressor rows, so its neighbor
    /// refreshes can be re-spelled as directed RFM commands on a generation
    /// that defines them. The probabilistic samplers (PARA, PRoHIT, MRLoc)
    /// refresh individual victim rows without an aggressor-count crossing,
    /// so they keep their row-granular spelling even on DDR5/LPDDR5.
    pub fn rfm_capable(&self) -> bool {
        !matches!(
            self,
            DefenseSpec::None
                | DefenseSpec::Para { .. }
                | DefenseSpec::Prohit
                | DefenseSpec::Mrloc { .. }
        )
    }

    /// Canonical machine-readable spec string, parseable by
    /// [`DefenseSpec::parse`] — the CLI/CSV notation of the arena report
    /// (e.g. `graphene@50000,k=2`, `abacus@50000,k=2`, `para@0.00145`).
    pub fn spec_string(&self) -> String {
        match *self {
            DefenseSpec::None => "none".into(),
            DefenseSpec::Graphene { t_rh, k } => format!("graphene@{t_rh},k={k}"),
            DefenseSpec::HardenedGraphene { t_rh, k } => format!("hardened-graphene@{t_rh},k={k}"),
            DefenseSpec::Para { p } => format!("para@{p}"),
            DefenseSpec::Prohit => "prohit".into(),
            DefenseSpec::Mrloc { p } => format!("mrloc@{p}"),
            DefenseSpec::Cbt { t_rh } => format!("cbt@{t_rh}"),
            DefenseSpec::Cra { t_rh } => format!("cra@{t_rh}"),
            DefenseSpec::Twice { t_rh } => format!("twice@{t_rh}"),
            DefenseSpec::Ideal { t_rh } => format!("ideal@{t_rh}"),
            DefenseSpec::Comet { t_rh } => format!("comet@{t_rh}"),
            DefenseSpec::Abacus { t_rh, k } => format!("abacus@{t_rh},k={k}"),
            DefenseSpec::BlockHammer { t_rh } => format!("blockhammer@{t_rh}"),
        }
    }

    /// Parses the notation of [`DefenseSpec::spec_string`].
    ///
    /// # Errors
    ///
    /// Returns a [`SpecParseError`] naming the field that failed, the
    /// offending token, and what was expected there.
    pub fn parse(s: &str) -> Result<Self, SpecParseError> {
        let (head, args) = match s.split_once('@') {
            Some((h, a)) => (h, Some(a)),
            None => (s, None),
        };
        let no_args = |spec: DefenseSpec| match args {
            None => Ok(spec),
            Some(a) => {
                Err(SpecParseError::new("args", a, format!("no `@` arguments after `{head}`")))
            }
        };
        let t_rh_arg = || -> Result<u64, SpecParseError> {
            let a =
                args.ok_or_else(|| SpecParseError::new("args", s, format!("`{head}@<t_rh>`")))?;
            a.parse::<u64>().map_err(|_| SpecParseError::new("t_rh", a, "an unsigned integer"))
        };
        let t_rh_k_args = || -> Result<(u64, u32), SpecParseError> {
            let a = args
                .ok_or_else(|| SpecParseError::new("args", s, format!("`{head}@<t_rh>,k=<k>`")))?;
            let (t, k) = a
                .split_once(",k=")
                .ok_or_else(|| SpecParseError::new("args", a, "`@<t_rh>,k=<k>`"))?;
            Ok((
                t.parse::<u64>()
                    .map_err(|_| SpecParseError::new("t_rh", t, "an unsigned integer"))?,
                k.parse::<u32>().map_err(|_| SpecParseError::new("k", k, "an unsigned integer"))?,
            ))
        };
        let p_arg = || -> Result<f64, SpecParseError> {
            let a = args.ok_or_else(|| SpecParseError::new("args", s, format!("`{head}@<p>`")))?;
            a.parse::<f64>().map_err(|_| SpecParseError::new("p", a, "a probability"))
        };
        match head {
            "none" => no_args(DefenseSpec::None),
            "prohit" => no_args(DefenseSpec::Prohit),
            "graphene" => t_rh_k_args().map(|(t_rh, k)| DefenseSpec::Graphene { t_rh, k }),
            "hardened-graphene" => {
                t_rh_k_args().map(|(t_rh, k)| DefenseSpec::HardenedGraphene { t_rh, k })
            }
            "abacus" => t_rh_k_args().map(|(t_rh, k)| DefenseSpec::Abacus { t_rh, k }),
            "para" => p_arg().map(|p| DefenseSpec::Para { p }),
            "mrloc" => p_arg().map(|p| DefenseSpec::Mrloc { p }),
            "cbt" => t_rh_arg().map(|t_rh| DefenseSpec::Cbt { t_rh }),
            "cra" => t_rh_arg().map(|t_rh| DefenseSpec::Cra { t_rh }),
            "twice" => t_rh_arg().map(|t_rh| DefenseSpec::Twice { t_rh }),
            "ideal" => t_rh_arg().map(|t_rh| DefenseSpec::Ideal { t_rh }),
            "comet" => t_rh_arg().map(|t_rh| DefenseSpec::Comet { t_rh }),
            "blockhammer" => t_rh_arg().map(|t_rh| DefenseSpec::BlockHammer { t_rh }),
            other => Err(SpecParseError::new(
                "defense",
                other,
                "one of the lineup heads (none, graphene, hardened-graphene, para, prohit, \
                 mrloc, cbt, cra, twice, ideal, comet, abacus, blockhammer)",
            )),
        }
    }

    /// Builds one per-bank instance for the paper's DDR4-2400 device;
    /// `bank` seeds RNG-based schemes.
    ///
    /// # Panics
    ///
    /// Panics if the spec's parameters are underivable for the given bank
    /// size (e.g. a threshold too low for Graphene).
    pub fn build(&self, bank: usize, rows_per_bank: u32) -> Box<dyn RowHammerDefense + Send> {
        self.build_for(Generation::Ddr4_2400, bank, rows_per_bank)
    }

    /// Builds one per-bank instance with every derived parameter — reset
    /// windows, table sizes, spill budgets — recomputed from the
    /// generation's timing. `build_for(Generation::Ddr4_2400, ..)` is
    /// bit-identical to the legacy [`DefenseSpec::build`] path.
    ///
    /// # Panics
    ///
    /// Panics like [`DefenseSpec::build`] on underivable parameters.
    pub fn build_for(
        &self,
        generation: Generation,
        bank: usize,
        rows_per_bank: u32,
    ) -> Box<dyn RowHammerDefense + Send> {
        let timing = generation.timing();
        match *self {
            DefenseSpec::None => Box::new(NoDefense::new()),
            DefenseSpec::Graphene { t_rh, k } => {
                let cfg = GrapheneConfig::builder()
                    .row_hammer_threshold(t_rh)
                    .reset_window_divisor(k)
                    .rows_per_bank(rows_per_bank)
                    .timing(timing)
                    .build()
                    .expect("valid Graphene config");
                Box::new(GrapheneDefense::from_config(&cfg).expect("derivable"))
            }
            DefenseSpec::HardenedGraphene { t_rh, k } => {
                let cfg = GrapheneConfig::builder()
                    .row_hammer_threshold(t_rh)
                    .reset_window_divisor(k)
                    .rows_per_bank(rows_per_bank)
                    .timing(timing)
                    .build()
                    .expect("valid Graphene config");
                Box::new(HardenedGraphene::from_config(&cfg).expect("derivable"))
            }
            DefenseSpec::Para { p } => Box::new(Para::new(p, bank as u64 + 1)),
            DefenseSpec::Prohit => {
                Box::new(Prohit::new(ProhitConfig::micro2020(), bank as u64 + 1))
            }
            DefenseSpec::Mrloc { p } => Box::new(Mrloc::new(
                MrlocConfig { base_probability: p, ..MrlocConfig::micro2020() },
                bank as u64 + 1,
            )),
            DefenseSpec::Cbt { t_rh } => {
                let cfg = CbtConfig {
                    rows_per_bank,
                    reset_window: timing.t_refw,
                    ..CbtConfig::scaled_for_threshold(t_rh)
                };
                Box::new(Cbt::new(cfg))
            }
            DefenseSpec::Cra { t_rh } => Box::new(Cra::new(CraConfig {
                row_hammer_threshold: t_rh,
                rows_per_bank,
                ..CraConfig::with_timing(&timing)
            })),
            DefenseSpec::Twice { t_rh } => Box::new(Twice::new(TwiceConfig::with_threshold(t_rh))),
            DefenseSpec::Ideal { t_rh } => {
                Box::new(IdealCounters::new(t_rh, rows_per_bank, timing.t_refw))
            }
            DefenseSpec::Comet { t_rh } => Box::new(CometDefense::new(
                CometConfig::for_threshold_with_timing(t_rh, rows_per_bank, timing)
                    .expect("valid CoMeT config"),
            )),
            DefenseSpec::Abacus { t_rh, k } => {
                // Per-bank fallback: a private single-bank table. The shared
                // all-bank table is built through `build_all_bank` below.
                Box::new(AbacusDefense::single(
                    AbacusConfig::for_geometry_with_timing(t_rh, k, 1, rows_per_bank, timing)
                        .expect("valid ABACuS config"),
                ))
            }
            DefenseSpec::BlockHammer { t_rh } => Box::new(BlockHammerDefense::new(
                BlockHammerConfig::for_threshold_with_timing(t_rh, rows_per_bank, timing)
                    .expect("valid BlockHammer config"),
            )),
        }
    }

    /// Like [`DefenseSpec::build`], wrapped in an [`AuditedDefense`] that
    /// validates every refresh action online. For Graphene the wrapper also
    /// carries the derived `T` and reset window, certifying the paper's
    /// multiples-of-`T` trigger against an independent shadow count.
    ///
    /// # Panics
    ///
    /// Panics like [`DefenseSpec::build`] on underivable parameters.
    pub fn build_audited(
        &self,
        bank: usize,
        rows_per_bank: u32,
    ) -> Box<dyn RowHammerDefense + Send> {
        self.build_audited_for(Generation::Ddr4_2400, bank, rows_per_bank)
    }

    /// [`DefenseSpec::build_audited`] on an explicit generation: the inner
    /// defense *and* the certificate (tracking threshold, reset window) are
    /// derived from the generation's timing, so the audit proves the
    /// no-false-negative property against the window the device actually
    /// has, not the DDR4 64 ms assumption.
    ///
    /// # Panics
    ///
    /// Panics like [`DefenseSpec::build`] on underivable parameters.
    pub fn build_audited_for(
        &self,
        generation: Generation,
        bank: usize,
        rows_per_bank: u32,
    ) -> Box<dyn RowHammerDefense + Send> {
        let inner = self.build_for(generation, bank, rows_per_bank);
        Box::new(AuditedDefense::new(inner, self.audit_config_for(generation, rows_per_bank)))
    }

    /// The audit shell for this spec: action bounds plus the exact shadow
    /// certificate where the scheme supports one, every threshold derived
    /// from the generation's timing.
    fn audit_config_for(&self, generation: Generation, rows_per_bank: u32) -> AuditConfig {
        let timing = generation.timing();
        let mut cfg = AuditConfig::new(rows_per_bank);
        // The hardened variant runs under the *same* certificate as plain
        // Graphene: its repair NRRs are ordinary Neighbors actions, so the
        // shadow count still proves the no-false-negative property —
        // including while it degrades under injected corruption.
        if let DefenseSpec::Graphene { t_rh, k } | DefenseSpec::HardenedGraphene { t_rh, k } = *self
        {
            let params = GrapheneConfig::builder()
                .row_hammer_threshold(t_rh)
                .reset_window_divisor(k)
                .rows_per_bank(rows_per_bank)
                .timing(timing)
                .build()
                .expect("valid Graphene config")
                .derive()
                .expect("derivable");
            cfg.max_radius = params.blast_radius;
            cfg.certify = Some(ShadowCert {
                tracking_threshold: params.tracking_threshold,
                reset_window: params.reset_window,
            });
        }
        if matches!(*self, DefenseSpec::HardenedGraphene { .. }) {
            // A scrubbing defense that detects a corrupted *address* cannot
            // know which row the slot was tracking; its Hamming-ball repair
            // may name never-activated rows. The audit keeps the bank bound
            // and the certificate, waiving only the was-activated check.
            cfg.degraded_repairs = true;
        }
        // ABACuS counts exactly too (Misra-Gries over full row addresses),
        // so it carries the same no-false-negative certificate as Graphene
        // — at its cert threshold (2× the shared-table tracking quantum,
        // headroom for cross-bank spillover churn).
        if let DefenseSpec::Abacus { t_rh, k } = *self {
            let a = AbacusConfig::for_geometry_with_timing(t_rh, k, 1, rows_per_bank, timing)
                .expect("valid ABACuS config");
            cfg.max_radius = a.radius;
            cfg.certify = Some(ShadowCert {
                tracking_threshold: a.cert_threshold,
                reset_window: a.reset_window,
            });
        }
        // CoMeT's sketch can (with bounded probability) under-count, so it
        // runs under the plain action audit plus the analysis-layer
        // bounded-FN certificate, not the exact shadow cert.
        if let DefenseSpec::Comet { t_rh } = *self {
            cfg.max_radius = CometConfig::for_threshold_with_timing(t_rh, rows_per_bank, timing)
                .expect("valid CoMeT config")
                .radius;
        }
        cfg
    }

    /// The shared all-bank pool (ABACuS) for one generation, with the
    /// optional RFM re-spelling applied *inside* the audit shell so the
    /// certificate sees the spelling the controller sees.
    fn all_bank_pool_for(
        &self,
        generation: Generation,
        banks: u32,
        rows_per_bank: u32,
        audited: bool,
        rfm: bool,
    ) -> Option<Vec<Box<dyn RowHammerDefense + Send>>> {
        let DefenseSpec::Abacus { t_rh, k } = *self else { return None };
        let cfg = AbacusConfig::for_geometry_with_timing(
            t_rh,
            k,
            banks,
            rows_per_bank,
            generation.timing(),
        )
        .expect("valid ABACuS geometry");
        Some(
            AbacusDefense::shared_for_banks(cfg)
                .into_iter()
                .map(|facade| {
                    let mut inner: Box<dyn RowHammerDefense + Send> = Box::new(facade);
                    if rfm {
                        inner = Box::new(RfmIssuer::new(inner));
                    }
                    if !audited {
                        return inner;
                    }
                    // Same exact certificate as the per-bank audited path:
                    // the audit shell is per-bank even when the table is
                    // shared, so every bank's shadow count independently
                    // proves the no-false-negative property.
                    let mut audit = AuditConfig::new(rows_per_bank);
                    audit.max_radius = cfg.radius;
                    audit.certify = Some(ShadowCert {
                        tracking_threshold: cfg.cert_threshold,
                        reset_window: cfg.reset_window,
                    });
                    Box::new(AuditedDefense::new(inner, audit))
                })
                .collect(),
        )
    }

    /// The four schemes Figure 8/9 compare, at threshold `t_rh` with the
    /// Figure 9 PARA probability ladder.
    pub fn paper_lineup(t_rh: u64) -> Vec<DefenseSpec> {
        let p = rh_analysis::security::paper_para_ladder()
            .iter()
            .find(|&&(t, _)| t == t_rh)
            .map(|&(_, p)| p)
            .unwrap_or(0.00145);
        vec![
            DefenseSpec::Para { p },
            DefenseSpec::Cbt { t_rh },
            DefenseSpec::Twice { t_rh },
            DefenseSpec::Graphene { t_rh, k: 2 },
        ]
    }
}

/// [`DefenseSpec`] is *the* defense factory of the repo: the sim runner,
/// the bench binaries, the audit layer, and the sharded system path all
/// construct per-bank defense instances through this one impl, so the
/// seed derivation (`bank + 1`) and the audit wrapping live in a single
/// place. The `bank` index is the **global flat** index — the sharded
/// system builder offsets it per channel — so a sharded system and a
/// whole-system controller seed bit-identically.
impl DefenseFactory for DefenseSpec {
    fn build_defense(
        &self,
        bank: usize,
        rows_per_bank: u32,
        audited: bool,
    ) -> Box<dyn RowHammerDefense + Send> {
        if audited {
            self.build_audited(bank, rows_per_bank)
        } else {
            self.build(bank, rows_per_bank)
        }
    }

    fn build_all_bank(
        &self,
        _first_bank: usize,
        banks: u32,
        rows_per_bank: u32,
        audited: bool,
    ) -> Option<Vec<Box<dyn RowHammerDefense + Send>>> {
        self.all_bank_pool_for(Generation::Ddr4_2400, banks, rows_per_bank, audited, false)
    }
}

/// A [`DefenseSpec`] bound to the [`Generation`] it protects — the unit the
/// cross-generation matrix ([`crate::generations`]) sweeps.
///
/// Spec strings are generation-qualified (`ddr5/graphene@20000,k=2`); a
/// bare defense spec means the paper's DDR4-2400 device, so every legacy
/// string keeps parsing to the legacy behavior. As a [`DefenseFactory`] it
/// derives every parameter from the generation's timing and, on the
/// generations that define Refresh Management (DDR5, LPDDR5), re-spells
/// the defense's NRRs as RFM commands through [`RfmIssuer`] — inside the
/// audit shell, so the certificate covers the RFM spelling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenSpec {
    /// The DRAM generation the defense is built for.
    pub generation: Generation,
    /// The defense to build.
    pub defense: DefenseSpec,
}

impl GenSpec {
    /// Binds `defense` to `generation`.
    pub fn new(generation: Generation, defense: DefenseSpec) -> Self {
        GenSpec { generation, defense }
    }

    /// The legacy binding: `defense` on the paper's DDR4-2400 device.
    pub fn ddr4(defense: DefenseSpec) -> Self {
        GenSpec::new(Generation::Ddr4_2400, defense)
    }

    /// Whether this pairing issues RFM commands: the generation defines the
    /// command and the defense tracks aggressors whose neighbor refreshes
    /// can be re-spelled ([`DefenseSpec::rfm_capable`]).
    pub fn issues_rfm(&self) -> bool {
        self.generation.rfm().is_some() && self.defense.rfm_capable()
    }

    /// Report name, generation-qualified (`ddr5/Graphene`).
    pub fn name(&self) -> String {
        format!("{}/{}", self.generation.name(), self.defense.name())
    }

    /// Canonical spec string. DDR4 stays bare — byte-for-byte the legacy
    /// [`DefenseSpec::spec_string`] notation — every other generation is
    /// prefixed (`lpddr5/comet@10000`).
    pub fn spec_string(&self) -> String {
        match self.generation {
            Generation::Ddr4_2400 => self.defense.spec_string(),
            g => format!("{}/{}", g.name(), self.defense.spec_string()),
        }
    }

    /// Parses the notation of [`GenSpec::spec_string`]: an optional
    /// `<generation>/` prefix, then a defense spec. Bare specs bind to
    /// DDR4-2400.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecParseError`] naming the field, token, and
    /// expectation.
    pub fn parse(s: &str) -> Result<Self, SpecParseError> {
        match s.split_once('/') {
            Some((g, rest)) => {
                let generation = g.parse::<Generation>().map_err(|_| {
                    SpecParseError::new("generation", g, "ddr4, ddr5, lpddr4x or lpddr5")
                })?;
                Ok(GenSpec::new(generation, DefenseSpec::parse(rest)?))
            }
            None => Ok(GenSpec::ddr4(DefenseSpec::parse(s)?)),
        }
    }
}

impl DefenseFactory for GenSpec {
    fn build_defense(
        &self,
        bank: usize,
        rows_per_bank: u32,
        audited: bool,
    ) -> Box<dyn RowHammerDefense + Send> {
        let mut inner = self.defense.build_for(self.generation, bank, rows_per_bank);
        if self.issues_rfm() {
            inner = Box::new(RfmIssuer::new(inner));
        }
        if audited {
            Box::new(AuditedDefense::new(
                inner,
                self.defense.audit_config_for(self.generation, rows_per_bank),
            ))
        } else {
            inner
        }
    }

    fn build_all_bank(
        &self,
        _first_bank: usize,
        banks: u32,
        rows_per_bank: u32,
        audited: bool,
    ) -> Option<Vec<Box<dyn RowHammerDefense + Send>>> {
        self.defense.all_bank_pool_for(
            self.generation,
            banks,
            rows_per_bank,
            audited,
            self.issues_rfm(),
        )
    }
}

/// A named, buildable workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum WorkloadSpec {
    /// S1 with `n` aggressor rows.
    S1 {
        /// Number of aggressor rows in rotation.
        n: u32,
    },
    /// S2 with `n` aggressor rows plus noise.
    S2 {
        /// Number of aggressor rows in rotation.
        n: u32,
    },
    /// Single-row hammer.
    S3,
    /// Single-row hammer mixed with random accesses.
    S4,
    /// The Figure 7(a) PRoHIT-defeating pattern.
    Fig7a,
    /// The Figure 7(b) MRLoc-defeating pattern.
    Fig7b,
    /// Sixteen copies of one SPEC-like preset (the paper's SPEC-high runs).
    SpecHomogeneous {
        /// The preset to replicate.
        preset: SpecPreset,
    },
    /// The paper's mix-high: one copy of each SPEC-high application, plus
    /// repeats to fill 16 cores.
    MixHigh,
    /// The paper's mix-blend: a blend across all presets.
    MixBlend,
    /// Many-sided hammering striped across `banks` banks (and, through the
    /// mapping policy, across channels) — the full-system TRRespass shape.
    StripedManySided {
        /// Aggressors per bank.
        sides: u32,
        /// Number of banks the stripe covers (clamped to the system).
        banks: u16,
    },
    /// ABACuS-style same-row-all-banks hammering: the identical row index
    /// double-sided in every bank simultaneously.
    SameRowAllBanks {
        /// Number of banks swept (clamped to the system).
        banks: u16,
    },
}

impl WorkloadSpec {
    /// Workload name for reports.
    pub fn name(&self) -> String {
        match self {
            WorkloadSpec::S1 { n } => format!("S1-{n}"),
            WorkloadSpec::S2 { n } => format!("S2-{n}"),
            WorkloadSpec::S3 => "S3".into(),
            WorkloadSpec::S4 => "S4".into(),
            WorkloadSpec::Fig7a => "fig7a".into(),
            WorkloadSpec::Fig7b => "fig7b".into(),
            WorkloadSpec::SpecHomogeneous { preset } => {
                format!("{}x16", ProxyWorkload::from_preset(*preset, 1, 1 << 20, 0).name())
            }
            WorkloadSpec::MixHigh => "mix-high".into(),
            WorkloadSpec::MixBlend => "mix-blend".into(),
            WorkloadSpec::StripedManySided { sides, banks } => {
                format!("striped-{banks}x{sides}-sided")
            }
            WorkloadSpec::SameRowAllBanks { banks } => format!("same-row-{banks}banks"),
        }
    }

    /// True for the adversarial (attacker-controlled, bank-saturating)
    /// workloads, which are evaluated on a single bank as in §V-B.
    pub fn is_adversarial(&self) -> bool {
        matches!(
            self,
            WorkloadSpec::S1 { .. }
                | WorkloadSpec::S2 { .. }
                | WorkloadSpec::S3
                | WorkloadSpec::S4
                | WorkloadSpec::Fig7a
                | WorkloadSpec::Fig7b
        )
    }

    /// True for the system-scale attack shapes, which only make sense on a
    /// multi-bank (and ideally multi-channel) geometry. Unlike the
    /// [`is_adversarial`](Self::is_adversarial) set they are *not* forced
    /// onto a single bank: the whole point is cross-bank, cross-channel
    /// pressure, so they run on the full system configuration.
    pub fn is_system_scale(&self) -> bool {
        matches!(self, WorkloadSpec::StripedManySided { .. } | WorkloadSpec::SameRowAllBanks { .. })
    }

    /// Builds the workload for a system of `banks` banks of `rows` rows.
    pub fn build(&self, banks: u16, rows: u32, seed: u64) -> Box<dyn Workload + Send> {
        match self {
            WorkloadSpec::S1 { n } => Box::new(Synthetic::s1(*n, rows, seed)),
            WorkloadSpec::S2 { n } => Box::new(Synthetic::s2(*n, rows, seed)),
            WorkloadSpec::S3 => Box::new(Synthetic::s3(rows, seed)),
            WorkloadSpec::S4 => Box::new(Synthetic::s4(rows, seed)),
            WorkloadSpec::Fig7a => Box::new(ProhitAttack::new(rows / 2)),
            WorkloadSpec::Fig7b => Box::new(MrlocAttack::new(rows / 2, 100)),
            WorkloadSpec::SpecHomogeneous { preset } => {
                let cores: Vec<Box<dyn Workload + Send>> = (0..16)
                    .map(|c| {
                        Box::new(ProxyWorkload::from_preset(*preset, banks, rows, seed + c))
                            as Box<dyn Workload + Send>
                    })
                    .collect();
                Box::new(Interleaved::new(cores))
            }
            WorkloadSpec::MixHigh => {
                let presets = SpecPreset::spec_high();
                let cores: Vec<Box<dyn Workload + Send>> = (0..16)
                    .map(|c| {
                        let preset = presets[c as usize % presets.len()];
                        Box::new(ProxyWorkload::from_preset(preset, banks, rows, seed + c))
                            as Box<dyn Workload + Send>
                    })
                    .collect();
                Box::new(Interleaved::new(cores))
            }
            WorkloadSpec::MixBlend => {
                let presets = SpecPreset::all();
                let cores: Vec<Box<dyn Workload + Send>> = (0..16)
                    .map(|c| {
                        let preset = presets[c as usize % presets.len()];
                        Box::new(ProxyWorkload::from_preset(preset, banks, rows, seed + c))
                            as Box<dyn Workload + Send>
                    })
                    .collect();
                Box::new(Interleaved::new(cores))
            }
            WorkloadSpec::StripedManySided { sides, banks: width } => {
                let width = (*width).clamp(1, banks);
                let victim = (rows / 2 + (seed % 97) as u32) % rows;
                Box::new(StripedNSided::new(victim, *sides, width, rows))
            }
            WorkloadSpec::SameRowAllBanks { banks: width } => {
                let width = (*width).clamp(1, banks);
                let victim = 1 + (rows / 2 + (seed % 97) as u32) % (rows - 2);
                Box::new(SameRowAllBanks::new(victim, width, rows))
            }
        }
    }

    /// The adversarial set of Figure 8(b): S1-10, S1-20, S2-10, S3, S4.
    pub fn adversarial_set() -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::S1 { n: 10 },
            WorkloadSpec::S1 { n: 20 },
            WorkloadSpec::S2 { n: 10 },
            WorkloadSpec::S3,
            WorkloadSpec::S4,
        ]
    }

    /// The normal-workload set of Figure 8(a)/(c): the nine SPEC-high
    /// homogeneous runs, the two mixes, and the multithreaded proxies.
    pub fn normal_set() -> Vec<WorkloadSpec> {
        let mut v: Vec<WorkloadSpec> = SpecPreset::spec_high()
            .into_iter()
            .map(|preset| WorkloadSpec::SpecHomogeneous { preset })
            .collect();
        v.push(WorkloadSpec::MixHigh);
        v.push(WorkloadSpec::MixBlend);
        v.extend(
            SpecPreset::multithreaded()
                .into_iter()
                .map(|preset| WorkloadSpec::SpecHomogeneous { preset }),
        );
        v
    }

    /// The system-scale attack set exercised by the sharded full-system
    /// path: many-sided stripes of two widths plus the same-row sweep.
    pub fn system_set(banks: u16) -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::StripedManySided { sides: 2, banks },
            WorkloadSpec::StripedManySided { sides: 8, banks },
            WorkloadSpec::SameRowAllBanks { banks },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_defenses_build() {
        for spec in [
            DefenseSpec::None,
            DefenseSpec::Graphene { t_rh: 50_000, k: 2 },
            DefenseSpec::HardenedGraphene { t_rh: 50_000, k: 2 },
            DefenseSpec::Para { p: 0.00145 },
            DefenseSpec::Prohit,
            DefenseSpec::Mrloc { p: 0.00145 },
            DefenseSpec::Cbt { t_rh: 50_000 },
            DefenseSpec::Cra { t_rh: 50_000 },
            DefenseSpec::Twice { t_rh: 50_000 },
            DefenseSpec::Ideal { t_rh: 50_000 },
            DefenseSpec::Comet { t_rh: 50_000 },
            DefenseSpec::Abacus { t_rh: 50_000, k: 2 },
            DefenseSpec::BlockHammer { t_rh: 50_000 },
        ] {
            let d = spec.build(0, 65_536);
            assert!(!d.name().is_empty());
            assert!(!spec.name().is_empty());
            let a = spec.build_audited(0, 65_536);
            assert_eq!(a.name(), format!("Audited({})", d.name()));
            assert_eq!(a.table_bits(), d.table_bits(), "audit must not change footprint");
        }
    }

    #[test]
    fn spec_strings_round_trip() {
        for spec in [
            DefenseSpec::None,
            DefenseSpec::Graphene { t_rh: 50_000, k: 2 },
            DefenseSpec::HardenedGraphene { t_rh: 12_500, k: 4 },
            DefenseSpec::Para { p: 0.00145 },
            DefenseSpec::Prohit,
            DefenseSpec::Mrloc { p: 0.00145 },
            DefenseSpec::Cbt { t_rh: 50_000 },
            DefenseSpec::Cra { t_rh: 50_000 },
            DefenseSpec::Twice { t_rh: 50_000 },
            DefenseSpec::Ideal { t_rh: 50_000 },
            DefenseSpec::Comet { t_rh: 25_000 },
            DefenseSpec::Abacus { t_rh: 25_000, k: 2 },
            DefenseSpec::BlockHammer { t_rh: 25_000 },
        ] {
            let text = spec.spec_string();
            let back = DefenseSpec::parse(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(back, spec, "{text}");
        }
    }

    #[test]
    fn arena_spec_strings_carry_all_bank_factory_params() {
        // The ABACuS notation must round-trip the reset-window divisor the
        // all-bank factory consumes, not just the threshold.
        let spec = DefenseSpec::parse("abacus@6250,k=4").unwrap();
        assert_eq!(spec, DefenseSpec::Abacus { t_rh: 6_250, k: 4 });
        assert_eq!(spec.spec_string(), "abacus@6250,k=4");
        assert_eq!(DefenseSpec::parse("comet@1560").unwrap(), DefenseSpec::Comet { t_rh: 1_560 });
        assert_eq!(
            DefenseSpec::parse("blockhammer@3125").unwrap(),
            DefenseSpec::BlockHammer { t_rh: 3_125 },
        );
    }

    #[test]
    fn malformed_spec_strings_are_rejected_with_reasons() {
        for (text, needle) in [
            ("abacus@6250", "k="),
            ("comet", "t_rh"),
            ("blockhammer@abc", "bad t_rh"),
            ("prohit@7", "no `@` arguments"),
            ("warp-field@9000", "unknown defense"),
        ] {
            let err = DefenseSpec::parse(text).unwrap_err();
            assert!(err.to_string().contains(needle), "`{text}` -> {err}");
        }
    }

    #[test]
    fn parse_errors_name_the_offending_field_and_token() {
        let err = DefenseSpec::parse("blockhammer@abc").unwrap_err();
        assert_eq!((err.field, err.token.as_str()), ("t_rh", "abc"));
        let err = DefenseSpec::parse("graphene@50000,k=x").unwrap_err();
        assert_eq!((err.field, err.token.as_str()), ("k", "x"));
        let err = DefenseSpec::parse("para@fast").unwrap_err();
        assert_eq!((err.field, err.token.as_str()), ("p", "fast"));
        let err = DefenseSpec::parse("warp-field@9000").unwrap_err();
        assert_eq!((err.field, err.token.as_str()), ("defense", "warp-field"));
        let err = GenSpec::parse("xdr9/graphene@50000,k=2").unwrap_err();
        assert_eq!((err.field, err.token.as_str()), ("generation", "xdr9"));
    }

    #[test]
    fn generation_qualified_specs_round_trip() {
        let g = GenSpec::parse("ddr5/graphene@20000,k=2").unwrap();
        assert_eq!(g.generation, Generation::Ddr5_4800);
        assert_eq!(g.defense, DefenseSpec::Graphene { t_rh: 20_000, k: 2 });
        assert_eq!(g.spec_string(), "ddr5/graphene@20000,k=2");
        assert_eq!(g.name(), "ddr5/Graphene");
        // Bare specs are the DDR4 legacy notation, in both directions.
        let bare = GenSpec::parse("comet@6250").unwrap();
        assert_eq!(bare.generation, Generation::Ddr4_2400);
        assert_eq!(bare.spec_string(), "comet@6250");
        // A bad defense inside a good generation prefix still points at the
        // defense token.
        let err = GenSpec::parse("lpddr5/warp-field@9000").unwrap_err();
        assert_eq!(err.field, "defense");
    }

    #[test]
    fn rfm_generations_wrap_defenses_in_the_issuer() {
        let spec =
            GenSpec::new(Generation::Ddr5_4800, DefenseSpec::Graphene { t_rh: 20_000, k: 2 });
        assert!(spec.issues_rfm());
        assert_eq!(spec.build_defense(0, 65_536, false).name(), "Rfm(Graphene)");
        assert_eq!(spec.build_defense(0, 65_536, true).name(), "Audited(Rfm(Graphene))");
        // No RFM on DDR4 or LPDDR4X: the defense is untouched, and the DDR4
        // audited build matches the legacy factory byte for byte.
        let d4 = GenSpec::ddr4(DefenseSpec::Graphene { t_rh: 50_000, k: 2 });
        assert!(!d4.issues_rfm());
        assert_eq!(d4.build_defense(0, 65_536, true).name(), "Audited(Graphene)");
        let lp4 = GenSpec::new(Generation::Lpddr4x, DefenseSpec::Comet { t_rh: 12_500 });
        assert_eq!(lp4.build_defense(0, 65_536, false).name(), "CoMeT");
        // There is no defense to re-spell in the baseline.
        assert!(!GenSpec::new(Generation::Ddr5_4800, DefenseSpec::None).issues_rfm());
        // The shared-table factory keeps the wrap order per facade.
        let ab = GenSpec::new(Generation::Lpddr5, DefenseSpec::Abacus { t_rh: 10_000, k: 2 });
        let pool = ab.build_all_bank(0, 4, 65_536, true).expect("ABACuS is all-bank");
        assert_eq!(pool[0].name(), "Audited(Rfm(ABACuS))");
    }

    #[test]
    fn abacus_all_bank_factory_shares_one_table() {
        let spec = DefenseSpec::Abacus { t_rh: 50_000, k: 2 };
        let pool = spec.build_all_bank(0, 4, 65_536, false).expect("ABACuS is all-bank");
        assert_eq!(pool.len(), 4);
        for d in &pool {
            assert_eq!(d.name(), "ABACuS");
        }
        let audited = spec.build_all_bank(0, 4, 65_536, true).expect("ABACuS is all-bank");
        assert_eq!(audited[0].name(), "Audited(ABACuS)");
        // Everything else keeps the per-bank path.
        assert!(DefenseSpec::Comet { t_rh: 50_000 }.build_all_bank(0, 4, 65_536, false).is_none());
        assert!(DefenseSpec::Graphene { t_rh: 50_000, k: 2 }
            .build_all_bank(0, 4, 65_536, false)
            .is_none());
    }

    #[test]
    fn paper_lineup_has_four_schemes() {
        let lineup = DefenseSpec::paper_lineup(50_000);
        assert_eq!(lineup.len(), 4);
        assert_eq!(lineup[0].name(), "PARA-0.00145");
        assert_eq!(lineup[1].name(), "CBT-128");
    }

    #[test]
    fn paper_lineup_scales_cbt() {
        let lineup = DefenseSpec::paper_lineup(12_500);
        assert_eq!(lineup[1].name(), "CBT-512");
        assert_eq!(lineup[0].name(), "PARA-0.00602");
    }

    #[test]
    fn all_workloads_build_and_emit() {
        let mut specs = WorkloadSpec::adversarial_set();
        specs.push(WorkloadSpec::MixHigh);
        for spec in specs {
            let mut w = spec.build(64, 65_536, 7);
            let a = w.next_access();
            assert!(a.row.0 < 65_536, "{}", spec.name());
        }
    }

    #[test]
    fn adversarial_classification() {
        assert!(WorkloadSpec::S3.is_adversarial());
        assert!(!WorkloadSpec::MixHigh.is_adversarial());
    }

    #[test]
    fn system_scale_workloads_are_not_single_bank() {
        for spec in WorkloadSpec::system_set(64) {
            assert!(spec.is_system_scale(), "{}", spec.name());
            assert!(
                !spec.is_adversarial(),
                "{} must not be forced onto the single-bank attack config",
                spec.name()
            );
        }
        assert!(!WorkloadSpec::S3.is_system_scale());
        assert!(!WorkloadSpec::MixBlend.is_system_scale());
    }

    #[test]
    fn system_scale_workloads_cover_many_banks() {
        for spec in WorkloadSpec::system_set(64) {
            let mut w = spec.build(64, 65_536, 7);
            let banks: std::collections::HashSet<u16> =
                (0..256).map(|_| w.next_access().bank).collect();
            assert_eq!(banks.len(), 64, "{} must stripe all banks", spec.name());
        }
    }

    #[test]
    fn defense_factory_matches_direct_builds() {
        let spec = DefenseSpec::Graphene { t_rh: 50_000, k: 2 };
        let plain = spec.build_defense(3, 65_536, false);
        assert_eq!(plain.name(), spec.build(3, 65_536).name());
        let audited = spec.build_defense(3, 65_536, true);
        assert_eq!(audited.name(), format!("Audited({})", plain.name()));
    }

    #[test]
    fn normal_set_matches_paper_count() {
        // 9 SPEC-high + 2 mixes + 5 multithreaded = 16 workloads.
        assert_eq!(WorkloadSpec::normal_set().len(), 16);
    }
}
