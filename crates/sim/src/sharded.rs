//! Full-system sharded execution: stream batches, hammer channels in
//! parallel.
//!
//! The legacy runner drives one [`MemoryController`] over the whole
//! geometry. This module drives the channel-sharded [`SystemController`] as
//! a **pipeline**: the routing front end runs on the calling thread,
//! decoding accesses through the configured [`MappingPolicy`] and streaming
//! `batch`-sized chunks of stamped accesses into one bounded SPSC queue per
//! channel ([`crate::spsc`]); the shards — which share no state — drain
//! their queues as long-lived cooperative jobs on the crate's work-stealing
//! [`pool`]. Routing and execution overlap, nothing is materialized
//! up front, and a shard job that finds its queue empty re-enqueues itself
//! so fewer workers than channels can never deadlock the pipeline.
//!
//! The two paths are interchangeable by construction: each channel's queue
//! delivers that channel's accesses in routing order, stamped with the same
//! absolute arrival times the sequential front end would have presented
//! them, and per-shard stats/telemetry are merged deterministically (in
//! channel order) after the pool drains. So [`run_system`] (sequential) and
//! [`run_system_sharded`] (parallel) produce **bit-identical**
//! [`SystemStats`] at every worker count. The integration tests
//! `sharded_equivalence` and `parallel_determinism` pin this against the
//! legacy single-shard path and across 1/2/4/8-thread runs.

use memctrl::{
    DefenseFactory, MappingPolicy, McBuilder, MemoryController, StampedAccess, SystemController,
    SystemStats, TelemetryTap,
};
use telemetry::{Cadence, MetricsSink, NoopSink, Recorder, SharedSink, Snapshot};
use workloads::Workload;

use crate::pool;
use crate::runner::{audit_run, SimConfig};
use crate::scenarios::{DefenseSpec, WorkloadSpec};
use crate::spsc;

/// Batches in flight per channel queue: enough to decouple the router from
/// a momentarily busy shard without ballooning memory (depth × batch
/// accesses buffered per channel).
pub(crate) const QUEUE_DEPTH: usize = 16;

/// Empty polls a shard job tolerates before re-enqueueing itself and
/// releasing its worker — the cooperative yield that keeps the pipeline
/// live when fewer workers than channels are available. Each failed poll
/// yields the timeslice rather than spinning: with fewer cores than
/// pipeline threads (the extreme being a single-core host), a spinning
/// consumer would burn the exact quantum the router needs to refill the
/// queues.
const PUMP_IDLE_POLLS: u32 = 4;

/// A shard's consumer loop: drain the channel queue batch by batch until
/// the router closes it. On a dry spell the job re-enqueues itself (moving
/// to the back of the worker's deque) instead of camping on the worker.
pub(crate) fn pump<'env>(
    shard: &'env mut MemoryController,
    mut rx: spsc::Consumer<'env, Vec<StampedAccess>>,
    sp: &pool::Spawner<'env, '_>,
) {
    let mut idle = 0u32;
    loop {
        // Read `closed` before the pop: closed + empty means end-of-stream,
        // in that order only (see [`spsc::Consumer::is_closed`]).
        let closed = rx.is_closed();
        if let Some(batch) = rx.try_pop() {
            idle = 0;
            shard.try_run_batch(&batch).expect("routed access is in shard range");
        } else if closed {
            return;
        } else {
            idle += 1;
            if idle >= PUMP_IDLE_POLLS {
                sp.spawn(move |sp2| pump(shard, rx, sp2));
                return;
            }
            std::thread::yield_now();
        }
    }
}

/// Result of one full-system run (sequential or sharded).
#[derive(Debug, Clone)]
pub struct SystemReport {
    /// Defense name.
    pub defense: String,
    /// Workload name.
    pub workload: String,
    /// The address-mapping policy the front end routed with.
    pub policy: MappingPolicy,
    /// Worker threads the shards ran on (1 for the sequential path).
    pub threads: usize,
    /// Batch size of the shard dispatch (accesses per `try_run_batch`).
    pub batch: usize,
    /// Per-channel and merged counters.
    pub stats: SystemStats,
    /// Recorded telemetry, when the campaign wired a recording sink.
    pub snapshot: Option<Snapshot>,
}

fn sink_for(shared: &Option<SharedSink>) -> Box<dyn MetricsSink + Send> {
    match shared {
        Some(s) => Box::new(s.clone()),
        None => Box::new(NoopSink),
    }
}

/// Builds the sharded system for a campaign: defenses come from the one
/// [`DefenseSpec`] factory (seeded by **global** bank index, so the system
/// is bit-comparable to a whole-geometry controller), and telemetry — when
/// wired — goes through per-shard keyed taps sharing one sink.
fn build_system<'a>(
    sim: &'a SimConfig,
    policy: MappingPolicy,
    defense: &'a DefenseSpec,
    audit: bool,
    shared: &'a Option<SharedSink>,
) -> SystemController {
    let cfg = sim.system.clone();
    let rows = cfg.geometry.rows_per_bank;
    let builder = McBuilder::new(cfg).mapping(policy);
    match sim.telemetry.as_ref() {
        None => builder.defenses(defense).audit(audit).build_system(),
        Some(spec) => {
            let cadence = Cadence::EveryActs(spec.every_acts);
            builder
                .defenses_with(move |bank| {
                    let inner = defense.build_defense(bank, rows, audit);
                    mitigations::instrumented(inner, sink_for(shared), bank as u16, rows, cadence)
                })
                .telemetry_per_shard(move |channel, offset| {
                    Some(TelemetryTap::keyed(sink_for(shared), cadence, offset, Some(channel)))
                })
                .build_system()
        }
    }
}

fn recording_sink(sim: &SimConfig) -> Option<SharedSink> {
    sim.telemetry.as_ref().and_then(|spec| {
        (!spec.noop)
            .then(|| SharedSink::with_recorder(Recorder::with_ring_capacity(spec.ring_capacity)))
    })
}

/// Finishes a run: per-shard flush + merge, the invariant audit on every
/// shard, and the final scheme-state telemetry sample (mirroring the
/// single-controller runner's end-of-run emit).
fn seal(
    mut system: SystemController,
    defense: &DefenseSpec,
    workload: &WorkloadSpec,
    audit: bool,
    shared: Option<SharedSink>,
) -> (SystemStats, Option<Snapshot>) {
    let stats = system.finish();
    if audit {
        for (shard, st) in system.shards().iter().zip(&stats.per_channel) {
            audit_run(shard, st, defense, workload);
        }
    }
    let per_channel = system.geometry().banks_per_channel() as usize;
    let snapshot = shared.map(|s| {
        s.with(|rec| {
            for (c, (shard, st)) in system.shards().iter().zip(&stats.per_channel).enumerate() {
                for b in 0..per_channel {
                    let global = (c * per_channel + b) as u16;
                    shard.defense(b).emit_telemetry(global, st.completion, rec);
                }
            }
        });
        s.snapshot(&format!("{}/{}@{}", workload.name(), defense.name(), system.policy().name()))
    });
    (stats, snapshot)
}

/// Runs one (defense, workload) pair through the sharded system
/// **sequentially**: the front end routes and serves one access at a time
/// on the calling thread. This is the reference the parallel path is
/// measured against in `perf_snapshot`.
pub fn run_system(
    sim: &SimConfig,
    policy: MappingPolicy,
    defense: &DefenseSpec,
    workload: &WorkloadSpec,
) -> SystemReport {
    let audit = sim.audit_enabled();
    let shared = recording_sink(sim);
    let mut system = build_system(sim, policy, defense, audit, &shared);
    let geometry = *system.geometry();
    let mut w = workload.build(geometry.total_banks() as u16, geometry.rows_per_bank, sim.seed);
    system
        .try_run(w.as_mut(), sim.accesses)
        .unwrap_or_else(|e| panic!("{}/{}: {e}", defense.name(), workload.name()));
    let (stats, snapshot) = seal(system, defense, workload, audit, shared);
    SystemReport {
        defense: defense.name(),
        workload: workload.name(),
        policy,
        threads: 1,
        batch: 1,
        stats,
        snapshot,
    }
}

/// Runs one (defense, workload) pair through the sharded system in
/// **parallel**: the routing front end streams `batch`-sized chunks of
/// stamped accesses into one bounded SPSC queue per channel while the
/// shards drain their queues concurrently on `threads` pool workers (the
/// router itself rides the calling thread). Routing and execution overlap;
/// nothing is materialized up front. Produces [`SystemStats`] bit-identical
/// to [`run_system`] on the same campaign, at every worker count.
///
/// # Panics
///
/// Panics if `threads` or `batch` is zero, or if routing rejects an access
/// (workload outside the geometry).
pub fn run_system_sharded(
    sim: &SimConfig,
    policy: MappingPolicy,
    defense: &DefenseSpec,
    workload: &WorkloadSpec,
    threads: usize,
    batch: usize,
) -> SystemReport {
    assert!(threads > 0, "need at least one worker thread");
    assert!(batch > 0, "batch of 0 dispatches nothing");
    let audit = sim.audit_enabled();
    let shared = recording_sink(sim);
    let mut system = build_system(sim, policy, defense, audit, &shared);
    let geometry = *system.geometry();
    let mut w = workload.build(geometry.total_banks() as u16, geometry.rows_per_bank, sim.seed);
    let channels = geometry.channels as usize;
    let mut queues: Vec<spsc::SpscQueue<Vec<StampedAccess>>> =
        (0..channels).map(|_| spsc::SpscQueue::new(QUEUE_DEPTH)).collect();
    {
        let (mut router, shards) = system.split_streaming();
        let mut producers = Vec::with_capacity(channels);
        let mut consumers = Vec::with_capacity(channels);
        for q in &mut queues {
            let (tx, rx) = q.split();
            producers.push(tx);
            consumers.push(rx);
        }
        let jobs: Vec<pool::Job<'_>> = shards
            .iter_mut()
            .zip(consumers)
            .map(|(shard, rx)| pool::job(move |sp| pump(shard, rx, sp)))
            .collect();
        pool::run_scoped_with_driver(threads, jobs, move || {
            let mut pending: Vec<Vec<StampedAccess>> =
                (0..channels).map(|_| Vec::with_capacity(batch)).collect();
            for _ in 0..sim.accesses {
                let access = w.next_access();
                let (c, stamped) = router
                    .route_one(&access)
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", defense.name(), workload.name()));
                pending[c].push(stamped);
                if pending[c].len() == batch {
                    let full = std::mem::replace(&mut pending[c], Vec::with_capacity(batch));
                    producers[c].push_blocking(full);
                }
            }
            for (c, buf) in pending.into_iter().enumerate() {
                if !buf.is_empty() {
                    producers[c].push_blocking(buf);
                }
            }
            // Dropping the producers closes every queue; the shard jobs
            // drain what remains and the pool winds down.
        });
    }
    let (stats, snapshot) = seal(system, defense, workload, audit, shared);
    SystemReport {
        defense: defense.name(),
        workload: workload.name(),
        policy,
        threads,
        batch,
        stats,
        snapshot,
    }
}

/// The full-system matrix: every (workload, defense) pair through
/// [`run_system_sharded`]. Pairs run back-to-back — each run already
/// parallelizes internally across channels, so nesting another fan-out
/// would only thrash the worker pool.
pub fn run_system_matrix(
    sim: &SimConfig,
    policy: MappingPolicy,
    defenses: &[DefenseSpec],
    workloads: &[WorkloadSpec],
    threads: usize,
    batch: usize,
) -> Vec<SystemReport> {
    let mut reports = Vec::with_capacity(defenses.len() * workloads.len());
    for workload in workloads {
        for defense in defenses {
            reports.push(run_system_sharded(sim, policy, defense, workload, threads, batch));
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::TelemetrySpec;
    use dram_model::fault::DisturbanceModel;
    use dram_model::geometry::DramGeometry;

    fn small_system(accesses: u64) -> SimConfig {
        let mut sim = SimConfig::micro2020(accesses);
        sim.system.geometry = DramGeometry {
            channels: 4,
            ranks_per_channel: 1,
            banks_per_rank: 4,
            rows_per_bank: 4_096,
        };
        sim.system.fault_model =
            Some(DisturbanceModel { t_rh: 2_000, ..DisturbanceModel::ddr4_50k() });
        sim.audit = true;
        sim
    }

    #[test]
    fn sequential_and_sharded_agree_bit_identically() {
        let sim = small_system(30_000);
        let defense = DefenseSpec::Graphene { t_rh: 2_000, k: 2 };
        let workload = WorkloadSpec::StripedManySided { sides: 4, banks: 16 };
        let seq = run_system(&sim, MappingPolicy::BankInterleaved, &defense, &workload);
        for (threads, batch) in [(1, 64), (4, 64), (4, 7)] {
            let par = run_system_sharded(
                &sim,
                MappingPolicy::BankInterleaved,
                &defense,
                &workload,
                threads,
                batch,
            );
            assert_eq!(seq.stats, par.stats, "threads={threads} batch={batch}");
        }
        assert!(seq.stats.merged.accesses == 30_000);
        assert!(seq.stats.per_channel.iter().all(|s| s.accesses > 0));
    }

    #[test]
    fn same_row_attack_spreads_over_all_channels() {
        let sim = small_system(20_000);
        let report = run_system_sharded(
            &sim,
            MappingPolicy::BankInterleaved,
            &DefenseSpec::None,
            &WorkloadSpec::SameRowAllBanks { banks: 16 },
            2,
            128,
        );
        assert_eq!(report.stats.merged.accesses, 20_000);
        for (c, st) in report.stats.per_channel.iter().enumerate() {
            assert_eq!(st.accesses, 5_000, "channel {c} must see a quarter of the sweep");
        }
    }

    #[test]
    fn recorded_telemetry_does_not_perturb_stats_and_yields_snapshot() {
        let mut plain = small_system(10_000);
        plain.audit = false;
        let mut recorded = plain.clone();
        recorded.telemetry = Some(TelemetrySpec::every_acts(500));
        let defense = DefenseSpec::Para { p: 0.01 };
        let workload = WorkloadSpec::StripedManySided { sides: 2, banks: 16 };
        let a = run_system_sharded(&plain, MappingPolicy::ChannelXor, &defense, &workload, 2, 64);
        let b =
            run_system_sharded(&recorded, MappingPolicy::ChannelXor, &defense, &workload, 2, 64);
        assert_eq!(a.stats, b.stats, "telemetry must be observation-only");
        assert!(a.snapshot.is_none());
        let snap = b.snapshot.expect("recording campaign must yield a snapshot");
        assert!(!snap.series.is_empty());
    }

    #[test]
    fn matrix_covers_every_pair() {
        let mut sim = small_system(2_000);
        sim.audit = false;
        let defenses = [DefenseSpec::None, DefenseSpec::Para { p: 0.001 }];
        let workloads = WorkloadSpec::system_set(16);
        let reports =
            run_system_matrix(&sim, MappingPolicy::RowInterleaved, &defenses, &workloads, 2, 64);
        assert_eq!(reports.len(), 6);
        assert!(reports.iter().all(|r| r.stats.merged.accesses == 2_000));
    }
}
