//! Bounded-memory fleet replay: stream an RHT3 trace from disk through the
//! sharded SPSC pipeline in checkpointed segments.
//!
//! The matrix runners materialize workloads in memory; a fleet-scale trace
//! (hundreds of millions of ACTs from thousands of tenants) cannot be. This
//! module drives the [`sharded`](crate::sharded) pipeline straight from a
//! [`TraceReader`] — the reader refills one chunk at a time, the router
//! streams stamped batches into bounded per-channel SPSC queues, and the
//! shards drain them concurrently — so resident memory stays O(chunk +
//! queue depth) regardless of trace length.
//!
//! Execution is **segmented**: [`run_fleet`] streams `segment` accesses,
//! quiesces the pipeline, writes a `fleetckpt.v1` checkpoint (the JSONL
//! idiom of [`faultsim`]'s serial module: a schema-tagged header line, then
//! one line per channel shard), reports progress, and repeats. A killed run
//! resumes from the last checkpoint via [`TraceReader::skip_to`] plus
//! [`SystemController::restore`], and — because the trace is pre-synthesized
//! and every layer's checkpoint is exact — the resumed run is
//! **bit-identical** to an uninterrupted one at every worker count. The
//! `fleet_replay` integration test pins this with a proptest across 1/2/4
//! workers and arbitrary kill points.
//!
//! [`synth_fleet_trace`] writes the multi-tenant input: thousands of
//! interleaved clients — Zipf/streaming SPEC-like proxies seasoned with
//! throttled row-hammer attackers — merged by arrival time through a k-way
//! heap and recorded incrementally, so synthesis is bounded-memory too.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use dram_model::geometry::DramGeometry;
use memctrl::{MappingPolicy, McBuilder, McConfig, StampedAccess, SystemController, SystemStats};
use telemetry::json::{self, JsonValue};
use workloads::{
    Access, ProxyWorkload, RateLimited, SpecPreset, StripedNSided, TraceReader, TraceWriter,
    Workload,
};

use crate::pool;
use crate::scenarios::DefenseSpec;
use crate::sharded::{pump, QUEUE_DEPTH};
use crate::spsc;

/// Schema tag of the checkpoint header line.
pub const FLEET_CKPT_SCHEMA: &str = "fleetckpt.v1";

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn u64_field(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing or non-integer field `{key}`"))
}

fn str_field<'v>(v: &'v JsonValue, key: &str) -> Result<&'v str, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

/// A parsed `fleetckpt.v1` checkpoint: where the run was in the trace plus
/// the full dynamic state of the sharded system at that point.
#[derive(Debug, Clone)]
pub struct FleetCheckpoint {
    /// Name stamped into the trace this checkpoint belongs to.
    pub trace: String,
    /// Trace records fully executed when the checkpoint was taken.
    pub accesses_done: u64,
    /// The [`SystemController::restore`] value.
    state: JsonValue,
}

impl FleetCheckpoint {
    /// Replays the checkpointed state into a freshly built system of the
    /// same configuration.
    ///
    /// # Errors
    ///
    /// Propagates any shard-level mismatch; on error the system may be
    /// partially restored and must be discarded.
    pub fn restore_into(&self, system: &mut SystemController) -> Result<(), String> {
        system.restore(&self.state)
    }
}

/// Writes a `fleetckpt.v1` checkpoint atomically (temp sibling + rename, so
/// a crash mid-write leaves the previous checkpoint intact).
///
/// # Errors
///
/// Propagates [`SystemController::snapshot`] refusals (oracle, fault plan,
/// command log, telemetry tap, uncheckpointable defense) and filesystem
/// errors, both as strings.
pub fn write_fleet_checkpoint(
    path: &Path,
    trace_name: &str,
    accesses_done: u64,
    system: &SystemController,
) -> Result<(), String> {
    let snap = system.snapshot()?;
    let shards = snap
        .get("shards")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| "system snapshot lacks a `shards` array".to_owned())?;
    let mut text = String::new();
    let header = obj(vec![
        ("schema", JsonValue::Str(FLEET_CKPT_SCHEMA.to_owned())),
        ("trace", JsonValue::Str(trace_name.to_owned())),
        ("accesses_done", JsonValue::U64(accesses_done)),
        ("clock", JsonValue::U64(u64_field(&snap, "clock")?)),
        ("routed", JsonValue::U64(u64_field(&snap, "routed")?)),
        ("channels", JsonValue::U64(shards.len() as u64)),
    ]);
    text.push_str(&header.to_string());
    text.push('\n');
    for shard in shards {
        text.push_str(&shard.to_string());
        text.push('\n');
    }
    let tmp = path.with_extension("ckpt.tmp");
    let io = |e: std::io::Error| format!("checkpoint write {}: {e}", path.display());
    {
        let mut f = fs::File::create(&tmp).map_err(io)?;
        f.write_all(text.as_bytes()).map_err(io)?;
        f.sync_all().map_err(io)?;
    }
    fs::rename(&tmp, path).map_err(io)
}

/// Reads and validates a `fleetckpt.v1` checkpoint file.
///
/// # Errors
///
/// Reports the first malformed line: wrong schema tag, a non-object line,
/// or a channel count disagreeing with the shard lines present.
pub fn read_fleet_checkpoint(path: &Path) -> Result<FleetCheckpoint, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("checkpoint read {}: {e}", path.display()))?;
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = json::parse(lines.next().ok_or("empty checkpoint file")?)
        .map_err(|e| format!("checkpoint header: {e}"))?;
    let schema = str_field(&header, "schema")?;
    if schema != FLEET_CKPT_SCHEMA {
        return Err(format!("checkpoint schema is `{schema}`, expected `{FLEET_CKPT_SCHEMA}`"));
    }
    let channels = u64_field(&header, "channels")?;
    let shards = lines
        .enumerate()
        .map(|(i, line)| json::parse(line).map_err(|e| format!("checkpoint shard line {i}: {e}")))
        .collect::<Result<Vec<_>, String>>()?;
    if shards.len() as u64 != channels {
        return Err(format!(
            "checkpoint header promises {channels} channel(s), found {} shard line(s)",
            shards.len()
        ));
    }
    Ok(FleetCheckpoint {
        trace: str_field(&header, "trace")?.to_owned(),
        accesses_done: u64_field(&header, "accesses_done")?,
        state: obj(vec![
            ("clock", JsonValue::U64(u64_field(&header, "clock")?)),
            ("routed", JsonValue::U64(u64_field(&header, "routed")?)),
            ("shards", JsonValue::Arr(shards)),
        ]),
    })
}

/// Streams exactly `n` accesses from `reader` through the split pipeline:
/// the router rides the calling thread, shards drain their queues on `threads`
/// pool workers. Identical mechanics to
/// [`run_system_sharded`](crate::run_system_sharded), minus the workload
/// factory: the reader IS the stream.
fn stream_segment(
    system: &mut SystemController,
    reader: &mut TraceReader,
    n: u64,
    threads: usize,
    batch: usize,
) {
    let channels = system.geometry().channels as usize;
    let mut queues: Vec<spsc::SpscQueue<Vec<StampedAccess>>> =
        (0..channels).map(|_| spsc::SpscQueue::new(QUEUE_DEPTH)).collect();
    let (mut router, shards) = system.split_streaming();
    let mut producers = Vec::with_capacity(channels);
    let mut consumers = Vec::with_capacity(channels);
    for q in &mut queues {
        let (tx, rx) = q.split();
        producers.push(tx);
        consumers.push(rx);
    }
    let jobs: Vec<pool::Job<'_>> = shards
        .iter_mut()
        .zip(consumers)
        .map(|(shard, rx)| pool::job(move |sp| pump(shard, rx, sp)))
        .collect();
    pool::run_scoped_with_driver(threads, jobs, move || {
        let mut pending: Vec<Vec<StampedAccess>> =
            (0..channels).map(|_| Vec::with_capacity(batch)).collect();
        for _ in 0..n {
            let access = reader.next_access();
            // invariant: both the trace header and every record were
            // validated against this geometry on read.
            let (c, stamped) =
                router.route_one(&access).unwrap_or_else(|e| panic!("fleet trace: {e}"));
            pending[c].push(stamped);
            if pending[c].len() == batch {
                let full = std::mem::replace(&mut pending[c], Vec::with_capacity(batch));
                producers[c].push_blocking(full);
            }
        }
        for (c, buf) in pending.into_iter().enumerate() {
            if !buf.is_empty() {
                producers[c].push_blocking(buf);
            }
        }
        // Dropping the producers closes the queues; pumps drain and exit.
    });
}

/// Configuration of one fleet replay.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Controller configuration; its geometry must match the trace header.
    /// Must carry no fault oracle when checkpointing (snapshots refuse it).
    pub system: McConfig,
    /// Address-mapping policy of the routing front end.
    pub policy: MappingPolicy,
    /// Defense instantiated per bank.
    pub defense: DefenseSpec,
    /// Wrap every defense in the invariant-auditing shim.
    pub audit: bool,
    /// Worker threads draining the channel queues.
    pub threads: usize,
    /// Stamped accesses per SPSC batch.
    pub batch: usize,
    /// Accesses per streaming segment; the pipeline quiesces and a
    /// checkpoint is written after each.
    pub segment: u64,
    /// Checkpoint file. When the file already exists, the run **resumes**
    /// from it instead of starting over.
    pub checkpoint: Option<PathBuf>,
    /// Stop (after checkpointing) once this many trace records have been
    /// executed — the kill switch the resume test and CI smoke use.
    pub stop_after: Option<u64>,
}

impl FleetConfig {
    /// A paper-geometry replay with the given defense: micro2020 system
    /// (no oracle — checkpoints refuse one), bank-interleaved routing,
    /// 4 workers, 64-access batches, 1M-access segments.
    pub fn micro2020(defense: DefenseSpec) -> Self {
        FleetConfig {
            system: McConfig::micro2020_no_oracle(),
            policy: MappingPolicy::BankInterleaved,
            defense,
            audit: false,
            threads: 4,
            batch: 64,
            segment: 1_000_000,
            checkpoint: None,
            stop_after: None,
        }
    }
}

/// Progress report delivered to the [`run_fleet`] callback after every
/// segment (post-checkpoint, so a consumer that dies mid-callback loses
/// nothing).
#[derive(Debug, Clone)]
pub struct FleetProgress {
    /// Trace records executed so far (across resumes).
    pub accesses_done: u64,
    /// Total records this run will execute (respects `stop_after`).
    pub goal: u64,
    /// Records stamped into the trace header.
    pub trace_len: u64,
    /// Simulated time (ps) of the routing front end.
    pub clock: u64,
    /// Cumulative per-channel and merged counters.
    pub stats: SystemStats,
}

/// Result of a fleet replay.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Final cumulative statistics.
    pub stats: SystemStats,
    /// Trace records executed when the run ended.
    pub accesses_done: u64,
    /// Records stamped into the trace header.
    pub trace_len: u64,
    /// Set when the run resumed from an existing checkpoint, to the record
    /// count it resumed at.
    pub resumed_from: Option<u64>,
    /// Streaming segments executed by **this** invocation.
    pub segments: u64,
}

/// Streams `trace` through a sharded system in checkpointed segments,
/// invoking `on_segment` after each. See the module docs for the memory
/// and bit-identity contracts.
///
/// # Errors
///
/// Reports (as strings) an unreadable or geometry-mismatched trace, a
/// corrupt or foreign checkpoint, and checkpoint write failures.
///
/// # Panics
///
/// Panics if `threads`, `batch`, or `segment` is zero, or if the trace
/// stream fails mid-read (truncated file).
pub fn run_fleet(
    cfg: &FleetConfig,
    trace: &Path,
    mut on_segment: impl FnMut(&FleetProgress),
) -> Result<FleetReport, String> {
    assert!(cfg.threads > 0, "need at least one worker thread");
    assert!(cfg.batch > 0, "batch of 0 dispatches nothing");
    assert!(cfg.segment > 0, "segment of 0 makes no progress");
    let mut reader = TraceReader::open_for(trace, &cfg.system.geometry)
        .map_err(|e| format!("trace {}: {e}", trace.display()))?;
    let trace_len = reader.len();
    let mut system = McBuilder::new(cfg.system.clone())
        .mapping(cfg.policy)
        .defenses(&cfg.defense)
        .audit(cfg.audit)
        .build_system();
    let mut done = 0u64;
    let mut resumed_from = None;
    if let Some(path) = &cfg.checkpoint {
        if path.exists() {
            let ckpt = read_fleet_checkpoint(path)?;
            if ckpt.trace != reader.name() {
                return Err(format!(
                    "checkpoint belongs to trace `{}`, not `{}`",
                    ckpt.trace,
                    reader.name()
                ));
            }
            if ckpt.accesses_done > trace_len {
                return Err(format!(
                    "checkpoint claims {} records done of a {trace_len}-record trace",
                    ckpt.accesses_done
                ));
            }
            ckpt.restore_into(&mut system)?;
            reader
                .skip_to(ckpt.accesses_done)
                .map_err(|e| format!("trace seek to {}: {e}", ckpt.accesses_done))?;
            done = ckpt.accesses_done;
            resumed_from = Some(done);
        }
    }
    let goal = cfg.stop_after.map_or(trace_len, |s| s.min(trace_len)).max(done);
    let mut segments = 0u64;
    while done < goal {
        let n = cfg.segment.min(goal - done);
        stream_segment(&mut system, &mut reader, n, cfg.threads, cfg.batch);
        done += n;
        segments += 1;
        if let Some(path) = &cfg.checkpoint {
            write_fleet_checkpoint(path, &reader.name(), done, &system)?;
        }
        let progress = FleetProgress {
            accesses_done: done,
            goal,
            trace_len,
            clock: system.clock(),
            stats: system.finish(),
        };
        on_segment(&progress);
    }
    Ok(FleetReport {
        stats: system.finish(),
        accesses_done: done,
        trace_len,
        resumed_from,
        segments,
    })
}

/// splitmix64: derives decorrelated per-client seeds from one fleet seed
/// without pulling a PRNG dependency into this crate.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Builds the fleet's client population: every 16th client is a throttled
/// 4-sided row-hammer attacker, the rest are SPEC-like proxies cycling
/// through every preset (the streaming presets — libquantum, lbm, RADIX —
/// give the mix its sequential-walk tenants, the rest its Zipf tenants).
fn fleet_clients(
    geometry: &DramGeometry,
    clients: u16,
    seed: u64,
) -> Vec<Box<dyn Workload + Send>> {
    let banks = geometry.total_banks() as u16;
    let rows = geometry.rows_per_bank;
    let presets = SpecPreset::all();
    (0..clients)
        .map(|i| {
            let client_seed = splitmix64(seed ^ (u64::from(i) << 1));
            if i % 16 == 0 {
                // Spread attackers' victims over the row space; throttle to
                // one ACT per ~50 ns so no single tenant saturates the bus.
                let victim = 8 + (client_seed as u32 % rows.saturating_sub(16).max(1));
                let attack = StripedNSided::new(victim, 4, banks, rows);
                Box::new(RateLimited::new(attack, 50_000 + (client_seed % 8) * 10_000))
                    as Box<dyn Workload + Send>
            } else {
                let preset = presets[usize::from(i) % presets.len()];
                Box::new(ProxyWorkload::from_preset(preset, banks, rows, client_seed))
            }
        })
        .collect()
}

/// Synthesizes a multi-tenant RHT3 trace: `clients` independent tenant
/// streams merged by arrival time (a k-way heap merge, each stream keeping
/// its own clock) and recorded incrementally — memory stays O(clients +
/// chunk) no matter how many records are written. Each record's `stream` id
/// is its client index, so per-tenant latency attribution survives replay.
///
/// # Errors
///
/// Propagates trace-writer I/O errors.
///
/// # Panics
///
/// Panics if `clients` is zero.
pub fn synth_fleet_trace(
    path: &Path,
    name: &str,
    geometry: &DramGeometry,
    clients: u16,
    accesses: u64,
    seed: u64,
) -> std::io::Result<()> {
    assert!(clients > 0, "need at least one client");
    let mut streams = fleet_clients(geometry, clients, seed);
    let mut writer = TraceWriter::create(path, name, *geometry)?;
    // Heap of (next arrival, client); ties break on the lower client index,
    // so synthesis is deterministic.
    let mut heap: BinaryHeap<Reverse<(u64, u16)>> = BinaryHeap::with_capacity(streams.len());
    let mut pending: Vec<Access> = Vec::with_capacity(streams.len());
    for (i, s) in streams.iter_mut().enumerate() {
        let a = s.next_access();
        heap.push(Reverse((a.gap, i as u16)));
        pending.push(a);
    }
    let mut last_emitted = 0u64;
    for _ in 0..accesses {
        let Reverse((at, idx)) = heap.pop().expect("heap holds one entry per client");
        let access = pending[usize::from(idx)];
        let next = streams[usize::from(idx)].next_access();
        pending[usize::from(idx)] = next;
        heap.push(Reverse((at.saturating_add(next.gap), idx)));
        writer.push(&Access { gap: at.saturating_sub(last_emitted), stream: idx, ..access })?;
        last_emitted = at;
    }
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp(name: &str) -> PathBuf {
        static UNIQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join("graphene_repro_fleet");
        fs::create_dir_all(&dir).unwrap();
        dir.join(format!(
            "{}-{}-{}",
            std::process::id(),
            UNIQ.fetch_add(1, Ordering::Relaxed),
            name
        ))
    }

    fn small_cfg() -> FleetConfig {
        let mut cfg = FleetConfig::micro2020(DefenseSpec::Graphene { t_rh: 2_000, k: 2 });
        cfg.system.geometry = DramGeometry {
            channels: 4,
            ranks_per_channel: 1,
            banks_per_rank: 4,
            rows_per_bank: 4_096,
        };
        cfg.threads = 2;
        cfg.batch = 32;
        cfg.segment = 5_000;
        cfg
    }

    fn small_trace(cfg: &FleetConfig, accesses: u64) -> PathBuf {
        let path = tmp("fleet.rht3");
        synth_fleet_trace(&path, "fleet-test", &cfg.system.geometry, 48, accesses, 7).unwrap();
        path
    }

    #[test]
    fn synthesized_fleet_mixes_tenants_and_replays_fully() {
        let cfg = small_cfg();
        let trace = small_trace(&cfg, 12_000);
        let mut segments_seen = 0;
        let report = run_fleet(&cfg, &trace, |p| {
            segments_seen += 1;
            assert!(p.accesses_done <= p.goal);
        })
        .unwrap();
        assert_eq!(report.accesses_done, 12_000);
        assert_eq!(report.segments, 3);
        assert_eq!(segments_seen, 3);
        assert_eq!(report.stats.merged.accesses, 12_000);
        // The interleave reaches every channel and carries many tenants.
        assert!(report.stats.per_channel.iter().all(|s| s.accesses > 0));
        assert!(report.stats.merged.per_stream.iter().filter(|&&(n, _)| n > 0).count() > 16);
        fs::remove_file(&trace).ok();
    }

    #[test]
    fn kill_and_resume_is_bit_identical_to_uninterrupted() {
        let cfg = small_cfg();
        let trace = small_trace(&cfg, 20_000);
        let uninterrupted = run_fleet(&cfg, &trace, |_| {}).unwrap();

        let ckpt = tmp("fleet.ckpt");
        let mut killed = cfg.clone();
        killed.checkpoint = Some(ckpt.clone());
        killed.stop_after = Some(7_500); // mid-segment kill: a short final segment
        let first = run_fleet(&killed, &trace, |_| {}).unwrap();
        assert_eq!(first.accesses_done, 7_500);
        assert!(first.resumed_from.is_none());

        let mut resumed = killed.clone();
        resumed.stop_after = None;
        let second = run_fleet(&resumed, &trace, |_| {}).unwrap();
        assert_eq!(second.resumed_from, Some(first.accesses_done));
        assert_eq!(second.accesses_done, 20_000);
        assert_eq!(second.stats, uninterrupted.stats, "resume must be bit-identical");
        fs::remove_file(&trace).ok();
        fs::remove_file(&ckpt).ok();
    }

    #[test]
    fn checkpoint_for_a_different_trace_is_refused() {
        let cfg = small_cfg();
        let trace_a = small_trace(&cfg, 6_000);
        let ckpt = tmp("fleet.ckpt");
        let mut with_ckpt = cfg.clone();
        with_ckpt.checkpoint = Some(ckpt.clone());
        run_fleet(&with_ckpt, &trace_a, |_| {}).unwrap();

        let trace_b = tmp("other.rht3");
        synth_fleet_trace(&trace_b, "other-fleet", &cfg.system.geometry, 8, 1_000, 9).unwrap();
        let err = run_fleet(&with_ckpt, &trace_b, |_| {}).unwrap_err();
        assert!(err.contains("belongs to trace"), "{err}");
        for p in [trace_a, trace_b, ckpt] {
            fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn corrupt_checkpoint_is_a_typed_error_not_a_crash() {
        let path = tmp("bad.ckpt");
        fs::write(&path, "{\"schema\":\"somethingelse.v9\",\"channels\":0}\n").unwrap();
        let err = read_fleet_checkpoint(&path).unwrap_err();
        assert!(err.contains("fleetckpt.v1"), "{err}");
        fs::write(&path, "").unwrap();
        assert!(read_fleet_checkpoint(&path).unwrap_err().contains("empty"));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_refuses_oracle_armed_systems() {
        let mut cfg = small_cfg();
        cfg.system = McConfig::micro2020(); // carries the ground-truth oracle
        cfg.system.geometry.rows_per_bank = 4_096;
        cfg.checkpoint = Some(tmp("refused.ckpt"));
        let trace = small_trace(&cfg, 6_000);
        let err = run_fleet(&cfg, &trace, |_| {}).unwrap_err();
        assert!(err.contains("fault oracle"), "{err}");
        fs::remove_file(&trace).ok();
    }
}
