//! Bounded-memory fleet replay: stream an RHT4 trace from disk through the
//! sharded SPSC pipeline in checkpointed segments, with integrity-framed
//! formats and a crash-and-corruption recovery supervisor.
//!
//! The matrix runners materialize workloads in memory; a fleet-scale trace
//! (hundreds of millions of ACTs from thousands of tenants) cannot be. This
//! module drives the [`sharded`](crate::sharded) pipeline straight from a
//! [`TraceReader`] — the reader refills one chunk at a time, the router
//! streams stamped batches into bounded per-channel SPSC queues, and the
//! shards drain them concurrently — so resident memory stays O(chunk +
//! queue depth) regardless of trace length.
//!
//! Execution is **segmented**: [`run_fleet`] streams `segment` accesses,
//! quiesces the pipeline, writes a `fleetckpt.v2` checkpoint (the JSONL
//! idiom of [`faultsim`]'s serial module: a schema-tagged header line, one
//! line per channel shard, and a CRC32C integrity footer), reports
//! progress, and repeats. A killed run resumes from the last checkpoint via
//! [`TraceReader::skip_to`] plus [`SystemController::restore`], and —
//! because the trace is pre-synthesized and every layer's checkpoint is
//! exact — the resumed run is **bit-identical** to an uninterrupted one at
//! every worker count. The `fleet_replay` integration test pins this with a
//! proptest across 1/2/4 workers and arbitrary kill points.
//!
//! ## Integrity and failure model (DESIGN.md §6l)
//!
//! Every failure is a typed [`FleetError`], never a panic or a silent wrong
//! result. The on-disk formats defend themselves: RHT4 traces carry
//! per-chunk CRC32C frames (checked by [`TraceReader`]), and `fleetckpt.v2`
//! carries per-line CRCs, a whole-body CRC, and a **config fingerprint**
//! ([`CkptFingerprint`]: defense spec, mapping policy, DRAM generation,
//! audit flag, geometry) so that restoring under a different configuration
//! is rejected with a diagnostic naming the differing field rather than
//! silently producing plausible-but-wrong statistics.
//!
//! [`run_fleet_supervised`] adds the recovery layer: checkpoints rotate
//! across `keep` generation slots, corrupt files are **quarantined aside**
//! (renamed, never deleted or overwritten in place), a failed segment rolls
//! back to the newest *verified* checkpoint and retries with bounded,
//! deterministic (virtual — recorded, not slept) backoff, and the degraded-
//! mode accounting surfaces as `fleet.retries` / `fleet.rollbacks` /
//! `fleet.corrupt_chunks` / `fleet.quarantined` telemetry counters. All
//! file I/O flows through the [`workloads::vfs`] seam, so the `chaos-fleet`
//! harness injects deterministic torn writes, bit rot, and fsync failures
//! under these exact code paths.
//!
//! [`synth_fleet_trace`] writes the multi-tenant input: thousands of
//! interleaved clients — Zipf/streaming SPEC-like proxies seasoned with
//! throttled row-hammer attackers — merged by arrival time through a k-way
//! heap and recorded incrementally, so synthesis is bounded-memory too.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use dram_model::geometry::DramGeometry;
use memctrl::{
    CkptError, MappingPolicy, McBuilder, McConfig, McError, StampedAccess, SystemController,
    SystemStats,
};
use telemetry::json::{self, JsonValue};
use telemetry::{MetricsSink, SharedSink};
use workloads::crc::crc32c;
use workloads::vfs::{real_fs, Vfs};
use workloads::{
    Access, ProxyWorkload, RateLimited, SpecPreset, StripedNSided, TraceError, TraceReader,
    TraceWriter, Workload,
};

use crate::pool;
use crate::scenarios::DefenseSpec;
use crate::sharded::{pump, QUEUE_DEPTH};
use crate::spsc;

/// Schema tag of the checkpoint header line.
pub const FLEET_CKPT_SCHEMA: &str = "fleetckpt.v2";

/// Schema tag of the integrity footer line.
pub const FLEET_CKPT_FOOTER_SCHEMA: &str = "fleetckpt.v2#footer";

/// Legacy (un-framed, fingerprint-less) schema, still readable.
pub const FLEET_CKPT_SCHEMA_V1: &str = "fleetckpt.v1";

/// Why a fleet replay failed.
///
/// The variants separate the three things a recovery layer must tell
/// apart: *this artifact is damaged* ([`CkptCorrupt`](Self::CkptCorrupt),
/// a [`TraceStream`](Self::TraceStream) carrying a CRC failure — retry or
/// roll back), *this artifact belongs to a different run*
/// ([`WrongTrace`](Self::WrongTrace),
/// [`ConfigMismatch`](Self::ConfigMismatch) — no retry will ever work), and
/// *the environment failed* (I/O variants — maybe transient).
#[derive(Debug)]
#[non_exhaustive]
pub enum FleetError {
    /// The trace file could not be opened or seeked.
    Trace {
        /// The trace path.
        path: PathBuf,
        /// The underlying failure (typed [`workloads::TraceError`]s arrive
        /// as [`std::io::ErrorKind::InvalidData`] payloads).
        source: std::io::Error,
    },
    /// The trace stream failed mid-segment (truncation, CRC failure, I/O).
    TraceStream {
        /// Records consumed when the stream failed.
        position: u64,
        /// The underlying failure.
        source: std::io::Error,
    },
    /// The routing front end rejected an access.
    Route {
        /// Records consumed when routing failed.
        position: u64,
        /// The controller's error.
        source: McError,
    },
    /// The system refused to snapshot (oracle, tap, uncheckpointable
    /// defense, …).
    Snapshot {
        /// The controller-layer error.
        source: CkptError,
    },
    /// The system rejected a structurally valid checkpoint on restore.
    Restore {
        /// The controller-layer error.
        source: CkptError,
    },
    /// Checkpoint file I/O failed.
    CkptIo {
        /// The checkpoint path.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The checkpoint file is damaged: bad JSON, a failed CRC frame, a
    /// missing footer, or a shard count disagreeing with its header.
    CkptCorrupt {
        /// The checkpoint path.
        path: PathBuf,
        /// What exactly is damaged.
        detail: String,
    },
    /// The checkpoint carries an unknown schema tag.
    CkptSchema {
        /// The checkpoint path.
        path: PathBuf,
        /// The tag found.
        found: String,
    },
    /// The checkpoint belongs to a different trace.
    WrongTrace {
        /// Name stamped in the trace being replayed.
        expected: String,
        /// Name recorded in the checkpoint.
        found: String,
    },
    /// The checkpoint claims more records than the trace holds.
    BeyondTrace {
        /// Records the checkpoint claims were executed.
        claimed: u64,
        /// Records the trace actually holds.
        trace_len: u64,
    },
    /// The checkpoint's config fingerprint disagrees with this run's
    /// configuration on `field`.
    ConfigMismatch {
        /// The differing fingerprint field.
        field: &'static str,
        /// This run's value.
        expected: String,
        /// The checkpoint's value.
        found: String,
    },
    /// The supervisor exhausted its retry budget on one segment.
    RetriesExhausted {
        /// First record of the failing segment.
        segment_start: u64,
        /// Attempts made (including the first).
        attempts: u32,
        /// The last failure.
        last: Box<FleetError>,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Trace { path, source } => write!(f, "trace {}: {source}", path.display()),
            FleetError::TraceStream { position, source } => {
                write!(f, "trace stream failed at record {position}: {source}")
            }
            FleetError::Route { position, source } => {
                write!(f, "routing failed at record {position}: {source}")
            }
            FleetError::Snapshot { source } => write!(f, "checkpoint snapshot: {source}"),
            FleetError::Restore { source } => write!(f, "checkpoint restore: {source}"),
            FleetError::CkptIo { path, source } => {
                write!(f, "checkpoint {}: {source}", path.display())
            }
            FleetError::CkptCorrupt { path, detail } => {
                write!(f, "corrupt checkpoint {}: {detail}", path.display())
            }
            FleetError::CkptSchema { path, found } => write!(
                f,
                "checkpoint {}: schema `{found}` is not `{FLEET_CKPT_SCHEMA}` \
                 (or legacy `{FLEET_CKPT_SCHEMA_V1}`)",
                path.display()
            ),
            FleetError::WrongTrace { expected, found } => {
                write!(f, "checkpoint belongs to trace `{found}`, not `{expected}`")
            }
            FleetError::BeyondTrace { claimed, trace_len } => {
                write!(f, "checkpoint claims {claimed} records done of a {trace_len}-record trace")
            }
            FleetError::ConfigMismatch { field, expected, found } => write!(
                f,
                "checkpoint config mismatch: `{field}` is `{found}` in the checkpoint \
                 but `{expected}` in this run"
            ),
            FleetError::RetriesExhausted { segment_start, attempts, last } => write!(
                f,
                "segment at record {segment_start} failed after {attempts} attempt(s); \
                 last error: {last}"
            ),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Trace { source, .. }
            | FleetError::TraceStream { source, .. }
            | FleetError::CkptIo { source, .. } => Some(source),
            FleetError::Route { source, .. } => Some(source),
            FleetError::Snapshot { source } | FleetError::Restore { source } => Some(source),
            FleetError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl FleetError {
    /// True when the failure is *data damage* a CRC frame caught — a trace
    /// chunk or checkpoint whose content no longer matches its checksum.
    /// The supervisor counts these as `fleet.corrupt_chunks`.
    pub fn is_corruption(&self) -> bool {
        match self {
            FleetError::CkptCorrupt { .. } => true,
            FleetError::Trace { source, .. } | FleetError::TraceStream { source, .. } => source
                .get_ref()
                .and_then(|r| r.downcast_ref::<TraceError>())
                .is_some_and(|t| matches!(t, TraceError::Corrupt { .. })),
            FleetError::RetriesExhausted { last, .. } => last.is_corruption(),
            _ => false,
        }
    }
}

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn u64_field(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing or non-integer field `{key}`"))
}

fn str_field<'v>(v: &'v JsonValue, key: &str) -> Result<&'v str, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

/// The configuration identity stamped into every `fleetckpt.v2` header.
///
/// A checkpoint is only as good as the run that wrote it: restoring
/// Graphene-at-2k state into a CoMeT-at-1k system would not fail loudly —
/// it would *run*, producing statistics that belong to neither
/// configuration. The fingerprint pins everything that shapes simulated
/// behavior but is absent from the state itself; restore compares field by
/// field and rejects with [`FleetError::ConfigMismatch`] naming the first
/// difference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptFingerprint {
    /// [`DefenseSpec::spec_string`] of the per-bank defense.
    pub defense: String,
    /// [`MappingPolicy::name`] of the routing front end.
    pub policy: String,
    /// DRAM generation name (timings and RFM behavior).
    pub generation: String,
    /// Whether defenses run under the invariant-auditing shim.
    pub audit: bool,
    /// Geometry the trace was routed against.
    pub geometry: DramGeometry,
}

impl CkptFingerprint {
    /// The fingerprint of `cfg`.
    pub fn of(cfg: &FleetConfig) -> Self {
        CkptFingerprint {
            defense: cfg.defense.spec_string(),
            policy: cfg.policy.name().to_owned(),
            generation: cfg.system.generation.name().to_owned(),
            audit: cfg.audit,
            geometry: cfg.system.geometry,
        }
    }

    fn to_json(&self) -> JsonValue {
        obj(vec![
            ("defense", JsonValue::Str(self.defense.clone())),
            ("policy", JsonValue::Str(self.policy.clone())),
            ("generation", JsonValue::Str(self.generation.clone())),
            ("audit", JsonValue::Bool(self.audit)),
            ("channels", JsonValue::U64(u64::from(self.geometry.channels))),
            ("ranks", JsonValue::U64(u64::from(self.geometry.ranks_per_channel))),
            ("banks", JsonValue::U64(u64::from(self.geometry.banks_per_rank))),
            ("rows", JsonValue::U64(u64::from(self.geometry.rows_per_bank))),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<Self, String> {
        let audit = match v.get("audit") {
            Some(JsonValue::Bool(b)) => *b,
            _ => return Err("missing or non-boolean field `audit`".to_owned()),
        };
        Ok(CkptFingerprint {
            defense: str_field(v, "defense")?.to_owned(),
            policy: str_field(v, "policy")?.to_owned(),
            generation: str_field(v, "generation")?.to_owned(),
            audit,
            geometry: DramGeometry {
                channels: u64_field(v, "channels")? as u8,
                ranks_per_channel: u64_field(v, "ranks")? as u8,
                banks_per_rank: u64_field(v, "banks")? as u8,
                rows_per_bank: u64_field(v, "rows")? as u32,
            },
        })
    }

    /// Rejects a restore whose run configuration (`expected`) differs from
    /// this checkpointed fingerprint, naming the first differing field.
    ///
    /// # Errors
    ///
    /// [`FleetError::ConfigMismatch`].
    pub fn check_against(&self, expected: &CkptFingerprint) -> Result<(), FleetError> {
        let mismatch = |field, expected: &dyn fmt::Display, found: &dyn fmt::Display| {
            Err(FleetError::ConfigMismatch {
                field,
                expected: expected.to_string(),
                found: found.to_string(),
            })
        };
        if self.defense != expected.defense {
            return mismatch("defense", &expected.defense, &self.defense);
        }
        if self.policy != expected.policy {
            return mismatch("policy", &expected.policy, &self.policy);
        }
        if self.generation != expected.generation {
            return mismatch("generation", &expected.generation, &self.generation);
        }
        if self.audit != expected.audit {
            return mismatch("audit", &expected.audit, &self.audit);
        }
        let g = &self.geometry;
        let e = &expected.geometry;
        if g.channels != e.channels {
            return mismatch("channels", &e.channels, &g.channels);
        }
        if g.ranks_per_channel != e.ranks_per_channel {
            return mismatch("ranks", &e.ranks_per_channel, &g.ranks_per_channel);
        }
        if g.banks_per_rank != e.banks_per_rank {
            return mismatch("banks", &e.banks_per_rank, &g.banks_per_rank);
        }
        if g.rows_per_bank != e.rows_per_bank {
            return mismatch("rows", &e.rows_per_bank, &g.rows_per_bank);
        }
        Ok(())
    }
}

/// A parsed fleet checkpoint: where the run was in the trace, the config
/// identity it ran under, and the full dynamic state of the sharded system
/// at that point.
#[derive(Debug, Clone)]
pub struct FleetCheckpoint {
    /// Name stamped into the trace this checkpoint belongs to.
    pub trace: String,
    /// Trace records fully executed when the checkpoint was taken.
    pub accesses_done: u64,
    /// Config fingerprint; `None` for legacy `fleetckpt.v1` files, which
    /// predate it (their restores skip the fingerprint check).
    pub config: Option<CkptFingerprint>,
    /// The [`SystemController::restore`] value.
    state: JsonValue,
}

impl FleetCheckpoint {
    /// Replays the checkpointed state into a freshly built system of the
    /// same configuration.
    ///
    /// # Errors
    ///
    /// Propagates any shard-level mismatch; on error the system may be
    /// partially restored and must be discarded.
    pub fn restore_into(&self, system: &mut SystemController) -> Result<(), CkptError> {
        system.restore(&self.state)
    }
}

/// Writes a `fleetckpt.v2` checkpoint atomically (temp sibling + rename, so
/// a crash mid-write leaves the previous checkpoint intact) through the
/// given filesystem.
///
/// The rendered file is a JSONL document: a header line carrying the trace
/// identity, progress, and `fingerprint`; one line per channel shard; and a
/// footer line with a CRC32C per body line plus one over the whole body, so
/// any later bit rot or truncation is detected at read time.
///
/// # Errors
///
/// [`FleetError::Snapshot`] when the system refuses to snapshot (oracle,
/// fault plan, command log, telemetry tap, uncheckpointable defense);
/// [`FleetError::CkptIo`] on filesystem failure.
pub fn write_fleet_checkpoint(
    fs: &dyn Vfs,
    path: &Path,
    trace_name: &str,
    accesses_done: u64,
    system: &SystemController,
    fingerprint: &CkptFingerprint,
) -> Result<(), FleetError> {
    let snap = system.snapshot().map_err(|source| FleetError::Snapshot { source })?;
    let shards = snap
        .get("shards")
        .and_then(JsonValue::as_arr)
        .expect("system snapshots always carry a `shards` array");
    let mut lines: Vec<String> = Vec::with_capacity(shards.len() + 2);
    lines.push(
        obj(vec![
            ("schema", JsonValue::Str(FLEET_CKPT_SCHEMA.to_owned())),
            ("trace", JsonValue::Str(trace_name.to_owned())),
            ("accesses_done", JsonValue::U64(accesses_done)),
            ("clock", JsonValue::U64(u64_field(&snap, "clock").expect("snapshot carries clock"))),
            (
                "routed",
                JsonValue::U64(u64_field(&snap, "routed").expect("snapshot carries routed")),
            ),
            ("channels", JsonValue::U64(shards.len() as u64)),
            ("config", fingerprint.to_json()),
        ])
        .to_string(),
    );
    for shard in shards {
        lines.push(shard.to_string());
    }
    let line_crcs: Vec<JsonValue> =
        lines.iter().map(|l| JsonValue::U64(u64::from(crc32c(l.as_bytes())))).collect();
    let mut body = String::new();
    for l in &lines {
        body.push_str(l);
        body.push('\n');
    }
    let footer = obj(vec![
        ("schema", JsonValue::Str(FLEET_CKPT_FOOTER_SCHEMA.to_owned())),
        ("lines", JsonValue::U64(lines.len() as u64)),
        ("crc32c", JsonValue::U64(u64::from(crc32c(body.as_bytes())))),
        ("line_crcs", JsonValue::Arr(line_crcs)),
    ]);
    body.push_str(&footer.to_string());
    body.push('\n');
    let tmp = path.with_extension("ckpt.tmp");
    let io = |e: std::io::Error| FleetError::CkptIo { path: path.to_path_buf(), source: e };
    {
        let mut f = fs.create(&tmp).map_err(io)?;
        f.write_all(body.as_bytes()).map_err(io)?;
        f.sync_all().map_err(io)?;
    }
    fs.rename(&tmp, path).map_err(io)
}

/// Reads and validates a fleet checkpoint file through the given
/// filesystem.
///
/// `fleetckpt.v2` files must carry an intact integrity footer: the whole-
/// body CRC and every per-line CRC are verified **before** any line is
/// parsed, so bit rot, torn writes, and truncation surface as
/// [`FleetError::CkptCorrupt`] naming the damaged line — never as a
/// half-plausible parse. Legacy `fleetckpt.v1` files (no footer, no
/// fingerprint) remain readable without corruption detection.
///
/// # Errors
///
/// [`FleetError::CkptIo`] on filesystem failure, [`FleetError::CkptSchema`]
/// for an unknown schema tag, [`FleetError::CkptCorrupt`] for a failed CRC
/// frame or structural damage.
pub fn read_fleet_checkpoint(fs: &dyn Vfs, path: &Path) -> Result<FleetCheckpoint, FleetError> {
    let text = fs
        .read_to_string(path)
        .map_err(|e| FleetError::CkptIo { path: path.to_path_buf(), source: e })?;
    let corrupt = |detail: String| FleetError::CkptCorrupt { path: path.to_path_buf(), detail };
    let mut lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        return Err(corrupt("empty checkpoint file".to_owned()));
    }
    // Peek the header's schema tag to pick the framing.
    let header_json = json::parse(lines[0]).map_err(|e| corrupt(format!("header: {e}")))?;
    let schema = str_field(&header_json, "schema").map_err(&corrupt)?;
    let legacy = match schema {
        s if s == FLEET_CKPT_SCHEMA => false,
        s if s == FLEET_CKPT_SCHEMA_V1 => true,
        other => {
            return Err(FleetError::CkptSchema {
                path: path.to_path_buf(),
                found: other.to_owned(),
            })
        }
    };
    if !legacy {
        // Verify the footer before believing anything else.
        let footer_line = lines.pop().ok_or_else(|| corrupt("missing footer".to_owned()))?;
        let footer = json::parse(footer_line).map_err(|e| corrupt(format!("footer: {e}")))?;
        if str_field(&footer, "schema").map_err(&corrupt)? != FLEET_CKPT_FOOTER_SCHEMA {
            return Err(corrupt("last line is not an integrity footer".to_owned()));
        }
        if u64_field(&footer, "lines").map_err(&corrupt)? != lines.len() as u64 {
            return Err(corrupt(format!(
                "footer promises {} body line(s), found {}",
                u64_field(&footer, "lines").map_err(&corrupt)?,
                lines.len()
            )));
        }
        let line_crcs = footer
            .get("line_crcs")
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| corrupt("footer lacks a `line_crcs` array".to_owned()))?;
        if line_crcs.len() != lines.len() {
            return Err(corrupt(format!(
                "footer carries {} line crc(s) for {} line(s)",
                line_crcs.len(),
                lines.len()
            )));
        }
        for (i, (line, stored)) in lines.iter().zip(line_crcs).enumerate() {
            let stored =
                stored.as_u64().ok_or_else(|| corrupt("non-integer line crc".to_owned()))?;
            let computed = u64::from(crc32c(line.as_bytes()));
            if stored != computed {
                return Err(corrupt(format!(
                    "line {i}: crc32c mismatch (stored {stored:#010x}, computed {computed:#010x})"
                )));
            }
        }
        let mut body = String::new();
        for l in &lines {
            body.push_str(l);
            body.push('\n');
        }
        let stored_body = u64_field(&footer, "crc32c").map_err(&corrupt)?;
        let computed_body = u64::from(crc32c(body.as_bytes()));
        if stored_body != computed_body {
            return Err(corrupt(format!(
                "body crc32c mismatch (stored {stored_body:#010x}, computed {computed_body:#010x})"
            )));
        }
    }
    let channels = u64_field(&header_json, "channels").map_err(&corrupt)?;
    let shards = lines[1..]
        .iter()
        .enumerate()
        .map(|(i, line)| json::parse(line).map_err(|e| corrupt(format!("shard line {i}: {e}"))))
        .collect::<Result<Vec<_>, FleetError>>()?;
    if shards.len() as u64 != channels {
        return Err(corrupt(format!(
            "header promises {channels} channel(s), found {} shard line(s)",
            shards.len()
        )));
    }
    let config = if legacy {
        None
    } else {
        let cf = header_json
            .get("config")
            .ok_or_else(|| corrupt("header lacks a `config` fingerprint".to_owned()))?;
        Some(CkptFingerprint::from_json(cf).map_err(&corrupt)?)
    };
    Ok(FleetCheckpoint {
        trace: str_field(&header_json, "trace").map_err(&corrupt)?.to_owned(),
        accesses_done: u64_field(&header_json, "accesses_done").map_err(&corrupt)?,
        config,
        state: obj(vec![
            ("clock", JsonValue::U64(u64_field(&header_json, "clock").map_err(&corrupt)?)),
            ("routed", JsonValue::U64(u64_field(&header_json, "routed").map_err(&corrupt)?)),
            ("shards", JsonValue::Arr(shards)),
        ]),
    })
}

/// Streams exactly `n` accesses from `reader` through the split pipeline:
/// the router rides the calling thread, shards drain their queues on
/// `threads` pool workers. Identical mechanics to
/// [`run_system_sharded`](crate::run_system_sharded), minus the workload
/// factory: the reader IS the stream.
///
/// On a mid-segment failure (trace corruption, routing rejection) the
/// producers are dropped, the pumps drain what was already queued and exit,
/// and the typed error propagates — the system is left partially advanced
/// and must be rolled back by the caller before retrying.
fn stream_segment(
    system: &mut SystemController,
    reader: &mut TraceReader,
    n: u64,
    threads: usize,
    batch: usize,
) -> Result<(), FleetError> {
    let channels = system.geometry().channels as usize;
    let mut queues: Vec<spsc::SpscQueue<Vec<StampedAccess>>> =
        (0..channels).map(|_| spsc::SpscQueue::new(QUEUE_DEPTH)).collect();
    let (mut router, shards) = system.split_streaming();
    let mut producers = Vec::with_capacity(channels);
    let mut consumers = Vec::with_capacity(channels);
    for q in &mut queues {
        let (tx, rx) = q.split();
        producers.push(tx);
        consumers.push(rx);
    }
    let jobs: Vec<pool::Job<'_>> = shards
        .iter_mut()
        .zip(consumers)
        .map(|(shard, rx)| pool::job(move |sp| pump(shard, rx, sp)))
        .collect();
    pool::run_scoped_with_driver(threads, jobs, move || -> Result<(), FleetError> {
        let mut pending: Vec<Vec<StampedAccess>> =
            (0..channels).map(|_| Vec::with_capacity(batch)).collect();
        for _ in 0..n {
            let access = reader.try_next().map_err(|source| FleetError::TraceStream {
                position: reader.position(),
                source,
            })?;
            let (c, stamped) = router
                .route_one(&access)
                .map_err(|source| FleetError::Route { position: reader.position(), source })?;
            pending[c].push(stamped);
            if pending[c].len() == batch {
                let full = std::mem::replace(&mut pending[c], Vec::with_capacity(batch));
                producers[c].push_blocking(full);
            }
        }
        for (c, buf) in pending.into_iter().enumerate() {
            if !buf.is_empty() {
                producers[c].push_blocking(buf);
            }
        }
        // Dropping the producers closes the queues; pumps drain and exit —
        // on the error paths above too.
        Ok(())
    })
}

/// Configuration of one fleet replay.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Controller configuration; its geometry must match the trace header.
    /// Must carry no fault oracle when checkpointing (snapshots refuse it).
    pub system: McConfig,
    /// Address-mapping policy of the routing front end.
    pub policy: MappingPolicy,
    /// Defense instantiated per bank.
    pub defense: DefenseSpec,
    /// Wrap every defense in the invariant-auditing shim.
    pub audit: bool,
    /// Worker threads draining the channel queues.
    pub threads: usize,
    /// Stamped accesses per SPSC batch.
    pub batch: usize,
    /// Accesses per streaming segment; the pipeline quiesces and a
    /// checkpoint is written after each.
    pub segment: u64,
    /// Checkpoint file ([`run_fleet`]) or rotation base path
    /// ([`run_fleet_supervised`], which appends `.g<N>` slot suffixes).
    /// When the file already exists, the run **resumes** from it instead of
    /// starting over.
    pub checkpoint: Option<PathBuf>,
    /// Stop (after checkpointing) once this many trace records have been
    /// executed — the kill switch the resume test and CI smoke use.
    pub stop_after: Option<u64>,
    /// Filesystem all trace and checkpoint I/O flows through; `None` means
    /// the real one. The chaos harness plants faultsim's fallible shim
    /// here.
    pub fs: Option<Arc<dyn Vfs>>,
}

impl FleetConfig {
    /// A paper-geometry replay with the given defense: micro2020 system
    /// (no oracle — checkpoints refuse one), bank-interleaved routing,
    /// 4 workers, 64-access batches, 1M-access segments.
    pub fn micro2020(defense: DefenseSpec) -> Self {
        FleetConfig {
            system: McConfig::micro2020_no_oracle(),
            policy: MappingPolicy::BankInterleaved,
            defense,
            audit: false,
            threads: 4,
            batch: 64,
            segment: 1_000_000,
            checkpoint: None,
            stop_after: None,
            fs: None,
        }
    }

    /// The filesystem this run's I/O flows through.
    fn vfs(&self) -> Arc<dyn Vfs> {
        self.fs.clone().unwrap_or_else(real_fs)
    }

    fn build_system(&self) -> SystemController {
        McBuilder::new(self.system.clone())
            .mapping(self.policy)
            .defenses(&self.defense)
            .audit(self.audit)
            .build_system()
    }
}

/// Progress report delivered to the [`run_fleet`] callback after every
/// segment (post-checkpoint, so a consumer that dies mid-callback loses
/// nothing).
#[derive(Debug, Clone)]
pub struct FleetProgress {
    /// Trace records executed so far (across resumes).
    pub accesses_done: u64,
    /// Total records this run will execute (respects `stop_after`).
    pub goal: u64,
    /// Records stamped into the trace header.
    pub trace_len: u64,
    /// Simulated time (ps) of the routing front end.
    pub clock: u64,
    /// Cumulative per-channel and merged counters.
    pub stats: SystemStats,
}

/// Result of a fleet replay.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Final cumulative statistics.
    pub stats: SystemStats,
    /// Trace records executed when the run ended.
    pub accesses_done: u64,
    /// Records stamped into the trace header.
    pub trace_len: u64,
    /// Set when the run resumed from an existing checkpoint, to the record
    /// count it resumed at.
    pub resumed_from: Option<u64>,
    /// Streaming segments executed by **this** invocation.
    pub segments: u64,
}

/// Streams `trace` through a sharded system in checkpointed segments,
/// invoking `on_segment` after each. See the module docs for the memory
/// and bit-identity contracts.
///
/// # Errors
///
/// Every failure is a typed [`FleetError`]: an unreadable or geometry-
/// mismatched trace, mid-stream corruption (a chunk whose CRC frame fails
/// is [`FleetError::TraceStream`] — never a silent wrong replay), a
/// corrupt, foreign, or config-mismatched checkpoint, and checkpoint write
/// failures. A run that resumes from a checkpoint whose fingerprint
/// disagrees with this configuration fails with
/// [`FleetError::ConfigMismatch`] naming the differing field.
///
/// # Panics
///
/// Panics if `threads`, `batch`, or `segment` is zero.
pub fn run_fleet(
    cfg: &FleetConfig,
    trace: &Path,
    mut on_segment: impl FnMut(&FleetProgress),
) -> Result<FleetReport, FleetError> {
    assert!(cfg.threads > 0, "need at least one worker thread");
    assert!(cfg.batch > 0, "batch of 0 dispatches nothing");
    assert!(cfg.segment > 0, "segment of 0 makes no progress");
    let fs = cfg.vfs();
    let mut reader = TraceReader::open_for_on(fs.clone(), trace, &cfg.system.geometry)
        .map_err(|source| FleetError::Trace { path: trace.to_path_buf(), source })?;
    let trace_len = reader.len();
    let fingerprint = CkptFingerprint::of(cfg);
    let mut system = cfg.build_system();
    let mut done = 0u64;
    let mut resumed_from = None;
    if let Some(path) = &cfg.checkpoint {
        if fs.exists(path) {
            let ckpt = read_fleet_checkpoint(fs.as_ref(), path)?;
            check_checkpoint(&ckpt, &reader.name(), trace_len, &fingerprint)?;
            ckpt.restore_into(&mut system).map_err(|source| FleetError::Restore { source })?;
            reader
                .skip_to(ckpt.accesses_done)
                .map_err(|source| FleetError::Trace { path: trace.to_path_buf(), source })?;
            done = ckpt.accesses_done;
            resumed_from = Some(done);
        }
    }
    let goal = cfg.stop_after.map_or(trace_len, |s| s.min(trace_len)).max(done);
    let mut segments = 0u64;
    while done < goal {
        let n = cfg.segment.min(goal - done);
        stream_segment(&mut system, &mut reader, n, cfg.threads, cfg.batch)?;
        done += n;
        segments += 1;
        if let Some(path) = &cfg.checkpoint {
            write_fleet_checkpoint(fs.as_ref(), path, &reader.name(), done, &system, &fingerprint)?;
        }
        let progress = FleetProgress {
            accesses_done: done,
            goal,
            trace_len,
            clock: system.clock(),
            stats: system.finish(),
        };
        on_segment(&progress);
    }
    Ok(FleetReport {
        stats: system.finish(),
        accesses_done: done,
        trace_len,
        resumed_from,
        segments,
    })
}

/// The identity/bounds/fingerprint gauntlet every checkpoint passes before
/// its state is believed.
fn check_checkpoint(
    ckpt: &FleetCheckpoint,
    trace_name: &str,
    trace_len: u64,
    fingerprint: &CkptFingerprint,
) -> Result<(), FleetError> {
    if ckpt.trace != trace_name {
        return Err(FleetError::WrongTrace {
            expected: trace_name.to_owned(),
            found: ckpt.trace.clone(),
        });
    }
    if ckpt.accesses_done > trace_len {
        return Err(FleetError::BeyondTrace { claimed: ckpt.accesses_done, trace_len });
    }
    if let Some(cf) = &ckpt.config {
        cf.check_against(fingerprint)?;
    }
    Ok(())
}

/// Rotating checkpoint storage: `keep` generation slots (`<base>.g0` ..
/// `<base>.g{keep-1}`), written round-robin so the newest verified
/// generation always survives the next write, with corrupt slots
/// **quarantined aside** (renamed to `<slot>.quarantined`) rather than
/// deleted — the evidence is preserved and a re-run cannot trip over it.
#[derive(Debug)]
pub struct CheckpointStore {
    fs: Arc<dyn Vfs>,
    base: PathBuf,
    keep: usize,
}

impl CheckpointStore {
    /// A store of `keep` slots rooted at `base`. `keep >= 2` is required:
    /// a single slot would be overwritten in place, so a torn write could
    /// destroy the only good generation.
    ///
    /// # Panics
    ///
    /// Panics if `keep < 2`.
    pub fn new(fs: Arc<dyn Vfs>, base: PathBuf, keep: usize) -> Self {
        assert!(keep >= 2, "rotation needs at least two generations to be crash-safe");
        CheckpointStore { fs, base, keep }
    }

    /// The slot paths, in slot order.
    pub fn slots(&self) -> Vec<PathBuf> {
        (0..self.keep).map(|i| self.slot(i)).collect()
    }

    fn slot(&self, i: usize) -> PathBuf {
        let mut s = self.base.as_os_str().to_owned();
        s.push(format!(".g{i}"));
        PathBuf::from(s)
    }

    fn quarantine_path(slot: &Path) -> PathBuf {
        let mut s = slot.as_os_str().to_owned();
        s.push(".quarantined");
        PathBuf::from(s)
    }

    /// Moves a damaged slot aside, returning where it went. Quarantining
    /// never deletes: the corrupt bytes stay on disk for post-mortems.
    fn quarantine(&self, slot: &Path) -> PathBuf {
        let dest = Self::quarantine_path(slot);
        let _ = self.fs.remove_file(&dest); // clobber an older quarantine
        let _ = self.fs.rename(slot, &dest);
        dest
    }

    /// Reads every slot, quarantines the corrupt ones, and returns the
    /// newest valid checkpoint (highest `accesses_done`) with its slot
    /// path, plus the list of newly quarantined files.
    pub fn latest(&self) -> (Option<(PathBuf, FleetCheckpoint)>, Vec<PathBuf>) {
        let mut best: Option<(PathBuf, FleetCheckpoint)> = None;
        let mut quarantined = Vec::new();
        for slot in self.slots() {
            if !self.fs.exists(&slot) {
                continue;
            }
            match read_fleet_checkpoint(self.fs.as_ref(), &slot) {
                Ok(ckpt) => {
                    if best.as_ref().is_none_or(|(_, b)| ckpt.accesses_done > b.accesses_done) {
                        best = Some((slot, ckpt));
                    }
                }
                Err(_) => quarantined.push(self.quarantine(&slot)),
            }
        }
        (best, quarantined)
    }

    /// The slot the next checkpoint should be written to: the one holding
    /// the *least* recent data (or nothing), so the newest generation is
    /// never the one being overwritten.
    pub fn next_slot(&self) -> PathBuf {
        let mut choice: Option<(PathBuf, Option<u64>)> = None;
        for slot in self.slots() {
            let age = if self.fs.exists(&slot) {
                read_fleet_checkpoint(self.fs.as_ref(), &slot).ok().map(|c| c.accesses_done)
            } else {
                None
            };
            let older = match (&choice, &age) {
                (None, _) => true,
                (Some((_, None)), _) => false, // already found an empty slot
                (Some(_), None) => true,       // empty beats any data
                (Some((_, Some(b))), Some(a)) => a < b,
            };
            if older {
                choice = Some((slot, age));
            }
        }
        choice.expect("keep >= 2 slots").0
    }
}

/// Configuration of a supervised fleet run.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// The underlying replay configuration. `fleet.checkpoint` is the
    /// rotation **base path** (slots are `<base>.g<N>`) and must be set.
    pub fleet: FleetConfig,
    /// Checkpoint generations to rotate across (minimum 2).
    pub keep: usize,
    /// Retry budget per segment (and per checkpoint write); exceeding it is
    /// [`FleetError::RetriesExhausted`].
    pub max_retries: u32,
    /// Base of the deterministic exponential backoff. Backoff is
    /// **virtual**: recorded in the report and telemetry, never slept, so
    /// supervised runs stay exactly reproducible and fast.
    pub backoff_ns: u64,
    /// Read back and CRC-verify every checkpoint immediately after writing
    /// it (catches torn writes at write time instead of at the next
    /// resume).
    pub verify_writes: bool,
}

impl SupervisorConfig {
    /// Defaults: 2 generations, 3 retries, 1 ms base backoff, write
    /// verification on.
    pub fn new(fleet: FleetConfig) -> Self {
        SupervisorConfig {
            fleet,
            keep: 2,
            max_retries: 3,
            backoff_ns: 1_000_000,
            verify_writes: true,
        }
    }
}

/// Result of a supervised fleet run: the replay report plus the degraded-
/// mode accounting.
#[derive(Debug, Clone)]
pub struct SupervisorReport {
    /// The underlying replay's report.
    pub report: FleetReport,
    /// Segment attempts and checkpoint rewrites beyond the first.
    pub retries: u64,
    /// Times the run was rolled back to an earlier verified checkpoint
    /// (including a resume that had to discard a corrupt newest
    /// generation).
    pub rollbacks: u64,
    /// Failures whose root cause was a CRC-detected corruption (trace
    /// chunk or checkpoint frame).
    pub corrupt_chunks: u64,
    /// Files moved aside as corrupt, in quarantine order.
    pub quarantined: Vec<PathBuf>,
    /// Total virtual backoff accumulated (never slept).
    pub backoff_ns: u64,
}

/// [`run_fleet`] wrapped in the recovery supervisor: rotating verified
/// checkpoints, quarantine-aside for corrupt files, bounded deterministic
/// retry with virtual backoff, and rollback to the newest verified
/// generation on segment failure. Degraded-mode accounting is reported and
/// (when `sink` is given) emitted as `fleet.retries` / `fleet.rollbacks` /
/// `fleet.corrupt_chunks` / `fleet.quarantined` counters.
///
/// The contract the chaos harness asserts: under any injected I/O fault
/// schedule, a supervised run either completes with statistics
/// **bit-identical** to a fault-free run, or fails with a typed
/// [`FleetError`] — it never completes with silently wrong numbers.
///
/// # Errors
///
/// [`FleetError::RetriesExhausted`] once a segment (or checkpoint write)
/// fails more than `max_retries` times; otherwise the same identity and
/// configuration errors as [`run_fleet`].
///
/// # Panics
///
/// Panics if `fleet.checkpoint` is `None`, `keep < 2`, or any of the
/// zero-value [`run_fleet`] panics apply.
pub fn run_fleet_supervised(
    cfg: &SupervisorConfig,
    trace: &Path,
    mut sink: Option<SharedSink>,
    mut on_segment: impl FnMut(&FleetProgress),
) -> Result<SupervisorReport, FleetError> {
    let fleet = &cfg.fleet;
    assert!(fleet.threads > 0, "need at least one worker thread");
    assert!(fleet.batch > 0, "batch of 0 dispatches nothing");
    assert!(fleet.segment > 0, "segment of 0 makes no progress");
    let base =
        fleet.checkpoint.clone().expect("supervised runs need a checkpoint base path for rotation");
    let fs = fleet.vfs();
    let store = CheckpointStore::new(fs.clone(), base, cfg.keep);
    let fingerprint = CkptFingerprint::of(fleet);
    let mut reader = TraceReader::open_for_on(fs.clone(), trace, &fleet.system.geometry)
        .map_err(|source| FleetError::Trace { path: trace.to_path_buf(), source })?;
    let trace_len = reader.len();
    let trace_name = reader.name();

    let mut retries = 0u64;
    let mut rollbacks = 0u64;
    let mut corrupt_chunks = 0u64;
    let mut backoff_ns = 0u64;
    let mut quarantined: Vec<PathBuf> = Vec::new();
    let bump = |sink: &mut Option<SharedSink>, name: &'static str| {
        if let Some(s) = sink.as_mut() {
            s.counter(name, 1);
        }
    };

    // Restores the newest verified generation (quarantining damaged slots)
    // into a freshly built system; returns the record count to resume from.
    let restore_latest = |reader: &mut TraceReader,
                          quarantined: &mut Vec<PathBuf>|
     -> Result<(SystemController, u64), FleetError> {
        let (best, newly_quarantined) = store.latest();
        quarantined.extend(newly_quarantined);
        let mut system = fleet.build_system();
        let done = match best {
            Some((_, ckpt)) => {
                check_checkpoint(&ckpt, &trace_name, trace_len, &fingerprint)?;
                ckpt.restore_into(&mut system).map_err(|source| FleetError::Restore { source })?;
                ckpt.accesses_done
            }
            None => 0,
        };
        reader
            .skip_to(done)
            .map_err(|source| FleetError::Trace { path: trace.to_path_buf(), source })?;
        Ok((system, done))
    };

    let had_quarantine_at_start;
    let (mut system, mut done) = {
        let before = quarantined.len();
        let r = restore_latest(&mut reader, &mut quarantined)?;
        had_quarantine_at_start = quarantined.len() > before;
        r
    };
    if had_quarantine_at_start {
        // A damaged newest generation was discarded: whatever state it held
        // is gone and the run falls back to an older (or empty) one.
        rollbacks += 1;
        bump(&mut sink, "fleet.rollbacks");
        for _ in 0..quarantined.len() {
            bump(&mut sink, "fleet.quarantined");
        }
    }
    let resumed_from = (done > 0).then_some(done);

    let goal = fleet.stop_after.map_or(trace_len, |s| s.min(trace_len)).max(done);
    let mut segments = 0u64;
    while done < goal {
        let mut n = fleet.segment.min(goal - done);
        // --- run the segment, rolling back and retrying on failure ---
        let mut attempt = 0u32;
        loop {
            match stream_segment(&mut system, &mut reader, n, fleet.threads, fleet.batch) {
                Ok(()) => break,
                Err(e) => {
                    if e.is_corruption() {
                        corrupt_chunks += 1;
                        bump(&mut sink, "fleet.corrupt_chunks");
                    }
                    attempt += 1;
                    if attempt > cfg.max_retries {
                        return Err(FleetError::RetriesExhausted {
                            segment_start: done,
                            attempts: attempt,
                            last: Box::new(e),
                        });
                    }
                    retries += 1;
                    bump(&mut sink, "fleet.retries");
                    backoff_ns += cfg.backoff_ns << (attempt - 1);
                    let before = quarantined.len();
                    let (sys, restored) = restore_latest(&mut reader, &mut quarantined)?;
                    for _ in before..quarantined.len() {
                        bump(&mut sink, "fleet.quarantined");
                    }
                    system = sys;
                    done = restored;
                    rollbacks += 1;
                    bump(&mut sink, "fleet.rollbacks");
                    n = fleet.segment.min(goal - done);
                }
            }
        }
        done += n;
        segments += 1;
        // --- persist, verify, and quarantine-retry the checkpoint ---
        let mut write_attempt = 0u32;
        loop {
            let slot = store.next_slot();
            let outcome = write_fleet_checkpoint(
                fs.as_ref(),
                &slot,
                &trace_name,
                done,
                &system,
                &fingerprint,
            )
            .and_then(|()| {
                if !cfg.verify_writes {
                    return Ok(());
                }
                let back = read_fleet_checkpoint(fs.as_ref(), &slot)?;
                if back.accesses_done == done {
                    Ok(())
                } else {
                    Err(FleetError::CkptCorrupt {
                        path: slot.clone(),
                        detail: format!(
                            "read-back claims {} records done, just wrote {done}",
                            back.accesses_done
                        ),
                    })
                }
            });
            match outcome {
                Ok(()) => break,
                Err(e) => {
                    if e.is_corruption() {
                        corrupt_chunks += 1;
                        bump(&mut sink, "fleet.corrupt_chunks");
                        if fs.exists(&slot) {
                            quarantined.push(store.quarantine(&slot));
                            bump(&mut sink, "fleet.quarantined");
                        }
                    }
                    write_attempt += 1;
                    if write_attempt > cfg.max_retries {
                        return Err(FleetError::RetriesExhausted {
                            segment_start: done,
                            attempts: write_attempt,
                            last: Box::new(e),
                        });
                    }
                    retries += 1;
                    bump(&mut sink, "fleet.retries");
                    backoff_ns += cfg.backoff_ns << (write_attempt - 1);
                }
            }
        }
        let progress = FleetProgress {
            accesses_done: done,
            goal,
            trace_len,
            clock: system.clock(),
            stats: system.finish(),
        };
        on_segment(&progress);
    }
    Ok(SupervisorReport {
        report: FleetReport {
            stats: system.finish(),
            accesses_done: done,
            trace_len,
            resumed_from,
            segments,
        },
        retries,
        rollbacks,
        corrupt_chunks,
        quarantined,
        backoff_ns,
    })
}

/// splitmix64: derives decorrelated per-client seeds from one fleet seed
/// without pulling a PRNG dependency into this crate.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Builds the fleet's client population: every 16th client is a throttled
/// 4-sided row-hammer attacker, the rest are SPEC-like proxies cycling
/// through every preset (the streaming presets — libquantum, lbm, RADIX —
/// give the mix its sequential-walk tenants, the rest its Zipf tenants).
fn fleet_clients(
    geometry: &DramGeometry,
    clients: u16,
    seed: u64,
) -> Vec<Box<dyn Workload + Send>> {
    let banks = geometry.total_banks() as u16;
    let rows = geometry.rows_per_bank;
    let presets = SpecPreset::all();
    (0..clients)
        .map(|i| {
            let client_seed = splitmix64(seed ^ (u64::from(i) << 1));
            if i % 16 == 0 {
                // Spread attackers' victims over the row space; throttle to
                // one ACT per ~50 ns so no single tenant saturates the bus.
                let victim = 8 + (client_seed as u32 % rows.saturating_sub(16).max(1));
                let attack = StripedNSided::new(victim, 4, banks, rows);
                Box::new(RateLimited::new(attack, 50_000 + (client_seed % 8) * 10_000))
                    as Box<dyn Workload + Send>
            } else {
                let preset = presets[usize::from(i) % presets.len()];
                Box::new(ProxyWorkload::from_preset(preset, banks, rows, client_seed))
            }
        })
        .collect()
}

/// Synthesizes a multi-tenant RHT4 trace: `clients` independent tenant
/// streams merged by arrival time (a k-way heap merge, each stream keeping
/// its own clock) and recorded incrementally — memory stays O(clients +
/// chunk) no matter how many records are written. Each record's `stream` id
/// is its client index, so per-tenant latency attribution survives replay.
///
/// # Errors
///
/// Propagates trace-writer I/O errors.
///
/// # Panics
///
/// Panics if `clients` is zero.
pub fn synth_fleet_trace(
    path: &Path,
    name: &str,
    geometry: &DramGeometry,
    clients: u16,
    accesses: u64,
    seed: u64,
) -> std::io::Result<()> {
    assert!(clients > 0, "need at least one client");
    let mut streams = fleet_clients(geometry, clients, seed);
    let mut writer = TraceWriter::create(path, name, *geometry)?;
    // Heap of (next arrival, client); ties break on the lower client index,
    // so synthesis is deterministic.
    let mut heap: BinaryHeap<Reverse<(u64, u16)>> = BinaryHeap::with_capacity(streams.len());
    let mut pending: Vec<Access> = Vec::with_capacity(streams.len());
    for (i, s) in streams.iter_mut().enumerate() {
        let a = s.next_access();
        heap.push(Reverse((a.gap, i as u16)));
        pending.push(a);
    }
    let mut last_emitted = 0u64;
    for _ in 0..accesses {
        let Reverse((at, idx)) = heap.pop().expect("heap holds one entry per client");
        let access = pending[usize::from(idx)];
        let next = streams[usize::from(idx)].next_access();
        pending[usize::from(idx)] = next;
        heap.push(Reverse((at.saturating_add(next.gap), idx)));
        writer.push(&Access { gap: at.saturating_sub(last_emitted), stream: idx, ..access })?;
        last_emitted = at;
    }
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp(name: &str) -> PathBuf {
        static UNIQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join("graphene_repro_fleet");
        fs::create_dir_all(&dir).unwrap();
        dir.join(format!(
            "{}-{}-{}",
            std::process::id(),
            UNIQ.fetch_add(1, Ordering::Relaxed),
            name
        ))
    }

    fn small_cfg() -> FleetConfig {
        let mut cfg = FleetConfig::micro2020(DefenseSpec::Graphene { t_rh: 2_000, k: 2 });
        cfg.system.geometry = DramGeometry {
            channels: 4,
            ranks_per_channel: 1,
            banks_per_rank: 4,
            rows_per_bank: 4_096,
        };
        cfg.threads = 2;
        cfg.batch = 32;
        cfg.segment = 5_000;
        cfg
    }

    fn small_trace(cfg: &FleetConfig, accesses: u64) -> PathBuf {
        let path = tmp("fleet.rht3");
        synth_fleet_trace(&path, "fleet-test", &cfg.system.geometry, 48, accesses, 7).unwrap();
        path
    }

    #[test]
    fn synthesized_fleet_mixes_tenants_and_replays_fully() {
        let cfg = small_cfg();
        let trace = small_trace(&cfg, 12_000);
        let mut segments_seen = 0;
        let report = run_fleet(&cfg, &trace, |p| {
            segments_seen += 1;
            assert!(p.accesses_done <= p.goal);
        })
        .unwrap();
        assert_eq!(report.accesses_done, 12_000);
        assert_eq!(report.segments, 3);
        assert_eq!(segments_seen, 3);
        assert_eq!(report.stats.merged.accesses, 12_000);
        // The interleave reaches every channel and carries many tenants.
        assert!(report.stats.per_channel.iter().all(|s| s.accesses > 0));
        assert!(report.stats.merged.per_stream.iter().filter(|&&(n, _)| n > 0).count() > 16);
        fs::remove_file(&trace).ok();
    }

    #[test]
    fn kill_and_resume_is_bit_identical_to_uninterrupted() {
        let cfg = small_cfg();
        let trace = small_trace(&cfg, 20_000);
        let uninterrupted = run_fleet(&cfg, &trace, |_| {}).unwrap();

        let ckpt = tmp("fleet.ckpt");
        let mut killed = cfg.clone();
        killed.checkpoint = Some(ckpt.clone());
        killed.stop_after = Some(7_500); // mid-segment kill: a short final segment
        let first = run_fleet(&killed, &trace, |_| {}).unwrap();
        assert_eq!(first.accesses_done, 7_500);
        assert!(first.resumed_from.is_none());

        let mut resumed = killed.clone();
        resumed.stop_after = None;
        let second = run_fleet(&resumed, &trace, |_| {}).unwrap();
        assert_eq!(second.resumed_from, Some(first.accesses_done));
        assert_eq!(second.accesses_done, 20_000);
        assert_eq!(second.stats, uninterrupted.stats, "resume must be bit-identical");
        fs::remove_file(&trace).ok();
        fs::remove_file(&ckpt).ok();
    }

    #[test]
    fn checkpoint_for_a_different_trace_is_refused() {
        let cfg = small_cfg();
        let trace_a = small_trace(&cfg, 6_000);
        let ckpt = tmp("fleet.ckpt");
        let mut with_ckpt = cfg.clone();
        with_ckpt.checkpoint = Some(ckpt.clone());
        run_fleet(&with_ckpt, &trace_a, |_| {}).unwrap();

        let trace_b = tmp("other.rht3");
        synth_fleet_trace(&trace_b, "other-fleet", &cfg.system.geometry, 8, 1_000, 9).unwrap();
        let err = run_fleet(&with_ckpt, &trace_b, |_| {}).unwrap_err();
        assert!(matches!(err, FleetError::WrongTrace { .. }), "{err:?}");
        assert!(err.to_string().contains("belongs to trace"), "{err}");
        for p in [trace_a, trace_b, ckpt] {
            fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn resume_under_a_different_config_names_the_differing_field() {
        let cfg = small_cfg();
        let trace = small_trace(&cfg, 6_000);
        let ckpt = tmp("fleet.ckpt");
        let mut with_ckpt = cfg.clone();
        with_ckpt.checkpoint = Some(ckpt.clone());
        run_fleet(&with_ckpt, &trace, |_| {}).unwrap();

        // Same geometry, different defense threshold: the state would
        // restore structurally, so only the fingerprint stands between this
        // and silently wrong statistics.
        let mut different = with_ckpt.clone();
        different.defense = DefenseSpec::Graphene { t_rh: 1_000, k: 2 };
        let err = run_fleet(&different, &trace, |_| {}).unwrap_err();
        match &err {
            FleetError::ConfigMismatch { field, expected, found } => {
                assert_eq!(*field, "defense");
                assert!(expected.contains("1000"), "{expected}");
                assert!(found.contains("2000"), "{found}");
            }
            other => panic!("expected ConfigMismatch, got {other:?}"),
        }
        assert!(err.to_string().contains("`defense`"), "{err}");

        // And a different audit flag is caught the same way.
        let mut audited = with_ckpt.clone();
        audited.audit = true;
        let err = run_fleet(&audited, &trace, |_| {}).unwrap_err();
        assert!(matches!(err, FleetError::ConfigMismatch { field: "audit", .. }), "{err:?}");
        fs::remove_file(&trace).ok();
        fs::remove_file(&ckpt).ok();
    }

    #[test]
    fn corrupt_checkpoint_is_a_typed_error_not_a_crash() {
        let fs_ = real_fs();
        let path = tmp("bad.ckpt");
        fs::write(&path, "{\"schema\":\"somethingelse.v9\",\"channels\":0}\n").unwrap();
        let err = read_fleet_checkpoint(fs_.as_ref(), &path).unwrap_err();
        assert!(matches!(err, FleetError::CkptSchema { .. }), "{err:?}");
        assert!(err.to_string().contains("fleetckpt.v2"), "{err}");
        fs::write(&path, "").unwrap();
        let err = read_fleet_checkpoint(fs_.as_ref(), &path).unwrap_err();
        assert!(err.to_string().contains("empty"), "{err}");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_rot_in_a_checkpoint_is_detected_by_its_crc_frames() {
        let cfg = small_cfg();
        let trace = small_trace(&cfg, 6_000);
        let ckpt = tmp("rot.ckpt");
        let mut with_ckpt = cfg.clone();
        with_ckpt.checkpoint = Some(ckpt.clone());
        run_fleet(&with_ckpt, &trace, |_| {}).unwrap();

        let clean = fs::read(&ckpt).unwrap();
        let fs_ = real_fs();
        assert!(read_fleet_checkpoint(fs_.as_ref(), &ckpt).is_ok());
        // Flip one bit in a handful of positions across the body: each must
        // surface as CkptCorrupt (or a parse-level corruption), never as a
        // silently different checkpoint.
        for target in [10usize, clean.len() / 4, clean.len() / 2, clean.len() * 3 / 4] {
            let mut rotted = clean.clone();
            rotted[target] ^= 0x08;
            fs::write(&ckpt, &rotted).unwrap();
            let err = read_fleet_checkpoint(fs_.as_ref(), &ckpt).unwrap_err();
            assert!(
                matches!(err, FleetError::CkptCorrupt { .. } | FleetError::CkptSchema { .. }),
                "byte {target}: {err:?}"
            );
        }
        // Truncation (a torn write that lost the tail) is caught too.
        fs::write(&ckpt, &clean[..clean.len() - 40]).unwrap();
        let err = read_fleet_checkpoint(fs_.as_ref(), &ckpt).unwrap_err();
        assert!(matches!(err, FleetError::CkptCorrupt { .. }), "{err:?}");
        fs::remove_file(&trace).ok();
        fs::remove_file(&ckpt).ok();
    }

    #[test]
    fn legacy_v1_checkpoints_stay_readable() {
        // Hand-build a v1 file (no footer, no config) around a real system
        // snapshot; the reader must accept it and skip the fingerprint.
        let cfg = small_cfg();
        let system = cfg.build_system();
        let snap = system.snapshot().unwrap();
        let shards = snap.get("shards").and_then(JsonValue::as_arr).unwrap();
        let mut text = obj(vec![
            ("schema", JsonValue::Str(FLEET_CKPT_SCHEMA_V1.to_owned())),
            ("trace", JsonValue::Str("legacy".to_owned())),
            ("accesses_done", JsonValue::U64(0)),
            ("clock", JsonValue::U64(0)),
            ("routed", JsonValue::U64(0)),
            ("channels", JsonValue::U64(shards.len() as u64)),
        ])
        .to_string();
        text.push('\n');
        for s in shards {
            text.push_str(&s.to_string());
            text.push('\n');
        }
        let path = tmp("legacy.ckpt");
        fs::write(&path, text).unwrap();
        let ckpt = read_fleet_checkpoint(real_fs().as_ref(), &path).unwrap();
        assert_eq!(ckpt.trace, "legacy");
        assert!(ckpt.config.is_none());
        let mut fresh = cfg.build_system();
        ckpt.restore_into(&mut fresh).unwrap();
        fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_refuses_oracle_armed_systems() {
        let mut cfg = small_cfg();
        cfg.system = McConfig::micro2020(); // carries the ground-truth oracle
        cfg.system.geometry.rows_per_bank = 4_096;
        cfg.checkpoint = Some(tmp("refused.ckpt"));
        let trace = small_trace(&cfg, 6_000);
        let err = run_fleet(&cfg, &trace, |_| {}).unwrap_err();
        assert!(matches!(err, FleetError::Snapshot { .. }), "{err:?}");
        assert!(err.to_string().contains("fault oracle"), "{err}");
        fs::remove_file(&trace).ok();
    }

    #[test]
    fn supervised_run_matches_plain_run_when_nothing_fails() {
        let cfg = small_cfg();
        let trace = small_trace(&cfg, 12_000);
        let plain = run_fleet(&cfg, &trace, |_| {}).unwrap();
        let mut fleet = cfg.clone();
        fleet.checkpoint = Some(tmp("sup.ckpt"));
        let sup_cfg = SupervisorConfig::new(fleet.clone());
        let sup = run_fleet_supervised(&sup_cfg, &trace, None, |_| {}).unwrap();
        assert_eq!(sup.report.stats, plain.stats);
        assert_eq!(sup.retries, 0);
        assert_eq!(sup.rollbacks, 0);
        assert_eq!(sup.corrupt_chunks, 0);
        assert!(sup.quarantined.is_empty());
        // Rotation left at most `keep` generation slots.
        let store = CheckpointStore::new(real_fs(), fleet.checkpoint.clone().unwrap(), 2);
        let existing = store.slots().iter().filter(|s| s.exists()).count();
        assert!(existing >= 1 && existing <= 2, "found {existing} slots");
        for s in store.slots() {
            fs::remove_file(&s).ok();
        }
        fs::remove_file(&trace).ok();
    }

    #[test]
    fn supervisor_quarantines_a_corrupt_newest_generation_and_rolls_back() {
        let cfg = small_cfg();
        let trace = small_trace(&cfg, 15_000);
        let reference = run_fleet(&cfg, &trace, |_| {}).unwrap();

        let base = tmp("roll.ckpt");
        let mut fleet = cfg.clone();
        fleet.checkpoint = Some(base.clone());
        fleet.stop_after = Some(10_000);
        let sup_cfg = SupervisorConfig::new(fleet.clone());
        run_fleet_supervised(&sup_cfg, &trace, None, |_| {}).unwrap();

        // Corrupt the newest generation on disk (bit rot in place).
        let store = CheckpointStore::new(real_fs(), base.clone(), 2);
        let (best, _) = store.latest();
        let (newest, ckpt) = best.expect("a checkpoint was written");
        assert_eq!(ckpt.accesses_done, 10_000);
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&newest, &bytes).unwrap();

        // Resume to completion: the supervisor must quarantine the damaged
        // generation, fall back to the older one, and still converge on the
        // fault-free statistics.
        let mut resumed = sup_cfg.clone();
        resumed.fleet.stop_after = None;
        let sink = SharedSink::new();
        let sup = run_fleet_supervised(&resumed, &trace, Some(sink.clone()), |_| {}).unwrap();
        assert_eq!(sup.rollbacks, 1, "discarding the newest generation is a rollback");
        assert_eq!(sup.quarantined.len(), 1);
        assert!(sup.quarantined[0].to_string_lossy().contains("quarantined"));
        assert!(sup.quarantined[0].exists(), "quarantine preserves the evidence");
        assert!(sup.report.resumed_from.unwrap() < 10_000, "resumed from an older generation");
        assert_eq!(sup.report.stats, reference.stats, "recovery is bit-identical");
        assert_eq!(sink.with(|r| r.counter_value("fleet.rollbacks")), 1);
        assert_eq!(sink.with(|r| r.counter_value("fleet.quarantined")), 1);
        for s in store.slots() {
            fs::remove_file(&s).ok();
        }
        fs::remove_file(&sup.quarantined[0]).ok();
        fs::remove_file(&trace).ok();
    }

    #[test]
    fn checkpoint_store_rotates_without_overwriting_the_newest() {
        let cfg = small_cfg();
        let trace = small_trace(&cfg, 15_000);
        let base = tmp("rot.ckpt");
        let mut fleet = cfg.clone();
        fleet.checkpoint = Some(base.clone());
        let sup_cfg = SupervisorConfig { keep: 3, ..SupervisorConfig::new(fleet) };
        run_fleet_supervised(&sup_cfg, &trace, None, |_| {}).unwrap();
        let store = CheckpointStore::new(real_fs(), base, 3);
        // 3 segments were checkpointed across 3 slots; the newest holds the
        // final count and next_slot would not clobber it.
        let (best, quarantined) = store.latest();
        assert!(quarantined.is_empty());
        let (newest_path, newest) = best.unwrap();
        assert_eq!(newest.accesses_done, 15_000);
        assert_ne!(store.next_slot(), newest_path);
        for s in store.slots() {
            fs::remove_file(&s).ok();
        }
        fs::remove_file(&trace).ok();
    }
}
