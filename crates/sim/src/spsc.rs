//! A bounded single-producer single-consumer ring buffer (std-only).
//!
//! The streaming sharded runner ([`crate::run_system_sharded`]) pipes
//! per-channel batches of stamped accesses from the routing thread to the
//! shard workers through one of these per channel. The requirements are
//! narrow — one producer, one consumer, bounded capacity, no allocation
//! per transfer, no external crates — so the implementation is the classic
//! two-counter ring: free-running head/tail indices over a power-of-two
//! slot array, `Release`/`Acquire` pairs ordering the slot writes against
//! the index publications.
//!
//! Single-producer/single-consumer is enforced at compile time:
//! [`SpscQueue::split`] hands out exactly one [`Producer`] and one
//! [`Consumer`], neither of which is `Clone`, and the `&mut` borrow it
//! takes pins the queue until both halves are gone.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// The shared ring. Owns the slots; the [`Producer`]/[`Consumer`] halves
/// returned by [`split`](Self::split) borrow it from the owning frame —
/// scoped-thread-friendly, no `Arc` required.
pub struct SpscQueue<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot to pop (written by the consumer only).
    head: AtomicUsize,
    /// Next slot to push (written by the producer only).
    tail: AtomicUsize,
    /// Producer dropped: once the ring drains, the stream is over.
    closed: AtomicBool,
}

// Safety: the queue hands out at most one producer and one consumer, and
// every slot is transferred with a Release store of `tail` (producer) that
// the consumer's Acquire load of `tail` synchronizes with (and vice versa
// for `head` when a slot is recycled), so no slot is ever accessed from two
// threads at once.
unsafe impl<T: Send> Sync for SpscQueue<T> {}

/// A requested ring capacity that cannot be rounded up to a power of two
/// without overflowing `usize` (anything above 2⁶³ on 64-bit hosts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityTooLarge {
    /// The capacity the caller asked for.
    pub requested: usize,
}

impl std::fmt::Display for CapacityTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "queue capacity {} exceeds the largest power-of-two ring ({})",
            self.requested,
            1usize << (usize::BITS - 1)
        )
    }
}

impl std::error::Error for CapacityTooLarge {}

impl<T> SpscQueue<T> {
    /// A ring holding at least `capacity` items (rounded up to a power of
    /// two).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or the round-up overflows
    /// ([`CapacityTooLarge`]); use [`try_new`](Self::try_new) to handle the
    /// limit as an error.
    pub fn new(capacity: usize) -> Self {
        Self::try_new(capacity).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`new`](Self::new), surfacing an un-roundable capacity as an
    /// error. `next_power_of_two()` on a request above 2⁶³ panics in debug
    /// and wraps to 0 in release — which would make `mask` wrap to
    /// `usize::MAX` and index far outside the slot array — so the round-up
    /// is checked before anything is allocated.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityTooLarge`] when `capacity` exceeds the largest
    /// representable power of two.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn try_new(capacity: usize) -> Result<Self, CapacityTooLarge> {
        assert!(capacity > 0, "queue needs room for at least one item");
        let cap =
            capacity.checked_next_power_of_two().ok_or(CapacityTooLarge { requested: capacity })?;
        Ok(SpscQueue {
            slots: (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect(),
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
        })
    }

    /// The rounded-up capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Splits into the producer and consumer halves. The exclusive borrow
    /// guarantees this can only happen once at a time, and the non-`Clone`
    /// halves guarantee one producer and one consumer.
    pub fn split(&mut self) -> (Producer<'_, T>, Consumer<'_, T>) {
        (Producer { queue: self }, Consumer { queue: self })
    }
}

impl<T> Drop for SpscQueue<T> {
    fn drop(&mut self) {
        // Drop anything pushed but never popped.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for i in head..tail {
            unsafe { (*self.slots[i & self.mask].get()).assume_init_drop() };
        }
    }
}

/// The push half. Dropping it closes the queue — the consumer drains what
/// remains and then observes end-of-stream.
pub struct Producer<'q, T> {
    queue: &'q SpscQueue<T>,
}

impl<T> Producer<'_, T> {
    /// Attempts to enqueue `item`; hands it back if the ring is full.
    pub fn try_push(&mut self, item: T) -> Result<(), T> {
        let tail = self.queue.tail.load(Ordering::Relaxed);
        let head = self.queue.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == self.queue.slots.len() {
            return Err(item);
        }
        unsafe { (*self.queue.slots[tail & self.queue.mask].get()).write(item) };
        self.queue.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Enqueues `item`, spinning (with escalation to `yield_now`) while the
    /// ring is full. The consumer side never blocks indefinitely — workers
    /// cooperatively reschedule — so the wait is bounded by one batch's
    /// execution time.
    pub fn push_blocking(&mut self, mut item: T) {
        let mut spins = 0u32;
        loop {
            match self.try_push(item) {
                Ok(()) => return,
                Err(back) => {
                    item = back;
                    spins += 1;
                    if spins > 16 {
                        // A full ring means the consumer is behind; hand it
                        // the timeslice instead of spinning it away (on a
                        // host with fewer cores than pipeline threads the
                        // consumer cannot run until we yield).
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }
        }
    }
}

impl<T> Drop for Producer<'_, T> {
    fn drop(&mut self) {
        // Release-ordered after all pushes: a consumer that Acquire-loads
        // `closed == true` sees every item that preceded the close.
        self.queue.closed.store(true, Ordering::Release);
    }
}

/// The pop half.
pub struct Consumer<'q, T> {
    queue: &'q SpscQueue<T>,
}

impl<T> Consumer<'_, T> {
    /// Dequeues the oldest item, or `None` when the ring is currently
    /// empty (which does not mean the stream ended — see
    /// [`is_closed`](Self::is_closed)).
    pub fn try_pop(&mut self) -> Option<T> {
        let head = self.queue.head.load(Ordering::Relaxed);
        let tail = self.queue.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let item = unsafe { (*self.queue.slots[head & self.queue.mask].get()).assume_init_read() };
        self.queue.head.store(head.wrapping_add(1), Ordering::Release);
        Some(item)
    }

    /// True once the producer is gone. Check **before** a failed
    /// [`try_pop`](Self::try_pop): if the queue was already closed when the
    /// pop came up empty, every item has been consumed and the stream is
    /// over. (Checking after instead would race with pushes that landed
    /// between the pop and the check.)
    pub fn is_closed(&self) -> bool {
        self.queue.closed.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let mut q = SpscQueue::new(4);
        let (mut tx, mut rx) = q.split();
        for i in 0..4 {
            tx.try_push(i).unwrap();
        }
        assert!(tx.try_push(99).is_err(), "ring of 4 must reject the 5th");
        assert_eq!((0..4).map(|_| rx.try_pop().unwrap()).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let q = SpscQueue::<u32>::new(5);
        assert_eq!(q.capacity(), 8);
    }

    #[test]
    fn oversized_capacity_is_a_typed_error_not_a_wrap() {
        // Regression: `next_power_of_two()` on a request above 2^63 panics
        // in debug and wraps to 0 in release, wrapping `mask` to
        // usize::MAX. The checked round-up reports the limit instead
        // (before allocating anything).
        for requested in [usize::MAX, (1usize << (usize::BITS - 1)) + 1] {
            let err = SpscQueue::<u8>::try_new(requested).err().expect("must hit the limit");
            assert_eq!(err, CapacityTooLarge { requested });
            assert!(err.to_string().contains("exceeds"));
        }
        // The largest power of two itself needs no rounding — accepted by
        // the checked path (constructing it would allocate 2^63 slots, so
        // only the boundary arithmetic of the round-up is what's pinned
        // here, via the value one past it above).
        assert!(SpscQueue::<u8>::try_new(64).is_ok());
    }

    #[test]
    fn close_is_observed_after_drain() {
        let mut q = SpscQueue::new(2);
        let (mut tx, mut rx) = q.split();
        tx.try_push(7).unwrap();
        assert!(!rx.is_closed());
        drop(tx);
        // Closed, but the buffered item must still come out first.
        assert!(rx.is_closed());
        assert_eq!(rx.try_pop(), Some(7));
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn unconsumed_items_are_dropped_with_the_queue() {
        use std::rc::Rc;
        let probe = Rc::new(());
        {
            let mut q = SpscQueue::new(4);
            let (mut tx, _rx) = q.split();
            tx.try_push(Rc::clone(&probe)).unwrap();
            tx.try_push(Rc::clone(&probe)).unwrap();
        }
        assert_eq!(Rc::strong_count(&probe), 1, "queue drop must release its items");
    }

    #[test]
    fn cross_thread_stream_arrives_in_order() {
        let mut q = SpscQueue::new(8);
        let (mut tx, mut rx) = q.split();
        const N: u64 = 50_000;
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..N {
                    tx.push_blocking(i);
                }
            });
            let mut expected = 0;
            loop {
                let closed = rx.is_closed();
                if let Some(v) = rx.try_pop() {
                    assert_eq!(v, expected);
                    expected += 1;
                } else if closed {
                    break;
                } else {
                    std::hint::spin_loop();
                }
            }
            assert_eq!(expected, N);
        });
    }
}
