//! In-DRAM Target Row Refresh (TRR) — the vendor mitigation TRRespass broke.
//!
//! The paper's motivation leans on TRRespass (Frigo et al., S&P 2020,
//! reference \[16\]): even the latest DDR4 DIMMs with in-DRAM TRR "are still
//! susceptible to Row Hammer under specific memory access patterns", because
//! the mitigation tracks only a handful of aggressor candidates. This module
//! models that class of defense so the repository can demonstrate *why* the
//! paper's threat model assumes TRR-like samplers fail:
//!
//! * a **sampler** with `sampler_slots` entries watches the ACT stream;
//!   a hit increments the slot, a miss takes a free slot or (probabilistically)
//!   steals the coldest one — mirroring the limited per-interval tracking
//!   TRRespass reverse-engineered;
//! * on every refresh tick, the hottest sampled row's neighbours are
//!   refreshed and the sampler clears (TRR piggybacks on REF).
//!
//! With 1–4 slots, hammering `slots + 1` or more aggressors in rotation (the
//! many-sided pattern of `workloads::NSidedAttack`) keeps each slot's
//! counts balanced and the true victim starved — the TRRespass effect, which
//! the integration tests reproduce against the fault oracle while Graphene
//! survives the same stream.

use dram_model::geometry::RowId;
use dram_model::timing::Picoseconds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::defense::{RefreshAction, RowHammerDefense, TableBits};

/// TRR sampler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrrConfig {
    /// Sampler entries (TRRespass found 1-16 on real DIMMs; 4 is typical).
    pub sampler_slots: usize,
    /// Probability that a miss steals the coldest slot (models the
    /// sub-sampling real implementations use to bound update energy).
    pub steal_probability: f64,
    /// Row-address width (for the area report).
    pub addr_bits: u32,
}

impl TrrConfig {
    /// A typical DDR4 in-DRAM TRR: 4 sampler slots.
    pub fn ddr4_typical() -> Self {
        TrrConfig { sampler_slots: 4, steal_probability: 0.1, addr_bits: 16 }
    }
}

impl Default for TrrConfig {
    fn default() -> Self {
        Self::ddr4_typical()
    }
}

/// The in-DRAM TRR sampler defense.
#[derive(Debug, Clone)]
pub struct TrrSampler {
    config: TrrConfig,
    /// (row, count) sampler slots.
    slots: Vec<(RowId, u64)>,
    rng: StdRng,
    refreshes_issued: u64,
}

impl TrrSampler {
    /// Creates the sampler.
    ///
    /// # Panics
    ///
    /// Panics if there are no slots or the steal probability is not in
    /// `[0, 1]`.
    pub fn new(config: TrrConfig, seed: u64) -> Self {
        assert!(config.sampler_slots > 0, "need at least one sampler slot");
        assert!(
            (0.0..=1.0).contains(&config.steal_probability),
            "steal probability must be within [0, 1]"
        );
        TrrSampler {
            config,
            slots: Vec::with_capacity(config.sampler_slots),
            rng: StdRng::seed_from_u64(seed),
            refreshes_issued: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TrrConfig {
        &self.config
    }

    /// NRR-style refreshes issued at refresh ticks.
    pub fn refreshes_issued(&self) -> u64 {
        self.refreshes_issued
    }

    /// Currently sampled rows (test hook).
    pub fn sampled_rows(&self) -> Vec<RowId> {
        self.slots.iter().map(|&(r, _)| r).collect()
    }
}

impl RowHammerDefense for TrrSampler {
    fn name(&self) -> String {
        format!("TRR-{}", self.config.sampler_slots)
    }

    fn on_activation(&mut self, row: RowId, _now: Picoseconds) -> Vec<RefreshAction> {
        if let Some(slot) = self.slots.iter_mut().find(|(r, _)| *r == row) {
            slot.1 += 1;
        } else if self.slots.len() < self.config.sampler_slots {
            self.slots.push((row, 1));
        } else if self.config.steal_probability > 0.0
            && self.rng.gen_bool(self.config.steal_probability)
        {
            let coldest = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|&(_, &(_, c))| c)
                .map(|(i, _)| i)
                .expect("slots are full, hence non-empty");
            self.slots[coldest] = (row, 1);
        }
        Vec::new()
    }

    fn on_refresh_tick(&mut self, _now: Picoseconds) -> Vec<RefreshAction> {
        // Refresh the hottest sampled aggressor's neighbours; clear the
        // sampler for the next interval.
        let hottest = self.slots.iter().max_by_key(|&&(_, c)| c).map(|&(r, _)| r);
        self.slots.clear();
        match hottest {
            Some(aggressor) => {
                self.refreshes_issued += 1;
                vec![RefreshAction::Neighbors { aggressor, radius: 1 }]
            }
            None => Vec::new(),
        }
    }

    fn table_bits(&self) -> TableBits {
        // Per slot: address plus a small saturating counter (8 bits).
        TableBits {
            cam_bits: self.config.sampler_slots as u64 * u64::from(self.config.addr_bits),
            sram_bits: self.config.sampler_slots as u64 * 8,
        }
    }

    fn reset(&mut self) {
        self.slots.clear();
        self.refreshes_issued = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trr() -> TrrSampler {
        TrrSampler::new(TrrConfig::ddr4_typical(), 5)
    }

    #[test]
    fn single_aggressor_is_caught() {
        let mut t = trr();
        for i in 0..100u64 {
            t.on_activation(RowId(40), i);
        }
        let a = t.on_refresh_tick(100);
        assert_eq!(a, vec![RefreshAction::Neighbors { aggressor: RowId(40), radius: 1 }]);
    }

    #[test]
    fn sampler_clears_each_tick() {
        let mut t = trr();
        t.on_activation(RowId(1), 0);
        t.on_refresh_tick(1);
        assert!(t.sampled_rows().is_empty());
        assert!(t.on_refresh_tick(2).is_empty());
    }

    #[test]
    fn slots_bounded() {
        let mut t = trr();
        for i in 0..1000u64 {
            t.on_activation(RowId((i % 100) as u32), i);
            assert!(t.sampled_rows().len() <= 4);
        }
    }

    #[test]
    fn only_one_refresh_per_tick() {
        // The structural weakness: whatever happens within the interval, at
        // most one aggressor's neighbours are refreshed per REF.
        let mut t = trr();
        for i in 0..1000u64 {
            t.on_activation(RowId((i % 3) as u32 * 10), i);
        }
        assert_eq!(t.on_refresh_tick(1000).len(), 1);
    }

    #[test]
    fn many_sided_rotation_splits_attention() {
        // 8 aggressors with 4 slots: at most half can be sampled at any tick,
        // so over many ticks each aggressor is refreshed at most ~1/8 of the
        // time — the TRRespass dilution.
        let mut t = trr();
        let mut refreshed: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut act = 0u64;
        for tick in 0..400u64 {
            for _ in 0..165 {
                t.on_activation(RowId(((act % 8) * 10) as u32), act);
                act += 1;
            }
            for a in t.on_refresh_tick(tick) {
                if let RefreshAction::Neighbors { aggressor, .. } = a {
                    *refreshed.entry(aggressor.0).or_insert(0) += 1;
                }
            }
        }
        // Every refresh went to one of the 8 aggressors; none can dominate.
        let max = refreshed.values().copied().max().unwrap_or(0);
        assert!(max <= 400 / 2, "one aggressor absorbed {max} of 400 ticks");
    }

    #[test]
    fn tiny_area() {
        assert!(trr().table_bits().total() < 200);
    }

    #[test]
    fn reset_clears() {
        let mut t = trr();
        t.on_activation(RowId(1), 0);
        t.reset();
        assert!(t.sampled_rows().is_empty());
    }
}
