//! CBT — Counter-Based Tree (Seyedzadeh et al., IEEE CAL 2017 / ISCA 2018).
//!
//! CBT covers each bank with a binary tree of counters over row ranges. It
//! starts with one counter spanning the whole bank; when a counter's count
//! reaches its level's *split threshold* (and a free counter remains), the
//! counter splits into two children each covering half the range and
//! inheriting the parent's count (conservative, so no row is ever
//! under-counted). When any counter reaches the *last-level threshold*
//! (derived from the Row Hammer threshold the same way as Graphene's `T`),
//! CBT refreshes **all** rows covered by the counter plus the two boundary
//! rows — `N/2^l + 2` rows at once, the bursty behaviour that dominates
//! CBT's energy and performance overhead in Figures 8 and 9.
//!
//! Split thresholds ramp linearly to the last-level threshold
//! (`S_l = T_last · (l+1) / levels`), a faithful rendering of the published
//! "different split thresholds per level" with the constants the original
//! papers leave free (see DESIGN.md §4).
//!
//! Counters reset every refresh window, collapsing the tree back to a single
//! root counter.

use dram_model::geometry::RowId;
use dram_model::timing::Picoseconds;
use serde::{Deserialize, Serialize};

use crate::defense::{RefreshAction, RowHammerDefense, TableBits};

/// CBT configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CbtConfig {
    /// Total counters available (128 for the paper's CBT-128).
    pub num_counters: usize,
    /// Tree levels (10 for CBT-128; +1 per halving of `T_RH` in Figure 9).
    pub levels: u32,
    /// Row Hammer threshold the last-level threshold is derived from.
    pub row_hammer_threshold: u64,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Reset window (tREFW).
    pub reset_window: Picoseconds,
    /// Row-address width (for the area report).
    pub addr_bits: u32,
}

impl CbtConfig {
    /// The paper's CBT-128 (10 levels) at `T_RH = 50K`, 64K-row banks.
    pub fn cbt128() -> Self {
        Self::cbt128_with_timing(&dram_model::DramTiming::ddr4_2400())
    }

    /// [`Self::cbt128`] with the reset window taken from an explicit timing
    /// configuration (tREFW) instead of the DDR4-2400 64 ms assumption.
    pub fn cbt128_with_timing(timing: &dram_model::DramTiming) -> Self {
        CbtConfig {
            num_counters: 128,
            levels: 10,
            row_hammer_threshold: 50_000,
            rows_per_bank: 65_536,
            reset_window: timing.t_refw,
            addr_bits: 16,
        }
    }

    /// The Figure 9 scaling rule: counters double and levels grow by one for
    /// every halving of `T_RH` from 50K (CBT-256 at 25K … CBT-4096 at 1.56K).
    pub fn scaled_for_threshold(t_rh: u64) -> Self {
        let mut cfg = Self::cbt128();
        cfg.row_hammer_threshold = t_rh;
        let mut threshold = 50_000u64;
        while threshold / 2 >= t_rh && cfg.num_counters < 65_536 {
            threshold /= 2;
            cfg.num_counters *= 2;
            cfg.levels += 1;
        }
        cfg
    }

    /// Last-level threshold: refresh fires when a counter reaches this.
    /// Same derivation as Graphene's `T` at `k = 1`: double-sided hammering
    /// plus refresh-phase uncertainty give `T_RH / 4`.
    pub fn last_level_threshold(&self) -> u64 {
        (self.row_hammer_threshold / 4).max(1)
    }

    /// Split threshold of a counter at `level` (0-based).
    pub fn split_threshold(&self, level: u32) -> u64 {
        let t_last = self.last_level_threshold();
        (t_last * u64::from(level + 1) / u64::from(self.levels)).max(1)
    }

    /// Per-bank table bits: each counter stores a count up to the last-level
    /// threshold plus its range prefix.
    pub fn table_bits(&self) -> TableBits {
        let count_bits = dram_model::geometry::bits_for(self.last_level_threshold() + 1);
        TableBits {
            cam_bits: 0,
            sram_bits: self.num_counters as u64 * u64::from(count_bits + self.addr_bits),
        }
    }
}

impl Default for CbtConfig {
    fn default() -> Self {
        Self::cbt128()
    }
}

/// A live counter covering the row range `[start, start + size)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Node {
    start: u32,
    level: u32,
    count: u64,
}

/// The CBT defense for one bank.
///
/// # Example
///
/// ```
/// use dram_model::RowId;
/// use mitigations::{Cbt, CbtConfig, RowHammerDefense};
///
/// let mut cbt = Cbt::new(CbtConfig::cbt128());
/// // Hammering one row eventually triggers a subtree refresh burst.
/// let mut burst = None;
/// for i in 0..20_000u64 {
///     let actions = cbt.on_activation(RowId(1000), i * 45_000);
///     if !actions.is_empty() {
///         burst = Some(actions);
///         break;
///     }
/// }
/// assert!(burst.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Cbt {
    config: CbtConfig,
    /// Partition of the bank, sorted by `start`.
    nodes: Vec<Node>,
    current_window: u64,
    refreshes_issued: u64,
}

impl Cbt {
    /// Creates CBT for one bank.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no counters, no levels, or
    /// more levels than the bank can be halved).
    pub fn new(config: CbtConfig) -> Self {
        assert!(config.num_counters > 0, "need at least one counter");
        assert!(config.levels > 0, "need at least one level");
        assert!(
            config.rows_per_bank >> (config.levels - 1) > 0,
            "too many levels for the bank size"
        );
        Cbt {
            config,
            nodes: vec![Node { start: 0, level: 0, count: 0 }],
            current_window: 0,
            refreshes_issued: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CbtConfig {
        &self.config
    }

    /// Number of live counters (grows as the tree splits).
    pub fn live_counters(&self) -> usize {
        self.nodes.len()
    }

    /// Total subtree-refresh bursts issued.
    pub fn refreshes_issued(&self) -> u64 {
        self.refreshes_issued
    }

    fn node_size(&self, level: u32) -> u32 {
        self.config.rows_per_bank >> level
    }

    fn covering_index(&self, row: RowId) -> usize {
        // Nodes partition the bank and are sorted by start.
        match self.nodes.binary_search_by(|n| n.start.cmp(&row.0)) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }

    /// Splits node `i` into two children if it is over its level's split
    /// threshold, a free counter exists, and the maximum level isn't reached.
    /// At most one split per ACT, matching the hardware's single-ported table.
    fn maybe_split(&mut self, i: usize) {
        let n = self.nodes[i];
        if n.level + 1 >= self.config.levels
            || self.nodes.len() >= self.config.num_counters
            || n.count < self.config.split_threshold(n.level)
            || self.node_size(n.level) < 2
        {
            return;
        }
        let half = self.node_size(n.level) / 2;
        // Both children inherit the parent's count: conservative, so no row
        // in either half can ever be under-counted.
        self.nodes[i] = Node { start: n.start, level: n.level + 1, count: n.count };
        self.nodes
            .insert(i + 1, Node { start: n.start + half, level: n.level + 1, count: n.count });
    }
}

impl RowHammerDefense for Cbt {
    fn name(&self) -> String {
        format!("CBT-{}", self.config.num_counters)
    }

    fn on_activation(&mut self, row: RowId, now: Picoseconds) -> Vec<RefreshAction> {
        let window = now / self.config.reset_window;
        if window != self.current_window {
            self.reset();
            self.current_window = window;
        }

        let i = self.covering_index(row);
        self.nodes[i].count += 1;

        // Split if warranted, then re-resolve the covering node.
        self.maybe_split(i);
        let i = self.covering_index(row);
        let n = self.nodes[i];

        if n.count >= self.config.last_level_threshold() {
            // Refresh the whole covered range plus the two boundary rows.
            let size = self.node_size(n.level);
            let start = n.start.saturating_sub(1);
            let count = size + if n.start == 0 { 1 } else { 2 };
            self.nodes[i].count = 0;
            self.refreshes_issued += 1;
            vec![RefreshAction::Range { start: RowId(start), count }]
        } else {
            Vec::new()
        }
    }

    fn table_bits(&self) -> TableBits {
        self.config.table_bits()
    }

    fn reset(&mut self) {
        self.nodes.clear();
        self.nodes.push(Node { start: 0, level: 0, count: 0 });
    }

    fn inject_fault(&mut self, fault: &faultsim::TrackerFault) -> bool {
        match *fault {
            faultsim::TrackerFault::CountBitFlip { slot, bit } => {
                let i = slot as usize % self.nodes.len();
                let width = (64 - self.config.last_level_threshold().leading_zeros()).max(1);
                self.nodes[i].count ^= 1 << (bit % width);
                true
            }
            faultsim::TrackerFault::AddrBitFlip { slot, bit } => {
                // Corrupting a node's range start: its counts now guard the
                // wrong rows (the tree invariant is broken exactly the way a
                // real upset would break it).
                let i = slot as usize % self.nodes.len();
                self.nodes[i].start ^= 1 << (bit % 32);
                true
            }
            faultsim::TrackerFault::SpilloverBitFlip { .. }
            | faultsim::TrackerFault::LookupMiss => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cbt(t_rh: u64) -> Cbt {
        Cbt::new(CbtConfig {
            num_counters: 8,
            levels: 4,
            row_hammer_threshold: t_rh,
            rows_per_bank: 64,
            reset_window: 1_000_000_000,
            addr_bits: 6,
        })
    }

    #[test]
    fn partition_invariant_holds_under_splits() {
        let mut cbt = small_cbt(400);
        for i in 0..5_000u64 {
            cbt.on_activation(RowId((i % 64) as u32), i);
            // Nodes must partition [0, 64): starts strictly increasing, sizes sum.
            let mut expected_start = 0u32;
            for n in &cbt.nodes {
                assert_eq!(n.start, expected_start, "gap or overlap in partition");
                expected_start += cbt.node_size(n.level);
            }
            assert_eq!(expected_start, 64);
            assert!(cbt.live_counters() <= 8);
        }
    }

    #[test]
    fn hot_row_drives_splits_toward_leaf() {
        let mut cbt = small_cbt(4000);
        for i in 0..900u64 {
            cbt.on_activation(RowId(10), i);
        }
        // Threshold 1000, split thresholds 250/500/750: the subtree around
        // row 10 must have split at least once.
        assert!(cbt.live_counters() > 1);
    }

    #[test]
    fn refresh_burst_covers_subtree_plus_boundaries() {
        let mut cbt = small_cbt(400); // last-level threshold 100
        let mut burst = None;
        for i in 0..2_000u64 {
            let a = cbt.on_activation(RowId(20), i);
            if !a.is_empty() {
                burst = Some(a[0]);
                break;
            }
        }
        let burst = burst.expect("burst fires");
        match burst {
            RefreshAction::Range { start, count } => {
                // The refreshed range must include rows 19, 20 and 21.
                assert!(start.0 <= 19);
                assert!(start.0 + count >= 22);
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn root_refresh_when_counters_exhausted() {
        // One counter only: it can never split, so it refreshes the whole
        // bank (plus boundary clip) at the last-level threshold.
        let mut cbt = Cbt::new(CbtConfig {
            num_counters: 1,
            levels: 1,
            row_hammer_threshold: 40,
            rows_per_bank: 64,
            reset_window: 1_000_000_000,
            addr_bits: 6,
        });
        let mut total_rows = 0u64;
        for i in 0..10u64 {
            for a in cbt.on_activation(RowId(5), i) {
                total_rows += a.row_count(64);
            }
        }
        assert_eq!(total_rows, 64); // 10 ACTs ≥ threshold 10 → full-bank burst
    }

    #[test]
    fn window_reset_collapses_tree() {
        let mut cbt = small_cbt(400);
        for i in 0..500u64 {
            cbt.on_activation(RowId(7), i);
        }
        assert!(cbt.live_counters() > 1);
        cbt.on_activation(RowId(7), 2_000_000_000); // next window
        assert_eq!(cbt.live_counters(), 1);
    }

    #[test]
    fn cbt128_area_close_to_paper() {
        // Paper Table IV: CBT-128 = 3,824 bits/bank. Our model: 128 × (14
        // count bits + 16 addr bits) = 3,840 — within 0.5 %.
        let bits = CbtConfig::cbt128().table_bits().total();
        assert_eq!(bits, 3_840);
        assert!((bits as f64 - 3_824.0).abs() / 3_824.0 < 0.01);
    }

    #[test]
    fn scaling_rule_matches_figure_9() {
        let c = CbtConfig::scaled_for_threshold(25_000);
        assert_eq!((c.num_counters, c.levels), (256, 11));
        let c = CbtConfig::scaled_for_threshold(12_500);
        assert_eq!((c.num_counters, c.levels), (512, 12));
        let c = CbtConfig::scaled_for_threshold(1_560);
        assert_eq!((c.num_counters, c.levels), (4096, 15));
    }

    #[test]
    fn split_thresholds_ramp_to_last_level() {
        let c = CbtConfig::cbt128();
        assert!(c.split_threshold(0) < c.split_threshold(5));
        assert_eq!(c.split_threshold(c.levels - 1), c.last_level_threshold());
    }

    #[test]
    fn no_row_exceeds_counter_budget_unprotected() {
        // Conservative inheritance: a row's true ACT count within the window
        // never exceeds the count of its covering node + refresh resets.
        let mut cbt = small_cbt(400);
        let mut acts_since_refresh = 0u64;
        for i in 0..5_000u64 {
            let a = cbt.on_activation(RowId(33), i);
            acts_since_refresh += 1;
            if !a.is_empty() {
                acts_since_refresh = 0;
            }
            assert!(
                acts_since_refresh <= cbt.config.last_level_threshold(),
                "row accumulated {acts_since_refresh} ACTs without refresh"
            );
        }
    }
}
