//! BlockHammer: throttle the aggressor instead of refreshing the victims
//! (Yağlıkçı et al., HPCA 2021).
//!
//! BlockHammer keeps **two counting Bloom filters** per bank (here: two
//! Count-Min sketches, which are counting Bloom filters with per-row hash
//! seeds). Both filters count every activation; their lifetimes are
//! staggered by half a refresh window and the older one is cleared at each
//! epoch boundary, so at any instant the *older* filter holds between half
//! and one full tREFW of history. A row whose older-filter estimate reaches
//! the blacklist threshold `N_BL` is *throttled*: the scheduler may serve
//! at most one blacklisted activation per `throttle_interval`, which caps
//! any aggressor's activation rate below the Row Hammer threshold without
//! issuing a single extra refresh.
//!
//! This is the defense that motivates the [`ThrottleDecision`] feedback
//! path: `on_activation` never returns refresh actions; all protection
//! flows through [`RowHammerDefense::throttle_decision`], which the memory
//! controller consults (with identical `(row, now)` order on every dispatch
//! path) immediately before serving an activation.
//!
//! Security accounting (DESIGN.md §6j): un-throttled activations of one row
//! are below `N_BL` per epoch (two epochs per tREFW → `≤ 2·N_BL = T_RH/4`),
//! throttled ones are paced to `tREFW / throttle_interval = T_RH/8`; a
//! double-sided pair of aggressors therefore disturbs a victim at most
//! `2·(T_RH/4 + T_RH/8) = 3·T_RH/4` per tREFW — a guaranteed 25% margin.
//! The filters only over-count, so blacklisting can only be early, never
//! late; the probabilistic term is pure false-positive (slowdown) risk.

use dram_model::geometry::RowId;
use dram_model::timing::Picoseconds;
use freq_elems::{CountMinSketch, FrequencyEstimator};
use graphene_core::GrapheneConfig;
use telemetry::json::JsonValue;

use crate::ckpt::{expect_scheme, field, lane, obj, u64_field, u64_lane};
use crate::defense::{RefreshAction, RowHammerDefense, TableBits, ThrottleDecision};

fn bits_for(x: u64) -> u32 {
    64 - x.leading_zeros()
}

/// BlockHammer parameters (per bank).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockHammerConfig {
    /// The Row Hammer threshold being defended.
    pub row_hammer_threshold: u64,
    /// Filter rows (independent hash functions).
    pub depth: usize,
    /// Counters per filter row.
    pub width: usize,
    /// Older-filter estimate at which a row is blacklisted (`N_BL`).
    pub blacklist_threshold: u64,
    /// Filter lifetime stagger: the older filter is cleared every `epoch`
    /// (= tREFW / 2).
    pub epoch: Picoseconds,
    /// Minimum spacing between served blacklisted activations.
    pub throttle_interval: Picoseconds,
    /// Rows per bank (unused by the mechanism, kept for uniform reports).
    pub rows_per_bank: u32,
}

impl BlockHammerConfig {
    /// Derives a configuration for `t_rh`: `N_BL = T_RH/8` and a throttle
    /// interval of `8·tREFW/T_RH`, giving the 25% disturbance margin
    /// derived in the module docs.
    ///
    /// # Errors
    ///
    /// Propagates the Graphene derivation error as text.
    pub fn for_threshold(t_rh: u64, rows_per_bank: u32) -> Result<Self, String> {
        Self::for_threshold_with_timing(t_rh, rows_per_bank, dram_model::DramTiming::ddr4_2400())
    }

    /// [`Self::for_threshold`] against an explicit timing configuration —
    /// the epoch and throttle interval follow the generation's tREFW
    /// instead of assuming DDR4-2400's 64 ms.
    ///
    /// # Errors
    ///
    /// Propagates the Graphene derivation error as text.
    pub fn for_threshold_with_timing(
        t_rh: u64,
        rows_per_bank: u32,
        timing: dram_model::DramTiming,
    ) -> Result<Self, String> {
        let params = GrapheneConfig::builder()
            .row_hammer_threshold(t_rh)
            .reset_window_divisor(1) // reset_window == tREFW
            .rows_per_bank(rows_per_bank)
            .timing(timing)
            .build()
            .map_err(|e| format!("{e:?}"))?
            .derive()
            .map_err(|e| format!("{e:?}"))?;
        let t_refw = params.reset_window;
        Ok(BlockHammerConfig {
            row_hammer_threshold: t_rh,
            depth: 4,
            width: 1024,
            blacklist_threshold: (t_rh / 8).max(1),
            epoch: (t_refw / 2).max(1),
            throttle_interval: (t_refw.saturating_mul(8) / t_rh.max(1)).max(1),
            rows_per_bank,
        })
    }
}

/// Lifetime counters of one BlockHammer instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockHammerStats {
    /// Activations processed.
    pub activations: u64,
    /// Blacklist lookups that matched (throttled or not).
    pub blacklist_hits: u64,
    /// Activations actually delayed (`delay > 0`).
    pub throttled_acts: u64,
    /// Total delay imposed (ps).
    pub throttle_delay: Picoseconds,
    /// Epoch boundaries crossed (filter clears).
    pub epoch_swaps: u64,
}

/// Per-bank BlockHammer behind the common defense trait.
///
/// # Example
///
/// ```
/// use mitigations::{BlockHammerConfig, BlockHammerDefense, RowHammerDefense};
/// use dram_model::RowId;
///
/// let cfg = BlockHammerConfig::for_threshold(50_000, 65_536).unwrap();
/// let mut d = BlockHammerDefense::new(cfg);
/// // Never refreshes — protection is pure throttling.
/// assert!(d.on_activation(RowId(1), 0).is_empty());
/// assert!(!d.throttle_decision(RowId(1), 1).is_throttled());
/// ```
#[derive(Debug, Clone)]
pub struct BlockHammerDefense {
    cfg: BlockHammerConfig,
    filters: [CountMinSketch<u32>; 2],
    epoch_idx: u64,
    next_allowed: Picoseconds,
    suppress_next_query: bool,
    stats: BlockHammerStats,
}

impl BlockHammerDefense {
    /// Builds the tracker.
    pub fn new(cfg: BlockHammerConfig) -> Self {
        BlockHammerDefense {
            filters: [
                CountMinSketch::new(cfg.depth, cfg.width, 1),
                CountMinSketch::new(cfg.depth, cfg.width, 1),
            ],
            epoch_idx: 0,
            next_allowed: 0,
            suppress_next_query: false,
            stats: BlockHammerStats::default(),
            cfg,
        }
    }

    /// The configuration this tracker was built from.
    pub fn config(&self) -> &BlockHammerConfig {
        &self.cfg
    }

    /// Lifetime counters.
    pub fn stats(&self) -> BlockHammerStats {
        self.stats
    }

    fn roll(&mut self, now: Picoseconds) {
        let e = now / self.cfg.epoch;
        while self.epoch_idx < e {
            self.epoch_idx += 1;
            // Entering epoch `i` clears filter `i % 2`, making it the young
            // filter; the other one keeps 1..2 epochs of history.
            self.filters[(self.epoch_idx % 2) as usize].reset();
            self.stats.epoch_swaps += 1;
        }
    }

    fn older(&self) -> &CountMinSketch<u32> {
        &self.filters[((self.epoch_idx + 1) % 2) as usize]
    }

    /// Whether `row` is currently blacklisted (no fault gating).
    pub fn is_blacklisted(&self, row: RowId) -> bool {
        self.older().estimate(&row.0) >= self.cfg.blacklist_threshold
    }
}

impl RowHammerDefense for BlockHammerDefense {
    fn name(&self) -> String {
        "BlockHammer".to_owned()
    }

    fn on_activation(&mut self, row: RowId, now: Picoseconds) -> Vec<RefreshAction> {
        self.roll(now);
        self.stats.activations += 1;
        self.filters[0].observe(row.0);
        self.filters[1].observe(row.0);
        Vec::new()
    }

    fn throttle_decision(&mut self, row: RowId, now: Picoseconds) -> ThrottleDecision {
        self.roll(now);
        let listed = if self.suppress_next_query {
            self.suppress_next_query = false;
            false
        } else {
            self.is_blacklisted(row)
        };
        if !listed {
            return ThrottleDecision::proceed();
        }
        self.stats.blacklist_hits += 1;
        let start = self.next_allowed.max(now);
        let delay = start - now;
        self.next_allowed = start + self.cfg.throttle_interval;
        if delay > 0 {
            self.stats.throttled_acts += 1;
            self.stats.throttle_delay += delay;
        }
        ThrottleDecision::delay(delay)
    }

    fn table_bits(&self) -> TableBits {
        let counter_bits = bits_for(self.cfg.blacklist_threshold.saturating_mul(2).max(1));
        TableBits {
            cam_bits: 0,
            // Two filters plus the pacing register.
            sram_bits: 2 * self.filters[0].table_bits(counter_bits) + 64,
        }
    }

    fn emit_telemetry(&self, bank: u16, now: Picoseconds, sink: &mut dyn telemetry::MetricsSink) {
        if !sink.enabled() {
            return;
        }
        let counters = self.older().counters();
        let occupied = counters.iter().filter(|&&c| c > 0).count();
        sink.sample(
            "blockhammer.filter_occupancy",
            bank,
            now,
            occupied as f64 / counters.len() as f64,
        );
        sink.sample("blockhammer.blacklist_hits", bank, now, self.stats.blacklist_hits as f64);
        sink.sample("blockhammer.throttled", bank, now, self.stats.throttled_acts as f64);
        sink.sample("blockhammer.throttle_delay", bank, now, self.stats.throttle_delay as f64);
    }

    fn reset(&mut self) {
        self.filters[0].reset();
        self.filters[1].reset();
        self.epoch_idx = 0;
        self.next_allowed = 0;
        self.suppress_next_query = false;
        self.stats = BlockHammerStats::default();
    }

    fn snapshot_state(&self) -> Result<JsonValue, String> {
        let filter = |f: &CountMinSketch<u32>| {
            obj(vec![
                ("counters", lane(f.counters().iter().copied())),
                ("stream_len", JsonValue::U64(f.stream_len())),
            ])
        };
        Ok(obj(vec![
            ("scheme", JsonValue::Str("blockhammer".to_owned())),
            ("epoch_idx", JsonValue::U64(self.epoch_idx)),
            ("next_allowed", JsonValue::U64(self.next_allowed)),
            ("suppress_next_query", JsonValue::U64(u64::from(self.suppress_next_query))),
            ("depth", JsonValue::U64(self.cfg.depth as u64)),
            ("width", JsonValue::U64(self.cfg.width as u64)),
            ("filters", JsonValue::Arr(vec![filter(&self.filters[0]), filter(&self.filters[1])])),
            (
                "stats",
                obj(vec![
                    ("activations", JsonValue::U64(self.stats.activations)),
                    ("blacklist_hits", JsonValue::U64(self.stats.blacklist_hits)),
                    ("throttled_acts", JsonValue::U64(self.stats.throttled_acts)),
                    ("throttle_delay", JsonValue::U64(self.stats.throttle_delay)),
                    ("epoch_swaps", JsonValue::U64(self.stats.epoch_swaps)),
                ]),
            ),
        ]))
    }

    fn restore_state(&mut self, state: &JsonValue) -> Result<(), String> {
        expect_scheme(state, "blockhammer")?;
        if u64_field(state, "depth")? != self.cfg.depth as u64
            || u64_field(state, "width")? != self.cfg.width as u64
        {
            return Err("checkpoint filter geometry does not match configuration".to_owned());
        }
        let filters = field(state, "filters")?
            .as_arr()
            .ok_or_else(|| "field `filters` is not an array".to_owned())?;
        if filters.len() != 2 {
            return Err(format!("expected 2 filters, found {}", filters.len()));
        }
        let mut lanes = Vec::with_capacity(2);
        for f in filters {
            lanes.push((u64_lane(f, "counters")?, u64_field(f, "stream_len")?));
        }
        let stats = field(state, "stats")?;
        let parsed = BlockHammerStats {
            activations: u64_field(stats, "activations")?,
            blacklist_hits: u64_field(stats, "blacklist_hits")?,
            throttled_acts: u64_field(stats, "throttled_acts")?,
            throttle_delay: u64_field(stats, "throttle_delay")?,
            epoch_swaps: u64_field(stats, "epoch_swaps")?,
        };
        for (i, (counters, stream_len)) in lanes.iter().enumerate() {
            self.filters[i].restore_counters(counters, *stream_len)?;
        }
        self.epoch_idx = u64_field(state, "epoch_idx")?;
        self.next_allowed = u64_field(state, "next_allowed")?;
        self.suppress_next_query = u64_field(state, "suppress_next_query")? != 0;
        self.stats = parsed;
        Ok(())
    }

    fn inject_fault(&mut self, fault: &faultsim::TrackerFault) -> bool {
        match *fault {
            faultsim::TrackerFault::CountBitFlip { slot, bit } => {
                let per_filter = self.cfg.depth * self.cfg.width;
                let idx = slot as usize % (2 * per_filter);
                let f = &mut self.filters[idx / per_filter];
                let mut counters = f.counters().to_vec();
                counters[idx % per_filter] ^= 1 << (bit % 64);
                let stream_len = f.stream_len();
                f.restore_counters(&counters, stream_len)
                    .expect("same-shape counter write-back cannot fail");
                true
            }
            faultsim::TrackerFault::AddrBitFlip { .. } => false,
            faultsim::TrackerFault::SpilloverBitFlip { .. } => false,
            faultsim::TrackerFault::LookupMiss => {
                self.suppress_next_query = true;
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BlockHammerDefense {
        BlockHammerDefense::new(BlockHammerConfig::for_threshold(50_000, 65_536).unwrap())
    }

    #[test]
    fn never_emits_refresh_actions() {
        let mut d = small();
        for i in 0..20_000 {
            assert!(d.on_activation(RowId(40), i).is_empty());
            assert!(d.on_refresh_tick(i).is_empty());
        }
    }

    #[test]
    fn hot_row_is_throttled_and_paced() {
        let mut d = small();
        let nbl = d.config().blacklist_threshold;
        let interval = d.config().throttle_interval;
        // Hammer with 50ns spacing — far faster than the throttle pace.
        let spacing = 50_000u64;
        let mut first_throttle = None;
        for i in 0..2 * nbl {
            let now = i * spacing;
            let decision = d.throttle_decision(RowId(40), now);
            if decision.is_throttled() && first_throttle.is_none() {
                first_throttle = Some(i);
            }
            d.on_activation(RowId(40), now + decision.delay);
        }
        // The first nbl activations sail through; soon after, every
        // activation waits for the pacing register.
        let first = first_throttle.expect("hot row never throttled");
        assert!(first >= nbl, "throttled before the blacklist threshold: act {first}");
        assert!(first <= nbl + 2, "blacklisting was late: act {first}");
        assert!(d.stats().throttle_delay >= interval);

        // Paced rate stays below T_RH per tREFW: interval = 8·tREFW/T_RH.
        let t_refw = 2 * d.config().epoch;
        assert!(t_refw / interval <= d.config().row_hammer_threshold / 8 + 1);
    }

    #[test]
    fn cold_rows_proceed_unthrottled() {
        let mut d = small();
        for i in 0..10_000u64 {
            let row = RowId((i % 997) as u32);
            assert!(!d.throttle_decision(row, i * 50_000).is_throttled());
            d.on_activation(row, i * 50_000);
        }
        assert_eq!(d.stats().throttled_acts, 0);
    }

    #[test]
    fn epoch_roll_forgives_old_history() {
        let mut d = small();
        let nbl = d.config().blacklist_threshold;
        for i in 0..nbl + 1 {
            d.on_activation(RowId(40), i);
        }
        assert!(d.is_blacklisted(RowId(40)));
        // Two epoch boundaries later both filters have been cleared.
        let later = 2 * d.config().epoch + 1;
        assert!(!d.throttle_decision(RowId(40), later).is_throttled());
        assert_eq!(d.stats().epoch_swaps, 2);
    }

    #[test]
    fn checkpoint_round_trips_through_json_text() {
        let mut live = small();
        for i in 0..20_000u64 {
            let row = RowId(if i % 5 == 0 { 40 } else { 1_000 + (i % 23) as u32 });
            let now = i * 45_000;
            live.throttle_decision(row, now);
            live.on_activation(row, now);
        }
        let text = live.snapshot_state().unwrap().to_string();
        let state = telemetry::json::parse(&text).unwrap();

        let mut resumed = small();
        resumed.restore_state(&state).unwrap();
        assert_eq!(resumed.snapshot_state().unwrap().to_string(), text);

        for i in 20_000..60_000u64 {
            let row = RowId(if i % 5 == 0 { 40 } else { 1_000 + (i % 23) as u32 });
            let now = i * 45_000;
            assert_eq!(
                live.throttle_decision(row, now),
                resumed.throttle_decision(row, now),
                "throttle at act {i}"
            );
            live.on_activation(row, now);
            resumed.on_activation(row, now);
        }
        assert_eq!(
            live.snapshot_state().unwrap().to_string(),
            resumed.snapshot_state().unwrap().to_string()
        );
    }

    #[test]
    fn checkpoint_rejects_foreign_scheme() {
        let mut d = small();
        let err = d.restore_state(&telemetry::json::parse("{\"scheme\":\"comet\"}").unwrap());
        assert!(err.unwrap_err().contains("scheme `comet`"));
    }

    #[test]
    fn lookup_miss_fault_lets_one_activation_through() {
        let mut d = small();
        let nbl = d.config().blacklist_threshold;
        for i in 0..nbl + 1 {
            d.on_activation(RowId(40), i);
        }
        assert!(d.is_blacklisted(RowId(40)));
        assert!(d.inject_fault(&faultsim::TrackerFault::LookupMiss));
        assert!(!d.throttle_decision(RowId(40), nbl + 2).is_throttled());
    }
}
