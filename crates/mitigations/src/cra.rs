//! CRA — Counter-based Row Activation (Kim, Nair, Qureshi — CAL 2015).
//!
//! CRA keeps one true counter *per row*, but stores the full array in DRAM
//! itself and caches only the counters of recently activated rows on chip.
//! The paper's §II-C critique: "this scheme performs poorly for an access
//! pattern with little locality" — every counter-cache miss spends extra
//! DRAM bandwidth fetching (and later writing back) the counter line.
//!
//! The model here:
//!
//! * an on-chip, direct-mapped-by-LRU counter cache of `cache_entries`
//!   (row → count) pairs;
//! * a hit increments in place; a miss evicts the LRU entry (writing it back
//!   to the in-DRAM array) and fetches the row's stored count — both charged
//!   to the caller as [`CraStats::counter_fetches`]/`counter_writebacks`,
//!   which the simulator can convert to bank-busy time;
//! * a row reaching `T_RH / 4` gets a victim refresh and its counter resets;
//! * everything resets at each refresh window, mirroring the per-window
//!   budget argument all the counter schemes share.
//!
//! Because the backing store holds a counter for literally every row, CRA is
//! a *sound* defense (no false negatives) — its weakness is purely the
//! performance of the cache, which the unit tests demonstrate by comparing
//! hit rates on high- versus low-locality streams.

use std::collections::HashMap;

use dram_model::geometry::RowId;
use dram_model::timing::Picoseconds;
use serde::{Deserialize, Serialize};

use crate::defense::{RefreshAction, RowHammerDefense, TableBits};

/// CRA configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CraConfig {
    /// Row Hammer threshold.
    pub row_hammer_threshold: u64,
    /// On-chip counter-cache entries.
    pub cache_entries: usize,
    /// Rows per bank (sizes the in-DRAM backing array).
    pub rows_per_bank: u32,
    /// Reset window (tREFW).
    pub reset_window: Picoseconds,
    /// Row-address width (for the area report).
    pub addr_bits: u32,
}

impl CraConfig {
    /// A typical configuration: 128-entry counter cache at `T_RH` = 50K.
    pub fn micro2020() -> Self {
        Self::with_timing(&dram_model::DramTiming::ddr4_2400())
    }

    /// [`Self::micro2020`] with the reset window taken from an explicit
    /// timing configuration (tREFW) instead of the DDR4-2400 64 ms
    /// assumption.
    pub fn with_timing(timing: &dram_model::DramTiming) -> Self {
        CraConfig {
            row_hammer_threshold: 50_000,
            cache_entries: 128,
            rows_per_bank: 65_536,
            reset_window: timing.t_refw,
            addr_bits: 16,
        }
    }

    /// Victim-refresh threshold (`T_RH / 4`, as for the other counter schemes).
    pub fn refresh_threshold(&self) -> u64 {
        (self.row_hammer_threshold / 4).max(1)
    }
}

impl Default for CraConfig {
    fn default() -> Self {
        Self::micro2020()
    }
}

/// Counter-cache traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CraStats {
    /// Counter-cache hits.
    pub cache_hits: u64,
    /// Counter fetches from the in-DRAM array (cache misses).
    pub counter_fetches: u64,
    /// Dirty evictions written back to the in-DRAM array.
    pub counter_writebacks: u64,
}

impl CraStats {
    /// Cache hit rate over all lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.counter_fetches;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// The CRA defense for one bank.
///
/// # Example
///
/// ```
/// use dram_model::RowId;
/// use mitigations::{Cra, CraConfig, RowHammerDefense};
///
/// let mut cra = Cra::new(CraConfig::micro2020());
/// cra.on_activation(RowId(5), 0);
/// assert_eq!(cra.stats().counter_fetches, 1); // cold miss
/// cra.on_activation(RowId(5), 1);
/// assert_eq!(cra.stats().cache_hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Cra {
    config: CraConfig,
    /// In-DRAM backing counters (one per row).
    backing: Vec<u32>,
    /// On-chip cache: row → (count, last-use tick).
    cache: HashMap<RowId, (u32, u64)>,
    tick: u64,
    current_window: u64,
    stats: CraStats,
    refreshes_issued: u64,
    /// Counter-line transfers already reported via `drain_overhead_time`.
    drained_transfers: u64,
}

impl Cra {
    /// Creates CRA for one bank.
    ///
    /// # Panics
    ///
    /// Panics if the cache has no entries or the bank no rows.
    pub fn new(config: CraConfig) -> Self {
        assert!(config.cache_entries > 0, "cache must have entries");
        assert!(config.rows_per_bank > 0, "bank must have rows");
        Cra {
            backing: vec![0; config.rows_per_bank as usize],
            cache: HashMap::with_capacity(config.cache_entries),
            tick: 0,
            current_window: 0,
            stats: CraStats::default(),
            refreshes_issued: 0,
            drained_transfers: 0,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CraConfig {
        &self.config
    }

    /// Counter-cache traffic so far.
    pub fn stats(&self) -> &CraStats {
        &self.stats
    }

    /// Victim refreshes issued.
    pub fn refreshes_issued(&self) -> u64 {
        self.refreshes_issued
    }

    fn evict_lru(&mut self) {
        if let Some((&row, _)) = self.cache.iter().min_by_key(|&(_, &(_, used))| used) {
            let (count, _) = self.cache.remove(&row).expect("entry exists");
            self.backing[row.0 as usize] = count;
            self.stats.counter_writebacks += 1;
        }
    }
}

impl RowHammerDefense for Cra {
    fn name(&self) -> String {
        format!("CRA-{}", self.config.cache_entries)
    }

    fn on_activation(&mut self, row: RowId, now: Picoseconds) -> Vec<RefreshAction> {
        let window = now / self.config.reset_window;
        if window != self.current_window {
            self.reset();
            self.current_window = window;
        }
        self.tick += 1;
        let tick = self.tick;

        let count = if let Some(entry) = self.cache.get_mut(&row) {
            self.stats.cache_hits += 1;
            entry.0 += 1;
            entry.1 = tick;
            entry.0
        } else {
            // Miss: fetch from the in-DRAM array, evicting if full.
            self.stats.counter_fetches += 1;
            if self.cache.len() >= self.config.cache_entries {
                self.evict_lru();
            }
            let fetched = self.backing[row.0 as usize] + 1;
            self.cache.insert(row, (fetched, tick));
            fetched
        };

        if u64::from(count) >= self.config.refresh_threshold() {
            self.cache.insert(row, (0, tick));
            self.backing[row.0 as usize] = 0;
            self.refreshes_issued += 1;
            vec![RefreshAction::Neighbors { aggressor: row, radius: 1 }]
        } else {
            Vec::new()
        }
    }

    fn table_bits(&self) -> TableBits {
        // On-chip: the counter cache (address CAM + count SRAM). The
        // in-DRAM array costs DRAM capacity, not controller area.
        let count_bits = dram_model::geometry::bits_for(self.config.refresh_threshold() + 1);
        TableBits {
            cam_bits: self.config.cache_entries as u64 * u64::from(self.config.addr_bits),
            sram_bits: self.config.cache_entries as u64 * u64::from(count_bits),
        }
    }

    fn drain_overhead_time(&mut self) -> Picoseconds {
        // Each fetch or write-back moves one counter line: one column access
        // (tCL = 13.3 ns) against the bank holding the in-DRAM array.
        const COUNTER_TRANSFER_PS: Picoseconds = 13_300;
        let total = self.stats.counter_fetches + self.stats.counter_writebacks;
        let new = total - self.drained_transfers;
        self.drained_transfers = total;
        new * COUNTER_TRANSFER_PS
    }

    fn reset(&mut self) {
        self.backing.iter_mut().for_each(|c| *c = 0);
        self.cache.clear();
        self.refreshes_issued = 0;
        self.drained_transfers = 0;
        self.stats = CraStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cra(t_rh: u64, cache: usize) -> Cra {
        Cra::new(CraConfig {
            row_hammer_threshold: t_rh,
            cache_entries: cache,
            rows_per_bank: 4_096,
            reset_window: u64::MAX,
            addr_bits: 12,
        })
    }

    #[test]
    fn exact_counting_across_evictions() {
        // Counts survive eviction via the backing store: hammering one row
        // interleaved with a cache-thrashing sweep still fires at exactly
        // T_RH/4 activations of the aggressor.
        let mut c = cra(400, 2); // threshold 100, tiny cache
        let mut fired_at = None;
        let mut aggressor_acts = 0u64;
        for i in 0..10_000u64 {
            let row = if i % 4 == 0 {
                aggressor_acts += 1;
                RowId(9)
            } else {
                RowId(100 + (i % 50) as u32)
            };
            if !c.on_activation(row, i).is_empty() && row == RowId(9) && fired_at.is_none() {
                fired_at = Some(aggressor_acts);
            }
        }
        assert_eq!(fired_at, Some(100), "exact per-row counting must survive eviction");
    }

    #[test]
    fn protection_equals_ideal_threshold() {
        let mut c = cra(400, 64);
        for i in 0..99u64 {
            assert!(c.on_activation(RowId(5), i).is_empty());
        }
        let a = c.on_activation(RowId(5), 99);
        assert_eq!(a, vec![RefreshAction::Neighbors { aggressor: RowId(5), radius: 1 }]);
    }

    #[test]
    fn locality_governs_cache_traffic() {
        // High-locality stream: mostly hits. Low-locality: mostly fetches —
        // the paper's §II-C critique quantified.
        let mut hot = cra(50_000, 128);
        for i in 0..10_000u64 {
            hot.on_activation(RowId((i % 16) as u32), i);
        }
        assert!(hot.stats().hit_rate() > 0.95, "hot hit rate {}", hot.stats().hit_rate());

        let mut cold = cra(50_000, 128);
        for i in 0..10_000u64 {
            cold.on_activation(RowId(((i * 17) % 4_096) as u32), i);
        }
        assert!(cold.stats().hit_rate() < 0.2, "cold hit rate {}", cold.stats().hit_rate());
        assert!(cold.stats().counter_writebacks > 1_000);
    }

    #[test]
    fn cache_never_exceeds_capacity() {
        let mut c = cra(50_000, 8);
        for i in 0..5_000u64 {
            c.on_activation(RowId((i % 200) as u32), i);
            assert!(c.cache.len() <= 8);
        }
    }

    #[test]
    fn on_chip_area_is_cache_only() {
        let c = cra(50_000, 128);
        // 128 × (12 addr + 14 count) — far below one counter per row.
        assert_eq!(c.table_bits().total(), 128 * (12 + 14));
    }

    #[test]
    fn reset_clears_backing_and_cache() {
        let mut c = cra(400, 8);
        for i in 0..50u64 {
            c.on_activation(RowId(1), i);
        }
        c.reset();
        for i in 0..99u64 {
            assert!(c.on_activation(RowId(1), i + 100).is_empty());
        }
    }
}
