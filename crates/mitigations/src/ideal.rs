//! Ideal per-row counters — the precision oracle.
//!
//! One exact counter per row, reset every refresh window, firing a victim
//! refresh at `T_RH / 4` (the same safe threshold every sound scheme must
//! respect given double-sided hammering and refresh-phase uncertainty).
//! Unbuildable at scale — a 64K-row bank would need 64K × 14-bit counters —
//! but invaluable as a baseline: any false positive a realistic scheme avoids
//! relative to this oracle is a genuine saving, and its area number anchors
//! the "why not a counter per row" motivation.

use dram_model::geometry::RowId;
use dram_model::timing::Picoseconds;
use serde::{Deserialize, Serialize};

use crate::defense::{RefreshAction, RowHammerDefense, TableBits};

/// Exact per-row counting defense.
///
/// # Example
///
/// ```
/// use dram_model::RowId;
/// use mitigations::{IdealCounters, RowHammerDefense};
///
/// let mut ideal = IdealCounters::new(50_000, 65_536, 64_000_000_000);
/// assert!(ideal.on_activation(RowId(7), 0).is_empty());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IdealCounters {
    threshold: u64,
    rows_per_bank: u32,
    reset_window: Picoseconds,
    counts: Vec<u32>,
    current_window: u64,
    refreshes_issued: u64,
}

impl IdealCounters {
    /// Creates the oracle for a bank: fires at `t_rh / 4`, resets each
    /// `reset_window`.
    ///
    /// # Panics
    ///
    /// Panics if `t_rh < 4` or the bank is empty.
    pub fn new(t_rh: u64, rows_per_bank: u32, reset_window: Picoseconds) -> Self {
        assert!(t_rh >= 4, "threshold too small");
        assert!(rows_per_bank > 0, "bank must have rows");
        IdealCounters {
            threshold: t_rh / 4,
            rows_per_bank,
            reset_window,
            counts: vec![0; rows_per_bank as usize],
            current_window: 0,
            refreshes_issued: 0,
        }
    }

    /// The firing threshold (`T_RH / 4`).
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Victim refreshes issued.
    pub fn refreshes_issued(&self) -> u64 {
        self.refreshes_issued
    }
}

impl RowHammerDefense for IdealCounters {
    fn name(&self) -> String {
        "Ideal".to_owned()
    }

    fn on_activation(&mut self, row: RowId, now: Picoseconds) -> Vec<RefreshAction> {
        let window = now / self.reset_window;
        if window != self.current_window {
            self.counts.iter_mut().for_each(|c| *c = 0);
            self.current_window = window;
        }
        let c = &mut self.counts[row.0 as usize];
        *c += 1;
        if u64::from(*c) >= self.threshold {
            *c = 0;
            self.refreshes_issued += 1;
            vec![RefreshAction::Neighbors { aggressor: row, radius: 1 }]
        } else {
            Vec::new()
        }
    }

    fn table_bits(&self) -> TableBits {
        let count_bits = dram_model::geometry::bits_for(self.threshold + 1);
        TableBits { cam_bits: 0, sram_bits: u64::from(self.rows_per_bank) * u64::from(count_bits) }
    }

    fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.refreshes_issued = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_at_quarter_threshold() {
        let mut d = IdealCounters::new(400, 64, 1_000_000);
        for i in 0..99u64 {
            assert!(d.on_activation(RowId(5), i).is_empty());
        }
        assert_eq!(
            d.on_activation(RowId(5), 99),
            vec![RefreshAction::Neighbors { aggressor: RowId(5), radius: 1 }]
        );
    }

    #[test]
    fn counter_resets_after_fire() {
        let mut d = IdealCounters::new(400, 64, u64::MAX);
        for i in 0..100u64 {
            d.on_activation(RowId(5), i);
        }
        for i in 100..199u64 {
            assert!(d.on_activation(RowId(5), i).is_empty());
        }
        assert!(!d.on_activation(RowId(5), 199).is_empty());
        assert_eq!(d.refreshes_issued(), 2);
    }

    #[test]
    fn window_reset_zeroes_counts() {
        let mut d = IdealCounters::new(400, 64, 1_000);
        for i in 0..99u64 {
            d.on_activation(RowId(5), i % 1000);
        }
        // Next window: count starts over.
        assert!(d.on_activation(RowId(5), 1_000).is_empty());
    }

    #[test]
    fn zero_false_positives_on_spread_traffic() {
        let mut d = IdealCounters::new(50_000, 4096, u64::MAX);
        for i in 0..1_000_000u64 {
            let r = RowId((i % 4096) as u32);
            assert!(d.on_activation(r, i).is_empty());
        }
        assert_eq!(d.refreshes_issued(), 0);
    }

    #[test]
    fn area_is_rows_times_count_bits() {
        let d = IdealCounters::new(50_000, 65_536, 1);
        // threshold 12_500 → 14 bits × 64K rows.
        assert_eq!(d.table_bits().total(), 65_536 * 14);
    }
}
