//! Online audit wrapper for any [`RowHammerDefense`].
//!
//! [`AuditedDefense`] sits between the memory controller and an inner
//! defense, validating every [`RefreshAction`] against what a defense is
//! physically able to know and do:
//!
//! * a defense observes only ACT commands, so it cannot act before the
//!   first ACT of the run;
//! * every refresh it requests must target the neighbourhood of a row that
//!   was actually activated — an NRR names a real past aggressor, a row or
//!   range refresh lands within `max_radius` of one;
//! * targets beyond the bank (after the `max_radius` slack that saturating
//!   bank-edge arithmetic legitimately produces) are rejected.
//!
//! [`AuditConfig::degraded_repairs`] waives only the was-activated check
//! on NRR aggressors: a parity-scrubbing defense repairing a detected
//! address corruption legitimately names rows it never saw. Everything
//! else — the bank bound, the radius check, the certificate — still holds.
//!
//! For Graphene the wrapper additionally keeps an independent shadow
//! activation count per row and certifies the paper's **no-false-negatives
//! trigger** (Section IV): within each reset window, a row activated `c`
//! times must have received at least `⌊c / T⌋` NRRs. The shadow windows
//! roll on the same `now / reset_window` boundary as the engine, so the
//! certificate is checked against exactly the window the table saw.
//!
//! Violations panic with the inner defense's name and the offending
//! action; the wrapper is an executable specification, not a logger. The
//! wrapper is transparent otherwise: it forwards the inner defense's
//! actions, overhead time, and table footprint unchanged, so audited and
//! unaudited runs produce identical [`crate::defense::TableBits`] and
//! `RunStats`.

use dram_model::geometry::RowId;
use dram_model::timing::Picoseconds;
use telemetry::json::JsonValue;

use crate::ckpt::{expect_scheme, field, lane, obj, u64_field, u64_lane};
use crate::defense::{RefreshAction, RowHammerDefense, TableBits};

/// Parameters of the Graphene no-false-negatives certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShadowCert {
    /// The tracking threshold `T` whose multiples must trigger NRRs.
    pub tracking_threshold: u64,
    /// The reset-window length; shadow counts clear on each
    /// `now / reset_window` boundary, mirroring the engine.
    pub reset_window: Picoseconds,
}

/// Configuration of the audit wrapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditConfig {
    /// Rows in the protected bank.
    pub rows_per_bank: u32,
    /// Largest distance from an activated row at which an action target is
    /// still plausible (the blast radius; 1 for the paper's adjacent model).
    pub max_radius: u32,
    /// When set, the wrapper certifies the multiples-of-`T` trigger with an
    /// independent shadow count (Graphene only).
    pub certify: Option<ShadowCert>,
    /// Accept repair NRRs naming rows that were never activated. A
    /// parity-scrubbing defense ([`crate::HardenedGraphene`]) that detects
    /// a corrupted *address* cannot know which row the slot was tracking,
    /// so its conservative Hamming-ball repair legitimately names
    /// never-activated rows. The bank bound still applies — only the
    /// was-activated requirement is waived.
    pub degraded_repairs: bool,
}

impl AuditConfig {
    /// Plain validation (no trigger certificate) with blast radius 1.
    pub fn new(rows_per_bank: u32) -> Self {
        AuditConfig { rows_per_bank, max_radius: 1, certify: None, degraded_repairs: false }
    }
}

/// A [`RowHammerDefense`] that validates another defense's every action.
///
/// # Example
///
/// ```
/// use dram_model::RowId;
/// use mitigations::{AuditConfig, AuditedDefense, Para, RowHammerDefense};
///
/// let mut d = AuditedDefense::new(Box::new(Para::new(0.01, 7)), AuditConfig::new(65_536));
/// for i in 0..1_000u64 {
///     d.on_activation(RowId(100), i * 45_000); // panics on any bogus action
/// }
/// assert!(d.name().starts_with("Audited("));
/// ```
pub struct AuditedDefense {
    inner: Box<dyn RowHammerDefense + Send>,
    cfg: AuditConfig,
    /// Rows activated at least once this run (never cleared by window
    /// rolls: "was ever an aggressor" is the property actions are checked
    /// against).
    activated: Vec<bool>,
    any_act: bool,
    /// Shadow per-row activation counts for the current cert window.
    shadow_counts: Vec<u32>,
    /// NRRs received per row in the current cert window.
    shadow_nrrs: Vec<u32>,
    current_window: u64,
}

impl AuditedDefense {
    /// Wraps `inner` so every action it emits is validated against `cfg`.
    pub fn new(inner: Box<dyn RowHammerDefense + Send>, cfg: AuditConfig) -> Self {
        let rows = cfg.rows_per_bank as usize;
        let cert_rows = if cfg.certify.is_some() { rows } else { 0 };
        AuditedDefense {
            inner,
            cfg,
            activated: vec![false; rows],
            any_act: false,
            shadow_counts: vec![0; cert_rows],
            shadow_nrrs: vec![0; cert_rows],
            current_window: 0,
        }
    }

    /// The wrapped defense.
    pub fn inner(&self) -> &dyn RowHammerDefense {
        self.inner.as_ref()
    }

    /// True if any row within `max_radius` of `target` has been activated
    /// (distance 0 counts: saturating bank-edge arithmetic makes a defense
    /// legitimately refresh the aggressor itself at row 0).
    fn near_activated(&self, target: u32) -> bool {
        let lo = target.saturating_sub(self.cfg.max_radius);
        let hi = target
            .saturating_add(self.cfg.max_radius)
            .min(self.cfg.rows_per_bank.saturating_sub(1));
        (lo..=hi).any(|r| self.activated.get(r as usize) == Some(&true))
    }

    /// Panics if `action` is something no real defense could have emitted.
    fn validate_action(&self, action: &RefreshAction, now: Picoseconds) {
        let name = self.inner.name();
        assert!(
            self.any_act,
            "audit[{name}]: emitted {action:?} at t={now} before any ACT was observed"
        );
        match *action {
            // An RFM is the DDR5 spelling of an NRR: same victim set, same
            // physical constraints, so it passes exactly the NRR checks.
            RefreshAction::Neighbors { aggressor, radius }
            | RefreshAction::Rfm { aggressor, radius } => {
                assert!(
                    radius >= 1,
                    "audit[{name}]: NRR with radius 0 refreshes nothing ({action:?})"
                );
                assert!(
                    aggressor.0 < self.cfg.rows_per_bank,
                    "audit[{name}]: NRR aggressor {aggressor} outside bank of {} rows",
                    self.cfg.rows_per_bank
                );
                // Degraded-repair mode waives only this assertion: a
                // scrubbing defense that detected a corrupted address may
                // name a row it never saw (the in-bank bound above still
                // holds unconditionally).
                assert!(
                    self.cfg.degraded_repairs || self.activated[aggressor.0 as usize],
                    "audit[{name}]: NRR names aggressor {aggressor}, which was never activated"
                );
            }
            RefreshAction::Row(target) => {
                assert!(
                    target.0 < self.cfg.rows_per_bank + self.cfg.max_radius,
                    "audit[{name}]: row refresh {target} beyond bank edge slack \
                     (bank has {} rows, radius {})",
                    self.cfg.rows_per_bank,
                    self.cfg.max_radius
                );
                assert!(
                    self.near_activated(target.0),
                    "audit[{name}]: row refresh {target} is not within {} of any \
                     activated row",
                    self.cfg.max_radius
                );
            }
            RefreshAction::Range { start, count } => {
                assert!(count >= 1, "audit[{name}]: empty range refresh ({action:?})");
                assert!(
                    start.0 < self.cfg.rows_per_bank,
                    "audit[{name}]: range start {start} outside bank of {} rows",
                    self.cfg.rows_per_bank
                );
                let lo = start.0.saturating_sub(self.cfg.max_radius);
                let hi = start
                    .0
                    .saturating_add(count - 1)
                    .saturating_add(self.cfg.max_radius)
                    .min(self.cfg.rows_per_bank.saturating_sub(1));
                assert!(
                    (lo..=hi).any(|r| self.activated[r as usize]),
                    "audit[{name}]: range refresh {action:?} contains no activated row \
                     (±{} slack)",
                    self.cfg.max_radius
                );
            }
        }
    }

    /// Rolls the certificate window if `now` crossed a reset boundary,
    /// mirroring the engine's `now / reset_window` alignment.
    fn roll_cert_window(&mut self, now: Picoseconds) {
        let Some(cert) = self.cfg.certify else { return };
        let window = now / cert.reset_window;
        if window != self.current_window {
            self.shadow_counts.fill(0);
            self.shadow_nrrs.fill(0);
            self.current_window = window;
        }
    }
}

impl RowHammerDefense for AuditedDefense {
    fn name(&self) -> String {
        format!("Audited({})", self.inner.name())
    }

    fn on_activation(&mut self, row: RowId, now: Picoseconds) -> Vec<RefreshAction> {
        assert!(
            row.0 < self.cfg.rows_per_bank,
            "audit: controller fed activation of {row} outside bank of {} rows",
            self.cfg.rows_per_bank
        );
        self.roll_cert_window(now);
        self.any_act = true;
        self.activated[row.0 as usize] = true;
        if self.cfg.certify.is_some() {
            self.shadow_counts[row.0 as usize] += 1;
        }
        let actions = self.inner.on_activation(row, now);
        for action in &actions {
            self.validate_action(action, now);
            if let Some(cert) = self.cfg.certify {
                match *action {
                    RefreshAction::Neighbors { aggressor, .. }
                    | RefreshAction::Rfm { aggressor, .. } => {
                        // `validate_action` already proved the aggressor was
                        // activated. It is usually the current row (Graphene
                        // triggers on the aggressor being activated), but a
                        // hardened wrapper may emit conservative *repair*
                        // NRRs for other tracked aggressors after detecting
                        // corruption — those credit the named row's shadow
                        // account instead. An RFM refreshes the same victim
                        // set as an NRR (the RAA debit is controller
                        // bookkeeping, not a protection difference), so the
                        // certificate credits both spellings identically.
                        self.shadow_nrrs[aggressor.0 as usize] += 1;
                    }
                    ref other => panic!(
                        "audit[{}]: certified defense emitted {other:?}; Graphene \
                         only issues NRRs (or their RFM spelling)",
                        self.inner.name()
                    ),
                }
                let count = u64::from(self.shadow_counts[row.0 as usize]);
                let nrrs = u64::from(self.shadow_nrrs[row.0 as usize]);
                assert!(
                    nrrs >= count / cert.tracking_threshold,
                    "audit[{}]: no-false-negative certificate failed for {row}: {count} \
                     ACTs this window but only {nrrs} NRR(s) at T={}",
                    self.inner.name(),
                    cert.tracking_threshold
                );
            }
        }
        if let Some(cert) = self.cfg.certify {
            // The certificate also binds when the inner defense stays
            // silent: crossing a multiple of T without an NRR this window
            // is exactly the false negative the paper rules out.
            let count = u64::from(self.shadow_counts[row.0 as usize]);
            let nrrs = u64::from(self.shadow_nrrs[row.0 as usize]);
            assert!(
                nrrs >= count / cert.tracking_threshold,
                "audit[{}]: no-false-negative certificate failed for {row}: {count} ACTs \
                 this window but only {nrrs} NRR(s) at T={}",
                self.inner.name(),
                cert.tracking_threshold
            );
        }
        actions
    }

    fn on_refresh_tick(&mut self, now: Picoseconds) -> Vec<RefreshAction> {
        self.roll_cert_window(now);
        let actions = self.inner.on_refresh_tick(now);
        for action in &actions {
            self.validate_action(action, now);
            // NRRs issued between ACTs (a hardened wrapper scrubbing on
            // the refresh tick) credit the named row's shadow account just
            // like ACT-time NRRs — otherwise a repair emitted here would
            // be invisible to the certificate and trip a false alarm at
            // the row's next crossing.
            if self.cfg.certify.is_some() {
                if let RefreshAction::Neighbors { aggressor, .. }
                | RefreshAction::Rfm { aggressor, .. } = *action
                {
                    self.shadow_nrrs[aggressor.0 as usize] += 1;
                }
            }
        }
        actions
    }

    fn throttle_decision(
        &mut self,
        row: RowId,
        now: Picoseconds,
    ) -> crate::defense::ThrottleDecision {
        // Forwarded verbatim: throttling is scheduler feedback, not a
        // refresh action, so there is nothing for the action validator to
        // check — but losing it here would silently disarm a throttling
        // defense under audit.
        self.inner.throttle_decision(row, now)
    }

    fn drain_overhead_time(&mut self) -> Picoseconds {
        self.inner.drain_overhead_time()
    }

    fn table_bits(&self) -> TableBits {
        self.inner.table_bits()
    }

    fn emit_telemetry(&self, bank: u16, now: Picoseconds, sink: &mut dyn telemetry::MetricsSink) {
        self.inner.emit_telemetry(bank, now, sink);
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.activated.fill(false);
        self.any_act = false;
        self.shadow_counts.fill(0);
        self.shadow_nrrs.fill(0);
        self.current_window = 0;
    }

    fn inject_fault(&mut self, fault: &faultsim::TrackerFault) -> bool {
        // The fault strikes the inner tracker's SRAM; the shadow oracle is
        // the audit's own (assumed-good) bookkeeping and stays intact —
        // that asymmetry is what lets the audit *detect* the consequences.
        self.inner.inject_fault(fault)
    }

    fn snapshot_state(&self) -> Result<JsonValue, String> {
        // Sparse encodings: activation history and shadow accounts are
        // bank-sized (64Ki rows) but a realistic run touches a small
        // fraction, so only set bits / nonzero counts are written.
        let activated =
            lane((0..self.activated.len()).filter(|&i| self.activated[i]).map(|i| i as u64));
        let pairs = |v: &[u32]| {
            JsonValue::Arr(
                v.iter()
                    .enumerate()
                    .filter(|&(_, &c)| c != 0)
                    .map(|(i, &c)| {
                        JsonValue::Arr(vec![JsonValue::U64(i as u64), JsonValue::U64(u64::from(c))])
                    })
                    .collect(),
            )
        };
        Ok(obj(vec![
            ("scheme", JsonValue::Str("audited".to_owned())),
            ("any_act", JsonValue::U64(u64::from(self.any_act))),
            ("current_window", JsonValue::U64(self.current_window)),
            ("activated", activated),
            ("shadow_counts", pairs(&self.shadow_counts)),
            ("shadow_nrrs", pairs(&self.shadow_nrrs)),
            ("inner", self.inner.snapshot_state()?),
        ]))
    }

    fn restore_state(&mut self, state: &JsonValue) -> Result<(), String> {
        expect_scheme(state, "audited")?;
        let unpack_pairs = |v: &JsonValue, key: &str, len: usize| -> Result<Vec<u32>, String> {
            let mut out = vec![0u32; len];
            for pair in
                field(v, key)?.as_arr().ok_or_else(|| format!("field `{key}` is not an array"))?
            {
                let pair = pair
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| format!("element of `{key}` is not an [index, count] pair"))?;
                let i = pair[0].as_u64().and_then(|i| usize::try_from(i).ok());
                let c = pair[1].as_u64().and_then(|c| u32::try_from(c).ok());
                match (i, c) {
                    (Some(i), Some(c)) if i < len => out[i] = c,
                    _ => return Err(format!("out-of-range pair in `{key}`")),
                }
            }
            Ok(out)
        };
        let mut activated = vec![false; self.activated.len()];
        for i in u64_lane(state, "activated")? {
            let i = usize::try_from(i).ok().filter(|&i| i < activated.len());
            match i {
                Some(i) => activated[i] = true,
                None => return Err("activated index outside bank".to_owned()),
            }
        }
        let shadow_counts = unpack_pairs(state, "shadow_counts", self.shadow_counts.len())?;
        let shadow_nrrs = unpack_pairs(state, "shadow_nrrs", self.shadow_nrrs.len())?;
        self.inner.restore_state(field(state, "inner")?)?;
        self.activated = activated;
        self.any_act = u64_field(state, "any_act")? != 0;
        self.current_window = u64_field(state, "current_window")?;
        self.shadow_counts = shadow_counts;
        self.shadow_nrrs = shadow_nrrs;
        Ok(())
    }
}

impl std::fmt::Debug for AuditedDefense {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuditedDefense")
            .field("inner", &self.inner.name())
            .field("cfg", &self.cfg)
            .field("any_act", &self.any_act)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::none::NoDefense;
    use crate::para::Para;

    fn audited(inner: Box<dyn RowHammerDefense + Send>) -> AuditedDefense {
        AuditedDefense::new(inner, AuditConfig::new(1_024))
    }

    #[test]
    fn forwards_inner_metadata() {
        let mut d = audited(Box::new(NoDefense::new()));
        assert_eq!(d.name(), "Audited(None)");
        assert_eq!(d.table_bits(), NoDefense::new().table_bits());
        assert_eq!(d.drain_overhead_time(), 0);
        assert!(d.on_activation(RowId(3), 0).is_empty());
        d.reset();
    }

    #[test]
    fn honest_para_run_passes() {
        let mut d = audited(Box::new(Para::new(0.05, 11)));
        let mut emitted = 0;
        for i in 0..2_000u64 {
            // Hammer the bank edges too, where saturating arithmetic emits
            // distance-0 and beyond-bank targets.
            let row = match i % 3 {
                0 => RowId(0),
                1 => RowId(1_023),
                _ => RowId(500),
            };
            emitted += d.on_activation(row, i * 45_000).len();
        }
        assert!(emitted > 0, "PARA should have fired at p=0.05");
    }

    /// A defense that emits an action unrelated to any activation.
    struct RandomRefresher;
    impl RowHammerDefense for RandomRefresher {
        fn name(&self) -> String {
            "RandomRefresher".into()
        }
        fn on_activation(&mut self, _row: RowId, _now: Picoseconds) -> Vec<RefreshAction> {
            vec![RefreshAction::Row(RowId(900))]
        }
        fn table_bits(&self) -> TableBits {
            TableBits::default()
        }
        fn reset(&mut self) {}
    }

    #[test]
    #[should_panic(expected = "not within 1 of any activated row")]
    fn far_row_refresh_is_caught() {
        let mut d = audited(Box::new(RandomRefresher));
        d.on_activation(RowId(5), 0);
    }

    /// A defense that acts on the refresh tick before seeing any ACT.
    struct EagerTicker;
    impl RowHammerDefense for EagerTicker {
        fn name(&self) -> String {
            "EagerTicker".into()
        }
        fn on_activation(&mut self, _row: RowId, _now: Picoseconds) -> Vec<RefreshAction> {
            Vec::new()
        }
        fn on_refresh_tick(&mut self, _now: Picoseconds) -> Vec<RefreshAction> {
            vec![RefreshAction::Row(RowId(1))]
        }
        fn table_bits(&self) -> TableBits {
            TableBits::default()
        }
        fn reset(&mut self) {}
    }

    #[test]
    #[should_panic(expected = "before any ACT")]
    fn action_before_first_act_is_caught() {
        let mut d = audited(Box::new(EagerTicker));
        d.on_refresh_tick(7_800_000);
    }

    /// A defense that blames an NRR on a row that never activated.
    struct WrongAggressor;
    impl RowHammerDefense for WrongAggressor {
        fn name(&self) -> String {
            "WrongAggressor".into()
        }
        fn on_activation(&mut self, row: RowId, _now: Picoseconds) -> Vec<RefreshAction> {
            vec![RefreshAction::Neighbors { aggressor: RowId(row.0 + 100), radius: 1 }]
        }
        fn table_bits(&self) -> TableBits {
            TableBits::default()
        }
        fn reset(&mut self) {}
    }

    #[test]
    #[should_panic(expected = "never activated")]
    fn phantom_aggressor_is_caught() {
        let mut d = audited(Box::new(WrongAggressor));
        d.on_activation(RowId(10), 0);
    }

    #[test]
    fn reset_clears_activation_history() {
        let mut d = audited(Box::new(NoDefense::new()));
        d.on_activation(RowId(10), 0);
        d.reset();
        // History gone: a tick action would again count as before-any-ACT.
        let mut e = audited(Box::new(EagerTicker));
        e.on_activation(RowId(1), 0);
        e.reset();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.on_refresh_tick(1);
        }));
        assert!(r.is_err(), "post-reset tick action must fail the audit");
    }

    /// A Graphene impostor that counts but never fires.
    struct SilentCounter;
    impl RowHammerDefense for SilentCounter {
        fn name(&self) -> String {
            "SilentCounter".into()
        }
        fn on_activation(&mut self, _row: RowId, _now: Picoseconds) -> Vec<RefreshAction> {
            Vec::new()
        }
        fn table_bits(&self) -> TableBits {
            TableBits::default()
        }
        fn reset(&mut self) {}
    }

    #[test]
    #[should_panic(expected = "no-false-negative certificate failed")]
    fn silent_defense_fails_the_certificate() {
        let cfg = AuditConfig {
            certify: Some(ShadowCert { tracking_threshold: 50, reset_window: u64::MAX }),
            ..AuditConfig::new(1_024)
        };
        let mut d = AuditedDefense::new(Box::new(SilentCounter), cfg);
        for i in 0..50u64 {
            d.on_activation(RowId(3), i * 45_000);
        }
    }

    /// Emits an NRR for a fixed (possibly never-activated) row on every
    /// activation — the shape of a degraded Hamming-ball repair.
    struct RepairEmitter(RowId);
    impl RowHammerDefense for RepairEmitter {
        fn name(&self) -> String {
            "RepairEmitter".into()
        }
        fn on_activation(&mut self, _row: RowId, _now: Picoseconds) -> Vec<RefreshAction> {
            vec![RefreshAction::Neighbors { aggressor: self.0, radius: 1 }]
        }
        fn table_bits(&self) -> TableBits {
            TableBits::default()
        }
        fn reset(&mut self) {}
    }

    #[test]
    fn degraded_repairs_waives_only_the_activation_check() {
        // Default config: an NRR naming a never-activated row is a kill.
        let strict = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut d =
                AuditedDefense::new(Box::new(RepairEmitter(RowId(77))), AuditConfig::new(1_024));
            d.on_activation(RowId(3), 0);
        }));
        assert!(strict.is_err(), "strict mode must reject unactivated repair targets");

        // Degraded-repair mode tolerates it...
        let cfg = AuditConfig { degraded_repairs: true, ..AuditConfig::new(1_024) };
        let mut d = AuditedDefense::new(Box::new(RepairEmitter(RowId(77))), cfg);
        d.on_activation(RowId(3), 0);

        // ...but the bank bound is not negotiable.
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut d = AuditedDefense::new(Box::new(RepairEmitter(RowId(5_000))), cfg);
            d.on_activation(RowId(3), 0);
        }));
        assert!(out.is_err(), "degraded mode must still reject out-of-bank targets");
    }

    #[test]
    fn checkpoint_round_trips_certified_graphene() {
        use crate::graphene::GrapheneDefense;
        use graphene_core::GrapheneConfig;

        let build = || {
            let cfg = GrapheneConfig::micro2020();
            let p = cfg.derive().unwrap();
            let audit_cfg = AuditConfig {
                certify: Some(ShadowCert {
                    tracking_threshold: p.tracking_threshold,
                    reset_window: p.reset_window,
                }),
                ..AuditConfig::new(65_536)
            };
            AuditedDefense::new(Box::new(GrapheneDefense::from_config(&cfg).unwrap()), audit_cfg)
        };
        let drive = |d: &mut AuditedDefense, range: std::ops::Range<u64>| -> Vec<usize> {
            range
                .map(|i| {
                    let row = RowId(if i % 3 == 0 { 7 } else { 500 + (i % 17) as u32 });
                    d.on_activation(row, i * 45_000).len()
                })
                .collect()
        };

        let mut live = build();
        drive(&mut live, 0..25_000);
        let text = live.snapshot_state().unwrap().to_string();
        let state = telemetry::json::parse(&text).unwrap();

        let mut resumed = build();
        resumed.restore_state(&state).unwrap();
        // Certified continuation: identical actions, no audit panic —
        // proving the shadow accounts survived the round trip (a zeroed
        // shadow count would trip the certificate at the next crossing).
        assert_eq!(drive(&mut live, 25_000..60_000), drive(&mut resumed, 25_000..60_000));
    }

    #[test]
    fn checkpoint_unsupported_for_uncheckpointable_inner() {
        let d = audited(Box::new(Para::new(0.01, 3)));
        assert!(d.snapshot_state().unwrap_err().contains("does not support checkpointing"));
    }

    #[test]
    fn rfm_mode_graphene_preserves_the_certificate() {
        // Satellite: Graphene-as-RFM-issuer on DDR5 must still satisfy the
        // no-false-negative certificate — the audit credits an RFM exactly
        // like the NRR it re-spells.
        use crate::graphene::GrapheneDefense;
        use crate::rfm::RfmIssuer;
        use graphene_core::GrapheneConfig;

        let cfg = GrapheneConfig::builder()
            .timing(dram_model::Generation::Ddr5_4800.timing())
            .row_hammer_threshold(50_000)
            .build()
            .unwrap();
        let p = cfg.derive().unwrap();
        let audit_cfg = AuditConfig {
            certify: Some(ShadowCert {
                tracking_threshold: p.tracking_threshold,
                reset_window: p.reset_window,
            }),
            ..AuditConfig::new(65_536)
        };
        let inner = RfmIssuer::new(Box::new(GrapheneDefense::from_config(&cfg).unwrap()));
        let mut d = AuditedDefense::new(Box::new(inner), audit_cfg);
        let mut rfms = 0;
        for i in 0..60_000u64 {
            let row = RowId(if i % 3 == 0 { 7 } else { 500 + (i % 11) as u32 });
            for a in d.on_activation(row, i * 45_000) {
                assert!(matches!(a, RefreshAction::Rfm { .. }), "expected RFM, got {a:?}");
                rfms += 1;
            }
        }
        assert!(rfms > 0, "hammering row 7 past T must trigger RFMs");
        assert_eq!(d.name(), "Audited(Rfm(Graphene))");
    }

    /// Emits a Row refresh despite claiming Graphene's certificate — the
    /// audit must still reject non-NRR/RFM actions from certified defenses.
    #[test]
    #[should_panic(expected = "only issues NRRs (or their RFM spelling)")]
    fn certified_defense_emitting_row_refresh_is_caught() {
        struct RowEmitter;
        impl RowHammerDefense for RowEmitter {
            fn name(&self) -> String {
                "RowEmitter".into()
            }
            fn on_activation(&mut self, row: RowId, _now: Picoseconds) -> Vec<RefreshAction> {
                vec![RefreshAction::Row(row)]
            }
            fn table_bits(&self) -> TableBits {
                TableBits::default()
            }
            fn reset(&mut self) {}
        }
        let cfg = AuditConfig {
            certify: Some(ShadowCert { tracking_threshold: 50, reset_window: u64::MAX }),
            ..AuditConfig::new(1_024)
        };
        let mut d = AuditedDefense::new(Box::new(RowEmitter), cfg);
        d.on_activation(RowId(3), 0);
    }

    #[test]
    fn certificate_window_roll_forgives_new_window() {
        // 49 ACTs in window 0, then more in window 1: counts restart, so a
        // silent defense stays legal until a single window accumulates T.
        let cfg = AuditConfig {
            certify: Some(ShadowCert { tracking_threshold: 50, reset_window: 1_000_000 }),
            ..AuditConfig::new(1_024)
        };
        let mut d = AuditedDefense::new(Box::new(SilentCounter), cfg);
        for i in 0..49u64 {
            d.on_activation(RowId(3), i);
        }
        for i in 0..49u64 {
            d.on_activation(RowId(3), 1_000_000 + i);
        }
    }
}
