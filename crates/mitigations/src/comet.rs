//! CoMeT: Count-Min Sketch activation tracking with a small exact
//! recent-aggressor table (Bostancı et al., HPCA 2024; arXiv 2402.18769).
//!
//! CoMeT attacks Graphene's main cost — the per-bank CAM — by counting
//! activations in a fixed-size Count-Min Sketch and keeping exact state only
//! for the few rows the sketch flags as hot. The sketch never under-counts a
//! row *until* a mitigation discounts its counters; from then on a row that
//! collides with a mitigated row in **all** sketch rows can be
//! under-estimated, which is why CoMeT carries a *bounded* (not zero)
//! false-negative probability. `analysis::certificates` derives that bound;
//! the arena sweep checks the observed disturbance margin against it.
//!
//! Mechanism per activation:
//!
//! 1. roll the reset window (sketch + table clear, like Graphene's `k`
//!    windows per tREFW);
//! 2. count the row in the sketch;
//! 3. if the row is in the recent-aggressor table (RAT), bump its exact
//!    counter; at `nrr_threshold` fire an NRR, zero the counter, and
//!    discount the sketch (counter reset on mitigation);
//! 4. otherwise promote the row into the RAT once its sketch estimate
//!    reaches `insert_threshold`, seeding the exact counter from the
//!    estimate so promotion can never lose counts.

use dram_model::geometry::RowId;
use dram_model::timing::Picoseconds;
use freq_elems::{CountMinSketch, FrequencyEstimator};
use graphene_core::GrapheneConfig;
use telemetry::json::JsonValue;

use crate::ckpt::{expect_scheme, field, lane, obj, u32_lane, u64_field, u64_lane};
use crate::defense::{RefreshAction, RowHammerDefense, TableBits};

fn bits_for(x: u64) -> u32 {
    64 - x.leading_zeros()
}

/// CoMeT parameters. Thresholds are derived from the Graphene derivation at
/// the same `T_RH` so the two schemes defend the same threshold with the
/// same window schedule, isolating the tracker difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CometConfig {
    /// The Row Hammer threshold being defended.
    pub row_hammer_threshold: u64,
    /// Exact-counter value at which an NRR fires (Graphene's `T`).
    pub nrr_threshold: u64,
    /// Sketch estimate at which a row is promoted into the RAT.
    pub insert_threshold: u64,
    /// Sketch rows (independent hash functions).
    pub depth: usize,
    /// Counters per sketch row.
    pub width: usize,
    /// Recent-aggressor-table entries.
    pub rat_entries: usize,
    /// Reset-window length (ps).
    pub reset_window: Picoseconds,
    /// Rows per bank (clips NRR victims).
    pub rows_per_bank: u32,
    /// NRR blast radius.
    pub radius: u32,
}

impl CometConfig {
    /// Derives a configuration for `t_rh` using the paper-default sketch
    /// geometry (4 × 512 — fixed, which is the whole point: CoMeT's area
    /// does not grow as `T_RH` drops).
    ///
    /// # Errors
    ///
    /// Propagates the Graphene derivation error as text.
    pub fn for_threshold(t_rh: u64, rows_per_bank: u32) -> Result<Self, String> {
        Self::for_threshold_with_timing(t_rh, rows_per_bank, dram_model::DramTiming::ddr4_2400())
    }

    /// [`Self::for_threshold`] against an explicit timing configuration —
    /// the derived thresholds and reset window scale with the generation's
    /// tREFW/tREFI/tRC instead of assuming DDR4-2400.
    ///
    /// # Errors
    ///
    /// Propagates the Graphene derivation error as text.
    pub fn for_threshold_with_timing(
        t_rh: u64,
        rows_per_bank: u32,
        timing: dram_model::DramTiming,
    ) -> Result<Self, String> {
        let params = GrapheneConfig::builder()
            .row_hammer_threshold(t_rh)
            .rows_per_bank(rows_per_bank)
            .timing(timing)
            .build()
            .map_err(|e| format!("{e:?}"))?
            .derive()
            .map_err(|e| format!("{e:?}"))?;
        Ok(CometConfig {
            row_hammer_threshold: t_rh,
            nrr_threshold: params.tracking_threshold.max(1),
            insert_threshold: (params.tracking_threshold / 2).max(1),
            depth: 4,
            width: 512,
            rat_entries: 128,
            reset_window: params.reset_window,
            rows_per_bank,
            radius: params.blast_radius,
        })
    }
}

/// Lifetime counters of one CoMeT instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CometStats {
    /// Activations processed.
    pub activations: u64,
    /// NRR commands issued.
    pub nrrs_issued: u64,
    /// Victim rows requested across all NRRs.
    pub victim_rows_requested: u64,
    /// Reset-window rollovers.
    pub window_resets: u64,
    /// RAT promotions.
    pub rat_inserts: u64,
    /// RAT evictions (coldest entry replaced).
    pub rat_evictions: u64,
    /// Sketch discounts applied after mitigations.
    pub discounts: u64,
}

/// Per-bank CoMeT tracker behind the common defense trait.
///
/// # Example
///
/// ```
/// use mitigations::{CometConfig, CometDefense, RowHammerDefense};
/// use dram_model::RowId;
///
/// let cfg = CometConfig::for_threshold(50_000, 65_536).unwrap();
/// let mut d = CometDefense::new(cfg);
/// assert!(d.on_activation(RowId(1), 0).is_empty());
/// assert_eq!(d.name(), "CoMeT");
/// ```
#[derive(Debug, Clone)]
pub struct CometDefense {
    cfg: CometConfig,
    cms: CountMinSketch<u32>,
    rat_rows: Vec<u32>,
    rat_counts: Vec<u64>,
    current_window: u64,
    suppress_next_lookup: bool,
    stats: CometStats,
}

impl CometDefense {
    /// Builds the tracker.
    ///
    /// # Panics
    ///
    /// Panics if the sketch or RAT geometry is zero-sized.
    pub fn new(cfg: CometConfig) -> Self {
        assert!(cfg.rat_entries > 0, "RAT must have at least one entry");
        assert!(cfg.nrr_threshold > 0, "NRR threshold must be positive");
        CometDefense {
            cms: CountMinSketch::new(cfg.depth, cfg.width, cfg.rat_entries),
            rat_rows: Vec::with_capacity(cfg.rat_entries),
            rat_counts: Vec::with_capacity(cfg.rat_entries),
            current_window: 0,
            suppress_next_lookup: false,
            stats: CometStats::default(),
            cfg,
        }
    }

    /// The configuration this tracker was built from.
    pub fn config(&self) -> &CometConfig {
        &self.cfg
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CometStats {
        self.stats
    }

    fn roll_window(&mut self, now: Picoseconds) {
        if self.cfg.reset_window == 0 {
            return;
        }
        let w = now / self.cfg.reset_window;
        if w != self.current_window {
            self.cms.reset();
            self.rat_rows.clear();
            self.rat_counts.clear();
            self.current_window = w;
            self.stats.window_resets += 1;
        }
    }

    fn fire(&mut self, row: RowId) -> RefreshAction {
        let action = RefreshAction::Neighbors { aggressor: row, radius: self.cfg.radius };
        self.stats.nrrs_issued += 1;
        self.stats.victim_rows_requested += action.row_count(self.cfg.rows_per_bank);
        action
    }
}

impl RowHammerDefense for CometDefense {
    fn name(&self) -> String {
        "CoMeT".to_owned()
    }

    fn on_activation(&mut self, row: RowId, now: Picoseconds) -> Vec<RefreshAction> {
        self.roll_window(now);
        self.stats.activations += 1;
        self.cms.observe(row.0);
        let hit = if self.suppress_next_lookup {
            self.suppress_next_lookup = false;
            None
        } else {
            self.rat_rows.iter().position(|&r| r == row.0)
        };
        let mut out = Vec::new();
        match hit {
            Some(i) => {
                self.rat_counts[i] += 1;
                if self.rat_counts[i] >= self.cfg.nrr_threshold {
                    let mitigated = self.rat_counts[i];
                    out.push(self.fire(row));
                    self.rat_counts[i] = 0;
                    self.cms.discount(&row.0, mitigated);
                    self.stats.discounts += 1;
                }
            }
            None => {
                let est = self.cms.estimate(&row.0);
                if est >= self.cfg.insert_threshold {
                    let i = if self.rat_rows.len() < self.cfg.rat_entries {
                        self.rat_rows.push(row.0);
                        self.rat_counts.push(0);
                        self.rat_rows.len() - 1
                    } else {
                        // Replace the coldest entry; evicted rows keep
                        // counting in the sketch, so nothing is lost.
                        let i = self
                            .rat_counts
                            .iter()
                            .enumerate()
                            .min_by_key(|&(i, &c)| (c, i))
                            .map(|(i, _)| i)
                            .expect("RAT is full, hence non-empty");
                        self.stats.rat_evictions += 1;
                        self.rat_rows[i] = row.0;
                        i
                    };
                    self.stats.rat_inserts += 1;
                    // Seed from the estimate: promotion never loses counts
                    // (the estimate covers acts before promotion).
                    self.rat_counts[i] = est;
                    if self.rat_counts[i] >= self.cfg.nrr_threshold {
                        let mitigated = self.rat_counts[i];
                        out.push(self.fire(row));
                        self.rat_counts[i] = 0;
                        self.cms.discount(&row.0, mitigated);
                        self.stats.discounts += 1;
                    }
                }
            }
        }
        out
    }

    fn table_bits(&self) -> TableBits {
        let count_bits = bits_for(self.cfg.nrr_threshold.saturating_mul(2).max(1));
        let addr_bits = bits_for(u64::from(self.cfg.rows_per_bank.saturating_sub(1)).max(1));
        TableBits {
            cam_bits: self.cfg.rat_entries as u64 * u64::from(addr_bits + count_bits),
            sram_bits: self.cms.table_bits(count_bits),
        }
    }

    fn emit_telemetry(&self, bank: u16, now: Picoseconds, sink: &mut dyn telemetry::MetricsSink) {
        if !sink.enabled() {
            return;
        }
        let counters = self.cms.counters();
        let occupied = counters.iter().filter(|&&c| c > 0).count();
        sink.sample("comet.cms_occupancy", bank, now, occupied as f64 / counters.len() as f64);
        sink.sample(
            "comet.rat_occupancy",
            bank,
            now,
            self.rat_rows.len() as f64 / self.cfg.rat_entries as f64,
        );
        sink.sample("comet.nrrs", bank, now, self.stats.nrrs_issued as f64);
        sink.sample("comet.discounts", bank, now, self.stats.discounts as f64);
    }

    fn reset(&mut self) {
        self.cms.reset();
        self.rat_rows.clear();
        self.rat_counts.clear();
        self.current_window = 0;
        self.suppress_next_lookup = false;
        self.stats = CometStats::default();
    }

    fn snapshot_state(&self) -> Result<JsonValue, String> {
        Ok(obj(vec![
            ("scheme", JsonValue::Str("comet".to_owned())),
            ("current_window", JsonValue::U64(self.current_window)),
            ("suppress_next_lookup", JsonValue::U64(u64::from(self.suppress_next_lookup))),
            (
                "cms",
                obj(vec![
                    ("depth", JsonValue::U64(self.cms.depth() as u64)),
                    ("width", JsonValue::U64(self.cms.width() as u64)),
                    ("counters", lane(self.cms.counters().iter().copied())),
                    ("stream_len", JsonValue::U64(self.cms.stream_len())),
                ]),
            ),
            (
                "rat",
                obj(vec![
                    ("rows", lane(self.rat_rows.iter().map(|&r| u64::from(r)))),
                    ("counts", lane(self.rat_counts.iter().copied())),
                ]),
            ),
            (
                "stats",
                obj(vec![
                    ("activations", JsonValue::U64(self.stats.activations)),
                    ("nrrs_issued", JsonValue::U64(self.stats.nrrs_issued)),
                    ("victim_rows_requested", JsonValue::U64(self.stats.victim_rows_requested)),
                    ("window_resets", JsonValue::U64(self.stats.window_resets)),
                    ("rat_inserts", JsonValue::U64(self.stats.rat_inserts)),
                    ("rat_evictions", JsonValue::U64(self.stats.rat_evictions)),
                    ("discounts", JsonValue::U64(self.stats.discounts)),
                ]),
            ),
        ]))
    }

    fn restore_state(&mut self, state: &JsonValue) -> Result<(), String> {
        expect_scheme(state, "comet")?;
        let cms = field(state, "cms")?;
        if u64_field(cms, "depth")? != self.cms.depth() as u64
            || u64_field(cms, "width")? != self.cms.width() as u64
        {
            return Err("checkpoint sketch geometry does not match configuration".to_owned());
        }
        let counters = u64_lane(cms, "counters")?;
        let stream_len = u64_field(cms, "stream_len")?;
        let rat = field(state, "rat")?;
        let rows = u32_lane(rat, "rows")?;
        let counts = u64_lane(rat, "counts")?;
        if rows.len() != counts.len() || rows.len() > self.cfg.rat_entries {
            return Err(format!(
                "RAT lanes are {}/{} entries for a {}-entry table",
                rows.len(),
                counts.len(),
                self.cfg.rat_entries
            ));
        }
        let stats = field(state, "stats")?;
        let parsed = CometStats {
            activations: u64_field(stats, "activations")?,
            nrrs_issued: u64_field(stats, "nrrs_issued")?,
            victim_rows_requested: u64_field(stats, "victim_rows_requested")?,
            window_resets: u64_field(stats, "window_resets")?,
            rat_inserts: u64_field(stats, "rat_inserts")?,
            rat_evictions: u64_field(stats, "rat_evictions")?,
            discounts: u64_field(stats, "discounts")?,
        };
        self.cms.restore_counters(&counters, stream_len)?;
        self.rat_rows = rows;
        self.rat_counts = counts;
        self.current_window = u64_field(state, "current_window")?;
        self.suppress_next_lookup = u64_field(state, "suppress_next_lookup")? != 0;
        self.stats = parsed;
        Ok(())
    }

    fn inject_fault(&mut self, fault: &faultsim::TrackerFault) -> bool {
        match *fault {
            faultsim::TrackerFault::CountBitFlip { slot, bit } => {
                let mut counters = self.cms.counters().to_vec();
                let i = slot as usize % counters.len();
                counters[i] ^= 1 << (bit % 64);
                let stream_len = self.cms.stream_len();
                self.cms
                    .restore_counters(&counters, stream_len)
                    .expect("same-shape counter write-back cannot fail");
                true
            }
            faultsim::TrackerFault::AddrBitFlip { slot, bit } => {
                if self.rat_rows.is_empty() {
                    return false;
                }
                let addr_bits =
                    bits_for(u64::from(self.cfg.rows_per_bank.saturating_sub(1)).max(1));
                let i = slot as usize % self.rat_rows.len();
                self.rat_rows[i] ^= 1 << (bit % addr_bits);
                true
            }
            faultsim::TrackerFault::SpilloverBitFlip { .. } => false,
            faultsim::TrackerFault::LookupMiss => {
                self.suppress_next_lookup = true;
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CometDefense {
        CometDefense::new(CometConfig::for_threshold(50_000, 65_536).unwrap())
    }

    #[test]
    fn derivation_matches_graphene_schedule() {
        let cfg = CometConfig::for_threshold(50_000, 65_536).unwrap();
        let g = GrapheneConfig::micro2020().derive().unwrap();
        assert_eq!(cfg.nrr_threshold, g.tracking_threshold);
        assert_eq!(cfg.reset_window, g.reset_window);
        assert!(cfg.insert_threshold < cfg.nrr_threshold);
    }

    #[test]
    fn hot_row_fires_at_threshold_and_again_after_discount() {
        let mut d = small();
        let t = d.config().nrr_threshold;
        let mut fired_at = Vec::new();
        for i in 0..2 * t {
            if !d.on_activation(RowId(40), i).is_empty() {
                fired_at.push(i);
            }
        }
        // A lone row has an exact estimate: first NRR at act T, the counter
        // and sketch reset, and the second NRR lands T acts later.
        assert_eq!(fired_at, vec![t - 1, 2 * t - 1]);
        assert_eq!(d.stats().discounts, 2);
    }

    #[test]
    fn area_is_flat_across_thresholds() {
        let hi = CometDefense::new(CometConfig::for_threshold(50_000, 65_536).unwrap());
        let lo = CometDefense::new(CometConfig::for_threshold(1_000, 65_536).unwrap());
        // The sketch footprint is fixed; only counter width may shrink.
        assert!(lo.table_bits().sram_bits <= hi.table_bits().sram_bits);
    }

    #[test]
    fn window_roll_clears_tracking() {
        let mut d = small();
        let w = d.config().reset_window;
        for i in 0..100 {
            d.on_activation(RowId(7), i);
        }
        d.on_activation(RowId(7), w + 1);
        assert_eq!(d.stats().window_resets, 1);
        assert!(d.cms.estimate(&7) <= 1);
    }

    #[test]
    fn checkpoint_round_trips_through_json_text() {
        let mut live = small();
        for i in 0..20_000u64 {
            let row = RowId(if i % 5 == 0 { 40 } else { 1_000 + (i % 23) as u32 });
            live.on_activation(row, i * 45_000);
        }
        let text = live.snapshot_state().unwrap().to_string();
        let state = telemetry::json::parse(&text).unwrap();

        let mut resumed = small();
        resumed.restore_state(&state).unwrap();
        assert_eq!(resumed.snapshot_state().unwrap().to_string(), text);

        for i in 20_000..60_000u64 {
            let row = RowId(if i % 5 == 0 { 40 } else { 1_000 + (i % 23) as u32 });
            assert_eq!(
                live.on_activation(row, i * 45_000),
                resumed.on_activation(row, i * 45_000),
                "act {i}"
            );
        }
        assert_eq!(
            live.snapshot_state().unwrap().to_string(),
            resumed.snapshot_state().unwrap().to_string()
        );
    }

    #[test]
    fn checkpoint_rejects_foreign_scheme() {
        let mut d = small();
        let err = d.restore_state(&telemetry::json::parse("{\"scheme\":\"graphene\"}").unwrap());
        assert!(err.unwrap_err().contains("scheme `graphene`"));
    }

    #[test]
    fn fault_injection_reaches_sketch_and_rat() {
        let mut d = small();
        for i in 0..d.config().insert_threshold + 1 {
            d.on_activation(RowId(9), i);
        }
        assert!(d.inject_fault(&faultsim::TrackerFault::CountBitFlip { slot: 3, bit: 2 }));
        assert!(d.inject_fault(&faultsim::TrackerFault::AddrBitFlip { slot: 0, bit: 1 }));
        assert!(d.inject_fault(&faultsim::TrackerFault::LookupMiss));
        assert!(!d.inject_fault(&faultsim::TrackerFault::SpilloverBitFlip { bit: 0 }));
    }
}
