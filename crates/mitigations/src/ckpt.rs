//! Shared JSON plumbing for defense checkpoint state.
//!
//! The workspace's `serde` is an inert offline stub, so checkpoint state is
//! rendered and parsed by hand on top of [`telemetry::json`], the same way
//! `faultsim` serializes fault plans. [`telemetry::json::parse`] is
//! integer-first (`u64` before `f64`), so every counter and packed bitmask
//! word round-trips exactly.

use telemetry::json::JsonValue;

/// Builds an object from `(key, value)` pairs.
pub(crate) fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Renders an iterator of `u64` as a JSON array.
pub(crate) fn lane(values: impl IntoIterator<Item = u64>) -> JsonValue {
    JsonValue::Arr(values.into_iter().map(JsonValue::U64).collect())
}

/// Required sub-value lookup.
pub(crate) fn field<'v>(v: &'v JsonValue, key: &str) -> Result<&'v JsonValue, String> {
    v.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

/// Required integer field.
pub(crate) fn u64_field(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing or non-integer field `{key}`"))
}

/// Required integer-array field.
pub(crate) fn u64_lane(v: &JsonValue, key: &str) -> Result<Vec<u64>, String> {
    field(v, key)?
        .as_arr()
        .ok_or_else(|| format!("field `{key}` is not an array"))?
        .iter()
        .map(|x| x.as_u64().ok_or_else(|| format!("non-integer element in `{key}`")))
        .collect()
}

/// Like [`u64_lane`] but narrowed to `u32`, rejecting oversized elements.
pub(crate) fn u32_lane(v: &JsonValue, key: &str) -> Result<Vec<u32>, String> {
    u64_lane(v, key)?
        .into_iter()
        .map(|x| u32::try_from(x).map_err(|_| format!("element of `{key}` exceeds u32")))
        .collect()
}

/// Checks the checkpoint's `scheme` tag against the restoring defense.
pub(crate) fn expect_scheme(v: &JsonValue, want: &str) -> Result<(), String> {
    let found = v.get("scheme").and_then(JsonValue::as_str).unwrap_or_default();
    if found == want {
        Ok(())
    } else {
        Err(format!("checkpoint is for scheme `{found}`, restoring `{want}`"))
    }
}
