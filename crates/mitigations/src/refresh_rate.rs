//! Refresh-rate scaling — the industry's first-response mitigation.
//!
//! After the 2014 disclosure, BIOS/UEFI vendors shipped patches that simply
//! raised the DRAM refresh rate (Section II-B of the paper). Refreshing
//! every row `k×` per tREFW divides the window an aggressor has to
//! accumulate ACTs by `k`, effectively multiplying the tolerated Row Hammer
//! threshold — but it is not a guarantee (a fast attacker can still beat
//! the shortened window when `T_RH` is low) and it costs refresh energy
//! proportional to `k − 1` on *every* bank at *all* times, which the paper
//! notes is why the rate "cannot be raised high enough".
//!
//! The model rides on the controller's refresh tick: at every tREFI it
//! refreshes `(k − 1)` extra rotation bursts from its own pointer, exactly
//! like issuing the REF command `k` times as often.

use dram_model::geometry::RowId;
use dram_model::timing::Picoseconds;
use serde::{Deserialize, Serialize};

use crate::defense::{RefreshAction, RowHammerDefense, TableBits};

/// The refresh-rate-scaling baseline.
///
/// # Example
///
/// ```
/// use mitigations::{refresh_rate::RefreshRateScaling, RowHammerDefense};
///
/// let mut d = RefreshRateScaling::new(2, 65_536, 8);
/// // Each tick refreshes one extra burst of 8 rows (2× the base rate).
/// assert_eq!(d.on_refresh_tick(0).len(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RefreshRateScaling {
    /// Total refresh-rate multiplier (`k ≥ 1`; 1 = no extra refreshes).
    factor: u32,
    rows_per_bank: u32,
    rows_per_burst: u32,
    pointer: u32,
    extra_rows_issued: u64,
}

impl RefreshRateScaling {
    /// Scales the refresh rate by `factor` on a bank of `rows_per_bank`
    /// rows, with `rows_per_burst` rows restored per REF (8 for the paper's
    /// bank).
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`, `rows_per_bank == 0` or `rows_per_burst == 0`.
    pub fn new(factor: u32, rows_per_bank: u32, rows_per_burst: u32) -> Self {
        assert!(factor >= 1, "factor must be at least 1");
        assert!(rows_per_bank > 0 && rows_per_burst > 0, "bank must be non-empty");
        RefreshRateScaling {
            factor,
            rows_per_bank,
            rows_per_burst,
            pointer: 0,
            extra_rows_issued: 0,
        }
    }

    /// The configured rate multiplier.
    pub fn factor(&self) -> u32 {
        self.factor
    }

    /// Extra rows refreshed so far (beyond the base rate).
    pub fn extra_rows_issued(&self) -> u64 {
        self.extra_rows_issued
    }

    /// The effective Row Hammer threshold multiplier: an aggressor now has
    /// only `tREFW / factor` between refreshes of any victim, so it must
    /// hammer `factor×` faster to reach the same disturbance.
    pub fn effective_threshold_multiplier(&self) -> u32 {
        self.factor
    }
}

impl RowHammerDefense for RefreshRateScaling {
    fn name(&self) -> String {
        format!("RefreshRate-{}x", self.factor)
    }

    fn on_activation(&mut self, _row: RowId, _now: Picoseconds) -> Vec<RefreshAction> {
        Vec::new()
    }

    fn on_refresh_tick(&mut self, _now: Picoseconds) -> Vec<RefreshAction> {
        let mut actions = Vec::new();
        for _ in 1..self.factor {
            actions.push(RefreshAction::Range {
                start: RowId(self.pointer),
                count: self.rows_per_burst,
            });
            self.extra_rows_issued += u64::from(self.rows_per_burst);
            self.pointer = (self.pointer + self.rows_per_burst) % self.rows_per_bank;
        }
        actions
    }

    fn table_bits(&self) -> TableBits {
        // Only the rotation pointer: one row address register.
        TableBits { cam_bits: 0, sram_bits: 16 }
    }

    fn reset(&mut self) {
        self.pointer = 0;
        self.extra_rows_issued = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_one_is_free() {
        let mut d = RefreshRateScaling::new(1, 65_536, 8);
        assert!(d.on_refresh_tick(0).is_empty());
        assert_eq!(d.extra_rows_issued(), 0);
    }

    #[test]
    fn doubling_refreshes_one_extra_burst_per_tick() {
        let mut d = RefreshRateScaling::new(2, 65_536, 8);
        for i in 0..8_205u64 {
            let a = d.on_refresh_tick(i);
            assert_eq!(a.len(), 1);
            assert_eq!(a[0].row_count(65_536), 8);
        }
        // One full tREFW of ticks refreshes ~the whole bank once extra.
        assert_eq!(d.extra_rows_issued(), 8_205 * 8);
    }

    #[test]
    fn rotation_covers_every_row() {
        let mut d = RefreshRateScaling::new(2, 64, 8);
        let mut seen = vec![false; 64];
        for i in 0..8u64 {
            for a in d.on_refresh_tick(i) {
                for r in a.rows(64) {
                    seen[r.0 as usize] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn quadrupling_issues_three_bursts() {
        let mut d = RefreshRateScaling::new(4, 65_536, 8);
        assert_eq!(d.on_refresh_tick(0).len(), 3);
    }

    #[test]
    fn energy_cost_dwarfs_graphene() {
        // The paper's point: doubling the rate costs ~100% extra refresh
        // energy; Graphene's worst case is 0.34%. Extra rows per tREFW at
        // factor 2 equals the whole bank (65,536 rows) vs Graphene's 324.
        let mut d = RefreshRateScaling::new(2, 65_536, 8);
        for i in 0..8_205u64 {
            d.on_refresh_tick(i);
        }
        assert!(d.extra_rows_issued() > 65_000);
        assert!(d.extra_rows_issued() > 200 * 324);
    }

    #[test]
    fn near_stateless_hardware() {
        assert!(RefreshRateScaling::new(2, 65_536, 8).table_bits().total() <= 16);
    }
}
