//! Graphene behind the common defense trait.

use dram_model::geometry::RowId;
use dram_model::timing::Picoseconds;
use graphene_core::mechanism::GrapheneSnapshot;
use graphene_core::table::TableSnapshot;
use graphene_core::{CamStats, ConfigError, Graphene, GrapheneConfig, GrapheneStats};
use telemetry::json::JsonValue;

use crate::ckpt::{expect_scheme, field, lane, obj, u32_lane, u64_field, u64_lane};
use crate::defense::{RefreshAction, RowHammerDefense, TableBits};

/// Adapter exposing [`graphene_core::Graphene`] as a [`RowHammerDefense`].
///
/// # Example
///
/// ```
/// use graphene_core::GrapheneConfig;
/// use mitigations::{GrapheneDefense, RowHammerDefense};
/// use dram_model::RowId;
///
/// # fn main() -> Result<(), graphene_core::ConfigError> {
/// let mut d = GrapheneDefense::from_config(&GrapheneConfig::micro2020())?;
/// assert!(d.on_activation(RowId(1), 0).is_empty());
/// assert_eq!(d.name(), "Graphene");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GrapheneDefense {
    inner: Graphene,
}

impl GrapheneDefense {
    /// Wraps an existing engine.
    pub fn new(inner: Graphene) -> Self {
        GrapheneDefense { inner }
    }

    /// Builds the engine from a configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] from the parameter derivation.
    pub fn from_config(config: &GrapheneConfig) -> Result<Self, ConfigError> {
        Ok(Self::new(Graphene::from_config(config)?))
    }

    /// The wrapped engine (stats, table, parameters).
    pub fn inner(&self) -> &Graphene {
        &self.inner
    }

    /// Mutable access to the wrapped engine — fault-injection and test
    /// support.
    pub fn inner_mut(&mut self) -> &mut Graphene {
        &mut self.inner
    }
}

impl RowHammerDefense for GrapheneDefense {
    fn name(&self) -> String {
        "Graphene".to_owned()
    }

    fn on_activation(&mut self, row: RowId, now: Picoseconds) -> Vec<RefreshAction> {
        match self.inner.on_activation(row, now) {
            Some(nrr) => {
                vec![RefreshAction::Neighbors { aggressor: nrr.aggressor, radius: nrr.radius }]
            }
            None => Vec::new(),
        }
    }

    fn table_bits(&self) -> TableBits {
        // Graphene's table is pure CAM (Figure 4).
        TableBits { cam_bits: self.inner.params().table_bits_per_bank(), sram_bits: 0 }
    }

    fn emit_telemetry(&self, bank: u16, now: Picoseconds, sink: &mut dyn telemetry::MetricsSink) {
        self.inner.emit_telemetry(bank, now, sink);
    }

    fn reset(&mut self) {
        self.inner.force_reset();
    }

    fn snapshot_state(&self) -> Result<JsonValue, String> {
        let s = self.inner.snapshot();
        Ok(obj(vec![
            ("scheme", JsonValue::Str("graphene".to_owned())),
            ("current_window", JsonValue::U64(s.current_window)),
            ("nrrs_this_window", JsonValue::U64(s.nrrs_this_window)),
            (
                "stats",
                obj(vec![
                    ("activations", JsonValue::U64(s.stats.activations)),
                    ("nrrs_issued", JsonValue::U64(s.stats.nrrs_issued)),
                    ("victim_rows_requested", JsonValue::U64(s.stats.victim_rows_requested)),
                    ("table_resets", JsonValue::U64(s.stats.table_resets)),
                    ("evictions", JsonValue::U64(s.stats.evictions)),
                ]),
            ),
            (
                "table",
                obj(vec![
                    ("keys", lane(s.table.keys.iter().map(|&k| u64::from(k)))),
                    ("low", lane(s.table.low.iter().map(|&k| u64::from(k)))),
                    ("valid", lane(s.table.valid.iter().copied())),
                    ("overflow", lane(s.table.overflow.iter().map(|&b| u64::from(b)))),
                    ("crossings", lane(s.table.crossings.iter().copied())),
                    ("spillover", JsonValue::U64(s.table.spillover)),
                    ("acts_since_reset", JsonValue::U64(s.table.acts_since_reset)),
                    (
                        "cam",
                        obj(vec![
                            ("addr_searches", JsonValue::U64(s.table.stats.addr_searches)),
                            ("addr_writes", JsonValue::U64(s.table.stats.addr_writes)),
                            ("count_searches", JsonValue::U64(s.table.stats.count_searches)),
                            ("count_writes", JsonValue::U64(s.table.stats.count_writes)),
                            (
                                "spillover_increments",
                                JsonValue::U64(s.table.stats.spillover_increments),
                            ),
                        ]),
                    ),
                ]),
            ),
        ]))
    }

    fn restore_state(&mut self, state: &JsonValue) -> Result<(), String> {
        expect_scheme(state, "graphene")?;
        let table = field(state, "table")?;
        let stats = field(state, "stats")?;
        let cam = field(table, "cam")?;
        let snap = GrapheneSnapshot {
            table: TableSnapshot {
                keys: u32_lane(table, "keys")?,
                low: u32_lane(table, "low")?,
                valid: u64_lane(table, "valid")?,
                overflow: u64_lane(table, "overflow")?.into_iter().map(|b| b != 0).collect(),
                crossings: u64_lane(table, "crossings")?,
                spillover: u64_field(table, "spillover")?,
                acts_since_reset: u64_field(table, "acts_since_reset")?,
                stats: CamStats {
                    addr_searches: u64_field(cam, "addr_searches")?,
                    addr_writes: u64_field(cam, "addr_writes")?,
                    count_searches: u64_field(cam, "count_searches")?,
                    count_writes: u64_field(cam, "count_writes")?,
                    spillover_increments: u64_field(cam, "spillover_increments")?,
                },
            },
            current_window: u64_field(state, "current_window")?,
            stats: GrapheneStats {
                activations: u64_field(stats, "activations")?,
                nrrs_issued: u64_field(stats, "nrrs_issued")?,
                victim_rows_requested: u64_field(stats, "victim_rows_requested")?,
                table_resets: u64_field(stats, "table_resets")?,
                evictions: u64_field(stats, "evictions")?,
            },
            nrrs_this_window: u64_field(state, "nrrs_this_window")?,
        };
        self.inner.restore(&snap)
    }

    fn inject_fault(&mut self, fault: &faultsim::TrackerFault) -> bool {
        let table = self.inner.table_mut();
        match *fault {
            faultsim::TrackerFault::CountBitFlip { slot, bit } => {
                table.corrupt_count_bit(slot as usize, bit)
            }
            faultsim::TrackerFault::AddrBitFlip { slot, bit } => {
                table.corrupt_addr_bit(slot as usize, bit)
            }
            faultsim::TrackerFault::SpilloverBitFlip { bit } => table.corrupt_spillover_bit(bit),
            faultsim::TrackerFault::LookupMiss => {
                table.suppress_next_lookup();
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_bits_match_paper() {
        let d = GrapheneDefense::from_config(&GrapheneConfig::micro2020()).unwrap();
        assert_eq!(d.table_bits().cam_bits, 2_511);
        assert_eq!(d.table_bits().sram_bits, 0);
    }

    #[test]
    fn nrr_converted_to_neighbors_action() {
        let mut d = GrapheneDefense::from_config(&GrapheneConfig::micro2020()).unwrap();
        let t = d.inner().params().tracking_threshold;
        let mut fired = Vec::new();
        for i in 0..t {
            fired.extend(d.on_activation(RowId(40), i));
        }
        assert_eq!(fired, vec![RefreshAction::Neighbors { aggressor: RowId(40), radius: 1 }]);
    }

    #[test]
    fn refresh_tick_is_noop() {
        let mut d = GrapheneDefense::from_config(&GrapheneConfig::micro2020()).unwrap();
        assert!(d.on_refresh_tick(0).is_empty());
    }

    #[test]
    fn checkpoint_round_trips_through_json_text() {
        let mut live = GrapheneDefense::from_config(&GrapheneConfig::micro2020()).unwrap();
        for i in 0..20_000u64 {
            let row = RowId(if i % 5 == 0 { 40 } else { 1_000 + (i % 23) as u32 });
            live.on_activation(row, i * 45_000);
        }
        // Render → text → parse, as the checkpoint file does.
        let text = live.snapshot_state().unwrap().to_string();
        let state = telemetry::json::parse(&text).unwrap();

        let mut resumed = GrapheneDefense::from_config(&GrapheneConfig::micro2020()).unwrap();
        resumed.restore_state(&state).unwrap();
        assert_eq!(resumed.inner().snapshot(), live.inner().snapshot());

        // Identical continuations.
        for i in 20_000..60_000u64 {
            let row = RowId(if i % 5 == 0 { 40 } else { 1_000 + (i % 23) as u32 });
            assert_eq!(
                live.on_activation(row, i * 45_000),
                resumed.on_activation(row, i * 45_000),
                "act {i}"
            );
        }
        assert_eq!(resumed.inner().snapshot(), live.inner().snapshot());
    }

    #[test]
    fn checkpoint_rejects_foreign_scheme() {
        let mut d = GrapheneDefense::from_config(&GrapheneConfig::micro2020()).unwrap();
        let err = d.restore_state(&telemetry::json::parse("{\"scheme\":\"para\"}").unwrap());
        assert!(err.unwrap_err().contains("scheme `para`"));
    }
}
